"""Figure 9 — Pareto fronts of RS-GDE3 vs. brute force vs. random search.

Regenerates the paper's front comparison for mm on both machines as an
ASCII plot plus hypervolume numbers.

Shape targets (paper): RS-GDE3's front matches or exceeds the brute-force
front's quality ("up to 13% faster" points on Westmere, close on
Barcelona) while random search at the same budget is clearly worse.
"""

from __future__ import annotations

import numpy as np
from conftest import print_banner

from repro.experiments import make_setup
from repro.optimizer import RSGDE3, compare_fronts, random_search
from repro.util.tables import Table


REPS = 3


def run(machine, sweep_cache):
    """Brute-force front plus REPS runs of the stochastic strategies (the
    plot shows the first run; metrics average over all runs)."""
    sweep = sweep_cache("mm", machine)
    setup = sweep.setup
    rs_runs, rnd_runs = [], []
    for rep in range(REPS):
        rs = RSGDE3(setup.problem(seed=301 + rep)).run(seed=31 + rep)
        rs_runs.append(rs)
        rnd_runs.append(
            random_search(setup.problem(seed=351 + rep), budget=rs.evaluations, seed=31 + rep)
        )
    return sweep.result, rs_runs, rnd_runs


def front_points(result):
    return np.array([c.objectives for c in result.front])


def ascii_fronts(fronts: dict[str, np.ndarray], width=68, height=18) -> str:
    pts_all = np.vstack(list(fronts.values()))
    lo = np.log10(pts_all.min(axis=0))
    hi = np.log10(pts_all.max(axis=0))
    grid = [[" "] * width for _ in range(height)]
    for label, pts in fronts.items():
        ch = label[0]
        xs = ((np.log10(pts[:, 0]) - lo[0]) / (hi[0] - lo[0] + 1e-12) * (width - 1)).astype(int)
        ys = ((np.log10(pts[:, 1]) - lo[1]) / (hi[1] - lo[1] + 1e-12) * (height - 1)).astype(int)
        for x, y in zip(xs, ys):
            grid[height - 1 - y][x] = ch
    return "\n".join("".join(r) for r in grid)


def test_fig9_front_comparison(benchmark, sweep_cache, machine):
    bf, rs_runs, rnd_runs = benchmark.pedantic(
        lambda: run(machine, sweep_cache), rounds=1, iterations=1
    )

    metrics = {
        m.name: m
        for m in compare_fronts(
            {"Brute Force": [bf], "RS-GDE3": rs_runs, "Random": rnd_runs}
        )
    }
    print_banner(
        f"FIGURE 9 — mm on {machine.name}: fronts (B=brute force, R... see legend)"
    )
    print("legend: B = Brute Force, R = RS-GDE3 / r = random (overlap possible)")
    print(
        ascii_fronts(
            {
                "Brute": front_points(bf),
                "RS-GDE3": front_points(rs_runs[0]),
                "random": front_points(rnd_runs[0]),
            }
        )
    )
    t = Table(["strategy", "E", "|S|", "V(S)"])
    for name, m in metrics.items():
        t.add_row([name, int(m.evaluations), int(m.size), round(m.hypervolume, 3)])
    print(t.render())

    # RS-GDE3 within a whisker of (or better than) brute force — the paper
    # itself reports Westmere fronts *exceeding* brute force but Barcelona
    # ones "close to the brute force results" (slightly weaker)
    assert metrics["RS-GDE3"].hypervolume > 0.85 * metrics["Brute Force"].hypervolume
    # ...at a tiny fraction of the evaluations
    assert metrics["RS-GDE3"].evaluations < 0.1 * metrics["Brute Force"].evaluations
    # and better than random search at the same budget
    assert metrics["RS-GDE3"].hypervolume > metrics["Random"].hypervolume
    assert metrics["Random"].evaluations == metrics["RS-GDE3"].evaluations
