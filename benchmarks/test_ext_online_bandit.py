"""Extension — online version selection under stale tuning data.

Multi-versioning defers the trade-off decision to the runtime; this
extension defers part of the *measurement* too.  Scenario: mm was tuned on
an idle Barcelona, but in production a co-runner steals memory bandwidth,
so versions with many threads are much slower than their metadata claims.
A UCB bandit over the shipped versions relearns the ranking from observed
wall times; we compare its cumulative wall time against trusting the stale
metadata and against an oracle that knows the production times.
"""

from __future__ import annotations

import numpy as np
from conftest import print_banner

from repro.driver import TuningDriver
from repro.machine import BARCELONA
from repro.runtime import BanditSelector, FastestPolicy, RegionExecutor
from repro.util.rng import derive_rng
from repro.util.tables import Table

INVOCATIONS = 400


def production_time(meta, congestion: float = 3.0) -> float:
    """Stale-metadata scenario: a co-runner multiplies the effective time
    of versions by a factor growing with their thread count."""
    slowdown = 1.0 + congestion * (meta.threads / 32.0) ** 2
    return meta.time * slowdown


def run():
    driver = TuningDriver(machine=BARCELONA, seed=17)
    tuned = driver.tune_kernel("mm")
    table = tuned.build_version_table(executable=False)

    rng = derive_rng(11)
    results = {}

    # strategy 1: trust the stale metadata (always-"fastest")
    static_total = 0.0
    static_policy = FastestPolicy()
    for _ in range(INVOCATIONS):
        v = static_policy.select(table)
        static_total += production_time(v.meta) * float(np.exp(rng.normal(0, 0.03)))
    results["static (stale metadata)"] = static_total

    # strategy 2: UCB bandit learning from observed walls
    bandit = BanditSelector(strategy="ucb1", seed=3, exploration=0.3)
    bandit_total = 0.0
    for _ in range(INVOCATIONS):
        v = bandit.select(table)
        wall = production_time(v.meta) * float(np.exp(rng.normal(0, 0.03)))
        bandit.observe(v.meta.index, wall)
        bandit_total += wall
    results["bandit (online)"] = bandit_total

    # strategy 3: oracle knowing the production times
    oracle_version = min(table, key=lambda v: production_time(v.meta))
    results["oracle"] = production_time(oracle_version.meta) * INVOCATIONS

    final_pick = bandit.select(table)
    return table, results, oracle_version, final_pick


def test_ext_online_bandit(benchmark):
    table, results, oracle_version, final_pick = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    t = Table(
        ["strategy", f"total wall over {INVOCATIONS} invocations [s]"],
        title="Online adaptation under a bandwidth-stealing co-runner (Barcelona)",
    )
    for name, total in results.items():
        t.add_row([name, round(total, 2)])
    print_banner("EXTENSION — bandit version selection with stale tuning data")
    print(t.render())
    print(
        f"\noracle version: v{oracle_version.meta.index} "
        f"({oracle_version.meta.threads} threads); bandit converged to "
        f"v{final_pick.meta.index} ({final_pick.meta.threads} threads)"
    )

    static = results["static (stale metadata)"]
    bandit = results["bandit (online)"]
    oracle = results["oracle"]

    # learning beats trusting stale data by a wide margin...
    assert bandit < 0.8 * static
    # ...and lands near the oracle (exploration overhead bounded)
    assert bandit < 1.6 * oracle
    # the bandit's final choice is not the stale-fastest version
    assert final_pick.meta.index != FastestPolicy().select(table).meta.index