"""Extension — energy as a third objective.

The paper names energy consumption as an example objective (§III-B1) but
evaluates only (time, efficiency).  This extension benchmark runs the full
tri-objective problem (time, cpu-seconds, joules) on mm/Westmere and checks
the structure that makes it worthwhile:

* the energy-optimal configuration sits at an *interior* thread count
  (idle power punishes slow serial runs, core power and efficiency decay
  punish the full machine),
* the tri-objective front strictly refines the bi-objective one: it
  contains configurations that the (time, resources) front cannot
  distinguish,
* the runtime's greenest/energy-cap policies act on the new metadata.
"""

from __future__ import annotations

from conftest import print_banner

from repro.driver import TuningDriver
from repro.machine import WESTMERE
from repro.runtime import EnergyCapPolicy, GreenestPolicy, RegionExecutor
from repro.util.tables import Table


def tune():
    driver = TuningDriver(machine=WESTMERE, seed=9)
    return driver.tune_kernel("mm", with_energy=True)


def test_ext_triobjective_energy(benchmark):
    tuned = benchmark.pedantic(tune, rounds=1, iterations=1)

    metas = tuned.version_metas()
    t = Table(
        ["version", "threads", "time [s]", "cpu-s", "energy [J]"],
        title=f"Tri-objective Pareto set for mm on Westmere (|S|={len(metas)})",
    )
    for m in metas:
        t.add_row([m.index, m.threads, round(m.time, 4), round(m.resources, 3), round(m.energy, 1)])
    print_banner("EXTENSION — (time, resources, energy) tuning")
    print(t.render())

    table = tuned.build_version_table(executable=False)
    ex = RegionExecutor(table, policy=GreenestPolicy())
    greenest = ex.select().meta
    fastest = table.fastest().meta
    most_eff = table.most_efficient().meta
    print(
        f"\ngreenest: {greenest.threads} threads / {greenest.energy:.1f} J   "
        f"fastest: {fastest.threads} threads / {fastest.energy:.1f} J   "
        f"fewest cpu-s: {most_eff.threads} threads / {most_eff.energy:.1f} J"
    )

    # interior energy optimum
    assert 1 < greenest.threads < WESTMERE.total_cores
    assert greenest.energy <= fastest.energy
    assert greenest.energy <= most_eff.energy

    # the front orders differently by time and by energy — energy is not a
    # monotone transform of the other two objectives
    by_time = [m.index for m in sorted(metas, key=lambda m: m.time)]
    by_energy = [m.index for m in sorted(metas, key=lambda m: m.energy)]
    assert by_time != by_energy

    # energy-cap policy: a tight budget forces a slower version than the cap-free pick
    budget = greenest.energy * 1.05
    capped = EnergyCapPolicy(cap=budget).select(table).meta
    assert capped.energy <= budget
    assert capped.time >= fastest.time