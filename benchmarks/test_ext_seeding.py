"""Extension — informed population seeding.

RS-GDE3 starts from a uniform random population; the machine model can do
better without any measurement: seed half the population with tile shapes
sized to the cache hierarchy (see ``repro.optimizer.seeding``).

This benchmark traces the convergence (population-front hypervolume per
evaluation) of random-initialized vs. informed-seeded RS-GDE3 on mm/
Barcelona and asserts the seeding reaches the random run's *early* quality
with fewer evaluations, without hurting the final front.
"""

from __future__ import annotations

import numpy as np
from conftest import print_banner

from repro.experiments import make_setup
from repro.machine import BARCELONA
from repro.optimizer import RSGDE3, compare_fronts
from repro.optimizer.rsgde3 import RSGDE3Settings

REPS = 3


def run_variants():
    setup = make_setup("mm", BARCELONA)
    variants = {
        "random init": RSGDE3Settings(informed_seed_fraction=0.0),
        "informed seeds": RSGDE3Settings(informed_seed_fraction=0.5),
    }
    out = {}
    for name, settings in variants.items():
        runs = []
        for rep in range(REPS):
            problem = setup.problem(seed=810 + rep)
            runs.append(RSGDE3(problem, settings).run(seed=rep))
        out[name] = runs
    return out


def initial_population_quality() -> dict[str, dict[str, float]]:
    """Best time / best resources reached by the *initial* populations
    alone (no search), averaged over probes: informed seeding vs uniform
    random at the same budget."""
    from repro.optimizer.seeding import mixed_initial_vectors
    from repro.util.rng import derive_rng

    out = {"random": {"time": [], "resources": []}, "informed": {"time": [], "resources": []}}
    for probe in range(3):
        setup = make_setup("mm", BARCELONA)
        problem = setup.problem(seed=900 + probe)
        rng = derive_rng(900 + probe, "seed-probe")
        n = 30
        pops = {
            "random": problem.evaluate_batch(problem.space.full_boundary().sample(rng, n)),
            "informed": problem.evaluate_batch(
                mixed_initial_vectors(problem.space, problem.target.model, n, rng, 0.5)
            ),
        }
        for name, pop in pops.items():
            out[name]["time"].append(min(c.objectives[0] for c in pop))
            out[name]["resources"].append(min(c.objectives[1] for c in pop))
    return {
        name: {k: float(np.mean(v)) for k, v in d.items()} for name, d in out.items()
    }


def test_ext_informed_seeding(benchmark):
    results = benchmark.pedantic(run_variants, rounds=1, iterations=1)

    metrics = {m.name: m for m in compare_fronts(results)}
    init_quality = initial_population_quality()
    print_banner("EXTENSION — informed (cache-capacity) population seeding")
    print(
        "initial populations (no search, mean of 3 probes): best time "
        f"random={init_quality['random']['time']:.4f}s vs "
        f"informed={init_quality['informed']['time']:.4f}s; best cpu-s "
        f"{init_quality['random']['resources']:.3f} vs "
        f"{init_quality['informed']['resources']:.3f}"
    )
    for name, runs in results.items():
        m = metrics[name]
        print(f"{name:16s}: E={m.evaluations:6.1f} |S|={m.size:5.1f} V(S)={m.hypervolume:.3f}")
        trace = runs[0].hv_history
        step = max(1, len(trace) // 8)
        line = " ".join(f"{e}:{hv:.3g}" for e, hv in trace[::step])
        print(f"  convergence (E : population HV, run-local units): {line}")

    # the informed initial population starts from much better configurations
    assert init_quality["informed"]["time"] < init_quality["random"]["time"]
    assert (
        init_quality["informed"]["resources"]
        <= init_quality["random"]["resources"] * 1.05
    )

    # and the final quality does not suffer
    assert metrics["informed seeds"].hypervolume >= metrics["random init"].hypervolume - 0.03