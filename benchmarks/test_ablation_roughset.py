"""Ablation — what the rough-set reduction (and the protected thread
dimension) buys.

Three optimizer variants on mm/Westmere, same budget discipline:

* full RS-GDE3 (reduction + protected threads),
* GDE3 without any boundary reduction (the plain algorithm),
* RS-GDE3 with the reduction also applied to the thread dimension (the
  naive reading of Fig. 5, which collapses whole Pareto arms).

Expectations: the reduction improves front quality at comparable budgets
(it is the paper's selling point over plain evolutionary search); removing
the thread protection produces clearly smaller fronts (fewer thread counts
survive in the box).
"""

from __future__ import annotations

import numpy as np
from conftest import print_banner

from repro.experiments import make_setup
from repro.machine import WESTMERE
from repro.optimizer import RSGDE3, compare_fronts
from repro.optimizer.rsgde3 import RSGDE3Settings
from repro.util.tables import Table

REPS = 3


def run_variants():
    setup = make_setup("mm", WESTMERE)
    variants = {
        "RS-GDE3 (full)": RSGDE3Settings(),
        "GDE3 (no reduction)": RSGDE3Settings(protect=frozenset()),
        "RS-GDE3 unprotected": RSGDE3Settings(protect=frozenset()),
    }
    # "no reduction" = reduction disabled via a min-span floor of 1.0
    results = {}
    for name, settings in variants.items():
        runs = []
        for rep in range(REPS):
            problem = setup.problem(seed=700 + rep)
            if name == "GDE3 (no reduction)":
                opt = RSGDE3(problem, RSGDE3Settings(protect=frozenset({"*all*"})))
                # protect everything: boundary never shrinks
                opt.settings = RSGDE3Settings(
                    protect=frozenset(problem.space.names)
                )
            else:
                opt = RSGDE3(problem, settings)
            runs.append(opt.run(seed=rep))
        results[name] = runs
    return results


def test_ablation_roughset_reduction(benchmark):
    results = benchmark.pedantic(run_variants, rounds=1, iterations=1)

    metrics = {m.name: m for m in compare_fronts(results)}
    t = Table(
        ["variant", "E", "|S|", "V(S)", "threads on front"],
        title=f"Rough-set ablation on mm/Westmere (mean of {REPS} runs)",
    )
    spread = {}
    for name, runs in results.items():
        thread_counts = [
            len({c.value("threads") for c in r.front}) for r in runs
        ]
        spread[name] = float(np.mean(thread_counts))
        m = metrics[name]
        t.add_row([name, int(m.evaluations), round(m.size, 1), round(m.hypervolume, 3), round(spread[name], 1)])
    print_banner("ABLATION — rough-set reduction and thread protection")
    print(t.render())

    full = metrics["RS-GDE3 (full)"]
    plain = metrics["GDE3 (no reduction)"]
    unprot = metrics["RS-GDE3 unprotected"]

    # the full algorithm is at least as good as plain GDE3 per evaluation
    assert full.hypervolume / full.evaluations >= 0.8 * (
        plain.hypervolume / plain.evaluations
    )
    # dropping the protection costs front diversity: fewer thread counts
    # represented and a smaller front
    assert spread["RS-GDE3 (full)"] > spread["RS-GDE3 unprotected"]
    assert full.size > unprot.size
    # and costs quality overall
    assert full.hypervolume >= unprot.hypervolume - 0.02
