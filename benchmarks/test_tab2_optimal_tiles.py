"""Table II — optimal tiling parameters per thread count and the
cross-thread performance-loss matrix, plus the GCC -O3 baseline row.

Shape targets (paper): the per-thread-count optimal tiles differ; using a
configuration tuned for one thread count at another costs performance
(up to double digits, worst when tuning only for 1 thread and running with
every core); the untiled "-O3" baseline is massively slower than any tuned
configuration.
"""

from __future__ import annotations

from conftest import print_banner

from repro.experiments import cross_penalty_matrix
from repro.util.tables import Table


def build(sweep):
    optima = sweep.optimal_tiles()
    matrix = cross_penalty_matrix(sweep)
    baseline = sweep.setup.model.baseline_time()
    return optima, matrix, baseline


def test_tab2_optimal_tiles_and_penalties(benchmark, sweep_cache, machine):
    sweep = sweep_cache("mm", machine)
    optima, matrix, baseline = benchmark.pedantic(
        lambda: build(sweep), rounds=1, iterations=1
    )

    threads = sorted(optima)
    band = sweep.setup.region.tile_band
    t = Table(
        ["cores", "opt. tiles"]
        + [f"loss@{b}" for b in threads]
        + ["avg %"],
        title=f"Table II: mm on {machine.name} (loss % of running row-tiles at column-count)",
    )
    avgs = {}
    for a in threads:
        tiles, _ = optima[a]
        row = matrix[a]
        off = [row[b] for b in threads if b != a]
        avgs[a] = sum(off) / len(off)
        t.add_row(
            [a, " ".join(f"{v}={tiles[v]}" for v in band)]
            + [("-" if a == b else round(row[b], 1)) for b in threads]
            + [round(avgs[a], 1)]
        )
    best_seq = optima[1][1]
    t.add_row(
        ["-O3", "untiled"]
        + [round(100 * (baseline / optima[b][1] - 1), 0) for b in threads]
        + ["-"]
    )
    print_banner(f"TABLE II — {machine.name} (paper: avg losses 1.8-13.7%, -O3 far slower)")
    print(t.render())

    # per-thread-count optima are not all identical
    tile_sets = {tuple(sorted(optima[a][0].items())) for a in threads}
    assert len(tile_sets) >= 2, "optimal tiles must depend on the thread count"

    # cross-thread use costs performance somewhere, and meaningfully so
    worst = max(avgs.values())
    assert worst > 1.0, f"expected visible cross-thread penalty, got {worst:.2f}%"

    # diagonal is zero by construction; off-diagonal entries ~ never hugely
    # negative (noise floor only)
    for a in threads:
        for b in threads:
            if a != b:
                assert matrix[a][b] > -2.0

    # "-O3" baseline is far slower than every per-count optimum at 1 thread
    assert baseline / optima[1][1] > 3.0
