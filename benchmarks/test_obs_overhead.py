"""Observability overhead guard: disabled tracing must cost < 2 %.

Every instrumented component defaults to the shared ``DISABLED`` handle, so
a plain tuning run still executes the NullTracer span/event calls and the
(always-on) metric updates.  A naive A/B wall-clock comparison of two full
tuning runs is noise-bound at this effect size, so the guard is built the
deterministic way:

1. benchmark a representative RS-GDE3 tuning run with observability
   disabled (the production default) — the reference wall time;
2. census the instrumentation touchpoints by re-running the identical
   workload under a collecting tracer on a FakeClock (same ledger, same
   seeds — the span/event counts are exact, not estimates);
3. microbenchmark the disabled-path primitives (null span open/close,
   null event, counter/gauge/histogram updates);
4. assert touchpoints x primitive cost < 2 % of the reference wall time.
"""

from __future__ import annotations

import time

from repro.experiments import make_setup
from repro.machine import WESTMERE
from repro.obs import FakeClock, MetricsRegistry, NullTracer, Observability
from repro.optimizer import RSGDE3
from repro.optimizer.gde3 import GDE3Settings
from repro.optimizer.rsgde3 import RSGDE3Settings

from conftest import print_banner

_SETTINGS = RSGDE3Settings(gde3=GDE3Settings(population_size=16), max_generations=8)

#: generous upper bounds on metric updates per touchpoint (the engine does
#: ~10 counter/gauge/histogram operations per batch span, emit_generation 4
#: per event; rounding both up keeps the bound conservative)
_METRIC_OPS_PER_SPAN = 16
_METRIC_OPS_PER_EVENT = 8


def _tune_once(obs: Observability | None = None):
    problem = make_setup("mm", WESTMERE).problem(seed=7, obs=obs)
    return RSGDE3(problem, _SETTINGS).run(seed=3)


def _per_call(fn, n: int = 50_000) -> float:
    t0 = time.perf_counter()
    for _ in range(n):
        fn()
    return (time.perf_counter() - t0) / n


def test_disabled_observability_under_2_percent(benchmark):
    result = benchmark(_tune_once)
    assert result.evaluations > 0
    wall = benchmark.stats["mean"]

    # exact touchpoint census: identical workload, collecting tracer
    obs = Observability.tracing(clock=FakeClock(tick=1e-6))
    traced = _tune_once(obs=obs)
    assert traced.convergence == result.convergence  # same workload
    records = obs.tracer.records()
    n_spans = sum(1 for r in records if r["type"] == "span")
    n_events = sum(1 for r in records if r["type"] == "event")
    assert n_spans > 0 and n_events > 0

    # disabled-path primitive costs
    tracer = NullTracer()

    def null_span():
        with tracer.span("x", a=1) as s:
            s.set(b=2)

    registry = MetricsRegistry()
    counter = registry.counter("c_total")
    gauge = registry.gauge("g")
    histogram = registry.histogram("h")

    span_cost = _per_call(null_span)
    event_cost = _per_call(lambda: tracer.event("x", a=1))
    metric_cost = max(
        _per_call(counter.inc),
        _per_call(lambda: gauge.set(1.0)),
        _per_call(lambda: histogram.observe(0.01)),
    )

    overhead = n_spans * (span_cost + _METRIC_OPS_PER_SPAN * metric_cost)
    overhead += n_events * (event_cost + _METRIC_OPS_PER_EVENT * metric_cost)
    share = overhead / wall

    print_banner("Observability overhead (tracing disabled)")
    print(f"tuning wall (obs disabled):  {wall * 1e3:9.3f} ms")
    print(f"touchpoints:                 {n_spans} spans, {n_events} events")
    print(
        f"primitive costs:             span={span_cost * 1e9:.0f}ns "
        f"event={event_cost * 1e9:.0f}ns metric_op={metric_cost * 1e9:.0f}ns"
    )
    print(f"worst-case overhead:         {overhead * 1e6:.1f} us ({share:.4%})")

    assert share < 0.02, (
        f"disabled observability costs {share:.2%} of the tuning wall time "
        "(budget: 2%)"
    )
