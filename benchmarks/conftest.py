"""Shared fixtures for the benchmark harness.

Brute-force sweeps are expensive and reused by several tables/figures, so a
session-scoped cache hands out one sweep per (kernel, machine).
"""

from __future__ import annotations

import pytest

from repro.experiments import BruteForceSweep, make_setup, run_brute_force
from repro.machine import BARCELONA, WESTMERE


@pytest.fixture(scope="session")
def sweep_cache():
    cache: dict[tuple[str, str], BruteForceSweep] = {}

    def get(kernel: str, machine) -> BruteForceSweep:
        key = (kernel, machine.name)
        if key not in cache:
            cache[key] = run_brute_force(make_setup(kernel, machine))
        return cache[key]

    return get


@pytest.fixture(params=[WESTMERE, BARCELONA], ids=lambda m: m.name)
def machine(request):
    return request.param


def print_banner(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
