"""Table VI — the paper's headline comparison: brute force vs. random
search vs. RS-GDE3 on all five kernels and both machines.

Metrics per strategy (averaged over repeated runs of the stochastic
strategies, like the paper's 5-run aggregation): evaluations E, Pareto-set
size |S| and normalized hypervolume V(S).

Shape targets (paper §V-C): RS-GDE3 uses 90-99% fewer evaluations than
brute force; its fronts contain more configurations than the brute-force
grid's; its hypervolume is comparable to (frequently better than) brute
force; random search at the same budget is consistently worse.
"""

from __future__ import annotations

import numpy as np
from conftest import print_banner

from repro.experiments import EXPERIMENT_KERNELS, make_setup
from repro.machine import BARCELONA, WESTMERE
from repro.optimizer import RSGDE3, compare_fronts, random_search
from repro.util.tables import Table

REPETITIONS = 5


def run_kernel(kernel: str, machine, sweep_cache):
    sweep = sweep_cache(kernel, machine)
    setup = sweep.setup
    rs_runs, rnd_runs = [], []
    for rep in range(REPETITIONS):
        rs = RSGDE3(setup.problem(seed=500 + rep)).run(seed=rep)
        rs_runs.append(rs)
        rnd_runs.append(
            random_search(
                setup.problem(seed=600 + rep), budget=rs.evaluations, seed=rep
            )
        )
    return compare_fronts(
        {
            "Brute Force": [sweep.result],
            "Random": rnd_runs,
            "RS-GDE3": rs_runs,
        }
    )


def test_tab6_strategy_comparison(benchmark, sweep_cache):
    def compute():
        return {
            (kernel, machine.name): run_kernel(kernel, machine, sweep_cache)
            for machine in (WESTMERE, BARCELONA)
            for kernel in EXPERIMENT_KERNELS
        }

    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    for machine in (WESTMERE, BARCELONA):
        t = Table(
            ["benchmark", "BF E", "BF |S|", "BF V", "Rnd |S|", "Rnd V", "RS E", "RS |S|", "RS V"],
            title=f"Table VI on {machine.name} (RS-GDE3/random: mean of {REPETITIONS} runs)",
        )
        for kernel in EXPERIMENT_KERNELS:
            ms = {m.name: m for m in results[(kernel, machine.name)]}
            bf, rnd, rs = ms["Brute Force"], ms["Random"], ms["RS-GDE3"]
            t.add_row(
                [
                    kernel,
                    int(bf.evaluations),
                    round(bf.size, 1),
                    round(bf.hypervolume, 2),
                    round(rnd.size, 1),
                    round(rnd.hypervolume, 2),
                    int(rs.evaluations),
                    round(rs.size, 1),
                    round(rs.hypervolume, 2),
                ]
            )
        print_banner(f"TABLE VI — {machine.name}")
        print(t.render())

    reduction_ratios = []
    for (kernel, machine_name), metrics in results.items():
        ms = {m.name: m for m in metrics}
        bf, rnd, rs = ms["Brute Force"], ms["Random"], ms["RS-GDE3"]

        # paper conclusion 2: 90-99% fewer evaluations than brute force
        ratio = rs.evaluations / bf.evaluations
        reduction_ratios.append(ratio)
        assert ratio < 0.25, (kernel, machine_name, ratio)

        # paper conclusion 1: more configurations than brute force & random
        assert rs.size >= bf.size, (kernel, machine_name)

        # paper conclusion 3: hypervolume comparable to brute force
        assert rs.hypervolume > bf.hypervolume - 0.12, (kernel, machine_name)

        # and clearly better than random search (slack for simulator noise)
        assert rs.hypervolume >= rnd.hypervolume - 0.02, (kernel, machine_name)

    # aggregate: the *typical* saving is >=90%
    assert float(np.median(reduction_ratios)) < 0.10
