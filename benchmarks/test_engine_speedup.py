"""Evaluation-engine speedup under a heavier measurement protocol.

The paper's evaluator parallelizes configuration evaluation because real
measurements dominate tuning time (compile + run per configuration).  The
simulated target models that with ``MeasurementProtocol.overhead_s`` — a
fixed wall-clock cost slept per measured configuration (the sleep releases
the GIL, like a real subprocess compile/run would).  This benchmark checks
the engine actually converts worker threads into wall-time savings, and
that the parallel results stay bit-identical to the serial ones while it
does so.
"""

from __future__ import annotations

import time

from repro.evaluation.parallel_eval import EvaluationEngine
from repro.evaluation.measurements import MeasurementProtocol
from repro.evaluation.simulator import SimulatedTarget
from repro.experiments import make_setup
from repro.machine import WESTMERE

from conftest import print_banner

#: per-configuration measurement cost; 5 ms ≈ a (very fast) compile+run
OVERHEAD_S = 0.005
WORKERS = 8
N_CONFIGS = 64


def _target(overhead: float) -> SimulatedTarget:
    setup = make_setup("mm", WESTMERE)
    return SimulatedTarget(
        setup.model,
        seed=0,
        protocol=MeasurementProtocol(overhead_s=overhead),
    )


def _configs(n: int) -> list[tuple[dict[str, int], int]]:
    return [
        ({"i": 8 + 8 * (i % 32), "j": 16 + 16 * (i // 32), "k": 8}, 10)
        for i in range(n)
    ]


def _timed_batch(workers: int) -> tuple[float, list[float], int]:
    target = _target(OVERHEAD_S)
    engine = EvaluationEngine(target, max_workers=workers)
    t0 = time.perf_counter()
    result = engine.evaluate_batch(_configs(N_CONFIGS))
    wall = time.perf_counter() - t0
    return wall, [o.time for o in result.objectives], target.evaluations


def test_engine_speedup_with_measurement_overhead():
    serial_wall, serial_objs, serial_e = _timed_batch(1)
    parallel_wall, parallel_objs, parallel_e = _timed_batch(WORKERS)
    speedup = serial_wall / parallel_wall

    print_banner(
        f"Evaluation-engine speedup ({N_CONFIGS} configs x "
        f"{OVERHEAD_S * 1000:.0f} ms measurement overhead)"
    )
    print(f"serial (1 worker):    {serial_wall:6.3f} s")
    print(f"pooled ({WORKERS} workers):   {parallel_wall:6.3f} s")
    print(f"speedup:              {speedup:6.2f} x")

    # correctness first: parallelism must not change a single bit or E
    assert parallel_objs == serial_objs
    assert parallel_e == serial_e == N_CONFIGS

    # the measurement overhead floor is ~N*overhead serial vs ~N/W pooled;
    # demand at least 2x at 8 workers (plenty of slack for CI jitter)
    assert speedup >= 2.0, f"expected >= 2x speedup at {WORKERS} workers, got {speedup:.2f}x"


def test_engine_overhead_negligible_without_protocol_cost():
    """With a free measurement protocol the serial bulk path must stay
    within the same order of magnitude as raw target batch evaluation —
    the engine's bookkeeping is not allowed to dominate cheap targets."""
    target = _target(0.0)
    engine = EvaluationEngine(target, max_workers=1)
    t0 = time.perf_counter()
    engine.evaluate_batch(_configs(N_CONFIGS))
    wall = time.perf_counter() - t0
    assert wall < 0.5  # 64 cheap configs should be milliseconds, not seconds
