"""Figure 1 — efficiency and speedup trade-off for matrix multiplication.

Regenerates the paper's motivating figure: speedup rises sub-linearly with
the thread count while efficiency falls — the two objectives genuinely
conflict, which is the reason the tuning problem is multi-objective.

Printed as an ASCII series (thread count, speedup, efficiency); shape
assertions: speedup strictly increasing, efficiency strictly decreasing,
and the end-of-scale efficiency in the paper's 0.45-0.8 band.
"""

from __future__ import annotations

from conftest import print_banner

from repro.experiments import speedup_efficiency_rows
from repro.machine import WESTMERE
from repro.util.tables import Table


def series(sweep_cache):
    sweep = sweep_cache("mm", WESTMERE)
    return speedup_efficiency_rows(sweep)


def test_fig1_speedup_efficiency_tradeoff(benchmark, sweep_cache):
    rows = benchmark.pedantic(lambda: series(sweep_cache), rounds=1, iterations=1)

    t = Table(
        ["threads", "speedup", "efficiency"],
        title="Fig 1: mm on Westmere (per-thread-count optimal tiles)",
    )
    bars = []
    for r in rows:
        t.add_row([r["threads"], round(r["speedup"], 2), round(r["efficiency"], 3)])
        bars.append(
            f"  {r['threads']:3d} | "
            + "#" * int(round(r["speedup"]))
            + f"  (eff {'*' * int(round(r['efficiency'] * 20))})"
        )
    print_banner("FIGURE 1 — speedup vs efficiency (paper: eff. 1.0 -> 0.66 at 40 threads)")
    print(t.render())
    print("\nspeedup bars / efficiency stars:")
    print("\n".join(bars))

    speedups = [r["speedup"] for r in rows]
    effs = [r["efficiency"] for r in rows]
    assert all(a < b for a, b in zip(speedups, speedups[1:])), "speedup must rise"
    assert all(a > b for a, b in zip(effs, effs[1:])), "efficiency must fall"
    assert 0.45 <= effs[-1] <= 0.85, f"efficiency at 40 threads: {effs[-1]:.3f}"
    assert speedups[-1] > 20, "40 threads should still speed up >20x"
