"""Table III — impact of the thread count on speedup and efficiency.

Regenerates both halves of the paper's table (Westmere and Barcelona):
speedup, efficiency, relative time and relative resource usage of the
per-thread-count optimal configurations — the Pareto points of Fig. 8.

Shape targets from the paper: efficiency decays monotonically; relative
resources grow monotonically (100% -> ~150% on Westmere, ~220% on
Barcelona); speedup at full machine stays clearly below linear.
"""

from __future__ import annotations

import pytest
from conftest import print_banner

from repro.experiments import speedup_efficiency_rows
from repro.machine import BARCELONA, WESTMERE
from repro.util.tables import Table

#: the paper's Table III (threads -> (speedup, efficiency)) for comparison
PAPER = {
    "Westmere": {1: (1.0, 1.0), 5: (4.83, 0.97), 10: (9.26, 0.93), 20: (16.78, 0.84), 40: (26.36, 0.66)},
    "Barcelona": {1: (1.0, 1.0), 2: (1.92, 0.96), 4: (3.65, 0.91), 8: (6.53, 0.82), 16: (10.65, 0.67), 32: (14.53, 0.45)},
}


def test_tab3_speedup_and_efficiency(benchmark, sweep_cache, machine):
    sweep = sweep_cache("mm", machine)
    rows = benchmark.pedantic(
        lambda: speedup_efficiency_rows(sweep), rounds=1, iterations=1
    )

    t = Table(
        ["cores", "speedup", "efficiency", "rel. time", "rel. resources", "paper s(x)", "paper e(x)"],
        title=f"Table III: mm on {machine.name}",
    )
    for r in rows:
        ps, pe = PAPER[machine.name].get(r["threads"], (float("nan"), float("nan")))
        t.add_row(
            [
                r["threads"],
                round(r["speedup"], 3),
                round(r["efficiency"], 3),
                f"{100 * r['relative_time']:.0f}%",
                f"{100 * r['relative_resources']:.0f}%",
                ps,
                pe,
            ]
        )
    print_banner(f"TABLE III — {machine.name} (measured vs paper values)")
    print(t.render())

    effs = [r["efficiency"] for r in rows]
    resources = [r["relative_resources"] for r in rows]
    speedups = [r["speedup"] for r in rows]
    threads = [r["threads"] for r in rows]

    assert effs == sorted(effs, reverse=True), "efficiency must fall monotonically"
    assert resources == sorted(resources), "resource usage must grow monotonically"
    assert speedups == sorted(speedups), "speedup must grow"
    # full-machine speedup clearly sublinear but substantial
    full = rows[-1]
    assert 0.3 * threads[-1] < full["speedup"] < 0.95 * threads[-1]
    # compare against paper's end-of-scale efficiency within a loose band
    paper_final_eff = PAPER[machine.name][threads[-1]][1]
    assert full["efficiency"] == pytest.approx(paper_final_eff, abs=0.15)
