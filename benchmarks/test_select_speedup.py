"""Vectorized selection kernels vs their scalar baselines.

PR 4 vectorizes the two optimizer hot loops the cross-region scheduler
exposes: the trial-vs-target pairwise phase of ``GDE3.select`` (one
broadcasted comparison instead of 2·N scalar ``dominates()`` calls) and
the general-m non-dominated mask (blocked all-pairs broadcast instead of
a Python-level pass per row).  Both must return outputs identical to the
retired scalar implementations — kept as ``GDE3._select_pairs_scalar``
and ``pareto._non_dominated_mask_general_scalar`` — and beat them by at
least 5x on 512-point populations.
"""

from __future__ import annotations

import time

import numpy as np

from repro.optimizer.config import Configuration
from repro.optimizer.gde3 import GDE3, GDE3Settings
from repro.optimizer.pareto import (
    _non_dominated_mask_general,
    _non_dominated_mask_general_scalar,
)

from conftest import print_banner

N_POINTS = 512
REPS = 30
FLOOR = 5.0


def _population(n: int, seed: int) -> list[Configuration]:
    rng = np.random.default_rng(seed)
    objs = rng.uniform(0.1, 10.0, size=(n, 2))
    return [
        Configuration.make({"x": i}, tuple(row)) for i, row in enumerate(objs)
    ]


def _best_of_pair(fn_a, fn_b, reps: int) -> tuple[float, float]:
    """Min-of-reps wall time for two callables, measured interleaved so
    clock-frequency drift (e.g. thermal throttle after a preceding
    benchmark) hits both sides equally instead of skewing the ratio."""
    fn_a(), fn_b()  # warm-up
    best_a = best_b = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - t0)
        t0 = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - t0)
    return best_a, best_b


def test_vectorized_select_matches_and_beats_scalar():
    population = _population(N_POINTS, seed=1)
    trials = _population(N_POINTS, seed=2)
    # population_size > any possible pair survivor count: select() then
    # returns the bare pairwise phase, directly comparable to the scalar
    gde3 = GDE3(problem=None, settings=GDE3Settings(population_size=2 * N_POINTS))

    vec = gde3.select(population, trials)
    ref = GDE3._select_pairs_scalar(population, trials)
    assert vec == ref

    t_vec, t_ref = _best_of_pair(
        lambda: gde3.select(population, trials),
        lambda: GDE3._select_pairs_scalar(population, trials),
        REPS,
    )
    speedup = t_ref / t_vec

    print_banner(f"GDE3.select pairwise phase ({N_POINTS}-point population)")
    print(f"{'scalar 2N dominates()':>24}: {t_ref * 1e3:8.3f} ms")
    print(f"{'broadcasted':>24}: {t_vec * 1e3:8.3f} ms  ({speedup:.1f}x)")

    assert speedup >= FLOOR, f"vectorized select only {speedup:.2f}x"


def test_vectorized_general_mask_matches_and_beats_scalar():
    rng = np.random.default_rng(7)
    objs = rng.uniform(0.1, 10.0, size=(N_POINTS, 3))

    fast = _non_dominated_mask_general(objs)
    slow = _non_dominated_mask_general_scalar(objs)
    assert np.array_equal(fast, slow)

    t_vec, t_ref = _best_of_pair(
        lambda: _non_dominated_mask_general(objs),
        lambda: _non_dominated_mask_general_scalar(objs),
        REPS,
    )
    speedup = t_ref / t_vec

    print_banner(f"general-m non-dominated mask ({N_POINTS} points, m=3)")
    print(f"{'per-row sweep':>24}: {t_ref * 1e3:8.3f} ms")
    print(f"{'blocked broadcast':>24}: {t_vec * 1e3:8.3f} ms  ({speedup:.1f}x)")

    assert speedup >= FLOOR, f"vectorized mask only {speedup:.2f}x"
