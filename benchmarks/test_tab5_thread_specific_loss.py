"""Table V — impact of thread-specific tile optimization across kernels.

For every kernel and machine: the average performance loss of applying the
tile sizes tuned for one thread count across all other counts (row "avg"),
and the maximum loss when tuning for serial execution only ("1tmax").

Shape targets (paper): losses are substantial and kernel/machine dependent;
n-body shows the starkest asymmetry — near-zero on Westmere (fits the
30 MB L3) and the largest penalty on Barcelona (2 MB L3, up to ~4x, i.e.
~293% loss for the 1-thread-tuned configuration).
"""

from __future__ import annotations

from conftest import print_banner

from repro.experiments import EXPERIMENT_KERNELS, cross_penalty_matrix
from repro.machine import BARCELONA, WESTMERE
from repro.util.tables import Table


def kernel_row(sweep):
    matrix = cross_penalty_matrix(sweep)
    threads = sorted(matrix)
    per_tuned_avg = {}
    for a in threads:
        off = [matrix[a][b] for b in threads if b != a]
        per_tuned_avg[a] = sum(off) / len(off)
    avg = sum(per_tuned_avg.values()) / len(per_tuned_avg)
    one_t_max = max(matrix[1][b] for b in threads if b != 1)
    return per_tuned_avg, avg, one_t_max


def nbody_unblocked_penalty(sweep_cache, machine) -> float:
    """The paper's n-body mechanism, measured deterministically: running the
    *unblocked* configuration (no j blocking — the naive code) with every
    core, relative to the per-count optimum.  The particle arrays fit
    Westmere's per-thread L3 share but overflow Barcelona's."""
    sweep = sweep_cache("nbody", machine)
    target = sweep.setup.target()
    full_threads = max(sweep.data.thread_counts())
    tiles_best, _ = sweep.optimal_tiles()[full_threads]
    best = target.true_time(tiles_best, full_threads)
    n = sweep.setup.sizes["n"]
    unblocked = target.true_time({"j": n}, full_threads)
    return 100.0 * (unblocked / best - 1.0)


def test_tab5_thread_specific_tuning_loss(benchmark, sweep_cache):
    def compute():
        out = {}
        for machine in (WESTMERE, BARCELONA):
            for kernel in EXPERIMENT_KERNELS:
                out[(kernel, machine.name)] = kernel_row(sweep_cache(kernel, machine))
            out[("nbody-unblocked", machine.name)] = nbody_unblocked_penalty(
                sweep_cache, machine
            )
        return out

    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    for machine in (WESTMERE, BARCELONA):
        t = Table(
            ["kernel", "avg %", "1tmax %"],
            title=f"Table V: average cross-thread loss on {machine.name}",
        )
        for kernel in EXPERIMENT_KERNELS:
            _, avg, one_t_max = results[(kernel, machine.name)]
            t.add_row([kernel, round(avg, 1), round(one_t_max, 1)])
        t.add_row(
            ["nbody (no blocking)", "-", round(results[("nbody-unblocked", machine.name)], 1)]
        )
        print_banner(f"TABLE V — {machine.name}")
        print(t.render())

    # losses exist: some kernel on each machine shows a clear penalty
    for machine in (WESTMERE, BARCELONA):
        worst_avg = max(results[(k, machine.name)][1] for k in EXPERIMENT_KERNELS)
        assert worst_avg > 2.0, machine.name

    # the n-body asymmetry (the paper's headline: the particle set fits
    # Westmere's 30 MB L3 but thrashes Barcelona's 2 MB one — "execution
    # times can increase by up to a factor of 4").  Our measured per-count
    # optima all land on L1-resident blocks, so the asymmetry shows in the
    # unblocked (naive-code) row rather than the 1tmax column; see
    # EXPERIMENTS.md for the deviation note.
    un_w = results[("nbody-unblocked", "Westmere")]
    un_b = results[("nbody-unblocked", "Barcelona")]
    assert un_w < 40.0, f"Westmere unblocked n-body should be benign: {un_w:.0f}%"
    assert un_b > 100.0, f"Barcelona unblocked n-body should collapse: {un_b:.0f}%"
    assert un_b > un_w + 50.0

    # serial-only tuning is the worst strategy overall: 1tmax >= avg
    for kernel in EXPERIMENT_KERNELS:
        for machine in (WESTMERE, BARCELONA):
            _, avg, one_t_max = results[(kernel, machine.name)]
            assert one_t_max >= avg - 1.0, (kernel, machine.name)
