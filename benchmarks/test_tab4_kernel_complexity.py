"""Table IV — kernel computation/memory complexities.

Regenerates the kernel inventory table and *verifies* the complexity
classes empirically: flop counts and data footprints from the static
analyzer must scale like the documented classes when the problem size
doubles.
"""

from __future__ import annotations

import pytest
from conftest import print_banner

from repro.analysis import analyze_features, extract_regions
from repro.experiments import EXPERIMENT_KERNELS
from repro.frontend import get_kernel
from repro.util.tables import Table

#: size-doubling growth factors implied by Table IV: (flops, memory)
EXPECTED_GROWTH = {
    "mm": (8.0, 4.0),        # O(N^3) / O(N^2)
    "dsyrk": (8.0, 4.0),     # O(N^3) / O(N^2)
    "jacobi2d": (4.0, 4.0),  # O(T N^2) / O(N^2) at fixed T
    "stencil3d": (8.0, 8.0), # O(N^3) / O(N^3)
    "nbody": (4.0, 2.0),     # O(n^2) / O(n)
}


def measure_growth(kernel_name: str):
    kernel = get_kernel(kernel_name)
    region = extract_regions(kernel.function)[0]
    size_key = "n" if "n" in kernel.default_size else "N"
    base = dict(kernel.test_size)
    doubled = dict(base)
    doubled[size_key] = 2 * base[size_key]
    f1 = analyze_features(region, base)
    f2 = analyze_features(region, doubled)
    return kernel, f2.total_flops / f1.total_flops, f2.total_footprint / f1.total_footprint


def test_tab4_kernel_complexities(benchmark):
    rows = benchmark.pedantic(
        lambda: [measure_growth(k) for k in EXPERIMENT_KERNELS],
        rounds=1,
        iterations=1,
    )

    t = Table(
        ["kernel", "computation", "memory", "measured flops x", "measured bytes x"],
        title="Table IV: benchmark kernels (growth factors for doubled size)",
    )
    for kernel, flop_growth, mem_growth in rows:
        comp, mem = kernel.complexity
        t.add_row([kernel.name, comp, mem, round(flop_growth, 2), round(mem_growth, 2)])
    print_banner("TABLE IV — kernel complexity classes, verified by the analyzer")
    print(t.render())

    for kernel, flop_growth, mem_growth in rows:
        exp_f, exp_m = EXPECTED_GROWTH[kernel.name]
        # boundary-shifted domains ((N-2)^3 etc.) land near but not exactly
        # on the asymptotic factor at test sizes
        assert flop_growth == pytest.approx(exp_f, rel=0.45), kernel.name
        assert mem_growth == pytest.approx(exp_m, rel=0.25), kernel.name
