"""Framework micro-benchmarks (multi-round timings of the hot paths).

Unlike the table/figure reproductions (single-shot by design), these use
pytest-benchmark's statistics to track the framework's own performance:
the scalar and vectorized cost model, configuration measurement, one GDE3
generation, non-dominated filtering at brute-force scale, and hypervolume.
Regression guards assert the throughput floors the experiment harness
relies on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import make_setup
from repro.machine import WESTMERE
from repro.optimizer import GDE3, hypervolume
from repro.optimizer.pareto import non_dominated_mask
from repro.util.rng import derive_rng


@pytest.fixture(scope="module")
def setup():
    return make_setup("mm", WESTMERE)


def test_perf_cost_model_scalar(benchmark, setup):
    model = setup.model
    tiles = {"i": 64, "j": 128, "k": 16}
    result = benchmark(lambda: model.time(tiles, 10))
    assert result > 0
    # the harness needs thousands of scalar evaluations per second
    assert benchmark.stats["mean"] < 5e-3


def test_perf_cost_model_batch(benchmark, setup):
    model = setup.model
    rng = derive_rng(0)
    B = 4096
    tiles = np.stack(
        [rng.integers(1, 700, B), rng.integers(1, 700, B), rng.integers(1, 700, B)],
        axis=1,
    )
    threads = rng.choice([1, 5, 10, 20, 40], B)

    out = benchmark(lambda: model.time_batch(tiles, threads))
    assert len(out) == B
    # brute-force sweeps require >100k evals/s through the batch path
    assert B / benchmark.stats["mean"] > 100_000


def test_perf_measured_evaluation(benchmark, setup):
    target = setup.target(seed=123)
    counter = [0]

    def measure_fresh():
        counter[0] += 1
        return target.evaluate({"i": counter[0] % 600 + 1, "j": 64, "k": 16}, 10)

    obj = benchmark(measure_fresh)
    assert obj.time > 0


def test_perf_gde3_generation(benchmark, setup):
    problem = setup.problem(seed=7)
    gde3 = GDE3(problem)
    rng = derive_rng(7)
    full = problem.space.full_boundary()
    pop = gde3.initial_population(full, rng)

    result = benchmark(lambda: gde3.generation(list(pop), full, rng))
    assert len(result) <= gde3.settings.population_size


def test_perf_non_dominated_mask_large(benchmark):
    rng = derive_rng(3)
    objs = rng.random((50_000, 2))
    mask = benchmark(lambda: non_dominated_mask(objs))
    assert mask.any()
    # the 2-D sweep must stay comfortably sub-second at brute-force scale
    assert benchmark.stats["mean"] < 1.0


def test_perf_hypervolume_2d(benchmark):
    rng = derive_rng(4)
    pts = rng.random((500, 2))
    ref = np.array([1.1, 1.1])
    hv = benchmark(lambda: hypervolume(pts, ref))
    assert 0 < hv < 1.21