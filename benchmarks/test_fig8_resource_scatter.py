"""Figure 8 — execution time vs. resource usage of brute-force configs.

Every evaluated configuration of a thread count x lies on the ray
``resources = x · time``; the per-count clouds form the paper's "lines",
and their globally non-dominated lower-left tips form the Pareto front.

Shape targets: each cloud's ray slope equals its thread count; the set of
front configurations contains one point per (scaling) thread count; and on
the bandwidth-bound jacobi-2d the highest thread counts contribute *no*
tip ("configurations using too many cores for non-scaling codes ... will
not be part of the Pareto front").
"""

from __future__ import annotations

import numpy as np
from conftest import print_banner

from repro.machine import WESTMERE
from repro.optimizer.pareto import non_dominated_mask
from repro.util.tables import Table


def analyze(sweep):
    clouds = {}
    for thr in sweep.data.thread_counts():
        times, resources = sweep.cloud(thr)
        clouds[thr] = (times, resources)
    # global front over all evaluated points
    objs = np.column_stack([sweep.data.times, sweep.data.times * sweep.data.threads])
    mask = non_dominated_mask(objs)
    tip_threads = sorted(set(int(t) for t in sweep.data.threads[mask]))
    return clouds, tip_threads


def ascii_scatter(clouds, width=64, height=16):
    all_t = np.concatenate([c[0] for c in clouds.values()])
    all_r = np.concatenate([c[1] for c in clouds.values()])
    t_lo, t_hi = np.log10(all_t.min()), np.log10(all_t.max())
    r_lo, r_hi = np.log10(all_r.min()), np.log10(all_r.max())
    grid = [[" "] * width for _ in range(height)]
    for thr, (times, resources) in clouds.items():
        ch = str(thr)[-1]
        xs = ((np.log10(times) - t_lo) / (t_hi - t_lo + 1e-12) * (width - 1)).astype(int)
        ys = ((np.log10(resources) - r_lo) / (r_hi - r_lo + 1e-12) * (height - 1)).astype(int)
        for x, y in zip(xs, ys):
            grid[height - 1 - y][x] = ch
    return "\n".join("".join(row) for row in grid)


def test_fig8_time_vs_resources(benchmark, sweep_cache):
    sweep = sweep_cache("mm", WESTMERE)
    clouds, tip_threads = benchmark.pedantic(
        lambda: analyze(sweep), rounds=1, iterations=1
    )

    print_banner("FIGURE 8 — mm/Westmere: log time (x) vs log resources (y); digit = last digit of thread count")
    print(ascii_scatter(clouds))
    t = Table(["threads", "configs", "min time", "min resources", "on front"])
    for thr, (times, resources) in sorted(clouds.items()):
        t.add_row(
            [thr, len(times), round(times.min(), 4), round(resources.min(), 4), "yes" if thr in tip_threads else "no"]
        )
    print(t.render())

    # ray property: resources/time == threads for every point
    for thr, (times, resources) in clouds.items():
        assert np.allclose(resources / times, thr)

    # mm scales: every evaluated thread count contributes a front tip
    assert tip_threads == sorted(clouds)

    # non-scaling counterpoint: on the bandwidth-bound jacobi-2d, some
    # thread count is dominated and contributes no tip (doubling threads on
    # an already saturated socket only adds coherence cost, so 10 threads
    # is dominated by 5; cross-socket counts return because they add
    # memory bandwidth)
    jac = sweep_cache("jacobi2d", WESTMERE)
    _, jac_tips = analyze(jac)
    assert set(jac_tips) < set(jac.data.thread_counts()), (
        f"expected a dominated thread count on jacobi-2d: tips={jac_tips}"
    )
