"""Extension — parameterized tiling vs. multi-versioning (paper §IV).

The paper chose multi-versioning over a single parameterized code version,
arguing (a) parameterization is not general (unrolling/fission/fusion) and
(b) fixed parameters let the binary compiler generate better code, at the
cost of code size.  Both backends exist here, so the measurable side of the
trade-off — generated code size vs. number of shipped versions — can be
quantified, and the generality limitation is demonstrated.
"""

from __future__ import annotations

from conftest import print_banner

from repro.backend.multiversion import build_multiversion_c
from repro.backend.parameterized import build_parameterized_c
from repro.driver import TuningDriver
from repro.machine import WESTMERE
from repro.util.tables import Table


def build_units():
    driver = TuningDriver(machine=WESTMERE, seed=4)
    out = {}
    for kernel in ("mm", "jacobi2d", "nbody"):
        tuned = driver.tune_kernel(kernel)
        metas = tuned.version_metas()
        mv = tuned.emit_c()
        pv = build_parameterized_c(tuned.skeleton, metas)
        out[kernel] = (len(metas), mv, pv)
    return out


def test_ext_parameterized_vs_multiversion(benchmark):
    units = benchmark.pedantic(build_units, rounds=1, iterations=1)

    t = Table(
        ["kernel", "|S|", "multi-version LOC", "parameterized LOC", "size ratio"],
        title="Code-size trade-off (paper section IV)",
    )
    for kernel, (n, mv, pv) in units.items():
        mv_loc = len(mv.source.splitlines())
        pv_loc = len(pv.source.splitlines())
        t.add_row([kernel, n, mv_loc, pv_loc, round(mv_loc / pv_loc, 2)])
    print_banner("EXTENSION — parameterized tiling vs multi-versioning")
    print(t.render())

    for kernel, (n, mv, pv) in units.items():
        # multi-versioning pays code size proportional to |S| ...
        assert len(mv.source) > len(pv.source)
        # ... while the parameterized unit still carries every Pareto point
        # as a table row
        assert len(pv.table) == n
        assert f"{kernel}_paramsets" in pv.source

    # the generality limit: an unrollable skeleton cannot be parameterized
    import pytest

    from repro.analysis import extract_regions
    from repro.frontend import get_kernel
    from repro.transform import default_skeleton

    k = get_kernel("mm")
    region = extract_regions(k.function)[0]
    sk = default_skeleton(region, k.default_size, 40, with_unroll=True)
    with pytest.raises(ValueError):
        build_parameterized_c(sk, [])
    print("\nunrollable skeleton correctly rejected by the parameterized backend")