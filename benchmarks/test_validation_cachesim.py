"""Substrate validation — analytical traffic model vs. trace-driven cache
simulator.

The entire evaluation rests on the analytical cost model; this benchmark
validates its central quantity (cache traffic as a function of tile size)
against ground truth: a miniature mm's exact address trace replayed through
a set-associative LRU hierarchy, swept over tile sizes.

Shape assertions: both curves fall steeply from the untiled extreme to the
well-tiled region; their improvement factors agree within a small factor;
and the rank correlation of the two curves across tile sizes is strongly
positive.
"""

from __future__ import annotations

import math

import numpy as np
from conftest import print_banner

from repro.analysis import extract_regions
from repro.evaluation import RegionCostModel
from repro.frontend import get_kernel
from repro.ir.interp import run_function
from repro.machine import CacheHierarchy
from repro.machine.cache import AddressTraceRecorder
from repro.machine.model import CacheLevel, MachineModel
from repro.transform import replace_at_path, tile

N = 24
TILE_SIZES = [2, 4, 6, 8, 12, 24]

TINY = MachineModel(
    name="Tiny",
    sockets=1,
    cores_per_socket=1,
    freq_hz=1e9,
    flops_per_cycle=1.0,
    levels=(
        CacheLevel("L1", 2 * 1024, 64, 2, shared=False, fetch_bw=1e9),
        CacheLevel("L2", 16 * 1024, 64, 4, shared=True, fetch_bw=1e9),
    ),
    dram_bw_per_socket=1e9,
    dram_bw_per_core=1e9,
)


def simulated_l1_bytes(tiles: dict[str, int] | None) -> int:
    k = get_kernel("mm")
    region = extract_regions(k.function)[0]
    fn = k.function
    if tiles:
        fn = replace_at_path(fn, region.path, tile(region.nest, tiles))
    rec = AddressTraceRecorder()
    for name in ("A", "B", "C"):
        rec.register(name, (N, N))
    rng = np.random.default_rng(0)
    inputs = k.make_inputs({"N": N}, rng)
    run_function(fn, inputs, {"N": N}, trace_hook=rec.record)
    hier = CacheHierarchy.from_machine(TINY)
    rec.replay(hier)
    return hier.miss_bytes("L1")


def analytic_l1_bytes(tiles: dict[str, int] | None) -> float:
    k = get_kernel("mm")
    region = extract_regions(k.function)[0]
    m = RegionCostModel(region, {"N": N}, TINY)
    t = {v: (tiles or {}).get(v, N) for v in m.band}
    t = {v: min(max(1, x), N) for v, x in t.items()}
    trips = {v: math.ceil(N / t[v]) for v in m.band}
    spans = m._unit_spans(t)
    level = TINY.levels[0]
    s_idx = m._fitting_unit(spans, level.size, level.line_size)
    traffic = max(
        m._unit_traffic(spans[s_idx], s_idx, t, trips, level.line_size),
        m._compulsory_traffic({v: N for v in m.band}, level.line_size),
    )
    return traffic


def rank_correlation(a: list[float], b: list[float]) -> float:
    ra = np.argsort(np.argsort(a)).astype(float)
    rb = np.argsort(np.argsort(b)).astype(float)
    ra -= ra.mean()
    rb -= rb.mean()
    return float((ra * rb).sum() / np.sqrt((ra**2).sum() * (rb**2).sum()))


def test_validation_analytic_vs_simulated(benchmark):
    def compute():
        sim, ana, labels = [], [], []
        for t in TILE_SIZES:
            tiles = None if t == N else {"i": t, "j": t, "k": t}
            sim.append(float(simulated_l1_bytes(tiles)))
            ana.append(float(analytic_l1_bytes(tiles)))
            labels.append("untiled" if t == N else f"t={t}")
        return labels, sim, ana

    labels, sim, ana = benchmark.pedantic(compute, rounds=1, iterations=1)

    print_banner(
        f"VALIDATION — L1 traffic, mm N={N} on a tiny 2K-L1 machine: "
        "trace-driven simulator vs analytical model"
    )
    print(f"{'config':>9} | {'simulated MB':>12} | {'analytic MB':>11} | ratio")
    for lab, s, a in zip(labels, sim, ana):
        print(f"{lab:>9} | {s / 1e6:12.3f} | {a / 1e6:11.3f} | {a / s:5.2f}")
    rho = rank_correlation(sim, ana)
    print(f"\nrank correlation over tile sizes: {rho:.3f}")

    # both agree the untiled code is far worse than the best tiling
    sim_gain = max(sim) / min(sim)
    ana_gain = max(ana) / min(ana)
    assert sim_gain > 3 and ana_gain > 3
    assert 0.25 < ana_gain / sim_gain < 4.0

    # pointwise agreement within a small factor everywhere
    for lab, s, a in zip(labels, sim, ana):
        assert 0.2 < a / s < 5.0, (lab, s, a)

    # and the curves rank tile sizes consistently
    assert rho > 0.7