"""Table I — target-platform configuration.

Regenerates the paper's platform table from the machine models and checks
the documented parameters (sockets, cores, cache geometry).  This is the
inputs table: everything else in the harness derives from these models.
"""

from __future__ import annotations

from conftest import print_banner

from repro.machine import BARCELONA, WESTMERE
from repro.util.tables import Table


def build_table() -> Table:
    t = Table(
        ["System", "Sockets/Cores", "L1d", "L2", "L3 (shared)", "Threads evaluated"],
        title="Table I: evaluation platforms",
    )
    for m in (WESTMERE, BARCELONA):
        t.add_row(
            [
                m.name,
                f"{m.sockets}/{m.total_cores}",
                f"{m.level('L1').size // 1024}K",
                f"{m.level('L2').size // 1024}K",
                f"{m.level('L3').size // (1024 * 1024)}M",
                ",".join(map(str, m.default_thread_counts())),
            ]
        )
    return t


def test_tab1_machine_models(benchmark):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    print_banner("TABLE I — machine models (paper: 4/40 32K/256K/30M; 8/32 64K/512K/2M)")
    print(table.render())

    assert WESTMERE.sockets == 4 and WESTMERE.total_cores == 40
    assert WESTMERE.level("L3").size == 30 * 1024 * 1024
    assert BARCELONA.sockets == 8 and BARCELONA.total_cores == 32
    assert BARCELONA.level("L3").size == 2 * 1024 * 1024
    assert WESTMERE.default_thread_counts() == (1, 5, 10, 20, 40)
    assert BARCELONA.default_thread_counts() == (1, 2, 4, 8, 16, 32)
