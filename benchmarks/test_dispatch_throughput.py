"""Precompiled vs per-call selection throughput on a serving workload.

PR 5's tentpole claim: folding a deterministic policy into a
:class:`~repro.runtime.compiled.CompiledSelection` — score vector plus a
single argmin at compile time — must beat the scalar per-call
``SelectionPolicy.select`` path by at least 10x on a million-request replay,
while staying **bit-identical**: the per-request selection sequences of the
two paths must match exactly, for every deterministic policy, and a bandit
replay must leave identical final statistics regardless of path.

The run emits ``BENCH_runtime.json`` (selections/sec for precompiled and
per-call, per policy) which CI uploads as an artifact, so dispatch-path
regressions are visible per commit.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.backend.meta import VersionMeta
from repro.runtime import (
    BanditSelector,
    DispatchEngine,
    Version,
    VersionTable,
    generate_workload,
    policy_by_name,
)

from conftest import print_banner

N_REQUESTS = 1_000_000
N_VERSIONS = 12
WORKERS = 4
MIN_SPEEDUP = 10.0
ARTIFACT = Path("BENCH_runtime.json")

#: policies measured for the headline speedup bar (context-free and
#: context-sensitive); the full registry parity is asserted in
#: tests/test_serving.py on a smaller stream
POLICIES = ["balanced", "thread_cap", "time_cap:0.05"]


def _table(region: str, seed: int) -> VersionTable:
    """A metadata-only Pareto-ish table (faster versions cost more cores)."""
    rng = np.random.default_rng(seed)
    versions = []
    for i in range(N_VERSIONS):
        threads = int(2 ** (i % 5))
        time_s = float(0.1 / (i + 1) * (1.0 + 0.05 * rng.random()))
        energy = float(time_s * threads * 20.0) if i % 3 else None
        versions.append(
            Version(
                meta=VersionMeta(
                    index=i,
                    time=time_s,
                    resources=time_s * threads,
                    threads=threads,
                    tile_sizes=(("i", 8 * (i + 1)),),
                    energy=energy,
                )
            )
        )
    return VersionTable(region_name=region, versions=tuple(versions))


TABLES = {name: _table(name, seed) for seed, name in enumerate(("mm", "stencil", "jacobi"))}
WORKLOAD = generate_workload(
    list(TABLES), N_REQUESTS, seed=42, core_choices=[1, 2, 4, 8, 16]
)


def _replay(policy_name: str, compiled: bool):
    engine = DispatchEngine(
        TABLES,
        policy_by_name(policy_name),
        workers=WORKERS,
        compiled=compiled,
    )
    t0 = time.perf_counter()
    result = engine.replay(WORKLOAD)
    wall = time.perf_counter() - t0
    return wall, result, engine.monitor


def test_precompiled_dispatch_beats_per_call():
    print_banner(
        f"Dispatch throughput ({N_REQUESTS} requests, {len(TABLES)} regions, "
        f"{WORKERS} workers)"
    )
    payload = {
        "benchmark": "dispatch_throughput",
        "n_requests": N_REQUESTS,
        "n_versions": N_VERSIONS,
        "regions": len(TABLES),
        "workers": WORKERS,
        "policies": {},
    }
    worst = float("inf")
    for name in POLICIES:
        compiled_wall, compiled_res, compiled_mon = _replay(name, compiled=True)
        percall_wall, percall_res, percall_mon = _replay(name, compiled=False)

        # correctness before throughput: the precompiled path must be a
        # perfect replay of the scalar oracle, request by request, and both
        # monitors must account every single request identically
        assert np.array_equal(compiled_res.selections, percall_res.selections)
        assert compiled_mon.invocations == percall_mon.invocations == N_REQUESTS
        assert compiled_mon.version_counts() == percall_mon.version_counts()

        speedup = percall_wall / compiled_wall
        worst = min(worst, speedup)
        rate_c = N_REQUESTS / compiled_wall
        rate_p = N_REQUESTS / percall_wall
        print(
            f"{name:>14}: precompiled {rate_c:12,.0f} sel/s | "
            f"per-call {rate_p:11,.0f} sel/s | {speedup:5.1f}x"
        )
        payload["policies"][name] = {
            "precompiled_wall_s": compiled_wall,
            "per_call_wall_s": percall_wall,
            "precompiled_selections_per_sec": rate_c,
            "per_call_selections_per_sec": rate_p,
            "speedup": speedup,
        }

    payload["worst_speedup"] = worst
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")

    # the acceptance bar: compile-once replay must beat per-call rescoring
    # by >= 10x on every measured policy (observed ~15-60x; 10x leaves CI
    # slack)
    assert worst >= MIN_SPEEDUP, f"worst policy speedup only {worst:.1f}x"


def test_bandit_replay_statistics_identical():
    """A learning policy cannot precompile — but replaying the same
    workload through two engines (single worker, same seed) must leave
    bit-identical selection sequences and final statistics."""
    stream = WORKLOAD[:50_000]
    results = []
    for _ in range(2):
        bandit = BanditSelector(seed=7)
        engine = DispatchEngine(TABLES, bandit, workers=1)
        res = engine.replay(stream)
        results.append((res.selections, bandit.statistics()))
    (sel_a, stats_a), (sel_b, stats_b) = results
    assert np.array_equal(sel_a, sel_b)
    assert stats_a == stats_b
    total = sum(count for count, _, _ in stats_a.values())
    assert total == len(stream)
