"""Figure 2 — relative execution time over (t_i, t_j) tile planes for
different thread counts.

The paper shows heatmaps of mm tile performance (t_k fixed) whose dark
(fast) regions move as the thread count changes — the per-thread effective
L3 capacity shrinks, so large tiles stop fitting.  We regenerate the plane
with the vectorized cost model, render it as ASCII shading, and assert the
load-bearing property: the fast region's centroid shifts toward smaller
tiles at higher thread counts, and the per-count best tiles differ.
"""

from __future__ import annotations

import numpy as np
from conftest import print_banner

from repro.experiments import make_setup
from repro.machine import BARCELONA

_SHADES = " .:-=+*#%@"  # light = fast


def heatmap_plane(setup, threads: int, tk: int = 64, points: int = 24):
    extent_i = setup.region.domain.extent("i", setup.sizes)
    cands = np.unique(np.round(np.geomspace(4, extent_i // 2, points)).astype(int))
    tiles = np.array([[ti, tj, tk] for ti in cands for tj in cands])
    thr = np.full(len(tiles), threads)
    times = setup.model.time_batch(tiles, thr)
    grid = times.reshape(len(cands), len(cands))
    return cands, grid


def render(cands, grid) -> str:
    rel = grid / grid.min()
    lines = ["      " + " ".join(f"{c:4d}" for c in cands[::4]) + "   (t_j ->)"]
    for i, ti in enumerate(cands):
        row = rel[i]
        shades = "".join(
            _SHADES[min(len(_SHADES) - 1, int((v - 1) / 0.15))] for v in row
        )
        lines.append(f"{ti:5d} {shades}")
    return "\n".join(lines)


def centroid_of_fast_region(cands, grid, quantile=0.05):
    cutoff = np.quantile(grid, quantile)
    mask = grid <= cutoff
    ti_idx, tj_idx = np.nonzero(mask)
    return cands[ti_idx].mean(), cands[tj_idx].mean()


def test_fig2_heatmaps_shift_with_threads(benchmark, sweep_cache):
    setup = make_setup("mm", BARCELONA)

    def compute():
        return {thr: heatmap_plane(setup, thr) for thr in (1, 4, 32)}

    planes = benchmark.pedantic(compute, rounds=1, iterations=1)

    print_banner(
        "FIGURE 2 — mm tile-plane heatmaps on Barcelona (t_k=64); dark=fast"
    )
    centroids = {}
    for thr, (cands, grid) in planes.items():
        print(f"\n--- {thr} thread(s): relative time over (t_i rows, t_j cols) ---")
        print(render(cands, grid))
        centroids[thr] = centroid_of_fast_region(cands, grid)
        best = np.unravel_index(grid.argmin(), grid.shape)
        print(
            f"best tile (t_i={cands[best[0]]}, t_j={cands[best[1]]}), "
            f"fast-region centroid ~ ({centroids[thr][0]:.0f}, {centroids[thr][1]:.0f})"
        )

    # the fast region must move: the product of centroid coordinates (a
    # proxy for the favoured tile footprint) shrinks markedly between the
    # 1-thread and the fully-populated machine as the shared L3 is divided
    # among the threads of a socket
    footprint = {thr: c[0] * c[1] for thr, c in centroids.items()}
    assert footprint[32] < 0.8 * footprint[1], footprint
    assert footprint[32] < 0.8 * footprint[4], footprint

    # per-count optima differ (the premise of multi-versioning)
    bests = {
        thr: np.unravel_index(grid.argmin(), grid.shape)
        for thr, (cands, grid) in planes.items()
    }
    assert len(set(bests.values())) >= 2
