"""Ablation — multi-versioning vs. a single tuned version.

The abstract: "parallelism-aware multi-versioning approaches like our own
gain a performance improvement of up to 70% over solutions tuned for only
one specific number of threads."

We build the multi-versioned table for mm, then compare against
single-version strategies (the code tuned only for 1 thread / only for the
full machine) across runtime contexts demanding different thread counts.
The multi-versioned runtime picks the matching version; the single-version
binaries run their one configuration at the demanded thread count.
"""

from __future__ import annotations

from conftest import print_banner

from repro.machine import BARCELONA
from repro.util.tables import Table


def measure(sweep_cache):
    # stencil3d on Barcelona: the kernel/machine pair with the strongest
    # per-thread-count divergence of optimal tiles (Table V)
    sweep = sweep_cache("stencil3d", BARCELONA)
    target = sweep.setup.target()
    optima = sweep.optimal_tiles()
    counts = sorted(optima)

    rows = []
    worst_gain = {}
    for strategy_thr in (1, max(counts)):
        tiles_fixed, _ = optima[strategy_thr]
        gains = []
        for run_thr in counts:
            tiles_best, _ = optima[run_thr]
            multi = target.true_time(tiles_best, run_thr)
            single = target.true_time(tiles_fixed, run_thr)
            gain = 100 * (single / multi - 1)
            gains.append(gain)
            rows.append((strategy_thr, run_thr, single, multi, gain))
        worst_gain[strategy_thr] = max(gains)
    return rows, worst_gain


def test_ablation_multiversioning_gain(benchmark, sweep_cache):
    rows, worst_gain = benchmark.pedantic(
        lambda: measure(sweep_cache), rounds=1, iterations=1
    )

    t = Table(
        ["tuned for", "run at", "single-version [s]", "multi-version [s]", "gain %"],
        title="Multi-versioning ablation: stencil3d on Barcelona",
    )
    for tuned, run, single, multi, gain in rows:
        t.add_row([tuned, run, round(single, 4), round(multi, 4), round(gain, 1)])
    print_banner(
        "ABLATION — multi-versioning gain over single tuned versions "
        "(abstract: up to 70%)"
    )
    print(t.render())

    # somewhere in the context range, each single-version strategy loses
    # double digits against the multi-versioned runtime
    assert max(worst_gain.values()) > 20.0, worst_gain
    # and multi-versioning never loses (gain >= 0 up to noise)
    assert all(gain >= -2.0 for *_, gain in rows)