"""Extension — the skeleton itself as a tuning option (paper §III-B1).

"Within each configuration all tuning options, including the skeleton to be
selected ... are modeled uniformly."  Here the analyzer proposes one
skeleton per legal loop order of mm's fully permutable band (all six
i/j/k permutations); RS-GDE3 searches tiles × threads × skeleton at once.

Shape targets: the per-order cost landscape differs by multiples (orders
with an innermost ``i`` loop column-walk two arrays); the optimizer's front
avoids the bad orders without any a-priori ranking.
"""

from __future__ import annotations

from collections import Counter

from conftest import print_banner

from repro.frontend import get_kernel
from repro.machine import WESTMERE
from repro.optimizer import RSGDE3
from repro.optimizer.rsgde3 import RSGDE3Settings
from repro.optimizer.skeleton_choice import build_skeleton_choice
from repro.util.tables import Table


def run():
    k = get_kernel("mm")
    problem = build_skeleton_choice(k.function, {"N": 1400}, WESTMERE, seed=5)
    settings = RSGDE3Settings(protect=frozenset({"threads", "skeleton"}))
    res = RSGDE3(problem, settings).run(seed=2)
    ref_tiles = {"i": 96, "j": 288, "k": 9}
    order_times = {
        problem.orders[i]: sub.target.true_time(ref_tiles, 10)
        for i, sub in enumerate(problem.sub_problems)
    }
    return problem, res, order_times


def test_ext_skeleton_selection(benchmark):
    problem, res, order_times = benchmark.pedantic(run, rounds=1, iterations=1)

    t = Table(
        ["loop order", "t(96,288,9 @10thr) [s]", "front points"],
        title="mm loop-order skeletons on Westmere",
    )
    counts = Counter(c.value("skeleton") for c in res.front)
    for idx, order in enumerate(problem.orders):
        t.add_row(["".join(order), round(order_times[order], 4), counts.get(idx, 0)])
    print_banner("EXTENSION — skeleton (loop order) selection inside the optimizer")
    print(t.render())
    print(f"\nE={res.evaluations} |S|={res.size} generations={res.generations}")

    times = list(order_times.values())
    assert max(times) / min(times) > 5, "loop orders must matter"

    bad = {i for i, order in enumerate(problem.orders) if order[-1] == "i"}
    front_bad = sum(1 for c in res.front if c.value("skeleton") in bad)
    assert front_bad <= len(res.front) // 3, (
        "the optimizer must avoid innermost-i orders on the front"
    )
    assert res.size >= 5