"""Figures 4 & 5 — RS-GDE3's iterative search-space reduction.

The paper illustrates how the rough-set mechanism shrinks the search space
around the non-dominated solutions each iteration while GDE3 improves the
population.  We trace an actual mm run: the boundary-box volume fraction
per iteration and the evaluation budget.

Shape targets: the tile-dimension box shrinks by orders of magnitude
within a few iterations (the whole point of the reduction), never excludes
the current non-dominated set, and the protected thread dimension keeps
its full range.
"""

from __future__ import annotations

import numpy as np
from conftest import print_banner

from repro.experiments import make_setup
from repro.machine import WESTMERE
from repro.optimizer import RSGDE3
from repro.optimizer.gde3 import GDE3
from repro.optimizer.pareto import non_dominated
from repro.optimizer.roughset import rough_set_boundary
from repro.util.rng import derive_rng


def trace_run(generations: int = 12):
    setup = make_setup("mm", WESTMERE)
    problem = setup.problem(seed=5)
    gde3 = GDE3(problem)
    rng = derive_rng(5, "fig5")
    full = problem.space.full_boundary()
    pop = gde3.initial_population(full, rng)
    names = problem.space.names
    thr_idx = names.index("threads")

    rows = []
    box = full
    for gen in range(generations):
        box = rough_set_boundary(pop, full, protect={"threads"})
        front = non_dominated(pop, key=lambda c: c.objectives)
        # every front point inside the box?
        contained = all(box.contains(c.vector(names)) for c in front)
        rows.append(
            {
                "gen": gen,
                "volume": box.volume_fraction(),
                "front": len(front),
                "thr_span": (box.lo[thr_idx], box.hi[thr_idx]),
                "contained": contained,
                "evaluations": problem.evaluations,
            }
        )
        pop = gde3.generation(pop, box, rng)
    return rows, problem.space.full_boundary()


def test_fig5_boundary_reduction_dynamics(benchmark):
    rows, full = benchmark.pedantic(trace_run, rounds=1, iterations=1)

    print_banner("FIGURES 4/5 — rough-set boundary dynamics (mm, Westmere)")
    print(" gen | box volume | |front| | threads span | E so far")
    for r in rows:
        bar = "#" * max(1, int(-np.log10(max(r["volume"], 1e-12)) * 4))
        print(
            f" {r['gen']:3d} | {r['volume']:10.2e} | {r['front']:7d} | "
            f"[{r['thr_span'][0]:.0f}, {r['thr_span'][1]:.0f}]      | {r['evaluations']:5d}  {bar}"
        )

    # the reduction is drastic: by mid-run the box covers <1% of the space
    assert rows[-1]["volume"] < 0.01
    assert min(r["volume"] for r in rows) < rows[0]["volume"]
    # the box never drops a non-dominated point
    assert all(r["contained"] for r in rows)
    # the protected thread dimension keeps its full span
    names_full_span = (full.lo[-1], full.hi[-1])
    assert all(r["thr_span"] == names_full_span for r in rows)
