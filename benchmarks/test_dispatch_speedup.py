"""Chunked vs per-key dispatch throughput on a paper-scale batch.

PR 3's tentpole claim: sharding a batch into ``ceil(B/workers)`` chunks —
one vectorized ``compute_keys`` call per worker — must beat per-key
dispatch (``chunk_size=1``, the old behaviour: B tiny futures, each paying
Python call overhead and GIL churn) by at least 2x on a 4096-configuration
mm batch, while staying bit-identical to the serial path with an exact E.

The run emits ``BENCH_dispatch.json`` (configs/sec for serial, chunked-8
and per-key-8) which CI uploads as an artifact, so throughput regressions
are visible per commit.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.evaluation.parallel_eval import EvaluationEngine
from repro.evaluation.simulator import SimulatedTarget
from repro.experiments import make_setup
from repro.machine import WESTMERE

from conftest import print_banner

N_CONFIGS = 4096
WORKERS = 8
ARTIFACT = Path("BENCH_dispatch.json")


def _configs(n: int) -> list[tuple[dict[str, int], int]]:
    rng = np.random.default_rng(12)
    tiles = rng.integers(1, 512, size=(n, 3))
    threads = rng.choice([1, 5, 10, 20, 40], size=n)
    return [
        ({"i": int(a), "j": int(b), "k": int(c)}, int(t))
        for (a, b, c), t in zip(tiles, threads)
    ]


def _timed(workers: int, chunk_size: int | None):
    setup = make_setup("mm", WESTMERE)
    target = SimulatedTarget(setup.model, seed=0)
    engine = EvaluationEngine(target, max_workers=workers, chunk_size=chunk_size)
    t0 = time.perf_counter()
    result = engine.evaluate_batch(_configs(N_CONFIGS))
    wall = time.perf_counter() - t0
    return wall, [o.time for o in result.objectives], target.evaluations


def test_chunked_dispatch_beats_per_key_dispatch():
    serial_wall, serial_objs, serial_e = _timed(1, None)
    chunked_wall, chunked_objs, chunked_e = _timed(WORKERS, None)
    perkey_wall, perkey_objs, perkey_e = _timed(WORKERS, 1)

    rates = {
        "serial": N_CONFIGS / serial_wall,
        f"chunked-{WORKERS}": N_CONFIGS / chunked_wall,
        f"per-key-{WORKERS}": N_CONFIGS / perkey_wall,
    }
    speedup = perkey_wall / chunked_wall

    print_banner(
        f"Dispatch throughput ({N_CONFIGS} mm configs, {WORKERS} workers)"
    )
    for name, rate in rates.items():
        print(f"{name:>12}: {rate:10.0f} configs/s")
    print(f"chunked vs per-key: {speedup:5.2f} x")

    ARTIFACT.write_text(
        json.dumps(
            {
                "benchmark": "dispatch_speedup",
                "n_configs": N_CONFIGS,
                "workers": WORKERS,
                "wall_s": {
                    "serial": serial_wall,
                    f"chunked-{WORKERS}": chunked_wall,
                    f"per-key-{WORKERS}": perkey_wall,
                },
                "configs_per_sec": rates,
                "chunked_vs_per_key_speedup": speedup,
            },
            indent=2,
        )
        + "\n"
    )

    # correctness before throughput: every dispatch shape must agree with
    # the serial path bit-for-bit and keep E exact
    assert chunked_objs == serial_objs
    assert perkey_objs == serial_objs
    unique = serial_e
    assert chunked_e == perkey_e == unique

    # the acceptance bar: one vectorized call per worker must beat 4096
    # tiny futures by >= 2x (observed ~5-20x; 2x leaves CI slack)
    assert speedup >= 2.0, (
        f"chunked-{WORKERS} only {speedup:.2f}x over per-key-{WORKERS}"
    )
