"""Ablation — loop collapsing before parallelization (paper §IV).

"The collapsing step is essential to mitigate load balancing issues
potentially introduced by tiling with large tile sizes."  We measure mm
configurations with large outer tiles at the full Westmere machine with
and without collapsing the two outer tile loops, plus the aggregate effect
on the per-thread-count optima.
"""

from __future__ import annotations

from conftest import print_banner

from repro.analysis import extract_regions
from repro.evaluation import RegionCostModel
from repro.frontend import get_kernel
from repro.machine import WESTMERE
from repro.util.tables import Table


def measure():
    k = get_kernel("mm")
    region = extract_regions(k.function)[0]
    collapsed = RegionCostModel(
        region, {"N": 1400}, WESTMERE, parallel_spec=("collapse", 2)
    )
    uncollapsed = RegionCostModel(
        region, {"N": 1400}, WESTMERE, parallel_spec=("tile", "i")
    )
    rows = []
    for tiles in (
        {"i": 350, "j": 350, "k": 64},   # P: 16 collapsed vs 4 outer-only
        {"i": 200, "j": 200, "k": 64},   # 49 vs 7
        {"i": 100, "j": 100, "k": 64},   # 196 vs 14
        {"i": 32, "j": 128, "k": 64},    # 484 vs 44
        {"i": 8, "j": 128, "k": 64},     # 1925 vs 175: both balance
    ):
        t_coll = collapsed.time(tiles, 40)
        t_flat = uncollapsed.time(tiles, 40)
        rows.append((dict(tiles), t_coll, t_flat, 100 * (t_flat / t_coll - 1)))
    return rows


def test_ablation_collapse_load_balance(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    t = Table(
        ["tiles", "collapsed [s]", "outer-only [s]", "outer-only loss %"],
        title="Collapse ablation: mm at 40 threads on Westmere",
    )
    for tiles, t_coll, t_flat, loss in rows:
        t.add_row(
            [" ".join(f"{k}={v}" for k, v in tiles.items()),
             round(t_coll, 4), round(t_flat, 4), round(loss, 1)]
        )
    print_banner("ABLATION — collapsing the outer tile loops (paper section IV)")
    print(t.render())

    # with large tiles, parallelizing only the outer tile loop starves the
    # machine (P=4 iterations for 40 threads -> 10x slowdown); collapsing
    # multiplies the worksharing iterations and fixes it
    big_tiles_loss = rows[0][3]
    assert big_tiles_loss > 100.0, f"expected severe starvation, got {big_tiles_loss:.0f}%"

    # with small tiles both schedules balance and converge
    small_tiles_loss = rows[-1][3]
    assert small_tiles_loss < 25.0

    # losses shrink monotonically as tiles shrink
    losses = [r[3] for r in rows]
    assert losses == sorted(losses, reverse=True)
