"""Cross-region scheduler vs serial per-region loop on a 2-region kernel.

PR 4's tentpole claim: fusing every region's generation batch into one
shared evaluation session must beat the serial per-region lock-step loop
by at least 2x at 8 workers on jacobi-2d's two spatial regions — while
fronts, per-region ``E`` and ``program_runs`` stay bit-identical to the
``workers=1`` lock-step reference.

Each configuration carries a fixed measurement overhead (the generate +
compile + run latency of a real evaluation pipeline, slept by the
simulated target with the GIL released), so worker scaling is what the
wall-clock actually measures.

The run emits ``BENCH_multiregion.json`` (wall seconds and speedups for
the lock-step baseline, the fused barrier scheduler and the bounded-lag
pipeline) which CI uploads as an artifact.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.driver.multiregion import MultiRegionTuner
from repro.evaluation.measurements import MeasurementProtocol
from repro.frontend.kernels import get_kernel
from repro.machine import WESTMERE
from repro.optimizer.gde3 import GDE3Settings
from repro.optimizer.rsgde3 import RSGDE3Settings

from conftest import print_banner

WORKERS = 8
OVERHEAD_S = 0.003
ARTIFACT = Path("BENCH_multiregion.json")

#: patience > max_generations pins the run at exactly 6 generations per
#: region, so baseline and scheduler time identical amounts of work
SETTINGS = RSGDE3Settings(
    gde3=GDE3Settings(population_size=16), max_generations=6, patience=100
)


def _tuner(**kw) -> MultiRegionTuner:
    k = get_kernel("jacobi2d")
    return MultiRegionTuner(
        function=k.function,
        sizes={"N": 500, "T": 5},
        machine=WESTMERE,
        settings=SETTINGS,
        seed=11,
        protocol=MeasurementProtocol(overhead_s=OVERHEAD_S),
        **kw,
    )


def _timed(run):
    t0 = time.perf_counter()
    result = run()
    return time.perf_counter() - t0, result


def _signature(result):
    return (
        [tuple(c.objectives for c in r.front) for r in result.results],
        [r.evaluations for r in result.results],
        result.program_runs,
        result.generations,
    )


def test_fused_scheduler_beats_serial_lockstep():
    lockstep_wall, lockstep = _timed(lambda: _tuner().run_lockstep(seed=3))
    serial_wall, serial = _timed(lambda: _tuner(workers=1).run(seed=3))
    fused_wall, fused = _timed(lambda: _tuner(workers=WORKERS).run(seed=3))
    piped_wall, piped = _timed(
        lambda: _tuner(workers=WORKERS, pipeline=True).run(seed=3)
    )

    speedup = lockstep_wall / fused_wall
    piped_speedup = lockstep_wall / piped_wall

    print_banner(
        f"Cross-region scheduling (jacobi-2d, 2 regions, {WORKERS} workers, "
        f"{OVERHEAD_S * 1e3:.0f} ms/config)"
    )
    print(f"{'lock-step serial':>22}: {lockstep_wall:7.3f} s")
    print(f"{'fused workers=1':>22}: {serial_wall:7.3f} s")
    print(f"{'fused workers=8':>22}: {fused_wall:7.3f} s  ({speedup:.2f}x)")
    print(f"{'pipelined workers=8':>22}: {piped_wall:7.3f} s  ({piped_speedup:.2f}x)")

    ARTIFACT.write_text(
        json.dumps(
            {
                "benchmark": "multiregion_speedup",
                "kernel": "jacobi2d",
                "regions": len(lockstep.results),
                "workers": WORKERS,
                "overhead_s": OVERHEAD_S,
                "program_runs": lockstep.program_runs,
                "wall_s": {
                    "lockstep": lockstep_wall,
                    "fused-1": serial_wall,
                    f"fused-{WORKERS}": fused_wall,
                    f"pipelined-{WORKERS}": piped_wall,
                },
                "fused_speedup": speedup,
                "pipelined_speedup": piped_speedup,
                "engine": fused.engine_stats.as_dict(),
            },
            indent=2,
        )
        + "\n"
    )

    # correctness before throughput: every scheduling shape must agree
    # with the workers=1 lock-step reference bit-for-bit
    reference = _signature(lockstep)
    assert _signature(serial) == reference
    assert _signature(fused) == reference
    assert _signature(piped) == reference

    # the acceptance bar: 8 shared workers over 2 regions' batches must
    # halve the wall-clock (observed ~4-6x; 2x leaves CI slack)
    assert speedup >= 2.0, (
        f"fused-{WORKERS} only {speedup:.2f}x over serial lock-step"
    )
