"""Extension — simultaneous multi-region tuning.

Paper §III-A: "a single execution of the resulting program is sufficient to
obtain measurements for all simultaneously tuned regions."  This benchmark
quantifies that amortization on jacobi-2d (two tunable spatial nests inside
the time loop): lock-step tuning of both regions vs. what two separate
tuning runs would cost in program executions.
"""

from __future__ import annotations

from conftest import print_banner

from repro.driver.multiregion import MultiRegionTuner
from repro.frontend import get_kernel
from repro.machine import WESTMERE
from repro.util.tables import Table


def run():
    k = get_kernel("jacobi2d")
    tuner = MultiRegionTuner(
        function=k.function,
        sizes=k.default_size,
        machine=WESTMERE,
        seed=3,
    )
    return tuner.run(seed=1)


def test_ext_multiregion_amortization(benchmark):
    res = benchmark.pedantic(run, rounds=1, iterations=1)

    t = Table(
        ["region", "|S|", "region evaluations"],
        title="jacobi-2d: both spatial nests tuned in lock-step",
    )
    for i, r in enumerate(res.results):
        t.add_row([i, r.size, r.evaluations])
    print_banner("EXTENSION — multi-region tuning (paper section III-A)")
    print(t.render())
    separate = res.total_region_evaluations
    print(
        f"\nprogram executions: {res.program_runs} "
        f"(separate tuning would need ~{separate}; sharing factor "
        f"x{res.sharing_factor:.2f})"
    )

    assert len(res.results) == 2
    for r in res.results:
        assert r.size >= 3

    # the amortization claim: shared runs cost significantly less than the
    # sum of per-region evaluations
    assert res.program_runs < 0.85 * separate
    assert res.sharing_factor > 1.2

    # lower bound sanity: no region got more measurements than program runs
    assert all(r.evaluations <= res.program_runs for r in res.results)