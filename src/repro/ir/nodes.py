"""Immutable AST nodes for the loop-nest IR.

Expressions support operator overloading so kernels can be written naturally
(``C[i, j] + A[i, k] * B[k, j]``).  Statements form (possibly imperfect) loop
nests.  ``For`` carries the annotations the auto-tuner manipulates: a
``parallel`` flag and a free-form ``annotations`` mapping used to mark tile
loops, collapsed loops etc.

Nodes are frozen dataclasses: transformations construct new trees, which
keeps analysis results valid for the trees they were computed on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any

from repro.ir.types import ArrayType, ScalarType

__all__ = [
    "Node",
    "Expr",
    "Var",
    "IntLit",
    "FloatLit",
    "BinOp",
    "UnOp",
    "Min",
    "Max",
    "Call",
    "ArrayRef",
    "Stmt",
    "Assign",
    "Block",
    "For",
    "Param",
    "Function",
    "as_expr",
]

_BINOPS = {"+", "-", "*", "/", "%", "//"}


@dataclass(frozen=True)
class Node:
    """Base class: uniform child access for the visitor framework."""

    def children(self) -> tuple["Node", ...]:
        out: list[Node] = []
        for f_ in fields(self):
            val = getattr(self, f_.name)
            if isinstance(val, Node):
                out.append(val)
            elif isinstance(val, tuple):
                out.extend(v for v in val if isinstance(v, Node))
        return tuple(out)

    def with_children(self, new_children: list["Node"]) -> "Node":
        """Rebuild this node with its Node-valued fields replaced in order."""
        it = iter(new_children)
        updates: dict[str, Any] = {}
        for f_ in fields(self):
            val = getattr(self, f_.name)
            if isinstance(val, Node):
                updates[f_.name] = next(it)
            elif isinstance(val, tuple) and any(isinstance(v, Node) for v in val):
                updates[f_.name] = tuple(
                    next(it) if isinstance(v, Node) else v for v in val
                )
        return replace(self, **updates)


# --------------------------------------------------------------------------
# expressions
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr(Node):
    """Base expression; provides arithmetic operator sugar."""

    def __add__(self, other: "Expr | int | float") -> "BinOp":
        return BinOp("+", self, as_expr(other))

    def __radd__(self, other: "Expr | int | float") -> "BinOp":
        return BinOp("+", as_expr(other), self)

    def __sub__(self, other: "Expr | int | float") -> "BinOp":
        return BinOp("-", self, as_expr(other))

    def __rsub__(self, other: "Expr | int | float") -> "BinOp":
        return BinOp("-", as_expr(other), self)

    def __mul__(self, other: "Expr | int | float") -> "BinOp":
        return BinOp("*", self, as_expr(other))

    def __rmul__(self, other: "Expr | int | float") -> "BinOp":
        return BinOp("*", as_expr(other), self)

    def __truediv__(self, other: "Expr | int | float") -> "BinOp":
        return BinOp("/", self, as_expr(other))

    def __rtruediv__(self, other: "Expr | int | float") -> "BinOp":
        return BinOp("/", as_expr(other), self)

    def __floordiv__(self, other: "Expr | int | float") -> "BinOp":
        return BinOp("//", self, as_expr(other))

    def __mod__(self, other: "Expr | int | float") -> "BinOp":
        return BinOp("%", self, as_expr(other))

    def __neg__(self) -> "BinOp":
        return BinOp("-", IntLit(0), self)


def as_expr(value: "Expr | int | float") -> Expr:
    """Coerce Python numbers to literal nodes."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        raise TypeError("booleans are not IR values")
    if isinstance(value, int):
        return IntLit(value)
    if isinstance(value, float):
        return FloatLit(value)
    raise TypeError(f"cannot convert {value!r} to an IR expression")


@dataclass(frozen=True)
class Var(Expr):
    """A scalar variable reference (loop index or scalar parameter)."""

    name: str

    def __getitem__(self, idx: "Expr | int | tuple") -> "ArrayRef":
        """Sugar: treating a Var as an array yields an ArrayRef."""
        if not isinstance(idx, tuple):
            idx = (idx,)
        return ArrayRef(self.name, tuple(as_expr(i) for i in idx))


@dataclass(frozen=True)
class IntLit(Expr):
    value: int


@dataclass(frozen=True)
class FloatLit(Expr):
    value: float


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    lhs: Expr
    rhs: Expr

    def __post_init__(self) -> None:
        if self.op not in _BINOPS:
            raise ValueError(f"unknown binary operator {self.op!r}")


@dataclass(frozen=True)
class UnOp(Expr):
    op: str
    operand: Expr


@dataclass(frozen=True)
class Min(Expr):
    lhs: Expr
    rhs: Expr


@dataclass(frozen=True)
class Max(Expr):
    lhs: Expr
    rhs: Expr


@dataclass(frozen=True)
class Call(Expr):
    """An intrinsic call (``sqrt``, ``rsqrt`` …) — the only non-affine
    expression form the kernels need."""

    fn: str
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class ArrayRef(Expr):
    """``name[indices...]`` — subscripts are arbitrary expressions; the
    polyhedral analysis recognises the affine subset."""

    array: str
    indices: tuple[Expr, ...]

    @property
    def rank(self) -> int:
        return len(self.indices)


# --------------------------------------------------------------------------
# statements
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Stmt(Node):
    pass


@dataclass(frozen=True)
class Assign(Stmt):
    """``target = value``; accumulation is expressed by reading the target
    inside *value* (e.g. ``C[i,j] = C[i,j] + ...``)."""

    target: Expr  # ArrayRef or Var
    value: Expr

    def __post_init__(self) -> None:
        if not isinstance(self.target, (ArrayRef, Var)):
            raise TypeError("assignment target must be an ArrayRef or Var")


@dataclass(frozen=True)
class Block(Stmt):
    stmts: tuple[Stmt, ...]

    def __post_init__(self) -> None:
        for s in self.stmts:
            if not isinstance(s, Stmt):
                raise TypeError(f"Block may only contain statements, got {s!r}")


@dataclass(frozen=True)
class For(Stmt):
    """``for var = lower; var < upper; var += step``  (half-open interval).

    ``parallel`` marks the loop for parallel execution (worksharing);
    ``annotations`` carries transformation provenance such as
    ``{"tile_loop": "i"}`` or ``{"collapsed": ("i", "j")}``.
    """

    var: str
    lower: Expr
    upper: Expr
    step: Expr
    body: Stmt
    parallel: bool = False
    annotations: tuple[tuple[str, Any], ...] = field(default=())

    def annotation(self, key: str, default: Any = None) -> Any:
        for k, v in self.annotations:
            if k == key:
                return v
        return default

    def with_annotation(self, key: str, value: Any) -> "For":
        anns = tuple((k, v) for k, v in self.annotations if k != key)
        return replace(self, annotations=anns + ((key, value),))


# --------------------------------------------------------------------------
# functions
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Param(Node):
    name: str
    type: ScalarType | ArrayType


@dataclass(frozen=True)
class Function(Node):
    """A kernel: named parameters (arrays and scalar sizes) and a body."""

    name: str
    params: tuple[Param, ...]
    body: Block

    def param(self, name: str) -> Param:
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(f"function {self.name!r} has no parameter {name!r}")

    @property
    def arrays(self) -> dict[str, ArrayType]:
        return {p.name: p.type for p in self.params if isinstance(p.type, ArrayType)}

    @property
    def scalars(self) -> dict[str, ScalarType]:
        return {p.name: p.type for p in self.params if isinstance(p.type, ScalarType)}
