"""Algebraic simplification of IR expressions.

The transformations build expressions mechanically (`0 + (c // 1) * 1`,
`min(x, x)` …); this pass folds them so generated C and Python read like
hand-written code. Rules are conservative — integer-exact identities only:

* constant folding of ``+ - * // %`` on integer literals (and ``+ - *`` on
  float literals),
* additive/multiplicative identities (``x+0``, ``x-0``, ``x*1``, ``x*0``,
  ``x//1``, ``0//x``, ``x%1``),
* ``min(x, x) → x`` / ``max(x, x) → x`` and constant min/max,
* recursion through statements (bounds, steps, subscripts, bodies).

``x/x``, ``x-x`` etc. are *not* folded (no aliasing analysis needed here,
and the transformations never produce them).
"""

from __future__ import annotations

from repro.ir.nodes import (
    BinOp,
    Expr,
    FloatLit,
    IntLit,
    Max,
    Min,
    Node,
)
from repro.ir.visitors import transform

__all__ = ["simplify", "simplify_expr"]


def _fold_binop(node: BinOp) -> Expr | None:
    lhs, rhs = node.lhs, node.rhs
    op = node.op

    if isinstance(lhs, IntLit) and isinstance(rhs, IntLit):
        a, b = lhs.value, rhs.value
        if op == "+":
            return IntLit(a + b)
        if op == "-":
            return IntLit(a - b)
        if op == "*":
            return IntLit(a * b)
        if op == "//" and b != 0:
            return IntLit(a // b) if a >= 0 and b > 0 else None
        if op == "%" and b != 0:
            return IntLit(a % b) if a >= 0 and b > 0 else None
        return None

    if isinstance(lhs, FloatLit) and isinstance(rhs, FloatLit):
        a, b = lhs.value, rhs.value
        if op == "+":
            return FloatLit(a + b)
        if op == "-":
            return FloatLit(a - b)
        if op == "*":
            return FloatLit(a * b)
        return None

    # identities with an integer-literal operand
    if op == "+":
        if isinstance(rhs, IntLit) and rhs.value == 0:
            return lhs
        if isinstance(lhs, IntLit) and lhs.value == 0:
            return rhs
    elif op == "-":
        if isinstance(rhs, IntLit) and rhs.value == 0:
            return lhs
    elif op == "*":
        if isinstance(rhs, IntLit):
            if rhs.value == 1:
                return lhs
            if rhs.value == 0:
                return IntLit(0)
        if isinstance(lhs, IntLit):
            if lhs.value == 1:
                return rhs
            if lhs.value == 0:
                return IntLit(0)
    elif op == "//":
        if isinstance(rhs, IntLit) and rhs.value == 1:
            return lhs
        if isinstance(lhs, IntLit) and lhs.value == 0:
            return IntLit(0)
    elif op == "%":
        if isinstance(rhs, IntLit) and rhs.value == 1:
            return IntLit(0)
    return None


def _rule(node: Node) -> Node | None:
    if isinstance(node, BinOp):
        return _fold_binop(node)
    if isinstance(node, (Min, Max)):
        if node.lhs == node.rhs:
            return node.lhs
        if isinstance(node.lhs, IntLit) and isinstance(node.rhs, IntLit):
            pick = min if isinstance(node, Min) else max
            return IntLit(pick(node.lhs.value, node.rhs.value))
    return None


def simplify(node: Node) -> Node:
    """Simplify every expression in the subtree (statements included)."""
    # run to a fixpoint: folding can expose new opportunities one level up,
    # and `transform` already rebuilds bottom-up, so two passes suffice for
    # the patterns the transformations emit; iterate defensively anyway
    prev = node
    for _ in range(4):
        nxt = transform(prev, _rule)
        if nxt == prev:
            return nxt
        prev = nxt
    return prev


def simplify_expr(expr: Expr) -> Expr:
    out = simplify(expr)
    assert isinstance(out, Expr)
    return out
