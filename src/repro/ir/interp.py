"""A reference interpreter for the loop-nest IR.

Executes kernels directly on NumPy arrays.  It is deliberately simple and
slow — its job is to define the IR's semantics so that transformations
(tiling, collapsing, unrolling) can be validated by comparing interpreter
output before and after the rewrite, and generated code can be validated
against the interpreter.

Parallel loops are executed sequentially (the simulated machine models the
timing; semantics of the kernels in scope are schedule independent).
"""

from __future__ import annotations

import math
from collections.abc import Mapping

import numpy as np

from repro.ir.nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Block,
    Call,
    Expr,
    FloatLit,
    For,
    Function,
    IntLit,
    Max,
    Min,
    Stmt,
    UnOp,
    Var,
)
from repro.ir.types import ArrayType

__all__ = ["run_function", "eval_expr", "INTRINSICS"]

#: intrinsic function table shared with the generated-Python backend
INTRINSICS = {
    "sqrt": math.sqrt,
    "rsqrt": lambda x: 1.0 / math.sqrt(x),
    "rsqrt3": lambda x: x ** -1.5,
    "exp": math.exp,
    "log": math.log,
    "abs": abs,
    "min": min,
    "max": max,
}


def run_function(
    fn: Function,
    arrays: Mapping[str, np.ndarray],
    scalars: Mapping[str, int] | None = None,
    copy: bool = True,
    trace_hook=None,
) -> dict[str, np.ndarray]:
    """Execute *fn*; returns the (possibly updated) arrays.

    :param arrays: named array arguments; validated against declared ranks.
    :param scalars: values for the scalar parameters (problem sizes).
    :param copy: when true (default), inputs are copied so callers keep
        their originals.
    :param trace_hook: optional ``hook(array_name, indices)`` invoked for
        every array element access in execution order — the address-trace
        source for the cache-simulator validation of the cost model.
    """
    scalars = dict(scalars or {})
    env: dict[str, object] = dict(scalars)
    bound: dict[str, np.ndarray] = {}
    for p in fn.params:
        if isinstance(p.type, ArrayType):
            if p.name not in arrays:
                raise KeyError(f"missing array argument {p.name!r}")
            arr = np.asarray(arrays[p.name], dtype=float)
            if arr.ndim != p.type.rank:
                raise ValueError(
                    f"array {p.name!r}: expected rank {p.type.rank}, got {arr.ndim}"
                )
            bound[p.name] = arr.copy() if copy else arr
        else:
            if p.name not in scalars:
                raise KeyError(f"missing scalar argument {p.name!r}")
            env[p.name] = int(scalars[p.name])
    _exec_stmt(fn.body, env, bound, trace_hook)
    return bound


def _exec_stmt(
    stmt: Stmt,
    env: dict[str, object],
    arrays: dict[str, np.ndarray],
    trace_hook=None,
) -> None:
    if isinstance(stmt, Block):
        for s in stmt.stmts:
            _exec_stmt(s, env, arrays, trace_hook)
        return
    if isinstance(stmt, For):
        lower = int(eval_expr(stmt.lower, env, arrays))
        upper = int(eval_expr(stmt.upper, env, arrays))
        step = int(eval_expr(stmt.step, env, arrays))
        if step <= 0:
            raise ValueError(f"loop {stmt.var!r}: non-positive step {step}")
        saved = env.get(stmt.var, _MISSING)
        for value in range(lower, upper, step):
            env[stmt.var] = value
            _exec_stmt(stmt.body, env, arrays, trace_hook)
        if saved is _MISSING:
            env.pop(stmt.var, None)
        else:
            env[stmt.var] = saved
        return
    if isinstance(stmt, Assign):
        value = eval_expr(stmt.value, env, arrays, trace_hook)
        target = stmt.target
        if isinstance(target, ArrayRef):
            idx = tuple(int(eval_expr(ix, env, arrays)) for ix in target.indices)
            arrays[target.array][idx] = value
            if trace_hook is not None:
                trace_hook(target.array, idx)
        elif isinstance(target, Var):
            env[target.name] = value
        return
    raise TypeError(f"cannot execute statement {stmt!r}")


_MISSING = object()


def eval_expr(
    expr: Expr,
    env: Mapping[str, object],
    arrays: Mapping[str, np.ndarray],
    trace_hook=None,
):
    if isinstance(expr, IntLit):
        return expr.value
    if isinstance(expr, FloatLit):
        return expr.value
    if isinstance(expr, Var):
        try:
            return env[expr.name]
        except KeyError:
            raise NameError(f"unbound variable {expr.name!r}") from None
    if isinstance(expr, ArrayRef):
        idx = tuple(int(eval_expr(ix, env, arrays, trace_hook)) for ix in expr.indices)
        if trace_hook is not None:
            trace_hook(expr.array, idx)
        return arrays[expr.array][idx]
    if isinstance(expr, BinOp):
        lhs = eval_expr(expr.lhs, env, arrays, trace_hook)
        rhs = eval_expr(expr.rhs, env, arrays, trace_hook)
        op = expr.op
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if op == "/":
            return lhs / rhs
        if op == "//":
            return lhs // rhs
        if op == "%":
            return lhs % rhs
        raise ValueError(f"unknown operator {op!r}")
    if isinstance(expr, Min):
        return min(
            eval_expr(expr.lhs, env, arrays, trace_hook),
            eval_expr(expr.rhs, env, arrays, trace_hook),
        )
    if isinstance(expr, Max):
        return max(
            eval_expr(expr.lhs, env, arrays, trace_hook),
            eval_expr(expr.rhs, env, arrays, trace_hook),
        )
    if isinstance(expr, UnOp):
        val = eval_expr(expr.operand, env, arrays, trace_hook)
        if expr.op == "-":
            return -val
        raise ValueError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, Call):
        fn = INTRINSICS.get(expr.fn)
        if fn is None:
            raise NameError(f"unknown intrinsic {expr.fn!r}")
        return fn(*(eval_expr(a, env, arrays, trace_hook) for a in expr.args))
    raise TypeError(f"cannot evaluate expression {expr!r}")
