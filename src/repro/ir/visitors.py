"""Traversal and rewriting utilities over the immutable IR.

``walk`` yields every node; ``collect`` filters by type; ``transform``
rebuilds a tree bottom-up through a user callback; ``substitute`` replaces
variables by expressions.  ``loop_nest``/``perfect_nest`` expose the loop
structure the transformations operate on.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from repro.ir.nodes import (
    ArrayRef,
    Block,
    Expr,
    For,
    Node,
    Stmt,
    Var,
)

__all__ = [
    "walk",
    "collect",
    "transform",
    "substitute",
    "free_vars",
    "loop_nest",
    "perfect_nest",
    "loop_vars",
    "array_refs",
]


def walk(node: Node) -> Iterator[Node]:
    """Pre-order traversal of *node* and all descendants."""
    yield node
    for child in node.children():
        yield from walk(child)


def collect(node: Node, node_type: type | tuple[type, ...]) -> list[Node]:
    """All descendants (including *node*) of the given type(s), pre-order."""
    return [n for n in walk(node) if isinstance(n, node_type)]


def transform(node: Node, fn: Callable[[Node], Node | None]) -> Node:
    """Rebuild the tree bottom-up; *fn* may return a replacement for each
    node or ``None`` to keep it.  Children are transformed before parents,
    so *fn* sees already-rewritten subtrees."""
    new_children = [transform(child, fn) for child in node.children()]
    if new_children != list(node.children()):
        node = node.with_children(new_children)
    replacement = fn(node)
    return node if replacement is None else replacement


def substitute(node: Node, mapping: dict[str, Expr]) -> Node:
    """Replace free occurrences of the named scalar variables.

    Loop index shadowing is respected: a substitution for ``i`` does not
    descend into a loop that re-binds ``i``.
    """
    if not mapping:
        return node
    if isinstance(node, Var) and node.name in mapping:
        return mapping[node.name]
    if isinstance(node, For) and node.var in mapping:
        inner = {k: v for k, v in mapping.items() if k != node.var}
        lower = substitute(node.lower, mapping)
        upper = substitute(node.upper, mapping)
        step = substitute(node.step, mapping)
        body = substitute(node.body, inner)
        return node.with_children([lower, upper, step, body])  # type: ignore[list-item]
    children = list(node.children())
    new_children = [substitute(child, mapping) for child in children]
    if new_children != children:
        node = node.with_children(new_children)
    return node


def free_vars(node: Node) -> set[str]:
    """Names of scalar variables read in *node* that are not bound by an
    enclosing loop within *node*."""
    out: set[str] = set()

    def go(n: Node, bound: frozenset[str]) -> None:
        if isinstance(n, Var):
            if n.name not in bound:
                out.add(n.name)
            return
        if isinstance(n, For):
            go(n.lower, bound)
            go(n.upper, bound)
            go(n.step, bound)
            go(n.body, bound | {n.var})
            return
        for child in n.children():
            go(child, bound)

    go(node, frozenset())
    return out


def loop_nest(stmt: Stmt) -> list[For]:
    """The chain of loops starting at *stmt*, descending through bodies that
    contain exactly one statement.  Stops at the first non-loop or at a body
    with multiple statements (imperfect nesting boundary)."""
    nest: list[For] = []
    node: Node = stmt
    while isinstance(node, For):
        nest.append(node)
        body = node.body
        if isinstance(body, Block) and len(body.stmts) == 1:
            node = body.stmts[0]
        else:
            break
    return nest


def perfect_nest(stmt: Stmt) -> tuple[list[For], Stmt]:
    """Like :func:`loop_nest` but also returns the innermost body statement
    (the computation inside the perfect nest)."""
    nest = loop_nest(stmt)
    if not nest:
        return [], stmt
    inner = nest[-1].body
    if isinstance(inner, Block) and len(inner.stmts) == 1:
        inner = inner.stmts[0]
    return nest, inner


def loop_vars(stmt: Stmt) -> list[str]:
    return [loop.var for loop in loop_nest(stmt)]


def array_refs(node: Node) -> list[ArrayRef]:
    """All array references in the subtree, pre-order (reads and writes)."""
    return collect(node, ArrayRef)  # type: ignore[return-value]
