"""Type system for the loop-nest IR.

Only what the tuned kernel class needs: sized scalar types and
multi-dimensional arrays with (possibly symbolic) extents.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ScalarType", "ArrayType", "F64", "F32", "I64", "I32"]


@dataclass(frozen=True)
class ScalarType:
    """A primitive machine type.

    :param name: IR-level name (also used by the C backend via ``cname``).
    :param size: size in bytes, used by footprint/traffic models.
    :param cname: spelling in emitted C code.
    """

    name: str
    size: int
    cname: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


F64 = ScalarType("f64", 8, "double")
F32 = ScalarType("f32", 4, "float")
I64 = ScalarType("i64", 8, "long long")
I32 = ScalarType("i32", 4, "int")


@dataclass(frozen=True)
class ArrayType:
    """An N-dimensional array of scalars.

    Extents are either integers or names of integer parameters of the
    enclosing function (symbolic problem sizes such as ``N``).
    """

    elem: ScalarType
    shape: tuple[int | str, ...]

    @property
    def rank(self) -> int:
        return len(self.shape)

    def elem_count(self, bindings: dict[str, int] | None = None) -> int:
        """Total number of elements with symbolic extents resolved via
        *bindings*; raises ``KeyError`` for unresolved symbols."""
        total = 1
        for dim in self.shape:
            if isinstance(dim, str):
                if bindings is None:
                    raise KeyError(f"unbound array extent {dim!r}")
                dim = bindings[dim]
            total *= int(dim)
        return total

    def byte_size(self, bindings: dict[str, int] | None = None) -> int:
        return self.elem_count(bindings) * self.elem.size

    def __str__(self) -> str:  # pragma: no cover - trivial
        dims = "][".join(str(d) for d in self.shape)
        return f"{self.elem}[{dims}]"
