"""Concise constructors for IR trees.

Kernels read close to their mathematical definition:

>>> i, j, k, N = var("i"), var("j"), var("k"), var("N")
>>> body = assign(var("C")[i, j], var("C")[i, j] + var("A")[i, k] * var("B")[k, j])
>>> nest = loop("i", 0, N, loop("j", 0, N, loop("k", 0, N, body)))
"""

from __future__ import annotations

from repro.ir.nodes import (
    Assign,
    Block,
    Expr,
    For,
    Function,
    Param,
    Stmt,
    Var,
    as_expr,
)
from repro.ir.types import ArrayType, ScalarType, F64

__all__ = ["var", "c", "f", "loop", "block", "assign", "param", "array", "func"]


def var(name: str) -> Var:
    return Var(name)


def c(value: int) -> Expr:
    """Integer literal."""
    return as_expr(int(value))


def f(value: float) -> Expr:
    """Float literal."""
    return as_expr(float(value))


def assign(target: Expr, value: Expr | int | float) -> Assign:
    return Assign(target, as_expr(value))


def block(*stmts: Stmt) -> Block:
    """Flatten nested blocks while building."""
    flat: list[Stmt] = []
    for s in stmts:
        if isinstance(s, Block):
            flat.extend(s.stmts)
        else:
            flat.append(s)
    return Block(tuple(flat))


def loop(
    index: str,
    lower: Expr | int,
    upper: Expr | int | str,
    body: Stmt,
    step: Expr | int = 1,
    parallel: bool = False,
) -> For:
    if isinstance(upper, str):
        upper = Var(upper)
    return For(
        var=index,
        lower=as_expr(lower),
        upper=as_expr(upper),
        step=as_expr(step),
        body=body if isinstance(body, Block) else Block((body,)),
        parallel=parallel,
    )


def param(name: str, type_: ScalarType | ArrayType) -> Param:
    return Param(name, type_)


def array(name: str, *shape: int | str, elem: ScalarType = F64) -> Param:
    return Param(name, ArrayType(elem, tuple(shape)))


def func(name: str, params: list[Param], *stmts: Stmt) -> Function:
    return Function(name, tuple(params), block(*stmts))
