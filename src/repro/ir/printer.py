"""C-like pretty printer for IR trees.

Used for debugging, tests and as the shared expression printer of the C
backend (:mod:`repro.backend.cgen` delegates expression formatting here).
"""

from __future__ import annotations

from repro.ir.nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Block,
    Call,
    Expr,
    FloatLit,
    For,
    Function,
    IntLit,
    Max,
    Min,
    Node,
    UnOp,
    Var,
)
from repro.ir.types import ArrayType

__all__ = ["to_source", "expr_to_source"]

_PREC = {"+": 10, "-": 10, "*": 20, "/": 20, "%": 20, "//": 20}


def expr_to_source(expr: Expr, parent_prec: int = 0) -> str:
    """Render an expression; parenthesising only where precedence needs it."""
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, IntLit):
        return str(expr.value)
    if isinstance(expr, FloatLit):
        text = repr(expr.value)
        return text if ("." in text or "e" in text or "inf" in text) else text + ".0"
    if isinstance(expr, ArrayRef):
        return expr.array + "".join(f"[{expr_to_source(i)}]" for i in expr.indices)
    if isinstance(expr, BinOp):
        op = "/" if expr.op == "//" else expr.op
        prec = _PREC[expr.op]
        lhs = expr_to_source(expr.lhs, prec)
        rhs = expr_to_source(expr.rhs, prec + 1)  # left-assoc
        text = f"{lhs} {op} {rhs}"
        return f"({text})" if prec < parent_prec else text
    if isinstance(expr, UnOp):
        return f"{expr.op}({expr_to_source(expr.operand)})"
    if isinstance(expr, Min):
        return f"min({expr_to_source(expr.lhs)}, {expr_to_source(expr.rhs)})"
    if isinstance(expr, Max):
        return f"max({expr_to_source(expr.lhs)}, {expr_to_source(expr.rhs)})"
    if isinstance(expr, Call):
        args = ", ".join(expr_to_source(a) for a in expr.args)
        return f"{expr.fn}({args})"
    raise TypeError(f"cannot print expression {expr!r}")


def to_source(node: Node, indent: int = 0) -> str:
    """Render any IR node as readable C-like pseudocode."""
    pad = "    " * indent
    if isinstance(node, Expr):
        return pad + expr_to_source(node)
    if isinstance(node, Assign):
        return f"{pad}{expr_to_source(node.target)} = {expr_to_source(node.value)};"
    if isinstance(node, Block):
        return "\n".join(to_source(s, indent) for s in node.stmts)
    if isinstance(node, For):
        head = (
            f"{pad}{'parallel ' if node.parallel else ''}for ({node.var} = "
            f"{expr_to_source(node.lower)}; {node.var} < {expr_to_source(node.upper)}; "
            f"{node.var} += {expr_to_source(node.step)}) {{"
        )
        anns = dict(node.annotations)
        if anns:
            head += f"  // {anns}"
        return head + "\n" + to_source(node.body, indent + 1) + f"\n{pad}}}"
    if isinstance(node, Function):
        params = []
        for p in node.params:
            if isinstance(p.type, ArrayType):
                dims = "".join(f"[{d}]" for d in p.type.shape)
                params.append(f"{p.type.elem.cname} {p.name}{dims}")
            else:
                params.append(f"{p.type.cname} {p.name}")
        head = f"{pad}void {node.name}({', '.join(params)}) {{"
        return head + "\n" + to_source(node.body, indent + 1) + f"\n{pad}}}"
    raise TypeError(f"cannot print node {node!r}")
