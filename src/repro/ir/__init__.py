"""A compact loop-nest intermediate representation (INSPIRE analogue).

The paper's framework is built on Insieme's INSPIRE IR.  For the tuning
pipeline only a small, well-defined slice of such an IR is needed: functions
over scalar/array parameters whose bodies are (possibly imperfect) loop nests
with affine array subscripts.  This package provides exactly that slice:

* :mod:`repro.ir.types` — scalar and array types,
* :mod:`repro.ir.nodes` — immutable expression/statement nodes,
* :mod:`repro.ir.builder` — concise construction helpers,
* :mod:`repro.ir.visitors` — traversal, rewriting and substitution,
* :mod:`repro.ir.printer` — C-like pretty printing.

All nodes are immutable; transformations produce new trees.
"""

from repro.ir.types import F64, I64, ArrayType, ScalarType
from repro.ir.nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Block,
    Call,
    Expr,
    FloatLit,
    For,
    Function,
    IntLit,
    Max,
    Min,
    Node,
    Param,
    Stmt,
    UnOp,
    Var,
)
from repro.ir.builder import array, block, c, f, loop, param, var
from repro.ir.visitors import (
    collect,
    free_vars,
    loop_nest,
    perfect_nest,
    substitute,
    transform,
    walk,
)
from repro.ir.printer import to_source

__all__ = [
    "F64",
    "I64",
    "ArrayType",
    "ScalarType",
    "Node",
    "Expr",
    "Stmt",
    "Var",
    "IntLit",
    "FloatLit",
    "BinOp",
    "UnOp",
    "Min",
    "Max",
    "Call",
    "ArrayRef",
    "Assign",
    "Block",
    "For",
    "Param",
    "Function",
    "array",
    "block",
    "c",
    "f",
    "loop",
    "param",
    "var",
    "walk",
    "collect",
    "transform",
    "substitute",
    "free_vars",
    "loop_nest",
    "perfect_nest",
    "to_source",
]
