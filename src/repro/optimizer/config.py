"""Configurations: parameter assignments with measured objectives."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Configuration"]


@dataclass(frozen=True)
class Configuration:
    """One evaluated point of the search space.

    :param values: sorted (name, value) pairs — tile sizes, thread count,
        flags — everything "modeled uniformly" as the paper puts it.
    :param objectives: measured objective vector (minimization).
    """

    values: tuple[tuple[str, int], ...]
    objectives: tuple[float, ...]

    @staticmethod
    def make(values: dict[str, int], objectives: tuple[float, ...] | list[float]) -> "Configuration":
        return Configuration(
            values=tuple(sorted((k, int(v)) for k, v in values.items())),
            objectives=tuple(float(x) for x in objectives),
        )

    def value(self, name: str) -> int:
        for k, v in self.values:
            if k == name:
                return v
        raise KeyError(f"configuration has no parameter {name!r}")

    def as_dict(self) -> dict[str, int]:
        return dict(self.values)

    def vector(self, names: list[str] | tuple[str, ...]) -> np.ndarray:
        d = self.as_dict()
        return np.array([d[n] for n in names], dtype=float)

    @property
    def time(self) -> float:
        """First objective (wall time by convention)."""
        return self.objectives[0]

    @property
    def resources(self) -> float:
        """Second objective (threads × time by convention)."""
        return self.objectives[1]
