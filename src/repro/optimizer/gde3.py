"""GDE3 — Generalized Differential Evolution 3 (Kukkonen & Lampinen, 2005).

The paper (§III-B3) selects GDE3 "due to its acceptable robustness and fast
convergence rate" and runs it with CR = F = 0.5 and a population of 30.

One generation (this module) works on a population of evaluated
configurations within a boundary box ``B``:

1. for each member ``a``, pick distinct ``b, c, d`` and build the trial
   ``r_i = b_i + F (c_i − d_i)`` with crossover probability CR (plus one
   forced index) — the paper's Algorithm 1 — then snap ``r`` into ``B``
   via ``getClosestTo``;
2. evaluate all trials (as a batch — the paper evaluates configurations in
   parallel);
3. selection: the trial replaces a dominating-or-dominated target the usual
   DE way; mutually non-dominated trial/target pairs are both kept and the
   population is truncated back to size NP by non-dominated sorting with
   crowding distance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.optimizer.config import Configuration
from repro.optimizer.pareto import (
    crowding_distance,
    dominates,
    non_dominated_sort,
    pairwise_dominance,
)
from repro.optimizer.problem import TuningProblem
from repro.optimizer.space import Boundary

__all__ = ["GDE3Settings", "GDE3"]


def _objective_rows(configs: list[Configuration]) -> np.ndarray:
    """(N, m) objective array of *configs* — np.fromiter over a flat
    generator skips np.array's per-tuple inspection, which matters in
    the per-generation selection hot loop."""
    if not configs:
        return np.empty((0, 2))
    m = len(configs[0].objectives)
    flat = np.fromiter(
        (x for c in configs for x in c.objectives),
        dtype=float,
        count=len(configs) * m,
    )
    return flat.reshape(len(configs), m)


@dataclass(frozen=True)
class GDE3Settings:
    """Algorithm constants (paper defaults)."""

    population_size: int = 30
    cr: float = 0.5
    f: float = 0.5

    def __post_init__(self) -> None:
        if self.population_size < 4:
            raise ValueError("GDE3 needs a population of at least 4")
        if not (0.0 <= self.cr <= 1.0):
            raise ValueError("CR must be in [0, 1]")
        if self.f <= 0:
            raise ValueError("F must be positive")


@dataclass
class GDE3:
    """GDE3 generations over a tuning problem."""

    problem: TuningProblem
    settings: GDE3Settings = field(default_factory=GDE3Settings)

    def initial_population(
        self, boundary: Boundary, rng: np.random.Generator
    ) -> list[Configuration]:
        """Random initial sample of the search space, evaluated."""
        vectors = boundary.sample(rng, self.settings.population_size)
        return self.problem.evaluate_batch(vectors)

    def propose(
        self,
        population: list[Configuration],
        boundary: Boundary,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Generate one trial vector per population member (Algorithm 1),
        snapped into the boundary.  Kept separate from :meth:`select` so a
        multi-region coordinator can evaluate the trials of several regions
        with shared program executions."""
        names = self.problem.space.names
        pop_vecs = np.stack([c.vector(names) for c in population])
        n = len(population)

        trials = np.empty_like(pop_vecs[:n])
        for i in range(n):
            b, c, d = self._pick_three(n, i, rng)
            trials[i] = self._de_trial(
                pop_vecs[i], pop_vecs[b], pop_vecs[c], pop_vecs[d], rng
            )
            trials[i] = boundary.get_closest_to(trials[i])
            if np.array_equal(trials[i], pop_vecs[i]):
                # integer snapping collapsed the trial onto its target —
                # re-randomize one coordinate inside the box to keep the
                # generation from re-evaluating known points
                j = int(rng.integers(pop_vecs.shape[1]))
                jitter = trials[i].copy()
                jitter[j] = rng.uniform(boundary.lo[j], boundary.hi[j] + 1.0)
                trials[i] = boundary.get_closest_to(jitter)
        return trials

    def select(
        self,
        population: list[Configuration],
        trial_configs: list[Configuration],
    ) -> list[Configuration]:
        """GDE3 selection: dominating trials replace their targets,
        dominated trials are dropped, mutually non-dominated pairs are both
        kept; the population is truncated back to NP by non-dominated
        sorting with crowding distance."""
        np_size = self.settings.population_size
        # one broadcasted trial-vs-target comparison instead of 2·N scalar
        # dominates() calls (see _select_pairs_scalar, the guarded baseline)
        n = min(len(population), len(trial_configs))
        trial_dom, target_dom = pairwise_dominance(
            _objective_rows(trial_configs[:n]),
            _objective_rows(population[:n]),
        )
        next_pop: list[Configuration] = []
        for target, trial, t_dom, a_dom in zip(
            population, trial_configs, trial_dom.tolist(), target_dom.tolist()
        ):
            if t_dom:
                next_pop.append(trial)
            elif a_dom:
                next_pop.append(target)
            else:
                next_pop.append(target)
                next_pop.append(trial)

        if len(next_pop) > np_size:
            next_pop = self._truncate(next_pop, np_size)
        return next_pop

    @staticmethod
    def _select_pairs_scalar(
        population: list[Configuration], trial_configs: list[Configuration]
    ) -> list[Configuration]:
        """The pre-vectorization pairwise phase of :meth:`select` (before
        truncation) — the scalar baseline the selection micro-benchmark
        asserts output-identity and speedup against."""
        next_pop: list[Configuration] = []
        for target, trial in zip(population, trial_configs):
            if dominates(trial.objectives, target.objectives):
                next_pop.append(trial)
            elif dominates(target.objectives, trial.objectives):
                next_pop.append(target)
            else:
                next_pop.append(target)
                next_pop.append(trial)
        return next_pop

    def generation(
        self,
        population: list[Configuration],
        boundary: Boundary,
        rng: np.random.Generator,
    ) -> list[Configuration]:
        """Run one GDE3 generation; returns the next population."""
        trials = self.propose(population, boundary, rng)
        trial_configs = self.problem.evaluate_batch(trials)
        return self.select(population, trial_configs)

    # ------------------------------------------------------------------

    def _pick_three(
        self, n: int, exclude: int, rng: np.random.Generator
    ) -> tuple[int, int, int]:
        pool = [j for j in range(n) if j != exclude]
        picks = rng.choice(len(pool), size=3, replace=False)
        return tuple(pool[p] for p in picks)  # type: ignore[return-value]

    def _de_trial(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray,
        d: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Algorithm 1: binomial crossover of the donor ``b + F(c-d)``."""
        dim = a.shape[0]
        forced = int(rng.integers(dim))
        donor = b + self.settings.f * (c - d)
        mask = rng.random(dim) < self.settings.cr
        mask[forced] = True
        return np.where(mask, donor, a)

    def _truncate(self, pop: list[Configuration], size: int) -> list[Configuration]:
        """Non-dominated sorting + crowding-distance truncation."""
        objs = np.array([c.objectives for c in pop])
        fronts = non_dominated_sort(objs)
        kept: list[int] = []
        for front in fronts:
            if len(kept) + len(front) <= size:
                kept.extend(front.tolist())
                continue
            remaining = size - len(kept)
            if remaining > 0:
                dist = crowding_distance(objs[front])
                order = np.argsort(-dist, kind="stable")
                kept.extend(front[order[:remaining]].tolist())
            break
        return [pop[i] for i in kept]
