"""Random search baseline (paper §V-B3).

"The implemented random search generates random configurations, evaluates
them and returns those which are non-dominated."  The evaluation budget is
matched to RS-GDE3's so the comparison isolates search quality from search
effort (Table VI gives random search "an equal number of evaluations").
"""

from __future__ import annotations

import numpy as np

from repro.obs import DISABLED, ConvergenceRecord, emit_generation
from repro.optimizer.archive import ParetoArchive
from repro.optimizer.problem import TuningProblem
from repro.optimizer.rsgde3 import OptimizerResult, _dedupe
from repro.util.rng import derive_rng

__all__ = ["random_search"]


def random_search(
    problem: TuningProblem, budget: int, seed: int = 0, batch: int = 256
) -> OptimizerResult:
    """Evaluate *budget* uniform random configurations; return the
    non-dominated subset.

    Sampling is with replacement (duplicates re-hit the target's ledger
    cache and therefore do not inflate E) — the budget counts *distinct*
    evaluated configurations, matching how E is reported for the other
    strategies.
    """
    if budget < 1:
        raise ValueError("budget must be positive")
    obs = getattr(problem, "observability", None) or DISABLED
    rng = derive_rng(seed, "random-search")
    space = problem.space
    evals_before = problem.evaluations

    # the running front over everything sampled so far is insert-only, the
    # exact shape ParetoArchive handles incrementally — per-batch telemetry
    # goes from O(n²) recomputation to O(batch · log n)
    archive: ParetoArchive | None = None
    convergence: list[ConvergenceRecord] = []
    with obs.tracer.span("optimizer.run", algorithm="random", seed=seed) as span:
        while problem.evaluations - evals_before < budget:
            before_batch = problem.evaluations
            want = budget - (problem.evaluations - evals_before)
            vectors = space.full_boundary().sample(rng, min(batch, max(want, 1)))
            configs = problem.evaluate_batch(vectors)

            if archive is None:
                # fixed hypervolume reference from the first batch (the
                # random analogue of RS-GDE3's initial-population rule)
                ref = np.array([c.objectives for c in configs]).max(axis=0) * 1.1
                archive = ParetoArchive(ref)
            for c in configs:
                archive.add(c.objectives, payload=c)
            record = ConvergenceRecord(
                generation=len(convergence),
                evaluations=problem.evaluations - evals_before,
                front_size=len(_dedupe(archive.front())),
                hypervolume=archive.hypervolume,
                accepted=problem.evaluations - before_batch,
            )
            convergence.append(record)
            emit_generation(obs, "random", record)

        front = _dedupe(archive.front())
        span.set(
            evaluations=problem.evaluations - evals_before, front_size=len(front)
        )
    return OptimizerResult(
        front=tuple(front),
        evaluations=problem.evaluations - evals_before,
        generations=0,
        convergence=tuple(convergence),
    )
