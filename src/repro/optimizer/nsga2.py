"""NSGA-II baseline.

The paper situates RS-GDE3 against classical evolutionary multi-objective
algorithms ("Genetic Algorithms [10], [11], [16]").  This module provides a
standard NSGA-II (Deb et al., 2002) over the same integer parameter space —
binary-tournament selection on (rank, crowding), SBX crossover, polynomial
mutation — used by the ablation benchmarks to show what the rough-set
reduction and the DE operator buy over a stock GA.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs import DISABLED, ConvergenceRecord, emit_generation, population_delta
from repro.optimizer.archive import ParetoArchive
from repro.optimizer.config import Configuration
from repro.optimizer.pareto import crowding_distance, non_dominated, non_dominated_sort
from repro.optimizer.problem import TuningProblem
from repro.optimizer.rsgde3 import OptimizerResult, _dedupe
from repro.util.rng import derive_rng

__all__ = ["NSGA2", "NSGA2Settings"]


@dataclass(frozen=True)
class NSGA2Settings:
    population_size: int = 30
    crossover_prob: float = 0.9
    crossover_eta: float = 15.0
    mutation_eta: float = 20.0
    generations: int = 25


@dataclass
class NSGA2:
    problem: TuningProblem
    settings: NSGA2Settings = field(default_factory=NSGA2Settings)

    def run(self, seed: int = 0) -> OptimizerResult:
        obs = getattr(self.problem, "observability", None) or DISABLED
        rng = derive_rng(seed, "nsga2")
        space = self.problem.space
        full = space.full_boundary()
        np_size = self.settings.population_size
        evals_before = self.problem.evaluations

        with obs.tracer.span("optimizer.run", algorithm="nsga2", seed=seed) as span:
            pop = self.problem.evaluate_batch(full.sample(rng, np_size))
            # fixed hypervolume reference from the initial population, the
            # same normalization rule RS-GDE3 uses
            ref = np.array([c.objectives for c in pop]).max(axis=0) * 1.1
            convergence = [self._record(0, pop, ref, evals_before, len(pop), 0)]
            emit_generation(obs, "nsga2", convergence[0])
            for gen in range(1, self.settings.generations + 1):
                offspring_vecs = self._make_offspring(pop, rng)
                offspring = self.problem.evaluate_batch(offspring_vecs)
                previous = pop
                pop = self._environmental_selection(pop + offspring, np_size)
                accepted, dominated = population_delta(previous, pop)
                convergence.append(
                    self._record(gen, pop, ref, evals_before, accepted, dominated)
                )
                emit_generation(obs, "nsga2", convergence[-1])

            front = _dedupe(non_dominated(pop, key=lambda c: c.objectives))
            span.set(
                generations=self.settings.generations,
                evaluations=self.problem.evaluations - evals_before,
                front_size=len(front),
            )
        return OptimizerResult(
            front=tuple(front),
            evaluations=self.problem.evaluations - evals_before,
            generations=self.settings.generations,
            convergence=tuple(convergence),
        )

    def _record(
        self,
        generation: int,
        pop: list[Configuration],
        ref: np.ndarray,
        evals_before: int,
        accepted: int,
        dominated: int,
    ) -> ConvergenceRecord:
        # one staircase pass for |S| and V together — bit-identical to the
        # non_dominated + hypervolume pair it replaces
        front_size, hv = ParetoArchive.stats_of(
            np.array([c.objectives for c in pop]), ref
        )
        return ConvergenceRecord(
            generation=generation,
            evaluations=self.problem.evaluations - evals_before,
            front_size=front_size,
            hypervolume=hv,
            accepted=accepted,
            dominated=dominated,
        )

    # ------------------------------------------------------------------

    def _rank_and_crowd(self, pop: list[Configuration]) -> tuple[np.ndarray, np.ndarray]:
        objs = np.array([c.objectives for c in pop])
        fronts = non_dominated_sort(objs)
        rank = np.empty(len(pop), dtype=int)
        crowd = np.empty(len(pop))
        for r, front in enumerate(fronts):
            rank[front] = r
            crowd[front] = crowding_distance(objs[front])
        return rank, crowd

    def _tournament(self, rank, crowd, rng) -> int:
        i, j = rng.integers(len(rank)), rng.integers(len(rank))
        if rank[i] != rank[j]:
            return i if rank[i] < rank[j] else j
        return i if crowd[i] >= crowd[j] else j

    def _make_offspring(self, pop: list[Configuration], rng) -> np.ndarray:
        space = self.problem.space
        names = space.names
        vecs = np.stack([c.vector(names) for c in pop])
        full = space.full_boundary()
        rank, crowd = self._rank_and_crowd(pop)
        out = []
        while len(out) < self.settings.population_size:
            p1 = vecs[self._tournament(rank, crowd, rng)]
            p2 = vecs[self._tournament(rank, crowd, rng)]
            c1, c2 = self._sbx(p1, p2, full, rng)
            out.append(self._mutate(c1, full, rng))
            if len(out) < self.settings.population_size:
                out.append(self._mutate(c2, full, rng))
        return np.stack([full.get_closest_to(v) for v in out])

    def _sbx(self, p1, p2, full, rng):
        if rng.random() > self.settings.crossover_prob:
            return p1.copy(), p2.copy()
        eta = self.settings.crossover_eta
        u = rng.random(p1.shape)
        beta = np.where(
            u <= 0.5,
            (2 * u) ** (1.0 / (eta + 1)),
            (1.0 / (2 * (1 - u))) ** (1.0 / (eta + 1)),
        )
        c1 = 0.5 * ((1 + beta) * p1 + (1 - beta) * p2)
        c2 = 0.5 * ((1 - beta) * p1 + (1 + beta) * p2)
        return c1, c2

    def _mutate(self, v, full, rng):
        eta = self.settings.mutation_eta
        prob = 1.0 / max(1, v.shape[0])
        span = full.hi - full.lo
        u = rng.random(v.shape)
        do = rng.random(v.shape) < prob
        delta = np.where(
            u < 0.5,
            (2 * u) ** (1.0 / (eta + 1)) - 1.0,
            1.0 - (2 * (1 - u)) ** (1.0 / (eta + 1)),
        )
        return np.where(do, v + delta * span, v)

    def _environmental_selection(
        self, pop: list[Configuration], size: int
    ) -> list[Configuration]:
        objs = np.array([c.objectives for c in pop])
        fronts = non_dominated_sort(objs)
        kept: list[int] = []
        for front in fronts:
            if len(kept) + len(front) <= size:
                kept.extend(front.tolist())
                continue
            room = size - len(kept)
            if room > 0:
                dist = crowding_distance(objs[front])
                order = np.argsort(-dist, kind="stable")
                kept.extend(front[order[:room]].tolist())
            break
        return [pop[i] for i in kept]
