"""Solution-set quality metrics (paper §V-B3, Table VI).

Three metrics compare optimization strategies:

* ``E`` — evaluations spent obtaining the set (algorithm efficiency);
* ``|S|`` — number of Pareto points (runtime flexibility);
* ``V(S)`` — normalized hypervolume (solution quality), normalized over
  the union envelope of all fronts under comparison so values are
  directly comparable across strategies.

``igd`` (inverse generational distance to a reference front) is provided as
an additional indicator used by the extended benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.optimizer.config import Configuration
from repro.optimizer.hypervolume import normalized_hypervolume
from repro.optimizer.rsgde3 import OptimizerResult

__all__ = ["FrontMetrics", "compare_fronts", "igd"]


@dataclass(frozen=True)
class FrontMetrics:
    """One strategy's Table VI row."""

    name: str
    evaluations: float
    size: float
    hypervolume: float

    def row(self) -> list:
        return [self.name, round(self.evaluations, 1), round(self.size, 1), round(self.hypervolume, 3)]


def _objs(front: tuple[Configuration, ...]) -> np.ndarray:
    return np.array([c.objectives for c in front], dtype=float)


def compare_fronts(results: dict[str, list[OptimizerResult]]) -> list[FrontMetrics]:
    """Aggregate repeated runs per strategy into Table VI metrics.

    The hypervolume normalization envelope (ideal/nadir) is computed over
    the union of *all* fronts of *all* strategies and runs, then each run's
    V(S) is computed against it; per-strategy numbers are arithmetic means
    over runs, exactly like the paper's 5-run aggregation.
    """
    all_points = [
        _objs(res.front)
        for runs in results.values()
        for res in runs
        if res.front
    ]
    if not all_points:
        raise ValueError("no fronts to compare")
    union = np.vstack(all_points)
    ideal = union.min(axis=0)
    nadir = union.max(axis=0)

    out = []
    for name, runs in results.items():
        if not runs:
            continue
        es = [res.evaluations for res in runs]
        sizes = [res.size for res in runs]
        hvs = [
            normalized_hypervolume(_objs(res.front), ideal, nadir) if res.front else 0.0
            for res in runs
        ]
        out.append(
            FrontMetrics(
                name=name,
                evaluations=float(np.mean(es)),
                size=float(np.mean(sizes)),
                hypervolume=float(np.mean(hvs)),
            )
        )
    return out


def igd(front: np.ndarray, reference_front: np.ndarray) -> float:
    """Inverse generational distance: mean distance from each reference
    point to its nearest front point (lower is better)."""
    front = np.atleast_2d(front)
    reference_front = np.atleast_2d(reference_front)
    if front.size == 0:
        return float("inf")
    dists = np.linalg.norm(
        reference_front[:, None, :] - front[None, :, :], axis=2
    ).min(axis=1)
    return float(dists.mean())
