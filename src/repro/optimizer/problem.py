"""The tuning problem: parameter space × objective function.

Adapts a region's :class:`~repro.transform.skeleton.TransformationSkeleton`
and a :class:`~repro.evaluation.simulator.SimulatedTarget` to the generic
multi-objective interface the solvers consume: ``f : C → R^m`` mapping a
parameter vector to (time, resources).

The paper's objective function "executes the resulting version and collects
measurements" — here the execution is the simulated measurement; the
evaluation ledger of the target provides the ``E`` metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.evaluation.parallel_eval import EvaluationEngine
from repro.evaluation.simulator import SimulatedTarget
from repro.obs import DISABLED, Observability
from repro.optimizer.config import Configuration
from repro.optimizer.space import ParameterSpace
from repro.transform.skeleton import TransformationSkeleton

__all__ = ["TuningProblem"]


@dataclass
class TuningProblem:
    """One region's multi-objective tuning problem.

    :param space: the skeleton's parameters (tile sizes + threads [+ …]).
    :param target: the measurement substrate.
    :param skeleton: retained so solutions can be instantiated into code.
    :param tri_objective: optimize (time, resources, energy) instead of
        (time, resources); requires a target with ``measure_energy=True``.
    :param engine: the evaluation engine batches are routed through; None
        builds a serial engine over *target* on first use.  Hand in a
        multi-worker engine to evaluate generations in parallel.
    :param obs: observability handle the optimizers report convergence
        telemetry through; None means disabled (zero overhead).
    """

    space: ParameterSpace
    target: SimulatedTarget
    skeleton: TransformationSkeleton | None = None
    tri_objective: bool = False
    engine: EvaluationEngine | None = None
    obs: Observability | None = None

    def __post_init__(self) -> None:
        if self.tri_objective and not self.target.measure_energy:
            raise ValueError(
                "tri-objective tuning needs a target with measure_energy=True"
            )
        if self.engine is not None and self.engine.target is not self.target:
            raise ValueError("engine must evaluate against this problem's target")

    @classmethod
    def from_skeleton(
        cls,
        skeleton: TransformationSkeleton,
        target: SimulatedTarget,
        tri_objective: bool = False,
        engine: EvaluationEngine | None = None,
        obs: Observability | None = None,
    ) -> "TuningProblem":
        return cls(
            space=ParameterSpace(skeleton.parameters),
            target=target,
            skeleton=skeleton,
            tri_objective=tri_objective,
            engine=engine,
            obs=obs,
        )

    @property
    def observability(self) -> Observability:
        """The run's observability handle (the shared disabled handle when
        none was injected)."""
        return self.obs or DISABLED

    @property
    def evaluation_engine(self) -> EvaluationEngine:
        """The engine all batch evaluations go through (created serially on
        first use if none was injected)."""
        if self.engine is None:
            self.engine = EvaluationEngine(self.target, obs=self.obs)
        return self.engine

    @property
    def num_objectives(self) -> int:
        return 3 if self.tri_objective else 2

    @property
    def evaluations(self) -> int:
        """E — configurations evaluated so far."""
        return self.target.evaluations

    # ------------------------------------------------------------------

    def split_values(self, values: dict[str, int]) -> tuple[dict[str, int], int]:
        """(tile_sizes, threads) from a flat parameter assignment."""
        tiles = {
            name[len("tile_"):]: v
            for name, v in values.items()
            if name.startswith("tile_")
        }
        threads = int(values.get("threads", 1))
        return tiles, threads

    def evaluate(self, values: dict[str, int]) -> Configuration:
        tiles, threads = self.split_values(values)
        obj = self.target.evaluate(tiles, threads)
        vec = obj.vector3() if self.tri_objective else obj.vector()
        return Configuration.make(values, vec)

    def evaluate_vector(self, vec: np.ndarray) -> Configuration:
        return self.evaluate(self.space.to_dict(vec))

    def batch_configs(
        self, vectors: np.ndarray
    ) -> tuple[list[dict[str, int]], list[tuple[dict[str, int], int]]]:
        """Decode (B, dim) parameter vectors into the per-row value dicts
        and the ``(tile_sizes, threads)`` pairs an evaluation engine
        consumes — the front half of :meth:`evaluate_batch`, exposed so a
        cross-region scheduler can route the engine call itself."""
        vectors = np.asarray(vectors)
        values_list = [self.space.to_dict(row) for row in vectors]
        configs = [self.split_values(values) for values in values_list]
        return values_list, configs

    def make_configurations(
        self, values_list: list[dict[str, int]], objectives
    ) -> list[Configuration]:
        """Pair decoded value dicts with their measured objectives — the
        back half of :meth:`evaluate_batch`."""
        out = []
        for values, obj in zip(values_list, objectives):
            vec = obj.vector3() if self.tri_objective else obj.vector()
            out.append(Configuration.make(values, vec))
        return out

    def evaluate_batch(self, vectors: np.ndarray) -> list[Configuration]:
        """Evaluate (B, dim) parameter vectors through the evaluation
        engine — the paper's parallel evaluation of each generation's
        configurations (dedup → dispatch to workers → serial commit).
        """
        values_list, configs = self.batch_configs(vectors)
        result = self.evaluation_engine.evaluate_batch(configs)
        return self.make_configurations(values_list, result.objectives)
