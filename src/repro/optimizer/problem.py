"""The tuning problem: parameter space × objective function.

Adapts a region's :class:`~repro.transform.skeleton.TransformationSkeleton`
and a :class:`~repro.evaluation.simulator.SimulatedTarget` to the generic
multi-objective interface the solvers consume: ``f : C → R^m`` mapping a
parameter vector to (time, resources).

The paper's objective function "executes the resulting version and collects
measurements" — here the execution is the simulated measurement; the
evaluation ledger of the target provides the ``E`` metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.evaluation.simulator import SimulatedTarget
from repro.optimizer.config import Configuration
from repro.optimizer.space import ParameterSpace
from repro.transform.skeleton import TransformationSkeleton

__all__ = ["TuningProblem"]


@dataclass
class TuningProblem:
    """One region's multi-objective tuning problem.

    :param space: the skeleton's parameters (tile sizes + threads [+ …]).
    :param target: the measurement substrate.
    :param skeleton: retained so solutions can be instantiated into code.
    :param tri_objective: optimize (time, resources, energy) instead of
        (time, resources); requires a target with ``measure_energy=True``.
    """

    space: ParameterSpace
    target: SimulatedTarget
    skeleton: TransformationSkeleton | None = None
    tri_objective: bool = False

    def __post_init__(self) -> None:
        if self.tri_objective and not self.target.measure_energy:
            raise ValueError(
                "tri-objective tuning needs a target with measure_energy=True"
            )

    @classmethod
    def from_skeleton(
        cls,
        skeleton: TransformationSkeleton,
        target: SimulatedTarget,
        tri_objective: bool = False,
    ) -> "TuningProblem":
        return cls(
            space=ParameterSpace(skeleton.parameters),
            target=target,
            skeleton=skeleton,
            tri_objective=tri_objective,
        )

    @property
    def num_objectives(self) -> int:
        return 3 if self.tri_objective else 2

    @property
    def evaluations(self) -> int:
        """E — configurations evaluated so far."""
        return self.target.evaluations

    # ------------------------------------------------------------------

    def split_values(self, values: dict[str, int]) -> tuple[dict[str, int], int]:
        """(tile_sizes, threads) from a flat parameter assignment."""
        tiles = {
            name[len("tile_"):]: v
            for name, v in values.items()
            if name.startswith("tile_")
        }
        threads = int(values.get("threads", 1))
        return tiles, threads

    def evaluate(self, values: dict[str, int]) -> Configuration:
        tiles, threads = self.split_values(values)
        obj = self.target.evaluate(tiles, threads)
        vec = obj.vector3() if self.tri_objective else obj.vector()
        return Configuration.make(values, vec)

    def evaluate_vector(self, vec: np.ndarray) -> Configuration:
        return self.evaluate(self.space.to_dict(vec))

    def evaluate_batch(self, vectors: np.ndarray) -> list[Configuration]:
        """Evaluate (B, dim) parameter vectors via the target's batch path.

        Mirrors the paper's parallel evaluation of each generation's
        configurations.
        """
        vectors = np.asarray(vectors)
        names = self.space.names
        band = self.target.band
        tile_cols = []
        for v in band:
            pname = f"tile_{v}"
            if pname in names:
                tile_cols.append(vectors[:, names.index(pname)])
            else:
                tile_cols.append(np.full(len(vectors), self.target.model.extent[v]))
        tiles = np.stack(tile_cols, axis=1).astype(np.int64)
        if "threads" in names:
            threads = vectors[:, names.index("threads")].astype(np.int64)
        else:
            threads = np.ones(len(vectors), dtype=np.int64)
        times = self.target.evaluate_batch(tiles, threads)
        out = []
        for row, tile_row, t, thr in zip(vectors, tiles, times, threads):
            values = self.space.to_dict(row)
            if self.tri_objective:
                tile_map = {v: int(x) for v, x in zip(band, tile_row)}
                obj = self.target.cached_objectives(tile_map, int(thr))
                out.append(Configuration.make(values, obj.vector3()))
            else:
                out.append(Configuration.make(values, (float(t), float(t * thr))))
        return out
