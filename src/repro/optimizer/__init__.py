"""Multi-objective optimization: RS-GDE3 and baselines.

The paper's static optimizer (§III-B) maps region tuning to a
multi-objective problem and solves it with **RS-GDE3**: the Generalized
Differential Evolution 3 algorithm (Kukkonen & Lampinen) combined with a
Rough-Set-based search-space reduction re-applied every iteration.

Package contents:

* :mod:`repro.optimizer.pareto` — dominance, non-dominated filtering,
  non-dominated sorting, crowding distance;
* :mod:`repro.optimizer.hypervolume` — the V(S) quality indicator;
* :mod:`repro.optimizer.space` / :mod:`config` / :mod:`problem` — parameter
  spaces, configurations and the tuning-problem adapter over the simulated
  target;
* :mod:`repro.optimizer.gde3` — GDE3 generations within a boundary box;
* :mod:`repro.optimizer.roughset` — the rough-set boundary reduction;
* :mod:`repro.optimizer.rsgde3` — the combined driver with the paper's
  "no improvement for three consecutive iterations" stopping rule;
* :mod:`repro.optimizer.brute_force`, :mod:`random_search`,
  :mod:`nsga2` — comparison strategies;
* :mod:`repro.optimizer.metrics` — E, |S| and V(S) reporting (Table VI).
"""

from repro.optimizer.pareto import (
    crowding_distance,
    dominates,
    non_dominated,
    non_dominated_sort,
)
from repro.optimizer.hypervolume import hypervolume, normalized_hypervolume
from repro.optimizer.archive import ParetoArchive
from repro.optimizer.config import Configuration
from repro.optimizer.space import Boundary, ParameterSpace
from repro.optimizer.problem import TuningProblem
from repro.optimizer.gde3 import GDE3, GDE3Settings
from repro.optimizer.roughset import rough_set_boundary
from repro.optimizer.rsgde3 import RSGDE3, OptimizerResult
from repro.optimizer.random_search import random_search
from repro.optimizer.brute_force import brute_force_search, grid_candidates
from repro.optimizer.nsga2 import NSGA2
from repro.optimizer.metrics import FrontMetrics, compare_fronts
from repro.optimizer.seeding import informed_seeds, mixed_initial_vectors
from repro.optimizer.skeleton_choice import (
    SkeletonChoiceProblem,
    build_skeleton_choice,
    legal_loop_orders,
)

__all__ = [
    "dominates",
    "non_dominated",
    "non_dominated_sort",
    "crowding_distance",
    "hypervolume",
    "normalized_hypervolume",
    "ParetoArchive",
    "Configuration",
    "ParameterSpace",
    "Boundary",
    "TuningProblem",
    "GDE3",
    "GDE3Settings",
    "rough_set_boundary",
    "RSGDE3",
    "OptimizerResult",
    "random_search",
    "brute_force_search",
    "grid_candidates",
    "NSGA2",
    "FrontMetrics",
    "compare_fronts",
    "informed_seeds",
    "mixed_initial_vectors",
    "SkeletonChoiceProblem",
    "build_skeleton_choice",
    "legal_loop_orders",
]
