"""Hypervolume indicator V(S).

The paper (§V-B3, citing [22]) judges solution-set quality by the
*normalized* hypervolume: the fraction of the normalized objective box
dominated by the front, with 0 the worst and 1 the (unattainable) ideal.

Exact computation is provided for two objectives (the paper's case: time ×
resources) via the classic staircase sweep, and for m > 2 via the
inclusion-exclusion principle (exponential in front size — fine for the
population-sized fronts here, and cross-checked in tests against the 2-D
exact method).
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.optimizer.pareto import non_dominated_mask

__all__ = ["hypervolume", "normalized_hypervolume"]


def hypervolume(points: np.ndarray, reference: np.ndarray) -> float:
    """Hypervolume dominated by *points* up to *reference* (minimization).

    Points beyond the reference contribute nothing; dominated points are
    filtered out first.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    ref = np.asarray(reference, dtype=float)
    if pts.size == 0:
        return 0.0
    if pts.shape[1] != ref.shape[0]:
        raise ValueError("reference dimension mismatch")
    # clip coordinates at the reference (a point beyond ref in one
    # objective keeps its contribution from the others); drop only points
    # that are not strictly inside the box in any dimension
    pts = np.minimum(pts, ref)
    inside = (pts < ref).any(axis=1)
    pts = pts[inside]
    if pts.shape[0] == 0:
        return 0.0
    pts = pts[non_dominated_mask(pts)]
    if pts.shape[1] == 2:
        return _hv2d(pts, ref)
    if pts.shape[1] == 3:
        return _hv3d(pts, ref)
    return _hv_inclusion_exclusion(pts, ref)


def _hv2d(pts: np.ndarray, ref: np.ndarray) -> float:
    """Staircase sweep; input may contain dominated points (filtered)."""
    pts = pts[non_dominated_mask(pts)]
    order = np.argsort(pts[:, 0], kind="stable")
    pts = pts[order]
    total = 0.0
    prev_y = ref[1]
    for x, y in pts:
        if y >= prev_y:
            continue  # dominated in 2D (duplicate x)
        total += (ref[0] - x) * (prev_y - y)
        prev_y = y
    return float(total)


def _hv3d(pts: np.ndarray, ref: np.ndarray) -> float:
    """Exact 3-D hypervolume by sweeping z-slabs: between consecutive z
    values the dominated volume is the 2-D hypervolume of all points with
    smaller-or-equal z, times the slab height.  O(n^2 log n), fine for
    front-sized sets."""
    order = np.argsort(pts[:, 2], kind="stable")
    total = 0.0
    active: list[np.ndarray] = []
    n = len(order)
    for i, idx in enumerate(order):
        active.append(pts[idx, :2])
        z = pts[idx, 2]
        z_next = pts[order[i + 1], 2] if i + 1 < n else ref[2]
        if z_next > z:
            area = _hv2d(np.array(active), ref[:2])
            total += area * (z_next - z)
    return float(total)


def _hv_inclusion_exclusion(pts: np.ndarray, ref: np.ndarray) -> float:
    n = pts.shape[0]
    if n > 20:
        raise ValueError(
            "inclusion-exclusion hypervolume limited to fronts of <= 20 points"
        )
    total = 0.0
    for k in range(1, n + 1):
        sign = 1.0 if k % 2 else -1.0
        for subset in combinations(range(n), k):
            corner = pts[list(subset)].max(axis=0)
            total += sign * float(np.prod(ref - corner))
    return total


def normalized_hypervolume(
    points: np.ndarray,
    ideal: np.ndarray,
    nadir: np.ndarray,
) -> float:
    """V(S) ∈ [0, 1]: hypervolume after min-max normalization into the unit
    box with reference point (1, ..., 1).

    ``ideal``/``nadir`` define the normalization (typically the envelope of
    the union of all fronts under comparison).  Degenerate dimensions
    (ideal == nadir) are centred at 0.5.

    The reference point sits at a 10% margin beyond the normalized nadir
    (the conventional choice) so boundary points of the envelope still
    contribute volume; the result is rescaled by the margin box so the
    ideal point maps to exactly 1.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    ideal = np.asarray(ideal, dtype=float)
    nadir = np.asarray(nadir, dtype=float)
    span = nadir - ideal
    norm = np.empty_like(pts)
    for j in range(pts.shape[1]):
        if span[j] <= 0:
            norm[:, j] = 0.5
        else:
            norm[:, j] = (pts[:, j] - ideal[j]) / span[j]
    margin = 1.1
    ref = np.full(pts.shape[1], margin)
    hv = hypervolume(norm, ref) / margin ** pts.shape[1]
    return float(min(1.0, hv))
