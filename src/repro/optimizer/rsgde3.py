"""RS-GDE3 — the paper's static optimizer (Fig. 4).

The driver alternates GDE3 generations with rough-set boundary updates:

.. code-block:: none

    population ← random sample of the full space (evaluated)
    B ← full space
    repeat
        population ← GDE3 generation within B
        B ← rough-set reduction from the current population
    until the solutions have not improved for 3 consecutive iterations

"Improvement" is measured by the hypervolume of the population's
non-dominated front (with a fixed normalization established from the
initial population), matching the paper's stopping rule "when the solutions
do not improve for three consecutive iterations".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs import DISABLED, ConvergenceRecord, emit_generation, population_delta
from repro.optimizer.archive import ParetoArchive
from repro.optimizer.config import Configuration
from repro.optimizer.hypervolume import hypervolume
from repro.optimizer.gde3 import GDE3, GDE3Settings
from repro.optimizer.pareto import non_dominated
from repro.optimizer.problem import TuningProblem
from repro.optimizer.roughset import rough_set_boundary
from repro.optimizer.space import Boundary
from repro.util.rng import derive_rng

__all__ = ["RSGDE3", "RSGDE3Settings", "OptimizerResult"]


@dataclass(frozen=True)
class RSGDE3Settings:
    """Driver constants.

    :param gde3: inner GDE3 settings (NP=30, CR=F=0.5 per the paper).
    :param patience: consecutive non-improving iterations before stopping
        (3 in the paper).
    :param max_generations: hard safety cap.
    :param hv_epsilon: relative hypervolume gain below which a generation
        counts as non-improving.
    :param protect: parameter names exempt from the rough-set reduction
        (see :func:`repro.optimizer.roughset.rough_set_boundary`); an empty
        set reproduces the unprotected ablation.
    """

    gde3: GDE3Settings = field(default_factory=GDE3Settings)
    patience: int = 3
    max_generations: int = 200
    hv_epsilon: float = 1e-6
    protect: frozenset[str] = frozenset({"threads"})
    #: seed part of the initial population from cache-capacity reasoning
    #: (see :mod:`repro.optimizer.seeding`); 0.0 reproduces the paper's
    #: uniform random initialization
    informed_seed_fraction: float = 0.0


@dataclass(frozen=True)
class OptimizerResult:
    """Outcome of one optimizer run.

    :param front: the Pareto set S of non-dominated configurations.
    :param evaluations: E — configurations evaluated during the run.
    :param generations: GDE3 generations executed.
    :param boundary_history: rough-set box volume fraction per iteration
        (diagnostics for the Fig. 4/5 reproduction).
    """

    front: tuple[Configuration, ...]
    evaluations: int
    generations: int
    boundary_history: tuple[float, ...] = ()
    #: (evaluations so far, population-front hypervolume) per generation —
    #: convergence trace for the seeding/strategy comparisons
    hv_history: tuple[tuple[int, float], ...] = ()
    #: full per-generation telemetry (E, |S|, V, accepted/dominated) — the
    #: paper's V-vs-E trajectory as first-class data
    convergence: tuple[ConvergenceRecord, ...] = ()

    @property
    def size(self) -> int:
        return len(self.front)


@dataclass
class RSGDE3:
    """The combined optimizer."""

    problem: TuningProblem
    settings: RSGDE3Settings = field(default_factory=RSGDE3Settings)

    def run(self, seed: int = 0) -> OptimizerResult:
        obs = getattr(self.problem, "observability", None) or DISABLED
        rng = derive_rng(seed, "rsgde3")
        gde3 = GDE3(self.problem, self.settings.gde3)
        full = self.problem.space.full_boundary()

        evals_before = self.problem.evaluations
        with obs.tracer.span("optimizer.run", algorithm="rsgde3", seed=seed) as span:
            if self.settings.informed_seed_fraction > 0:
                from repro.optimizer.seeding import mixed_initial_vectors

                vectors = mixed_initial_vectors(
                    self.problem.space,
                    self.problem.target.model,
                    self.settings.gde3.population_size,
                    rng,
                    informed_fraction=self.settings.informed_seed_fraction,
                )
                population = self.problem.evaluate_batch(vectors)
            else:
                population = gde3.initial_population(full, rng)
            boundary = rough_set_boundary(population, full, protect=self.settings.protect)
            history = [boundary.volume_fraction()]

            # fixed hypervolume normalization from the initial population
            objs0 = np.array([c.objectives for c in population])
            ref = objs0.max(axis=0) * 1.1
            front_size, best_hv = ParetoArchive.stats_of(objs0, ref)
            convergence = [
                ConvergenceRecord(
                    generation=0,
                    evaluations=self.problem.evaluations - evals_before,
                    front_size=front_size,
                    hypervolume=best_hv,
                    accepted=len(population),
                )
            ]
            emit_generation(obs, "rsgde3", convergence[0])
            hv_history = [(convergence[0].evaluations, best_hv)]

            stalled = 0
            generations = 0
            while stalled < self.settings.patience and generations < self.settings.max_generations:
                previous = population
                population = gde3.generation(population, boundary, rng)
                boundary = rough_set_boundary(population, full, protect=self.settings.protect)
                history.append(boundary.volume_fraction())
                generations += 1

                # one staircase pass replaces the non_dominated +
                # hypervolume pair — |S| and V are bit-identical, so the
                # stopping rule below is unchanged
                front_size, hv = ParetoArchive.stats_of(
                    np.array([c.objectives for c in population]), ref
                )
                accepted, dominated = population_delta(previous, population)
                record = ConvergenceRecord(
                    generation=generations,
                    evaluations=self.problem.evaluations - evals_before,
                    front_size=front_size,
                    hypervolume=hv,
                    accepted=accepted,
                    dominated=dominated,
                )
                convergence.append(record)
                emit_generation(obs, "rsgde3", record)
                hv_history.append((record.evaluations, hv))
                if hv > best_hv * (1.0 + self.settings.hv_epsilon):
                    best_hv = hv
                    stalled = 0
                else:
                    stalled += 1

            front = non_dominated(population, key=lambda c: c.objectives)
            front = _dedupe(front)
            span.set(
                generations=generations,
                evaluations=self.problem.evaluations - evals_before,
                front_size=len(front),
                hypervolume=best_hv,
            )
        return OptimizerResult(
            front=tuple(front),
            evaluations=self.problem.evaluations - evals_before,
            generations=generations,
            boundary_history=tuple(history),
            hv_history=tuple(hv_history),
            convergence=tuple(convergence),
        )

    @staticmethod
    def _front_hv(population: list[Configuration], ref: np.ndarray) -> float:
        objs = np.array([c.objectives for c in population])
        return hypervolume(objs, ref)


def _dedupe(front: list[Configuration]) -> list[Configuration]:
    """Drop configurations with identical parameter assignments."""
    seen = set()
    out = []
    for c in sorted(front, key=lambda c: c.objectives):
        if c.values in seen:
            continue
        seen.add(c.values)
        out.append(c)
    return out
