"""Brute-force grid search (paper §V-B1).

The paper's reference method: evaluate a regular grid over the tile-size
space crossed with the machine's evaluated thread counts (>14,000 tiling
configurations for mm), then keep the non-dominated set.  This is the
baseline RS-GDE3 is compared against in Fig. 9 / Table VI, and the source
of the per-thread-count optima of Table II.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.obs import DISABLED, ConvergenceRecord, emit_generation
from repro.optimizer.config import Configuration
from repro.optimizer.pareto import non_dominated_mask
from repro.optimizer.problem import TuningProblem
from repro.optimizer.rsgde3 import OptimizerResult, _dedupe
from repro.optimizer.space import ParameterSpace

__all__ = ["grid_candidates", "brute_force_search", "BruteForceData"]


def grid_candidates(lo: int, hi: int, points: int) -> list[int]:
    """A regular grid of ~*points* integer candidates in [lo, hi].

    Uses uniform spacing like the paper's brute force ("exhaustively
    sampling the search space on a regular grid"); always includes both
    endpoints.
    """
    if lo > hi:
        raise ValueError(f"empty range [{lo}, {hi}]")
    if points < 2 or hi - lo < points:
        return list(range(lo, hi + 1))
    vals = np.unique(np.round(np.linspace(lo, hi, points)).astype(int))
    return vals.tolist()


class BruteForceData:
    """Raw brute-force sweep results: every grid point with its measured
    time, queryable per thread count (feeds Tables II/V and Figs. 1/2/8)."""

    def __init__(
        self,
        names: tuple[str, ...],
        vectors: np.ndarray,
        times: np.ndarray,
        threads: np.ndarray,
    ) -> None:
        self.names = names
        self.vectors = vectors
        self.times = times
        self.threads = threads

    def best_for_threads(self, threads: int) -> tuple[dict[str, int], float]:
        mask = self.threads == threads
        if not mask.any():
            raise KeyError(f"no evaluations with {threads} threads")
        idx = np.flatnonzero(mask)[np.argmin(self.times[mask])]
        values = {n: int(v) for n, v in zip(self.names, self.vectors[idx])}
        return values, float(self.times[idx])

    def thread_counts(self) -> list[int]:
        return sorted(set(int(t) for t in self.threads))

    def __len__(self) -> int:
        return len(self.times)


def brute_force_search(
    problem: TuningProblem,
    tile_grid: dict[str, list[int]],
    thread_counts: list[int],
    keep_data: bool = False,
) -> tuple[OptimizerResult, BruteForceData | None]:
    """Evaluate the full cross product of tile candidates × thread counts.

    :param tile_grid: candidate tile sizes per band loop (keys are the bare
        loop names, e.g. ``{"i": [...], "j": [...]}``).
    :param thread_counts: thread counts to sweep.
    :param keep_data: additionally return the raw sweep for table/figure
        generation.
    :returns: (non-dominated result, optional raw data).
    """
    space = problem.space
    names = space.names
    evals_before = problem.evaluations

    tile_names = [n for n in names if n.startswith("tile_")]
    axes = []
    for n in tile_names:
        loop = n[len("tile_"):]
        if loop not in tile_grid:
            raise KeyError(f"tile grid missing loop {loop!r}")
        axes.append(tile_grid[loop])

    combos = np.array(list(itertools.product(*axes)), dtype=np.int64)
    n_tiles = len(combos)
    n_threads = len(thread_counts)

    vectors = np.empty((n_tiles * n_threads, len(names)))
    for t_idx, thr in enumerate(thread_counts):
        block = slice(t_idx * n_tiles, (t_idx + 1) * n_tiles)
        for j, n in enumerate(tile_names):
            vectors[block, names.index(n)] = combos[:, j]
        if "threads" in names:
            vectors[block, names.index("threads")] = thr

    obs = getattr(problem, "observability", None) or DISABLED
    with obs.tracer.span(
        "optimizer.run", algorithm="brute-force", grid_points=len(vectors)
    ) as span:
        configs = problem.evaluate_batch(vectors)
        objs = np.array([c.objectives for c in configs])
        mask = non_dominated_mask(objs)
        front = _dedupe([c for c, keep in zip(configs, mask) if keep])
        span.set(
            evaluations=problem.evaluations - evals_before, front_size=len(front)
        )

    from repro.optimizer.archive import ParetoArchive

    record = ConvergenceRecord(
        generation=0,
        evaluations=problem.evaluations - evals_before,
        front_size=len(front),
        hypervolume=ParetoArchive.of(objs[mask], objs.max(axis=0) * 1.1).hypervolume,
        accepted=problem.evaluations - evals_before,
    )
    emit_generation(obs, "brute-force", record)

    result = OptimizerResult(
        front=tuple(front),
        evaluations=problem.evaluations - evals_before,
        generations=0,
        convergence=(record,),
    )
    data = None
    if keep_data:
        times = objs[:, 0]
        threads_arr = np.array([c.value("threads") if "threads" in names else 1 for c in configs])
        data = BruteForceData(
            names=names, vectors=vectors.astype(int), times=times, threads=threads_arr
        )
    return result, data
