"""Informed population seeding.

RS-GDE3 starts from a uniform random sample (paper §III-B3).  As an
extension in the spirit of the paper's future work, this module derives
*informed* seed configurations from the machine model — no measurements,
only static reasoning the analyzer could do:

* tile shapes sized to fit a fraction of each cache level's per-thread
  effective capacity (balanced across the tiled dimensions),
* spread over the machine's characteristic thread counts,
* plus the untiled configuration as an anchor.

The ablation benchmark (`bench`: ``test_ext_seeding``) measures what this
buys in evaluations-to-quality.  Seeding never replaces the whole random
population — half of it stays random so the search keeps exploration
(and the rough-set reduction keeps dominated reference points).
"""

from __future__ import annotations

import math

import numpy as np

from repro.evaluation.cost import RegionCostModel
from repro.optimizer.space import ParameterSpace

__all__ = ["informed_seeds", "mixed_initial_vectors"]


def informed_seeds(
    space: ParameterSpace,
    model: RegionCostModel,
    count: int,
) -> np.ndarray:
    """Up to *count* seed vectors derived from cache capacities.

    For every cache level and a few occupancy fractions, solve
    ``k · prod(tiles) · elem = capacity_fraction`` for balanced tiles over
    the tuned dimensions, at several characteristic thread counts.
    """
    machine = model.machine
    names = space.names
    tile_params = [n for n in names if n.startswith("tile_")]
    if not tile_params:
        return np.zeros((0, space.dim))
    elem = 8  # double precision, the kernel class at hand
    n_dims = len(tile_params)
    thread_counts = machine.default_thread_counts()

    seeds: list[np.ndarray] = []
    capacities = [lv.size for lv in machine.levels]
    for cap in capacities:
        for fraction in (0.5, 0.9):
            for threads in thread_counts:
                per_thread = cap * fraction
                shared = machine.levels[-1].size == cap
                if shared:
                    per_thread /= min(threads, machine.cores_per_socket)
                # balanced tiles: prod(t) * elem * streams ~ per_thread,
                # with ~3 streams as a generic estimate
                target_elems = max(1.0, per_thread / (elem * 3))
                side = target_elems ** (1.0 / n_dims)
                vec = []
                for name in names:
                    if name.startswith("tile_"):
                        p = space.parameter(name)
                        vec.append(p.clamp(side))
                    elif name == "threads":
                        vec.append(space.parameter(name).clamp(threads))
                    else:
                        p = space.parameter(name)
                        vec.append(p.clamp((p.span()[0] + p.span()[1]) / 2))
                seeds.append(np.array(vec, dtype=float))
    # anchor: the untiled configuration at 1 thread
    vec = []
    for name in names:
        p = space.parameter(name)
        if name.startswith("tile_"):
            vec.append(float(p.span()[1]))
        elif name == "threads":
            vec.append(float(p.clamp(1)))
        else:
            vec.append(float(p.clamp(p.span()[0])))
    seeds.append(np.array(vec, dtype=float))

    # dedupe, keep order, cap at count
    seen: set[tuple] = set()
    unique = []
    for s in seeds:
        key = tuple(s.tolist())
        if key not in seen:
            seen.add(key)
            unique.append(s)
        if len(unique) >= count:
            break
    if not unique:
        return np.zeros((0, space.dim))
    return np.stack(unique)


def mixed_initial_vectors(
    space: ParameterSpace,
    model: RegionCostModel,
    population_size: int,
    rng: np.random.Generator,
    informed_fraction: float = 0.5,
) -> np.ndarray:
    """Initial population: ``informed_fraction`` informed seeds topped up
    with uniform random samples."""
    want = max(1, int(round(population_size * informed_fraction)))
    seeds = informed_seeds(space, model, want)
    remaining = population_size - len(seeds)
    if len(seeds) == 0:
        return space.full_boundary().sample(rng, population_size)
    if remaining <= 0:
        return seeds[:population_size]
    random_part = space.full_boundary().sample(rng, remaining)
    return np.vstack([seeds, random_part])
