"""Pareto dominance primitives (minimization convention).

Definitions follow the paper §III-B1: configuration ``c1`` *dominates*
``c2`` if it is no worse in every objective and strictly better in at least
one; two configurations are *non-dominated* (w.r.t. each other) if neither
dominates; a set of mutually non-dominated configurations is a Pareto set.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = [
    "dominates",
    "pairwise_dominance",
    "non_dominated",
    "non_dominated_mask",
    "non_dominated_sort",
    "crowding_distance",
]


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True iff objective vector *a* dominates *b* (all ≤, at least one <)."""
    if len(a) != len(b):
        raise ValueError("objective vectors must have equal length")
    not_worse = all(x <= y for x, y in zip(a, b))
    strictly_better = any(x < y for x, y in zip(a, b))
    return not_worse and strictly_better


def pairwise_dominance(
    a: np.ndarray, b: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Row-aligned dominance between two (N, m) objective arrays.

    Returns ``(a_dominates_b, b_dominates_a)`` boolean masks — row ``i``
    of the first mask is exactly ``dominates(a[i], b[i])``.  One
    broadcasted comparison replaces 2·N scalar :func:`dominates` calls in
    the GDE3 selection hot loop.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError("objective arrays must have equal shape")
    a_le = a <= b
    a_lt = a < b
    a_dom = a_le.all(axis=1) & a_lt.any(axis=1)
    # b ≤ a is the complement of a < b elementwise; reuse the comparisons
    b_dom = (~a_lt).all(axis=1) & (~a_le).any(axis=1)
    return a_dom, b_dom


def _non_dominated_mask_2d(objs: np.ndarray) -> np.ndarray:
    """O(N log N) sweep for the bi-objective case: sort by the first
    objective, keep points strictly improving the running second-objective
    minimum (exact duplicates are all retained)."""
    n = objs.shape[0]
    mask = np.zeros(n, dtype=bool)
    order = np.lexsort((objs[:, 1], objs[:, 0]))
    best1 = np.inf
    i = 0
    while i < n:
        # group of equal first objective
        j = i
        v0 = objs[order[i], 0]
        group_min = np.inf
        while j < n and objs[order[j], 0] == v0:
            group_min = min(group_min, objs[order[j], 1])
            j += 1
        if group_min < best1:
            for k in range(i, j):
                idx = order[k]
                if objs[idx, 1] == group_min:
                    mask[idx] = True
            best1 = group_min
        i = j
    return mask


#: row-block size of the vectorized general-m sweep.  Smaller blocks let
#: the survivor filter discard dominated rows sooner (shrinking every
#: later candidate set); larger ones amortize per-block Python overhead.
#: 64 is the empirical sweet spot at populations of a few hundred points
#: (see ``benchmarks/test_select_speedup.py``).
_BLOCK = 64


def _non_dominated_mask_general(objs: np.ndarray) -> np.ndarray:
    """Vectorized general-m mask: lexicographically sorted blocked sweep.

    A dominator is elementwise ≤ with one strict <, so it sorts strictly
    before its victim lexicographically (identical rows dominate neither
    way).  Processing rows in that order, each block only needs one
    broadcasted dominance test against the survivors found so far plus
    the block itself — by transitivity every dominated point has a
    *non-dominated* dominator, so testing against survivors loses
    nothing.  Fronts are small in practice, which keeps the candidate
    side near ``_BLOCK`` rows instead of all N, and peak memory at
    ``O((F + _BLOCK) · _BLOCK · m)`` for front size F.  Output-identical
    to the per-row scalar sweep
    (:func:`_non_dominated_mask_general_scalar`)."""
    n, m = objs.shape
    # np.lexsort's last key is primary: reverse so column 0 sorts first
    order = np.lexsort(objs.T[::-1])
    rows = objs[order]
    keep = np.empty(n, dtype=bool)
    survivors = np.empty((0, m))
    for lo in range(0, n, _BLOCK):
        block = rows[lo : lo + _BLOCK]  # (b, m) candidate rows
        cand = np.concatenate([survivors, block])
        # dom[j, i]: candidate j dominates block row i.  Accumulating
        # per-objective 2-D outer comparisons sidesteps the (k, b, m)
        # intermediates (and their axis reductions) a single broadcast
        # would materialize.
        le_all = np.less_equal.outer(cand[:, 0], block[:, 0])
        lt_any = np.less.outer(cand[:, 0], block[:, 0])
        for j in range(1, m):
            le_all &= np.less_equal.outer(cand[:, j], block[:, j])
            lt_any |= np.less.outer(cand[:, j], block[:, j])
        kept = ~(le_all & lt_any).any(axis=0)
        keep[lo : lo + _BLOCK] = kept
        survivors = np.concatenate([survivors, block[kept]])
    mask = np.empty(n, dtype=bool)
    mask[order] = keep
    return mask


def _non_dominated_mask_general_scalar(objs: np.ndarray) -> np.ndarray:
    """The pre-vectorization per-row sweep — kept as the reference the
    micro-benchmark (``benchmarks/test_select_speedup.py``) guards the
    broadcasted path against, output-identical by construction."""
    n = objs.shape[0]
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        if not mask[i]:
            continue
        o = objs[i]
        dominated_by_i = (objs >= o).all(axis=1) & (objs > o).any(axis=1)
        mask &= ~dominated_by_i
        mask[i] = True
        # if i itself is dominated by any currently-alive point, kill it
        alive = np.flatnonzero(mask)
        dominates_i = (objs[alive] <= o).all(axis=1) & (objs[alive] < o).any(axis=1)
        if dominates_i.any():
            mask[i] = False
    return mask


def non_dominated_mask(objs: np.ndarray) -> np.ndarray:
    """Boolean mask of the non-dominated rows of an (N, m) objective array.

    Bi-objective inputs use an O(N log N) sweep (brute-force fronts have
    ~10^5 points); the general case is a blocked broadcasted all-pairs
    dominance test — O(N²·m) element operations but a handful of NumPy
    calls per block instead of a Python-level pass per row.
    """
    objs = np.asarray(objs, dtype=float)
    n = objs.shape[0]
    if n == 0:
        return np.zeros(0, dtype=bool)
    if objs.shape[1] == 2:
        return _non_dominated_mask_2d(objs)
    return _non_dominated_mask_general(objs)


def non_dominated(items: Sequence, key=lambda x: x) -> list:
    """The non-dominated subset of *items*; ``key`` extracts the objective
    vector.  Duplicate objective vectors are all retained."""
    if not items:
        return []
    objs = np.array([key(it) for it in items], dtype=float)
    mask = non_dominated_mask(objs)
    return [it for it, keep in zip(items, mask) if keep]


def non_dominated_sort(objs: np.ndarray) -> list[np.ndarray]:
    """Fast non-dominated sorting: list of index arrays, best front first."""
    objs = np.asarray(objs, dtype=float)
    n = objs.shape[0]
    remaining = np.arange(n)
    fronts: list[np.ndarray] = []
    while remaining.size:
        sub = objs[remaining]
        mask = non_dominated_mask(sub)
        fronts.append(remaining[mask])
        remaining = remaining[~mask]
    return fronts


def crowding_distance(objs: np.ndarray) -> np.ndarray:
    """NSGA-II crowding distance of each row of an (N, m) objective array.

    Boundary points get infinite distance; interior points the sum of
    normalized neighbour gaps per objective."""
    objs = np.asarray(objs, dtype=float)
    n, m = objs.shape
    dist = np.zeros(n)
    if n <= 2:
        return np.full(n, np.inf)
    for j in range(m):
        order = np.argsort(objs[:, j], kind="stable")
        col = objs[order, j]
        span = col[-1] - col[0]
        dist[order[0]] = np.inf
        dist[order[-1]] = np.inf
        if span <= 0:
            continue
        gaps = (col[2:] - col[:-2]) / span
        dist[order[1:-1]] += gaps
    return dist
