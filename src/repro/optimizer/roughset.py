"""Rough-Set-based search-space reduction (paper §III-B4, Fig. 5).

From the most recent population, split configurations into non-dominated
("squares") and dominated ("triangles").  Per parameter dimension, the new
boundary is the largest hyper-rectangle **limited by dominated points** that
still encloses all non-dominated points:

* lower bound = the largest dominated-point coordinate that is still ≤ the
  smallest non-dominated coordinate (falling back to the current search
  space's bound when no dominated point lies below);
* upper bound symmetrically.

The reduction is re-applied every iteration so the box can follow the
front as the population improves ("we continuously update the reduced
search space ... to gradually steer the search towards the area where the
optimal Pareto set is located").

This mechanism needs no domain knowledge — only the coordinates of already
evaluated configurations — which is the paper's stated advantage over
model-based space pruning.
"""

from __future__ import annotations

import numpy as np

from repro.optimizer.config import Configuration
from repro.optimizer.pareto import non_dominated_mask
from repro.optimizer.space import Boundary

__all__ = ["rough_set_boundary"]


def rough_set_boundary(
    population: list[Configuration],
    full: Boundary,
    min_span_fraction: float = 0.1,
    protect: frozenset[str] | set[str] = frozenset(),
) -> Boundary:
    """Reduced boundary from *population* within the *full* space.

    ``protect`` names dimensions that are never reduced.  The driver
    protects the ``threads`` dimension by default: the Pareto front of
    (time, resources) contains one arm per thread count, and a box that
    clamps the thread range ejects whole arms irrecoverably (trials are
    snapped into the box, so excluded thread counts can never re-enter the
    population).  The paper illustrates its reduction on transformation
    parameters (Fig. 5) and reports fronts covering many more thread counts
    than a collapsed box could produce (|S| up to 28.6); an ablation
    benchmark (`bench_ablation_roughset`) shows what happens without the
    protection.

    ``min_span_fraction`` keeps each dimension's reduced span at a minimum
    fraction of the full span (re-centred around the non-dominated points).
    With small populations in few dimensions the raw largest-rectangle rule
    can collapse the box to near a point after a handful of iterations,
    choking the DE operator on duplicate configurations; the floor keeps the
    "imperfect knowledge" character of the rough approximation (the boundary
    region around the non-dominated set stays explorable) while still
    discarding the bulk of the space.

    Degenerate cases (no dominated points, or a fully non-dominated
    population) keep the full bounds in the affected dimensions.
    """
    if not population:
        return full
    names = full.space.names
    vecs = np.stack([c.vector(names) for c in population])
    objs = np.array([c.objectives for c in population])
    nd_mask = non_dominated_mask(objs)
    if nd_mask.all() or not nd_mask.any():
        return full

    nd = vecs[nd_mask]
    dom = vecs[~nd_mask]

    lo = full.lo.copy()
    hi = full.hi.copy()
    for j in range(full.space.dim):
        if names[j] in protect:
            continue
        nd_min = nd[:, j].min()
        nd_max = nd[:, j].max()
        below = dom[dom[:, j] <= nd_min, j]
        above = dom[dom[:, j] >= nd_max, j]
        if below.size:
            lo[j] = max(lo[j], below.max())
        if above.size:
            hi[j] = min(hi[j], above.min())
        # numerical safety: never exclude the non-dominated points
        lo[j] = min(lo[j], nd_min)
        hi[j] = max(hi[j], nd_max)
        # anti-collapse floor
        min_span = (full.hi[j] - full.lo[j]) * min_span_fraction
        span = hi[j] - lo[j]
        if span < min_span:
            pad = 0.5 * (min_span - span)
            lo[j] = max(full.lo[j], lo[j] - pad)
            hi[j] = min(full.hi[j], hi[j] + pad)
    return Boundary(space=full.space, lo=lo, hi=hi)
