"""Skeleton selection as a tuning parameter.

Paper §III-B1: "Within each configuration all tuning options, **including
the skeleton to be selected**, potential flags enabling optional parts of
the transformation skeleton, unrolling factors, tile sizes and thread count
specifications are modeled uniformly."

The analyzer can propose several transformation skeletons for one region —
here, one per legal loop order of the tilable band (e.g. all six
permutations of mm's fully permutable i/j/k nest).  This module composes
them into one search space with an extra categorical ``skeleton``
parameter; the evaluator dispatches each configuration to the matching
permuted region's cost model.

The composite object satisfies the solver-facing protocol of
:class:`~repro.optimizer.problem.TuningProblem` (``space``,
``evaluate_batch``, ``evaluations``), so RS-GDE3 and the baselines run on
it unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import permutations

import numpy as np

from repro.analysis.dependence import analyze_dependences, parallel_loops, tilable_band
from repro.analysis.regions import TunableRegion, extract_regions
from repro.evaluation.cost import RegionCostModel
from repro.evaluation.simulator import SimulatedTarget
from repro.ir.nodes import Function
from repro.machine.model import MachineModel
from repro.optimizer.config import Configuration
from repro.optimizer.problem import TuningProblem
from repro.optimizer.space import ParameterSpace
from repro.transform.interchange import permute
from repro.transform.skeleton import Parameter, default_skeleton
from repro.transform.splice import replace_at_path

__all__ = ["SkeletonChoiceProblem", "legal_loop_orders", "build_skeleton_choice"]


def legal_loop_orders(region: TunableRegion) -> list[tuple[str, ...]]:
    """All permutations of the region's tilable band that keep every
    dependence direction vector lexicographically non-negative and preserve
    a parallelizable outermost band loop."""
    band = region.tile_band
    deps = [d for d in region.dependences if not d.is_reduction]
    lvars = list(region.domain.vars)
    orders = []
    for perm in permutations(band):
        full_order = list(perm) + [v for v in lvars if v not in band]
        ok = True
        for dep in deps:
            swapped = [dep.directions[lvars.index(v)] for v in full_order]
            for d in swapped:
                if d == "=":
                    continue
                if d in (">", "*"):
                    ok = False
                break
        if ok:
            orders.append(tuple(perm))
    return orders


@dataclass
class SkeletonChoiceProblem:
    """A composite tuning problem whose configurations carry a ``skeleton``
    index choosing among per-loop-order sub-problems."""

    space: ParameterSpace
    sub_problems: tuple[TuningProblem, ...]
    orders: tuple[tuple[str, ...], ...]
    tri_objective: bool = False

    @property
    def num_objectives(self) -> int:
        return 3 if self.tri_objective else 2

    @property
    def evaluations(self) -> int:
        return sum(p.evaluations for p in self.sub_problems)

    @property
    def target(self):
        """The first sub-target (protocol compatibility; per-skeleton
        targets are in ``sub_problems``)."""
        return self.sub_problems[0].target

    def evaluate(self, values: dict[str, int]) -> Configuration:
        idx = int(values.get("skeleton", 0))
        sub = self.sub_problems[idx]
        cfg = sub.evaluate({k: v for k, v in values.items() if k != "skeleton"})
        return Configuration.make(values, cfg.objectives)

    def evaluate_vector(self, vec: np.ndarray) -> Configuration:
        return self.evaluate(self.space.to_dict(vec))

    def evaluate_batch(self, vectors: np.ndarray) -> list[Configuration]:
        vectors = np.asarray(vectors)
        names = self.space.names
        sk_col = names.index("skeleton")
        out: list[Configuration | None] = [None] * len(vectors)
        for idx, sub in enumerate(self.sub_problems):
            rows = np.flatnonzero(np.round(vectors[:, sk_col]).astype(int) == idx)
            if rows.size == 0:
                continue
            sub_names = sub.space.names
            sub_vecs = np.stack(
                [vectors[rows][:, names.index(n)] for n in sub_names], axis=1
            )
            configs = sub.evaluate_batch(sub_vecs)
            for row, cfg in zip(rows, configs):
                values = self.space.to_dict(vectors[row])
                out[row] = Configuration.make(values, cfg.objectives)
        assert all(c is not None for c in out)
        return out  # type: ignore[return-value]


def build_skeleton_choice(
    function: Function,
    sizes: dict[str, int],
    machine: MachineModel,
    seed: int = 0,
    noise: float = 0.015,
    region_index: int = 0,
    max_orders: int = 6,
) -> SkeletonChoiceProblem:
    """Compose per-loop-order sub-problems for a function's region.

    For every legal order of the tilable band the region's nest is permuted
    and analyzed afresh; each order gets its own skeleton, cost model and
    simulated target (they share the evaluation ledger only through the
    composite's sum).
    """
    base_region = extract_regions(function)[region_index]
    orders = legal_loop_orders(base_region)[:max_orders]
    if not orders:
        raise ValueError("no legal loop order found")

    sub_problems = []
    for order in orders:
        full_order = list(order) + [
            v for v in base_region.domain.vars if v not in order
        ]
        permuted_nest = permute(base_region.nest, full_order)
        permuted_fn = replace_at_path(function, base_region.path, permuted_nest)
        region = extract_regions(permuted_fn)[region_index]
        skeleton = default_skeleton(region, sizes, machine.total_cores)
        model = RegionCostModel(
            region, sizes, machine, parallel_spec=skeleton.parallel_spec()
        )
        target = SimulatedTarget(model, seed=seed, noise=noise)
        sub_problems.append(TuningProblem.from_skeleton(skeleton, target))

    # unified space: the union of tile parameters (identical names across
    # orders since loop names are shared) + threads + the skeleton choice
    base_params = list(sub_problems[0].space.parameters)
    params = base_params + [
        Parameter(
            name="skeleton",
            lo=0,
            hi=len(orders) - 1,
            choices=tuple(range(len(orders))),
        )
    ]
    return SkeletonChoiceProblem(
        space=ParameterSpace(tuple(params)),
        sub_problems=tuple(sub_problems),
        orders=tuple(orders),
    )
