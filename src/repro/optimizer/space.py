"""Parameter spaces and boundary boxes.

A :class:`ParameterSpace` is the ordered list of tunable parameters of a
skeleton; a :class:`Boundary` is the (possibly rough-set-reduced) box the
search currently operates in — the ``B`` of the paper's Algorithm 1, whose
``getClosestTo`` snaps generated configurations into the box.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.transform.skeleton import Parameter

__all__ = ["ParameterSpace", "Boundary"]


@dataclass(frozen=True)
class ParameterSpace:
    """An ordered, named integer parameter space."""

    parameters: tuple[Parameter, ...]

    def __post_init__(self) -> None:
        names = [p.name for p in self.parameters]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate parameter names: {names}")

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.parameters)

    @property
    def dim(self) -> int:
        return len(self.parameters)

    def parameter(self, name: str) -> Parameter:
        for p in self.parameters:
            if p.name == name:
                return p
        raise KeyError(f"no parameter {name!r}")

    def full_boundary(self) -> "Boundary":
        lo = np.array([p.span()[0] for p in self.parameters], dtype=float)
        hi = np.array([p.span()[1] for p in self.parameters], dtype=float)
        return Boundary(space=self, lo=lo, hi=hi)

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Uniform samples (count, dim) within the full space, snapped to
        each parameter's domain (categorical parameters draw uniformly from
        their choices)."""
        cols = []
        for p in self.parameters:
            if p.is_categorical:
                cols.append(rng.choice(np.array(p.choices), size=count))
            else:
                cols.append(rng.integers(p.lo, p.hi + 1, size=count))
        return np.stack(cols, axis=1).astype(float)

    def clamp_vector(self, vec: np.ndarray) -> np.ndarray:
        """Snap a float vector onto valid integer parameter values."""
        return np.array(
            [p.clamp(x) for p, x in zip(self.parameters, vec)], dtype=float
        )

    def to_dict(self, vec: np.ndarray) -> dict[str, int]:
        return {p.name: int(round(x)) for p, x in zip(self.parameters, vec)}

    def cardinality(self) -> int:
        """Size of the discrete search space |C|."""
        total = 1
        for p in self.parameters:
            total *= len(p.choices) if p.is_categorical else (p.hi - p.lo + 1)
        return total


@dataclass(frozen=True)
class Boundary:
    """An axis-aligned box within a parameter space (Algorithm 1's ``B``)."""

    space: ParameterSpace
    lo: np.ndarray
    hi: np.ndarray

    def __post_init__(self) -> None:
        if (self.lo > self.hi).any():
            raise ValueError("boundary has lo > hi")

    def get_closest_to(self, vec: np.ndarray) -> np.ndarray:
        """The paper's ``B.getClosestTo(r)``: clip into the box, then snap
        to valid parameter values (categoricals pick the nearest in-box
        choice, falling back to the nearest choice overall)."""
        clipped = np.clip(np.asarray(vec, dtype=float), self.lo, self.hi)
        out = []
        for j, p in enumerate(self.space.parameters):
            if p.is_categorical:
                in_box = [c for c in p.choices if self.lo[j] <= c <= self.hi[j]]
                pool = in_box or list(p.choices)
                out.append(min(pool, key=lambda c: abs(c - clipped[j])))
            else:
                out.append(p.clamp(clipped[j]))
        return np.array(out, dtype=float)

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        if count <= 0:
            return np.zeros((0, self.space.dim))
        raw = rng.uniform(self.lo, self.hi + 1.0, size=(count, self.space.dim))
        return np.stack([self.get_closest_to(row) for row in raw], axis=0)

    def contains(self, vec: np.ndarray) -> bool:
        return bool((vec >= self.lo).all() and (vec <= self.hi).all())

    def volume_fraction(self) -> float:
        """Fraction of the full space's volume this box covers."""
        full = self.space.full_boundary()
        frac = 1.0
        for j in range(self.space.dim):
            span_full = full.hi[j] - full.lo[j] + 1
            span_here = self.hi[j] - self.lo[j] + 1
            frac *= span_here / span_full
        return float(frac)
