"""Incremental Pareto archive with exact hypervolume.

Every optimizer emits per-generation convergence telemetry (front size
|S| and hypervolume V against a fixed reference — the paper's V-vs-E
trajectories, Figs. 4–5).  Recomputing the non-dominated front and the
hypervolume from scratch each generation is an O(G·n²) hidden cost per
run; :class:`ParetoArchive` replaces it with an incremental structure:

* a **front staircase** over the original objective vectors — for the
  bi-objective case a list sorted by the first objective with strictly
  decreasing second objective, so membership tests are a binary search
  and an insert removes at most a contiguous dominated run (O(log n)
  search + an amortized-small splice).  Exact duplicates of a front
  point are all retained, matching
  :func:`~repro.optimizer.pareto.non_dominated_mask`;
* a **hypervolume staircase** over the reference-clipped points.  The
  :attr:`hypervolume` property sweeps it with *exactly* the arithmetic
  of the full :func:`~repro.optimizer.hypervolume.hypervolume` staircase
  sweep — same terms, same order — so the archive value is bit-identical
  to a full recomputation over the archived points, not merely close.

For m ≠ 2 objectives the archive transparently falls back to storing the
points and recomputing front/hypervolume on query (cached between
inserts), so callers never need to special-case the tri-objective runs.
"""

from __future__ import annotations

from bisect import bisect_left

import numpy as np

from repro.optimizer.hypervolume import hypervolume
from repro.optimizer.pareto import non_dominated_mask

__all__ = ["ParetoArchive"]


class ParetoArchive:
    """Insert-only archive of objective vectors (minimization).

    :param reference: the fixed hypervolume reference point; points
        beyond it are kept in the front but clipped for the volume, the
        same convention :func:`hypervolume` uses.
    """

    def __init__(self, reference) -> None:
        ref = np.asarray(reference, dtype=float)
        if ref.ndim != 1 or ref.shape[0] < 2:
            raise ValueError("reference must be a 1-D point with >= 2 objectives")
        self.reference = ref
        self.m = int(ref.shape[0])
        self._fast = self.m == 2
        # front staircase over original coordinates (2-D fast path):
        # _fx strictly increasing, _fy strictly decreasing, _fpay[i] the
        # payloads of every exact duplicate of point i, insertion order
        self._fx: list[float] = []
        self._fy: list[float] = []
        self._fpay: list[list] = []
        self._fcount = 0
        # hypervolume staircase over reference-clipped coordinates
        self._sx: list[float] = []
        self._sy: list[float] = []
        # m != 2 fallback storage
        self._points: list[tuple[float, ...]] = []
        self._payloads: list = []
        self._dirty = False
        self._hv = 0.0
        self._front_cache: list[int] | None = [] if not self._fast else None

    # ------------------------------------------------------------------

    @classmethod
    def of(cls, points, reference) -> "ParetoArchive":
        """Archive pre-filled with *points* (no payloads)."""
        archive = cls(reference)
        archive.add_many(points)
        return archive

    @classmethod
    def stats_of(cls, points, reference) -> tuple[int, float]:
        """(front size, hypervolume) of *points* against *reference* in
        one pass — bit-identical to ``len(non_dominated(points))`` and
        ``hypervolume(points, reference)``."""
        archive = cls.of(points, reference)
        return archive.front_size, archive.hypervolume

    # ------------------------------------------------------------------

    def add(self, point, payload=None) -> bool:
        """Insert one objective vector; returns whether it is currently
        non-dominated (exact duplicates of a front point count as front
        members and return True)."""
        p = tuple(float(v) for v in np.asarray(point, dtype=float).reshape(-1))
        if len(p) != self.m:
            raise ValueError(
                f"point has {len(p)} objectives, archive expects {self.m}"
            )
        if not self._fast:
            return self._add_fallback(p, payload)
        entered = self._front_insert(p[0], p[1], payload)
        if entered:
            self._hv_insert(p[0], p[1])
        return entered

    def add_many(self, points, payloads=None) -> int:
        """Insert a batch (row per point); returns how many entered the
        front at insertion time."""
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        if pts.size == 0:
            return 0
        if payloads is None:
            payloads = [None] * pts.shape[0]
        return sum(
            bool(self.add(row, payload)) for row, payload in zip(pts, payloads)
        )

    # -- queries --------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of archived non-dominated items (duplicates counted)."""
        return self.front_size

    @property
    def front_size(self) -> int:
        if self._fast:
            return self._fcount
        return len(self._fallback_front())

    @property
    def hypervolume(self) -> float:
        """Hypervolume of the archived front — bit-identical to
        ``hypervolume(self.front_points(), self.reference)``."""
        if self._fast:
            if self._dirty:
                self._hv = self._sweep()
                self._dirty = False
            return self._hv
        if self._dirty:
            pts = np.array(self._points, dtype=float)
            self._hv = hypervolume(pts, self.reference) if len(pts) else 0.0
            self._dirty = False
        return self._hv

    def front_points(self) -> np.ndarray:
        """The non-dominated points, one row per archived item (duplicates
        repeated), sorted by the first objective in the 2-D fast path."""
        if self._fast:
            rows = []
            for x, y, pay in zip(self._fx, self._fy, self._fpay):
                rows.extend([(x, y)] * len(pay))
            return np.array(rows, dtype=float).reshape(-1, 2)
        idx = self._fallback_front()
        return np.array([self._points[i] for i in idx], dtype=float).reshape(
            -1, self.m
        )

    def front(self) -> list:
        """Payloads of the non-dominated items (insertion order within a
        point, first-objective order across points in the 2-D path)."""
        if self._fast:
            out: list = []
            for pay in self._fpay:
                out.extend(pay)
            return out
        return [self._payloads[i] for i in self._fallback_front()]

    # -- 2-D front staircase (original coordinates) ---------------------

    def _front_insert(self, x: float, y: float, payload) -> bool:
        fx, fy, fpay = self._fx, self._fy, self._fpay
        j = bisect_left(fx, x)
        if j > 0 and fy[j - 1] <= y:
            return False  # strictly dominated by the predecessor
        if j < len(fx) and fx[j] == x:
            if fy[j] < y:
                return False  # dominated at equal first objective
            if fy[j] == y:
                fpay[j].append(payload)  # exact duplicate: retained
                self._fcount += 1
                return True
        # remove the contiguous run this point dominates
        k = j
        while k < len(fx) and fy[k] >= y:
            self._fcount -= len(fpay[k])
            k += 1
        del fx[j:k], fy[j:k], fpay[j:k]
        fx.insert(j, x)
        fy.insert(j, y)
        fpay.insert(j, [payload])
        self._fcount += 1
        return True

    # -- 2-D hypervolume staircase (clipped coordinates) -----------------

    def _hv_insert(self, x: float, y: float) -> None:
        rx, ry = self.reference[0], self.reference[1]
        cx, cy = min(x, rx), min(y, ry)
        if not (cx < rx or cy < ry):
            return  # not strictly inside the box in any dimension
        if cx >= rx:
            return  # zero-width column: never contributes, never sweeps
        sx, sy = self._sx, self._sy
        j = bisect_left(sx, cx)
        if j > 0 and sy[j - 1] <= cy:
            return  # covered by the predecessor step
        if j < len(sx) and sx[j] == cx and sy[j] <= cy:
            return  # covered at equal x
        y_left = sy[j - 1] if j > 0 else ry
        if cy >= y_left:
            return  # at or above the current coverage: no area
        k = j
        while k < len(sx) and sy[k] >= cy:
            k += 1
        del sx[j:k], sy[j:k]
        sx.insert(j, cx)
        sy.insert(j, cy)
        self._dirty = True

    def _sweep(self) -> float:
        """The exact sweep of :func:`hypervolume`'s 2-D staircase, term
        for term, so float association matches a full recomputation."""
        rx, ry = self.reference[0], self.reference[1]
        total = 0.0
        prev_y = ry
        for x, y in zip(self._sx, self._sy):
            total += (rx - x) * (prev_y - y)
            prev_y = y
        return float(total)

    # -- m != 2 fallback -------------------------------------------------

    def _add_fallback(self, p: tuple[float, ...], payload) -> bool:
        arr = np.array(p, dtype=float)
        dominated = any(
            all(q[i] <= arr[i] for i in range(self.m))
            and any(q[i] < arr[i] for i in range(self.m))
            for q in self._points
        )
        self._points.append(p)
        self._payloads.append(payload)
        self._dirty = True
        self._front_cache = None
        return not dominated

    def _fallback_front(self) -> list[int]:
        if self._front_cache is None:
            pts = np.array(self._points, dtype=float)
            if len(pts) == 0:
                self._front_cache = []
            else:
                mask = non_dominated_mask(pts)
                self._front_cache = [i for i, keep in enumerate(mask) if keep]
        return self._front_cache
