"""Machine descriptions of the paper's two evaluation platforms (Table I).

The parameters fall into three groups:

* *documented* — socket/core counts and cache geometry straight from
  Table I of the paper (plus vendor datasheets for line sizes and
  associativity);
* *derived* — clock rates and per-core issue width of the two
  processors (Xeon E7-4870: 2.4 GHz; Opteron 8356: 2.3 GHz);
* *calibrated* — bandwidth and overhead constants chosen so the cost
  model reproduces the qualitative behaviour the paper reports
  (tiling headroom over -O3, efficiency decay with thread count,
  cache-capacity-driven tile-size shifts).  Absolute times are *not*
  expected to match the paper — only the shapes (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CacheLevel", "MachineModel", "WESTMERE", "BARCELONA", "machine_by_name"]


@dataclass(frozen=True)
class CacheLevel:
    """One level of the data-cache hierarchy.

    :param name: "L1", "L2", "L3".
    :param size: capacity in bytes (per core for private levels, per socket
        for shared ones).
    :param line_size: cache line size in bytes.
    :param assoc: associativity (used by the trace-driven simulator).
    :param shared: whether the level is shared among the cores of a socket.
    :param fetch_bw: per-core bandwidth for fetching into this level from
        the level below, in bytes/second (calibrated).
    """

    name: str
    size: int
    line_size: int
    assoc: int
    shared: bool
    fetch_bw: float


@dataclass(frozen=True)
class MachineModel:
    """A shared-memory multiprocessor target.

    :param freq_hz: core clock.
    :param flops_per_cycle: sustained double-precision flops per cycle per
        core for compiler-generated scalar/SSE loop code (calibrated — not
        the theoretical peak).
    :param levels: cache hierarchy, L1 first.
    :param dram_bw_per_socket: DRAM bandwidth available to one socket.
    :param dram_bw_per_core: DRAM bandwidth a single core can extract.
    :param loop_overhead_cycles: bookkeeping cycles per iteration of
        *non-innermost* loops (innermost-loop bookkeeping is folded into the
        sustained ``flops_per_cycle``).
    :param loop_entry_cycles: cycles per loop entry (bound computation,
        e.g. the ``min`` in tiled point loops) — what penalises very small
        innermost tiles.
    :param smp_tax: relative slowdown when a socket is fully populated
        (cache-coherence and shared-resource contention within a chip).
    :param numa_tax: additional relative slowdown per extra active socket
        (snoop broadcasts, cross-socket coherence).  Together with DRAM
        saturation these produce the paper's efficiency decay (Table III).
    :param fork_join_base: seconds per parallel-region invocation.
    :param fork_join_per_thread: additional seconds per involved thread.
    :param tlb_entries: effective data-TLB reach in pages (per core); column
        walks through large tiles thrash it, which is the mechanism keeping
        the innermost tile size small on real hardware.
    :param page_size: bytes per page.
    :param tlb_miss_cycles: average page-walk cost.
    """

    name: str
    sockets: int
    cores_per_socket: int
    freq_hz: float
    flops_per_cycle: float
    levels: tuple[CacheLevel, ...]
    dram_bw_per_socket: float
    dram_bw_per_core: float
    loop_overhead_cycles: float = 1.5
    loop_entry_cycles: float = 3.0
    smp_tax: float = 0.08
    numa_tax: float = 0.04
    fork_join_base: float = 4.0e-6
    fork_join_per_thread: float = 0.3e-6
    tlb_entries: int = 128
    page_size: int = 4096
    tlb_miss_cycles: float = 20.0
    #: fraction of the smaller of (compute, memory) time that does NOT
    #: overlap with the larger — 0 is a pure roofline, 1 fully serial.
    #: Real cores hide most but not all memory latency behind compute.
    mem_overlap_residual: float = 0.2
    #: energy model (the paper's third example objective): per-socket
    #: idle/uncore power, per-busy-core active power, DRAM access energy
    idle_power_per_socket: float = 40.0
    active_power_per_core: float = 12.0
    dram_energy_per_byte: float = 60e-12

    @property
    def tlb_reach(self) -> int:
        return self.tlb_entries * self.page_size

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    def level(self, name: str) -> CacheLevel:
        for lv in self.levels:
            if lv.name == name:
                return lv
        raise KeyError(f"machine {self.name!r} has no cache level {name!r}")

    def default_thread_counts(self) -> tuple[int, ...]:
        """The thread counts the paper evaluates per machine: 1, half a
        socket, then doubling up to the core count — (1, 5, 10, 20, 40) on
        Westmere and (1, 2, 4, 8, 16, 32) on Barcelona."""
        counts = {1}
        c = max(1, self.cores_per_socket // 2)
        while c <= self.total_cores:
            counts.add(c)
            c *= 2
        return tuple(sorted(counts))


# ---------------------------------------------------------------------------
# Table I instances
# ---------------------------------------------------------------------------

WESTMERE = MachineModel(
    name="Westmere",
    sockets=4,
    cores_per_socket=10,
    freq_hz=2.4e9,
    flops_per_cycle=2.0,
    levels=(
        CacheLevel("L1", 32 * 1024, 64, 8, shared=False, fetch_bw=32e9),
        CacheLevel("L2", 256 * 1024, 64, 8, shared=False, fetch_bw=20e9),
        CacheLevel("L3", 30 * 1024 * 1024, 64, 24, shared=True, fetch_bw=12e9),
    ),
    dram_bw_per_socket=25e9,
    dram_bw_per_core=7e9,
    smp_tax=0.075,
    numa_tax=0.13,
)

BARCELONA = MachineModel(
    name="Barcelona",
    sockets=8,
    cores_per_socket=4,
    freq_hz=2.3e9,
    flops_per_cycle=2.0,
    levels=(
        CacheLevel("L1", 64 * 1024, 64, 2, shared=False, fetch_bw=24e9),
        CacheLevel("L2", 512 * 1024, 64, 16, shared=False, fetch_bw=14e9),
        CacheLevel("L3", 2 * 1024 * 1024, 64, 32, shared=True, fetch_bw=8e9),
    ),
    dram_bw_per_socket=10e9,
    dram_bw_per_core=4e9,
    smp_tax=0.10,
    numa_tax=0.14,
    idle_power_per_socket=35.0,
    active_power_per_core=15.0,
    dram_energy_per_byte=80e-12,
)

# ---------------------------------------------------------------------------
# additional machine definitions beyond the paper's Table I — used by the
# generality tests and available to users as templates for their own targets
# ---------------------------------------------------------------------------

#: a modern laptop-class part: one socket, few fast cores, big private L2
LAPTOP = MachineModel(
    name="Laptop",
    sockets=1,
    cores_per_socket=8,
    freq_hz=3.2e9,
    flops_per_cycle=4.0,
    levels=(
        CacheLevel("L1", 48 * 1024, 64, 12, shared=False, fetch_bw=64e9),
        CacheLevel("L2", 1280 * 1024, 64, 20, shared=False, fetch_bw=40e9),
        CacheLevel("L3", 24 * 1024 * 1024, 64, 12, shared=True, fetch_bw=24e9),
    ),
    dram_bw_per_socket=60e9,
    dram_bw_per_core=20e9,
    smp_tax=0.06,
    numa_tax=0.0,
    tlb_entries=1024,
    idle_power_per_socket=10.0,
    active_power_per_core=6.0,
    dram_energy_per_byte=40e-12,
)

#: a two-socket contemporary server
SERVER2S = MachineModel(
    name="Server2S",
    sockets=2,
    cores_per_socket=32,
    freq_hz=2.6e9,
    flops_per_cycle=4.0,
    levels=(
        CacheLevel("L1", 32 * 1024, 64, 8, shared=False, fetch_bw=48e9),
        CacheLevel("L2", 1024 * 1024, 64, 16, shared=False, fetch_bw=32e9),
        CacheLevel("L3", 64 * 1024 * 1024, 64, 16, shared=True, fetch_bw=20e9),
    ),
    dram_bw_per_socket=120e9,
    dram_bw_per_core=15e9,
    smp_tax=0.07,
    numa_tax=0.10,
    tlb_entries=1536,
    idle_power_per_socket=60.0,
    active_power_per_core=5.5,
    dram_energy_per_byte=30e-12,
)

_MACHINES = {m.name.lower(): m for m in (WESTMERE, BARCELONA, LAPTOP, SERVER2S)}


def machine_by_name(name: str) -> MachineModel:
    try:
        return _MACHINES[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown machine {name!r}; available: {sorted(_MACHINES)}"
        ) from None
