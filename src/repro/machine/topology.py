"""Thread-to-core placement.

The paper pins threads so that "the resources of one chip are fully utilized
before involving an additional processor" (§V-A).  This module reproduces
that fill policy and derives the quantities the cost model needs: how many
threads land on the busiest chip (which divides the shared L3) and how many
sockets are active (which scales aggregate DRAM bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.model import MachineModel

__all__ = ["ThreadPlacement", "place_threads"]


@dataclass(frozen=True)
class ThreadPlacement:
    """Result of placing *threads* threads on a machine.

    :param per_socket: number of threads on each socket (socket 0 first).
    :param active_sockets: sockets with at least one thread.
    :param max_threads_per_socket: threads on the fullest socket — the
        divisor of that socket's shared cache.
    """

    machine: MachineModel
    threads: int
    per_socket: tuple[int, ...]

    @property
    def active_sockets(self) -> int:
        return sum(1 for t in self.per_socket if t > 0)

    @property
    def max_threads_per_socket(self) -> int:
        return max(self.per_socket)

    def shared_capacity_per_thread(self, level_size: int) -> float:
        """Effective shared-cache capacity available to one thread on the
        fullest socket."""
        return level_size / self.max_threads_per_socket

    def aggregate_dram_bw(self) -> float:
        return self.active_sockets * self.machine.dram_bw_per_socket


def place_threads(machine: MachineModel, threads: int) -> ThreadPlacement:
    """Fill sockets one after another with one thread per physical core.

    :raises ValueError: if *threads* exceeds the machine's core count or is
        not positive (the paper found no benefit from hyper-threading and
        skips it; so do we).
    """
    if threads < 1:
        raise ValueError(f"thread count must be positive, got {threads}")
    if threads > machine.total_cores:
        raise ValueError(
            f"{threads} threads exceed {machine.name}'s {machine.total_cores} cores"
        )
    per_socket = []
    remaining = threads
    for _ in range(machine.sockets):
        take = min(remaining, machine.cores_per_socket)
        per_socket.append(take)
        remaining -= take
    return ThreadPlacement(machine=machine, threads=threads, per_socket=tuple(per_socket))
