"""Trace-driven set-associative cache simulator.

The analytical cost model (:mod:`repro.evaluation.cost`) makes capacity/
reuse arguments about tiled loop nests.  This simulator provides the ground
truth those arguments are validated against in the test suite: executing a
miniature kernel's exact address trace through an LRU set-associative
hierarchy and comparing miss counts with the analytical traffic prediction.

It is a functional model (hit/miss accounting only, no timing) and is fast
enough for the small problem sizes used in tests (~10^5..10^6 accesses).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.machine.model import CacheLevel, MachineModel

__all__ = ["CacheSim", "CacheHierarchy", "AddressTraceRecorder"]


class CacheSim:
    """One set-associative LRU cache level."""

    def __init__(self, size: int, line_size: int, assoc: int, name: str = "") -> None:
        if size % (line_size * assoc) != 0:
            raise ValueError(
                f"cache size {size} not divisible by line_size*assoc "
                f"({line_size}*{assoc})"
            )
        self.name = name
        self.size = size
        self.line_size = line_size
        self.assoc = assoc
        self.num_sets = size // (line_size * assoc)
        # per set: tag → None in LRU order (least-recently-used first);
        # an OrderedDict makes hit + move-to-end O(1) instead of the
        # O(assoc) list scan (plus exception control flow) per access
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Access one byte address; returns True on hit."""
        line = address // self.line_size
        set_idx = line % self.num_sets
        tag = line // self.num_sets
        ways = self._sets[set_idx]
        if tag in ways:
            ways.move_to_end(tag)
            self.hits += 1
            return True
        self.misses += 1
        ways[tag] = None
        if len(ways) > self.assoc:
            ways.popitem(last=False)
        return False

    def access_many(self, addresses) -> int:
        """Bulk :meth:`access` over an address iterable; returns the number
        of hits.  Hoists the per-call attribute lookups out of the loop —
        the fast path for trace replay."""
        line_size = self.line_size
        num_sets = self.num_sets
        assoc = self.assoc
        sets = self._sets
        hits = 0
        misses = 0
        for address in addresses:
            line = address // line_size
            ways = sets[line % num_sets]
            tag = line // num_sets
            if tag in ways:
                ways.move_to_end(tag)
                hits += 1
            else:
                misses += 1
                ways[tag] = None
                if len(ways) > assoc:
                    ways.popitem(last=False)
        self.hits += hits
        self.misses += misses
        return hits

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def miss_bytes(self) -> int:
        return self.misses * self.line_size


class CacheHierarchy:
    """An inclusive multi-level hierarchy: misses propagate downward."""

    def __init__(self, levels: list[CacheSim]) -> None:
        if not levels:
            raise ValueError("hierarchy needs at least one level")
        self.levels = levels

    @classmethod
    def from_machine(
        cls, machine: MachineModel, capacity_scale: float = 1.0
    ) -> "CacheHierarchy":
        """Build a single-core view of *machine*'s hierarchy.

        ``capacity_scale`` shrinks shared levels to model the per-thread
        share (e.g. ``1/threads_on_socket``); sizes are rounded down to the
        nearest legal (line*assoc multiple) capacity."""
        sims = []
        for lv in machine.levels:
            size = lv.size
            if lv.shared and capacity_scale != 1.0:
                quantum = lv.line_size * lv.assoc
                size = max(quantum, int(size * capacity_scale) // quantum * quantum)
            sims.append(CacheSim(size, lv.line_size, lv.assoc, name=lv.name))
        return cls(sims)

    def access(self, address: int) -> int:
        """Access an address; returns the number of levels missed (0 = L1
        hit, ``len(levels)`` = fetched from memory)."""
        for depth, level in enumerate(self.levels):
            if level.access(address):
                return depth
        return len(self.levels)

    def access_many(self, addresses) -> None:
        """Bulk :meth:`access` with the per-address depth folded away:
        identical hit/miss accounting at every level, one Python loop
        instead of two per address."""
        levels = self.levels
        if len(levels) == 1:
            levels[0].access_many(addresses)
            return
        first = levels[0]
        missed = []
        append = missed.append
        line_size = first.line_size
        num_sets = first.num_sets
        assoc = first.assoc
        sets = first._sets
        hits = 0
        misses = 0
        for address in addresses:
            line = address // line_size
            ways = sets[line % num_sets]
            tag = line // num_sets
            if tag in ways:
                ways.move_to_end(tag)
                hits += 1
            else:
                misses += 1
                ways[tag] = None
                if len(ways) > assoc:
                    ways.popitem(last=False)
                append(address)
        first.hits += hits
        first.misses += misses
        if missed:
            CacheHierarchy(levels[1:]).access_many(missed)

    def miss_bytes(self, level_name: str) -> int:
        for level in self.levels:
            if level.name == level_name:
                return level.miss_bytes
        raise KeyError(f"no level {level_name!r}")

    def reset_stats(self) -> None:
        for level in self.levels:
            level.reset_stats()


@dataclass
class AddressTraceRecorder:
    """Collects byte addresses for array accesses of an interpreted kernel.

    Arrays are laid out contiguously (row-major) one after another, mimicking
    separate allocations; ``record`` is cheap enough to wire into small
    interpreter runs."""

    element_size: int = 8
    _bases: dict[str, int] = field(default_factory=dict)
    _shapes: dict[str, tuple[int, ...]] = field(default_factory=dict)
    trace: list[int] = field(default_factory=list)
    _next_base: int = 0
    _alignment: int = 4096

    def register(self, name: str, shape: tuple[int, ...]) -> None:
        elems = 1
        for d in shape:
            elems *= d
        self._bases[name] = self._next_base
        self._shapes[name] = shape
        size = elems * self.element_size
        self._next_base += (size + self._alignment - 1) // self._alignment * self._alignment

    def address_of(self, name: str, indices: tuple[int, ...]) -> int:
        shape = self._shapes[name]
        offset = 0
        for idx, dim in zip(indices, shape):
            offset = offset * dim + idx
        return self._bases[name] + offset * self.element_size

    def record(self, name: str, indices: tuple[int, ...]) -> None:
        self.trace.append(self.address_of(name, indices))

    def replay(self, hierarchy: CacheHierarchy) -> None:
        hierarchy.access_many(self.trace)
