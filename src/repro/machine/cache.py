"""Trace-driven set-associative cache simulator.

The analytical cost model (:mod:`repro.evaluation.cost`) makes capacity/
reuse arguments about tiled loop nests.  This simulator provides the ground
truth those arguments are validated against in the test suite: executing a
miniature kernel's exact address trace through an LRU set-associative
hierarchy and comparing miss counts with the analytical traffic prediction.

It is a functional model (hit/miss accounting only, no timing) and is fast
enough for the small problem sizes used in tests (~10^5..10^6 accesses).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.model import CacheLevel, MachineModel

__all__ = ["CacheSim", "CacheHierarchy", "AddressTraceRecorder"]


class CacheSim:
    """One set-associative LRU cache level."""

    def __init__(self, size: int, line_size: int, assoc: int, name: str = "") -> None:
        if size % (line_size * assoc) != 0:
            raise ValueError(
                f"cache size {size} not divisible by line_size*assoc "
                f"({line_size}*{assoc})"
            )
        self.name = name
        self.size = size
        self.line_size = line_size
        self.assoc = assoc
        self.num_sets = size // (line_size * assoc)
        # per set: list of tags, most-recently-used last
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Access one byte address; returns True on hit."""
        line = address // self.line_size
        set_idx = line % self.num_sets
        tag = line // self.num_sets
        ways = self._sets[set_idx]
        try:
            ways.remove(tag)
            ways.append(tag)
            self.hits += 1
            return True
        except ValueError:
            self.misses += 1
            ways.append(tag)
            if len(ways) > self.assoc:
                ways.pop(0)
            return False

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def miss_bytes(self) -> int:
        return self.misses * self.line_size


class CacheHierarchy:
    """An inclusive multi-level hierarchy: misses propagate downward."""

    def __init__(self, levels: list[CacheSim]) -> None:
        if not levels:
            raise ValueError("hierarchy needs at least one level")
        self.levels = levels

    @classmethod
    def from_machine(
        cls, machine: MachineModel, capacity_scale: float = 1.0
    ) -> "CacheHierarchy":
        """Build a single-core view of *machine*'s hierarchy.

        ``capacity_scale`` shrinks shared levels to model the per-thread
        share (e.g. ``1/threads_on_socket``); sizes are rounded down to the
        nearest legal (line*assoc multiple) capacity."""
        sims = []
        for lv in machine.levels:
            size = lv.size
            if lv.shared and capacity_scale != 1.0:
                quantum = lv.line_size * lv.assoc
                size = max(quantum, int(size * capacity_scale) // quantum * quantum)
            sims.append(CacheSim(size, lv.line_size, lv.assoc, name=lv.name))
        return cls(sims)

    def access(self, address: int) -> int:
        """Access an address; returns the number of levels missed (0 = L1
        hit, ``len(levels)`` = fetched from memory)."""
        for depth, level in enumerate(self.levels):
            if level.access(address):
                return depth
        return len(self.levels)

    def miss_bytes(self, level_name: str) -> int:
        for level in self.levels:
            if level.name == level_name:
                return level.miss_bytes
        raise KeyError(f"no level {level_name!r}")

    def reset_stats(self) -> None:
        for level in self.levels:
            level.reset_stats()


@dataclass
class AddressTraceRecorder:
    """Collects byte addresses for array accesses of an interpreted kernel.

    Arrays are laid out contiguously (row-major) one after another, mimicking
    separate allocations; ``record`` is cheap enough to wire into small
    interpreter runs."""

    element_size: int = 8
    _bases: dict[str, int] = field(default_factory=dict)
    _shapes: dict[str, tuple[int, ...]] = field(default_factory=dict)
    trace: list[int] = field(default_factory=list)
    _next_base: int = 0
    _alignment: int = 4096

    def register(self, name: str, shape: tuple[int, ...]) -> None:
        elems = 1
        for d in shape:
            elems *= d
        self._bases[name] = self._next_base
        self._shapes[name] = shape
        size = elems * self.element_size
        self._next_base += (size + self._alignment - 1) // self._alignment * self._alignment

    def address_of(self, name: str, indices: tuple[int, ...]) -> int:
        shape = self._shapes[name]
        offset = 0
        for idx, dim in zip(indices, shape):
            offset = offset * dim + idx
        return self._bases[name] + offset * self.element_size

    def record(self, name: str, indices: tuple[int, ...]) -> None:
        self.trace.append(self.address_of(name, indices))

    def replay(self, hierarchy: CacheHierarchy) -> None:
        for addr in self.trace:
            hierarchy.access(addr)
