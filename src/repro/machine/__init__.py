"""Simulated target platforms.

The paper evaluates on two real machines (Table I): a 4-socket Intel Xeon
E7-4870 ("Westmere", 40 cores, 30 MB shared L3 per socket) and an 8-socket
AMD Opteron 8356 ("Barcelona", 32 cores, 2 MB shared L3 per socket).  This
environment has one core, so the machines are modeled: a
:class:`~repro.machine.model.MachineModel` captures the cache hierarchy,
per-core and shared bandwidths and parallel overheads that the analytical
cost model (:mod:`repro.evaluation.cost`) turns into execution-time
predictions, and :mod:`repro.machine.cache` provides a trace-driven
set-associative cache simulator used to validate those predictions in-repo.
"""

from repro.machine.model import (
    BARCELONA,
    LAPTOP,
    SERVER2S,
    WESTMERE,
    CacheLevel,
    MachineModel,
    machine_by_name,
)
from repro.machine.topology import ThreadPlacement, place_threads
from repro.machine.cache import CacheHierarchy, CacheSim

__all__ = [
    "CacheLevel",
    "MachineModel",
    "WESTMERE",
    "BARCELONA",
    "LAPTOP",
    "SERVER2S",
    "machine_by_name",
    "ThreadPlacement",
    "place_threads",
    "CacheSim",
    "CacheHierarchy",
]
