"""Tuning sessions: orchestration and persistence of experiment runs.

The benchmark harness re-runs multi-kernel, multi-machine experiments (the
paper's Tables V/VI sweep five kernels on two platforms, five repetitions
each).  A :class:`TuningSession` runs those sweeps and can persist results
as JSON so expensive sweeps are reusable across processes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.driver.compiler import TuningDriver
from repro.machine.model import MachineModel, machine_by_name
from repro.optimizer.config import Configuration
from repro.optimizer.rsgde3 import OptimizerResult

__all__ = ["TuningSession"]


def _result_to_json(result: OptimizerResult) -> dict:
    return {
        "evaluations": result.evaluations,
        "generations": result.generations,
        "front": [
            {"values": dict(c.values), "objectives": list(c.objectives)}
            for c in result.front
        ],
    }


def _result_from_json(data: dict) -> OptimizerResult:
    front = tuple(
        Configuration.make(entry["values"], tuple(entry["objectives"]))
        for entry in data["front"]
    )
    return OptimizerResult(
        front=front,
        evaluations=int(data["evaluations"]),
        generations=int(data["generations"]),
    )


@dataclass
class TuningSession:
    """A collection of tuning runs with JSON persistence.

    :param path: storage file; ``None`` keeps the session in memory only.
    """

    path: Path | None = None
    runs: dict[str, dict] = field(default_factory=dict)

    @staticmethod
    def run_key(kernel: str, machine: str, optimizer: str, seed: int) -> str:
        return f"{kernel}/{machine}/{optimizer}/seed{seed}"

    # ------------------------------------------------------------------

    def tune(
        self,
        kernel: str,
        machine: MachineModel,
        optimizer: str = "rsgde3",
        seed: int = 0,
        noise: float = 0.015,
        force: bool = False,
    ) -> OptimizerResult:
        """Run (or recall) one tuning experiment."""
        key = self.run_key(kernel, machine.name, optimizer, seed)
        if not force and key in self.runs:
            return _result_from_json(self.runs[key]["result"])
        driver = TuningDriver(machine=machine, seed=seed, noise=noise)
        tuned = driver.tune_kernel(kernel, optimizer=optimizer, run_seed=seed)
        self.runs[key] = {
            "kernel": kernel,
            "machine": machine.name,
            "optimizer": optimizer,
            "seed": seed,
            "result": _result_to_json(tuned.result),
        }
        return tuned.result

    # ------------------------------------------------------------------

    def save(self, path: Path | None = None) -> Path:
        target = Path(path or self.path or "tuning_session.json")
        target.write_text(json.dumps({"runs": self.runs}, indent=1))
        return target

    @classmethod
    def load(cls, path: Path) -> "TuningSession":
        path = Path(path)
        data = json.loads(path.read_text())
        return cls(path=path, runs=dict(data.get("runs", {})))

    def results_for(self, kernel: str, machine: str, optimizer: str) -> list[OptimizerResult]:
        out = []
        for key, entry in sorted(self.runs.items()):
            if (
                entry["kernel"] == kernel
                and entry["machine"] == machine
                and entry["optimizer"] == optimizer
            ):
                out.append(_result_from_json(entry["result"]))
        return out
