"""Simultaneous tuning of several regions of one program.

Paper §III-A: "the optimizer conducts auto-tuning by iteratively selecting
sets of configurations for each of the regions ... During the evaluation, a
single execution of the resulting program is sufficient to obtain
measurements for all simultaneously tuned regions."

:class:`MultiRegionTuner` coordinates one RS-GDE3 instance per region.  Two
evaluation paths produce bit-identical results:

* :meth:`MultiRegionTuner.run_lockstep` — the serial reference: each
  program generation, every region proposes its GDE3 trials, the trials
  are evaluated region by region, then every region selects.  This is the
  loop the scheduler is verified against (and the benchmark baseline).

* :meth:`MultiRegionTuner.run` — the cross-region scheduler: every active
  region's generation batch is fused into **one shared**
  :class:`~repro.evaluation.parallel_eval.EvaluationEngine` session, so
  the worker pool drains all regions' trials together instead of idling
  between per-region barriers.  Identical cost-model fingerprints dedup
  across regions (one dispatch serves every region that shares one, each
  still committing to its own ledger).  With ``pipeline=True`` a region
  whose selection finishes early proposes its next generation while
  slower regions' chunks are still in flight, bounded to one generation
  of lag (``pipeline=False`` keeps the lock-step barrier on the same code
  path).  Because measurement noise is hash-derived per key and regions
  are data-independent, fronts, per-region ``E`` and ``program_runs`` are
  bit-identical for any worker count, chunk size or completion
  interleaving.

The payoff is the ledger: ``program_runs`` grows by ``max_r |trials_r|``
per generation instead of ``Σ_r |trials_r|`` — tuning jacobi-2d's two
spatial regions costs barely more program executions than tuning one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.regions import extract_regions
from repro.evaluation.cost import RegionCostModel
from repro.evaluation.measurements import MeasurementProtocol
from repro.evaluation.parallel_eval import EngineStats, EvaluationEngine, FusedBatch
from repro.evaluation.simulator import SimulatedTarget
from repro.frontend.kernels import Kernel
from repro.ir.nodes import Function
from repro.machine.model import MachineModel, WESTMERE
from repro.obs import (
    DISABLED,
    ConvergenceRecord,
    Observability,
    emit_generation,
    population_delta,
)
from repro.optimizer.archive import ParetoArchive
from repro.optimizer.gde3 import GDE3
from repro.optimizer.pareto import non_dominated
from repro.optimizer.problem import TuningProblem
from repro.optimizer.roughset import rough_set_boundary
from repro.optimizer.rsgde3 import OptimizerResult, RSGDE3Settings, _dedupe
from repro.transform.skeleton import default_skeleton
from repro.util.rng import derive_rng

__all__ = ["MultiRegionTuner", "MultiRegionResult"]


@dataclass(frozen=True)
class MultiRegionResult:
    """Outcome of one multi-region tuning run.

    :param results: per-region optimizer results (fronts + per-region E).
    :param program_runs: distinct program executions spent — the shared
        cost; compare against ``sum(r.evaluations for r in results)``,
        which is what separate tuning would have paid.
    :param engine_stats: aggregated evaluation accounting across every
        region's batches (None for runs predating the scheduler).
    """

    results: tuple[OptimizerResult, ...]
    program_runs: int
    generations: int
    engine_stats: EngineStats | None = None

    @property
    def total_region_evaluations(self) -> int:
        return sum(r.evaluations for r in self.results)

    @property
    def sharing_factor(self) -> float:
        """How many region measurements each program run amortized."""
        if self.program_runs == 0:
            return 1.0
        return self.total_region_evaluations / self.program_runs

    def summary(self) -> str:
        """Human-readable per-region table plus the shared-cost totals."""
        lines = [
            f"{'region':>6}  {'|S|':>4}  {'E':>6}  {'generations':>11}",
        ]
        for idx, res in enumerate(self.results):
            lines.append(
                f"{idx:>6}  {res.size:>4}  {res.evaluations:>6}  "
                f"{res.generations:>11}"
            )
        lines.append(
            f"program runs: {self.program_runs}  "
            f"(Σ region E = {self.total_region_evaluations}, "
            f"sharing ×{self.sharing_factor:.2f})"
        )
        return "\n".join(lines)


class _RegionState:
    """One region's optimizer state inside the cross-region scheduler.

    Every mutation of this state depends only on the region's own RNG
    stream and its own measured objectives — never on sibling timing —
    which is what makes the scheduler's results independent of worker
    count and completion order.
    """

    def __init__(self, idx: int, problem: TuningProblem, settings, seed: int):
        self.idx = idx
        self.problem = problem
        self.settings = settings
        self.optimizer = GDE3(problem, settings.gde3)
        self.rng = derive_rng(seed, "multiregion", idx)
        self.full = problem.space.full_boundary()
        self.boundary = self.full
        self.population = None
        self.ref: np.ndarray | None = None
        self.best_hv = 0.0
        self.stalled = 0
        self.gen = -1  # last fully absorbed generation (-1: nothing yet)
        self.finished = False
        self.records: list[ConvergenceRecord] = []
        self.evals_before = problem.evaluations
        # in-flight bookkeeping
        self.batch: FusedBatch | None = None
        self.values_list: list[dict[str, int]] | None = None

    # -- propose / absorb: the two halves of one generation ---------------

    def propose(self, engine: EvaluationEngine) -> None:
        """Draw this region's next batch (initial sample or GDE3 trials)
        and enqueue it into the fused session."""
        if self.population is None:
            vectors = self.full.sample(
                self.rng, self.settings.gde3.population_size
            )
        else:
            vectors = self.optimizer.propose(
                self.population, self.boundary, self.rng
            )
        self.values_list, configs = self.problem.batch_configs(vectors)
        self.batch = engine.fused_submit(
            self.problem.target, configs, region=str(self.idx)
        )

    def absorb(self, obs: Observability) -> None:
        """Fold the drained batch back into the optimizer state: select,
        rough-set update, telemetry, stall check."""
        trial_configs = self.problem.make_configurations(
            self.values_list, self.batch.objectives
        )
        self.batch = None
        self.values_list = None
        self.gen += 1

        if self.population is None:
            self.population = trial_configs
            objs0 = np.array([c.objectives for c in self.population])
            self.ref = objs0.max(axis=0) * 1.1
            front_size, self.best_hv = ParetoArchive.stats_of(objs0, self.ref)
            record = ConvergenceRecord(
                generation=0,
                evaluations=self.problem.evaluations - self.evals_before,
                front_size=front_size,
                hypervolume=self.best_hv,
                accepted=len(self.population),
            )
        else:
            previous = self.population
            self.population = self.optimizer.select(self.population, trial_configs)
            accepted, dominated = population_delta(previous, self.population)
            front_size, hv = ParetoArchive.stats_of(
                np.array([c.objectives for c in self.population]), self.ref
            )
            record = ConvergenceRecord(
                generation=self.gen,
                evaluations=self.problem.evaluations - self.evals_before,
                front_size=front_size,
                hypervolume=hv,
                accepted=accepted,
                dominated=dominated,
            )
            if hv > self.best_hv * (1.0 + self.settings.hv_epsilon):
                self.best_hv = hv
                self.stalled = 0
            else:
                self.stalled += 1
                if self.stalled >= self.settings.patience:
                    self.finished = True
        self.boundary = rough_set_boundary(
            self.population, self.full, protect=self.settings.protect
        )
        self.records.append(record)
        emit_generation(obs, f"multiregion[{self.idx}]", record)
        if self.gen >= self.settings.max_generations:
            self.finished = True

    def result(self, generations: int) -> OptimizerResult:
        front = _dedupe(non_dominated(self.population, key=lambda c: c.objectives))
        return OptimizerResult(
            front=tuple(front),
            evaluations=self.problem.evaluations - self.evals_before,
            generations=generations,
            hv_history=tuple((r.evaluations, r.hypervolume) for r in self.records),
            convergence=tuple(self.records),
        )


@dataclass
class MultiRegionTuner:
    """Lock-step RS-GDE3 over all tunable regions of a function.

    :param function: the program (e.g. jacobi-2d with two spatial nests).
    :param sizes: problem-size bindings.
    :param machine: simulated target platform (callers that tune for a
        specific machine must pass it — the WESTMERE default exists for
        machine-agnostic tests and examples only).
    :param workers: shared evaluation workers for :meth:`run`; 1 keeps
        the whole pipeline serial (still fused, still bit-identical).
    :param chunk_size: per-worker chunk size forwarded to the engine.
    :param backend: ``"thread"`` or ``"process"`` evaluation workers.
    :param pipeline: allow one generation of cross-region lag in
        :meth:`run` (off = lock-step barrier on the same code path).
    :param protocol: measurement protocol handed to every region target
        (the benchmark injects per-configuration overhead through this).
    :param disk_cache: persistent measurement cache shared by all
        region targets.
    :param obs: observability handle (scheduler spans + metrics).
    """

    function: Function
    sizes: dict[str, int]
    machine: MachineModel = field(default_factory=lambda: WESTMERE)
    settings: RSGDE3Settings = field(default_factory=RSGDE3Settings)
    seed: int = 0
    noise: float = 0.015
    kernel: Kernel | None = None
    workers: int | str = 1
    chunk_size: int | None = None
    backend: str = "thread"
    pipeline: bool = False
    protocol: MeasurementProtocol | None = None
    disk_cache: object | None = None
    obs: Observability | None = None

    def _build_problems(self) -> list[TuningProblem]:
        regions = extract_regions(self.function)
        if not regions:
            raise ValueError(f"no tunable regions in {self.function.name!r}")
        problems = []
        for region in regions:
            skeleton = default_skeleton(
                region, self.sizes, self.machine.total_cores
            )
            model = RegionCostModel(
                region,
                self.sizes,
                self.machine,
                parallel_spec=skeleton.parallel_spec(),
            )
            target = SimulatedTarget(
                model,
                seed=self.seed,
                noise=self.noise,
                protocol=self.protocol,
                disk_cache=self.disk_cache,
            )
            problems.append(TuningProblem.from_skeleton(skeleton, target))
        return problems

    # -- fused cross-region scheduler ----------------------------------

    def run(self, seed: int = 0) -> MultiRegionResult:
        """Tune all regions through one shared evaluation session.

        Every region's generation batch lands in the same work queue;
        the pool stays busy until the whole generation drains.  Results
        are bit-identical to :meth:`run_lockstep` for any ``workers``,
        ``chunk_size``, ``backend`` and ``pipeline`` setting.
        """
        obs = self.obs or DISABLED
        problems = self._build_problems()
        states = [
            _RegionState(i, p, self.settings, seed)
            for i, p in enumerate(problems)
        ]
        by_region = {str(st.idx): st for st in states}
        max_lag = 1 if self.pipeline else 0
        engine = EvaluationEngine(
            problems[0].target,
            max_workers=self.workers,
            backend=self.backend,
            chunk_size=self.chunk_size,
            obs=obs,
        )

        with obs.tracer.span(
            "scheduler.run",
            regions=len(states),
            workers=self.workers,
            pipeline=self.pipeline,
        ) as span:
            try:
                for st in states:  # everyone's initial sample, fused
                    st.propose(engine)
                while any(st.batch is not None for st in states):
                    for batch in engine.fused_wait():
                        by_region[batch.region].absorb(obs)
                    running = [st for st in states if not st.finished]
                    if not running:
                        continue  # drain stragglers, nothing new to submit
                    # bounded lag: a region may run ahead of the slowest
                    # unfinished region by at most max_lag generations
                    min_gen = min(st.gen for st in running)
                    for st in running:
                        if st.batch is None and st.gen - min_gen <= max_lag:
                            st.propose(engine)
                stats = _clone_stats(engine.stats)
            finally:
                engine.close()

            generations = max(st.gen for st in states)
            program_runs = self.settings.gde3.population_size * (1 + generations)
            span.set(
                generations=generations,
                program_runs=program_runs,
                shared_hits=stats.shared_hits,
            )

        return MultiRegionResult(
            results=tuple(st.result(generations) for st in states),
            program_runs=program_runs,
            generations=generations,
            engine_stats=stats,
        )

    # -- serial lock-step reference ------------------------------------

    def run_lockstep(self, seed: int = 0) -> MultiRegionResult:
        """The serial per-region loop the scheduler is verified against
        (and the wall-clock baseline of the multi-region benchmark)."""
        obs = self.obs or DISABLED
        problems = self._build_problems()
        states = [
            _RegionState(i, p, self.settings, seed)
            for i, p in enumerate(problems)
        ]
        stats = EngineStats()

        for st in states:
            vectors = st.full.sample(st.rng, self.settings.gde3.population_size)
            st.values_list, configs = st.problem.batch_configs(vectors)
            result = st.problem.evaluation_engine.evaluate_batch(configs)
            st.batch = _as_fused(result)
            st.absorb(obs)

        while any(not st.finished for st in states):
            for st in states:
                if st.finished:
                    continue
                vectors = st.optimizer.propose(st.population, st.boundary, st.rng)
                st.values_list, configs = st.problem.batch_configs(vectors)
                result = st.problem.evaluation_engine.evaluate_batch(configs)
                st.batch = _as_fused(result)
                st.absorb(obs)

        for st in states:
            stats.merge(st.problem.evaluation_engine.stats)
        generations = max(st.gen for st in states)
        program_runs = self.settings.gde3.population_size * (1 + generations)
        return MultiRegionResult(
            results=tuple(st.result(generations) for st in states),
            program_runs=program_runs,
            generations=generations,
            engine_stats=stats,
        )


def _as_fused(result) -> FusedBatch:
    """Wrap a plain BatchResult so _RegionState.absorb can consume either
    evaluation path."""
    return FusedBatch(
        region="",
        target=None,
        fp="",
        keys=[],
        order=[],
        needs=set(),
        compute=[],
        stats=result.stats,
        t0=0.0,
        objectives=result.objectives,
        done=True,
    )


def _clone_stats(stats: EngineStats) -> EngineStats:
    """Snapshot the engine's cumulative accounting before it is closed."""
    out = EngineStats()
    out.merge(stats)
    return out
