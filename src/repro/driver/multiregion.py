"""Simultaneous tuning of several regions of one program.

Paper §III-A: "the optimizer conducts auto-tuning by iteratively selecting
sets of configurations for each of the regions ... During the evaluation, a
single execution of the resulting program is sufficient to obtain
measurements for all simultaneously tuned regions."

:class:`MultiRegionTuner` coordinates one RS-GDE3 instance per region in
lock-step: each program generation, every region proposes its GDE3 trials;
the trials are zipped into *program runs* (run ``b`` executes trial ``b`` of
every region at once); the per-region measurements feed the per-region
selections and rough-set updates.  A region whose stopping criterion fired
keeps participating with its current configurations (cache hits — no new
measurement cost) until all regions are done.

The payoff is the ledger: ``program_runs`` grows by ``max_r |trials_r|`` per
generation instead of ``Σ_r |trials_r|`` — tuning jacobi-2d's two spatial
regions costs barely more program executions than tuning one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.regions import TunableRegion, extract_regions
from repro.evaluation.cost import RegionCostModel
from repro.evaluation.simulator import SimulatedTarget
from repro.frontend.kernels import Kernel
from repro.ir.nodes import Function
from repro.machine.model import MachineModel, WESTMERE
from repro.optimizer.gde3 import GDE3
from repro.optimizer.hypervolume import hypervolume
from repro.optimizer.pareto import non_dominated
from repro.optimizer.problem import TuningProblem
from repro.optimizer.roughset import rough_set_boundary
from repro.optimizer.rsgde3 import OptimizerResult, RSGDE3Settings, _dedupe
from repro.transform.skeleton import default_skeleton
from repro.util.rng import derive_rng

__all__ = ["MultiRegionTuner", "MultiRegionResult"]


@dataclass(frozen=True)
class MultiRegionResult:
    """Outcome of one lock-step multi-region tuning run.

    :param results: per-region optimizer results (fronts + per-region E).
    :param program_runs: distinct program executions spent — the shared
        cost; compare against ``sum(r.evaluations for r in results)``,
        which is what separate tuning would have paid.
    """

    results: tuple[OptimizerResult, ...]
    program_runs: int
    generations: int

    @property
    def total_region_evaluations(self) -> int:
        return sum(r.evaluations for r in self.results)

    @property
    def sharing_factor(self) -> float:
        """How many region measurements each program run amortized."""
        if self.program_runs == 0:
            return 1.0
        return self.total_region_evaluations / self.program_runs


@dataclass
class MultiRegionTuner:
    """Lock-step RS-GDE3 over all tunable regions of a function.

    :param function: the program (e.g. jacobi-2d with two spatial nests).
    :param sizes: problem-size bindings.
    :param machine: simulated target platform.
    """

    function: Function
    sizes: dict[str, int]
    machine: MachineModel = field(default_factory=lambda: WESTMERE)
    settings: RSGDE3Settings = field(default_factory=RSGDE3Settings)
    seed: int = 0
    noise: float = 0.015
    kernel: Kernel | None = None

    def _build_problems(self) -> list[TuningProblem]:
        regions = extract_regions(self.function)
        if not regions:
            raise ValueError(f"no tunable regions in {self.function.name!r}")
        problems = []
        for region in regions:
            skeleton = default_skeleton(
                region, self.sizes, self.machine.total_cores
            )
            model = RegionCostModel(
                region,
                self.sizes,
                self.machine,
                parallel_spec=skeleton.parallel_spec(),
            )
            target = SimulatedTarget(model, seed=self.seed, noise=self.noise)
            problems.append(TuningProblem.from_skeleton(skeleton, target))
        return problems

    def run(self, seed: int = 0) -> MultiRegionResult:
        problems = self._build_problems()
        k = len(problems)
        optimizers = [GDE3(p, self.settings.gde3) for p in problems]
        rngs = [derive_rng(seed, "multiregion", i) for i in range(k)]
        fulls = [p.space.full_boundary() for p in problems]

        program_runs = 0
        populations = []
        for idx, (opt, full, rng) in enumerate(zip(optimizers, fulls, rngs)):
            populations.append(opt.initial_population(full, rng))
        # the initial samples are drawn simultaneously as well: one program
        # run evaluates one configuration of every region
        program_runs += self.settings.gde3.population_size

        boundaries = [
            rough_set_boundary(pop, full, protect=self.settings.protect)
            for pop, full in zip(populations, fulls)
        ]
        refs = [
            np.array([c.objectives for c in pop]).max(axis=0) * 1.1
            for pop in populations
        ]
        best_hv = [self._front_hv(pop, ref) for pop, ref in zip(populations, refs)]
        stalled = [0] * k
        active = [True] * k

        generations = 0
        while any(active) and generations < self.settings.max_generations:
            # propose trials for active regions; finished regions re-submit
            # their current population (ledger cache hits, no new cost)
            trial_vectors: list[np.ndarray] = []
            for idx in range(k):
                if active[idx]:
                    trial_vectors.append(
                        optimizers[idx].propose(populations[idx], boundaries[idx], rngs[idx])
                    )
                else:
                    names = problems[idx].space.names
                    trial_vectors.append(
                        np.stack([c.vector(names) for c in populations[idx]])
                    )

            # zip into program runs: run b executes every region's trial b
            program_runs += max(len(t) for t in trial_vectors)

            for idx in range(k):
                if not active[idx]:
                    continue
                trial_configs = problems[idx].evaluate_batch(trial_vectors[idx])
                populations[idx] = optimizers[idx].select(populations[idx], trial_configs)
                boundaries[idx] = rough_set_boundary(
                    populations[idx], fulls[idx], protect=self.settings.protect
                )
                hv = self._front_hv(populations[idx], refs[idx])
                if hv > best_hv[idx] * (1.0 + self.settings.hv_epsilon):
                    best_hv[idx] = hv
                    stalled[idx] = 0
                else:
                    stalled[idx] += 1
                    if stalled[idx] >= self.settings.patience:
                        active[idx] = False
            generations += 1

        results = []
        for idx in range(k):
            front = _dedupe(
                non_dominated(populations[idx], key=lambda c: c.objectives)
            )
            results.append(
                OptimizerResult(
                    front=tuple(front),
                    evaluations=problems[idx].evaluations,
                    generations=generations,
                )
            )
        return MultiRegionResult(
            results=tuple(results),
            program_runs=program_runs,
            generations=generations,
        )

    @staticmethod
    def _front_hv(population, ref) -> float:
        objs = np.array([c.objectives for c in population])
        return hypervolume(objs, ref)
