"""The compiler driver: input code → multi-versioned tuned output.

Implements the workflow of the paper's Fig. 3:

1. load the input (a registered kernel, C-like source, or an IR function),
2. analyze it into tunable regions with transformation skeletons,
3. run the static multi-objective optimizer against the (simulated) target
   platform,
4. hand the Pareto set to the multi-versioning backend,
5. expose the result to the runtime system as a version table.

Example::

    driver = TuningDriver(machine=WESTMERE, seed=42)
    tuned = driver.tune_kernel("mm")
    print(tuned.summary())
    table = tuned.build_version_table()      # executable versions
    unit = tuned.emit_c()                    # multi-versioned C source
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.regions import TunableRegion, extract_regions
from repro.backend.meta import VersionMeta
from repro.backend.multiversion import MultiVersionUnit, build_multiversion_c
from repro.backend.pygen import compile_function
from repro.evaluation.cost import RegionCostModel
from repro.evaluation.disk_cache import MeasurementDiskCache
from repro.evaluation.parallel_eval import EngineStats, EvaluationEngine
from repro.evaluation.simulator import SimulatedTarget
from repro.frontend.kernels import Kernel, get_kernel
from repro.frontend.parser import parse_function
from repro.ir.nodes import Function
from repro.machine.model import MachineModel, WESTMERE
from repro.obs import DISABLED, Observability
from repro.optimizer.nsga2 import NSGA2
from repro.optimizer.problem import TuningProblem
from repro.optimizer.random_search import random_search
from repro.optimizer.rsgde3 import RSGDE3, OptimizerResult, RSGDE3Settings
from repro.runtime.version_table import Version, VersionTable
from repro.transform.skeleton import TransformationSkeleton, default_skeleton
from repro.util.tables import Table

__all__ = ["TuningDriver", "TunedKernel"]


@dataclass
class TunedKernel:
    """The outcome of tuning one region: Pareto set + builders.

    :param result: optimizer outcome (front, E, generations).
    :param sequential_time: the fastest *sequential* configuration's time —
        the ``t_s`` reference for speedup/efficiency reporting.
    :param baseline_time: untiled sequential time (the "-O3" row).
    """

    kernel: Kernel | None
    function: Function
    region: TunableRegion
    skeleton: TransformationSkeleton
    machine: MachineModel
    sizes: dict[str, int]
    target: SimulatedTarget
    result: OptimizerResult
    sequential_time: float
    baseline_time: float
    engine: EvaluationEngine | None = None
    obs: Observability | None = None

    @property
    def name(self) -> str:
        return self.function.name

    @property
    def engine_stats(self) -> EngineStats | None:
        """Cumulative evaluation-engine accounting for this tuning run."""
        return self.engine.stats if self.engine is not None else None

    # ------------------------------------------------------------------

    def version_metas(self) -> list[VersionMeta]:
        """Pareto points as version metadata, fastest first."""
        front = sorted(self.result.front, key=lambda c: c.objectives[0])
        metas = []
        for idx, cfg in enumerate(front):
            values = cfg.as_dict()
            tiles = tuple(
                sorted(
                    (name[len("tile_"):], v)
                    for name, v in values.items()
                    if name.startswith("tile_")
                )
            )
            metas.append(
                VersionMeta(
                    index=idx,
                    time=cfg.objectives[0],
                    resources=cfg.objectives[1],
                    threads=int(values.get("threads", 1)),
                    tile_sizes=tiles,
                    values=tuple(sorted(values.items())),
                    energy=cfg.objectives[2] if len(cfg.objectives) > 2 else None,
                )
            )
        return metas

    def _variants(self) -> list[tuple[Function, VersionMeta]]:
        out = []
        for meta in self.version_metas():
            transformed = self.skeleton.instantiate(dict(meta.values))
            out.append((transformed.apply(), meta))
        return out

    def build_version_table(self, executable: bool = True) -> VersionTable:
        """Version table for the runtime; with ``executable`` the versions
        carry compiled Python bodies (exact semantics, small-size speed)."""
        versions = []
        for fn, meta in self._variants():
            body = compile_function(fn, name=f"{self.name}_v{meta.index}") if executable else None
            versions.append(Version(meta=meta, fn=body))
        return VersionTable(region_name=self.name, versions=tuple(versions))

    def emit_c(self) -> MultiVersionUnit:
        """The multi-versioned C translation unit (paper Fig. 6)."""
        return build_multiversion_c(self.name, self._variants())

    def preview_selections(
        self, policies: tuple[str, ...] = ("fastest", "efficient", "balanced")
    ) -> dict[str, int]:
        """Query each named selection policy once against the tuned
        version table, emitting one ``runtime.selection`` decision event
        per policy — the runtime half of an end-to-end trace without
        executing the region.

        :returns: policy name → chosen version index.
        """
        from repro.runtime.scheduler import RegionExecutor
        from repro.runtime.selection import policy_by_name

        obs = self.obs or DISABLED
        with obs.tracer.span("runtime.preview", region=self.name):
            table = self.build_version_table(executable=False)
            executor = RegionExecutor(table, obs=self.obs)
            chosen = {}
            for name in policies:
                executor.set_policy(policy_by_name(name))
                chosen[name] = executor.select().meta.index
        return chosen

    def summary(self) -> str:
        t = Table(
            ["version", "threads", "tiles", "time [s]", "cpu-s", "speedup", "efficiency"],
            title=(
                f"{self.name} on {self.machine.name}: |S|={self.result.size}, "
                f"E={self.result.evaluations}, untiled={self.baseline_time:.4g}s"
            ),
        )
        for meta in self.version_metas():
            speedup = self.sequential_time / meta.time
            t.add_row(
                [
                    meta.index,
                    meta.threads,
                    " ".join(f"{k}={v}" for k, v in meta.tile_sizes),
                    meta.time,
                    meta.resources,
                    round(speedup, 2),
                    round(speedup / meta.threads, 3),
                ]
            )
        return t.render()


@dataclass
class TuningDriver:
    """Front door of the framework.

    :param machine: simulated target platform.
    :param seed: seed for measurement noise and the stochastic optimizers.
    :param noise: relative measurement jitter of the simulated target.
    :param settings: RS-GDE3 driver settings.
    :param workers: evaluation-engine worker pool width — >1 (or
        ``"auto"``, three quarters of the visible cores) evaluates each
        generation's configurations in parallel; results and the E metric
        are bit-identical to the serial default.
    :param obs: observability handle — compiler phases become spans and
        the optimizer/engine telemetry flows into its tracer and metrics;
        None (the default) disables tracing at zero cost.
    :param cache_dir: directory of the persistent measurement cache
        (``--cache-dir``); None disables.  A repeated run against the same
        kernel/machine/seed serves every previously measured configuration
        from disk with E unchanged.
    :param backend: evaluation dispatch backend, ``"thread"`` (default) or
        ``"process"`` (``--eval-backend``).
    """

    machine: MachineModel = field(default_factory=lambda: WESTMERE)
    seed: int = 0
    noise: float = 0.015
    settings: RSGDE3Settings = field(default_factory=RSGDE3Settings)
    workers: int | str = 1
    obs: Observability | None = None
    cache_dir: str | None = None
    backend: str = "thread"
    _disk_cache: MeasurementDiskCache | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def disk_cache(self) -> MeasurementDiskCache | None:
        """The driver's shared persistent cache handle (lazily opened)."""
        if self.cache_dir is None:
            return None
        if self._disk_cache is None:
            self._disk_cache = MeasurementDiskCache(self.cache_dir)
        return self._disk_cache

    # ------------------------------------------------------------------

    def tune_kernel(
        self,
        name: str,
        sizes: dict[str, int] | None = None,
        optimizer: str = "rsgde3",
        run_seed: int = 0,
        with_energy: bool = False,
    ) -> TunedKernel:
        """Tune a registered benchmark kernel (mm, dsyrk, jacobi2d,
        stencil3d, nbody).

        :param with_energy: add energy as a third objective (§III-B1 names
            it as an example objective) — the Pareto set then trades off
            time, cpu-seconds and joules simultaneously.
        """
        kernel = get_kernel(name)
        merged = kernel.sizes(sizes)
        return self._tune(
            kernel.function,
            merged,
            kernel=kernel,
            optimizer=optimizer,
            run_seed=run_seed,
            flops_per_iteration=kernel.flops_per_point,
            with_energy=with_energy,
        )

    def tune_source(
        self,
        source: str,
        sizes: dict[str, int],
        optimizer: str = "rsgde3",
        run_seed: int = 0,
    ) -> TunedKernel:
        """Tune a kernel given as C-like source (the paper's entry point)."""
        return self._tune(parse_function(source), sizes, optimizer=optimizer, run_seed=run_seed)

    def tune_function(
        self,
        fn: Function,
        sizes: dict[str, int],
        optimizer: str = "rsgde3",
        run_seed: int = 0,
    ) -> TunedKernel:
        """Tune an IR function directly."""
        return self._tune(fn, sizes, optimizer=optimizer, run_seed=run_seed)

    def tune_multiregion(
        self,
        fn: Function,
        sizes: dict[str, int],
        run_seed: int = 0,
        pipeline: bool = False,
        kernel: Kernel | None = None,
    ):
        """Tune every region of *fn* simultaneously through the fused
        cross-region scheduler (``--multiregion``): one shared evaluation
        session drains all regions' generation batches together, on this
        driver's machine/workers/backend/cache configuration."""
        from repro.driver.multiregion import MultiRegionTuner

        tuner = MultiRegionTuner(
            function=fn,
            sizes=sizes,
            machine=self.machine,
            settings=self.settings,
            seed=self.seed,
            noise=self.noise,
            kernel=kernel,
            workers=self.workers,
            backend=self.backend,
            pipeline=pipeline,
            disk_cache=self.disk_cache,
            obs=self.obs,
        )
        return tuner.run(seed=run_seed)

    # ------------------------------------------------------------------

    def make_problem(
        self,
        fn: Function,
        sizes: dict[str, int],
        kernel: Kernel | None = None,
        flops_per_iteration: float | None = None,
        region_index: int = 0,
        with_energy: bool = False,
    ) -> tuple[TuningProblem, TunableRegion, TransformationSkeleton]:
        """Analysis + skeleton + simulated target for a function's region.

        Exposed separately so benchmarks can drive brute-force sweeps with
        the same problem construction the driver uses.
        """
        regions = extract_regions(fn)
        if not regions:
            raise ValueError(f"no tunable region found in {fn.name!r}")
        region = regions[region_index]
        band = kernel.tile_loops if kernel is not None else None
        skeleton = default_skeleton(
            region, sizes, self.machine.total_cores, band=band
        )
        model = RegionCostModel(
            region,
            sizes,
            self.machine,
            flops_per_iteration=flops_per_iteration,
            parallel_spec=skeleton.parallel_spec(),
        )
        target = SimulatedTarget(
            model,
            seed=self.seed,
            noise=self.noise,
            measure_energy=with_energy,
            disk_cache=self.disk_cache,
        )
        engine = EvaluationEngine(
            target, max_workers=self.workers, obs=self.obs, backend=self.backend
        )
        problem = TuningProblem.from_skeleton(
            skeleton, target, tri_objective=with_energy, engine=engine, obs=self.obs
        )
        return problem, region, skeleton

    def _tune(
        self,
        fn: Function,
        sizes: dict[str, int],
        kernel: Kernel | None = None,
        optimizer: str = "rsgde3",
        run_seed: int = 0,
        flops_per_iteration: float | None = None,
        with_energy: bool = False,
    ) -> TunedKernel:
        obs = self.obs or DISABLED
        with obs.tracer.span("driver.analyze", kernel=fn.name):
            problem, region, skeleton = self.make_problem(
                fn,
                sizes,
                kernel=kernel,
                flops_per_iteration=flops_per_iteration,
                with_energy=with_energy,
            )
        with obs.tracer.span(
            "driver.optimize", kernel=fn.name, optimizer=optimizer
        ):
            if optimizer == "rsgde3":
                result = RSGDE3(problem, self.settings).run(seed=run_seed)
            elif optimizer == "nsga2":
                result = NSGA2(problem).run(seed=run_seed)
            elif optimizer == "random":
                budget = self.settings.gde3.population_size * 25
                result = random_search(problem, budget=budget, seed=run_seed)
            else:
                raise KeyError(
                    f"unknown optimizer {optimizer!r} (rsgde3 | nsga2 | random)"
                )

        with obs.tracer.span("driver.finalize", kernel=fn.name):
            target = problem.target
            seq_candidates = [
                c for c in result.front if c.as_dict().get("threads", 1) == 1
            ]
            if seq_candidates:
                t_seq = min(c.time for c in seq_candidates)
            else:
                # fall back: fastest front tiles at one thread
                best = min(result.front, key=lambda c: c.time)
                tiles, _ = problem.split_values(best.as_dict())
                t_seq = target.true_time(tiles, 1)
            baseline = target.model.baseline_time()

        return TunedKernel(
            kernel=kernel,
            function=fn,
            region=region,
            skeleton=skeleton,
            machine=self.machine,
            sizes=dict(sizes),
            target=target,
            result=result,
            sequential_time=t_seq,
            baseline_time=baseline,
            engine=problem.engine,
            obs=self.obs,
        )
