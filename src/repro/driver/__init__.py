"""End-to-end compiler driver (the workflow of the paper's Fig. 3)."""

from repro.driver.compiler import TunedKernel, TuningDriver
from repro.driver.session import TuningSession

__all__ = ["TuningDriver", "TunedKernel", "TuningSession"]
