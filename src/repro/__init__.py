"""repro — reproduction of "A Multi-Objective Auto-Tuning Framework for
Parallel Codes" (Jordan, Thoman, Durillo, Pellegrini, Gschwandtner,
Fahringer, Moritsch — SC 2012).

The package mirrors the paper's architecture (Fig. 3):

* :mod:`repro.frontend` / :mod:`repro.ir` — input kernels and the loop-nest IR,
* :mod:`repro.analysis` — region extraction, dependences, tilability,
* :mod:`repro.transform` — tiling / collapsing / parallelization skeletons,
* :mod:`repro.optimizer` — the RS-GDE3 multi-objective optimizer plus
  brute-force / random / NSGA-II baselines and quality metrics,
* :mod:`repro.machine` + :mod:`repro.evaluation` — the simulated target
  platforms (Westmere, Barcelona) and the measurement substrate,
* :mod:`repro.backend` — multi-versioned C and executable NumPy code
  generation with trade-off metadata tables,
* :mod:`repro.runtime` — dynamic version selection policies,
* :mod:`repro.driver` — the end-to-end compiler driver.

Quickstart::

    from repro.driver import TuningDriver
    from repro.machine import WESTMERE

    driver = TuningDriver(machine=WESTMERE, seed=42)
    result = driver.tune_kernel("mm")
    exe = result.build_multiversioned()
    exe.select(policy="balanced")
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
