"""Kernel frontend: the paper's five benchmark kernels as IR, and a small
C-like parser for user-supplied loop nests."""

from repro.frontend.kernels import (
    ALL_KERNELS,
    EXTRA_KERNELS,
    Kernel,
    get_kernel,
    kernel_names,
    make_dsyrk,
    make_jacobi2d,
    make_mm,
    make_nbody,
    make_stencil3d,
)
from repro.frontend.parser import parse_function

__all__ = [
    "Kernel",
    "ALL_KERNELS",
    "EXTRA_KERNELS",
    "get_kernel",
    "kernel_names",
    "make_mm",
    "make_dsyrk",
    "make_jacobi2d",
    "make_stencil3d",
    "make_nbody",
    "parse_function",
]
