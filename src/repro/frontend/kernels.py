"""The paper's five benchmark kernels (Section V) as IR functions.

Each :class:`Kernel` bundles the IR, tuning metadata (which loops are tiled,
the parallel candidate loop), the computation/memory complexity reported in
Table IV, a NumPy reference implementation used by correctness tests of the
transformed code, and the problem sizes used in the evaluation.

Kernel inventory (paper Table IV):

========== =========================== ============ ===========
kernel     computation                  comp.        memory
========== =========================== ============ ===========
mm         C = A * B + C  (IJK)         O(N^3)       O(N^2)
dsyrk      B = A * A^T + B              O(N^3)       O(N^2)
jacobi-2d  4-point stencil sweep        O(T N^2)     O(N^2)
3d-stencil generic 3x3x3 stencil        O(N^3)       O(N^3)
n-body     naive all-pairs forces       O(n^2)       O(n)
========== =========================== ============ ===========
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.ir import Function
from repro.ir.builder import array, assign, block, func, loop, param, var
from repro.ir.nodes import Call
from repro.ir.types import F64, I64

__all__ = [
    "Kernel",
    "ALL_KERNELS",
    "get_kernel",
    "kernel_names",
    "make_mm",
    "make_dsyrk",
    "make_jacobi2d",
    "make_stencil3d",
    "make_nbody",
]


@dataclass(frozen=True)
class Kernel:
    """A tunable benchmark kernel.

    :param name: registry key (``mm``, ``dsyrk``, ``jacobi2d``, ``stencil3d``,
        ``nbody``).
    :param function: the kernel body as an IR :class:`Function`.
    :param tile_loops: loop indices (in nest order) whose tile sizes are
        tuning parameters.
    :param parallel_loop: the loop the backend parallelises (after tiling and
        collapsing, its *tile loop* becomes the worksharing loop).
    :param sweep_loop: an outer sequential loop that repeats the region
        (jacobi-2d's time loop); ``None`` for single-sweep kernels.
    :param default_size: problem-size bindings used in the paper's evaluation.
    :param test_size: small bindings for executable correctness tests.
    :param complexity: ``(computation, memory)`` complexity strings (Tab IV).
    :param flops_per_point: floating-point operations per innermost iteration
        (used by the machine cost model).
    :param reference: NumPy reference computing the kernel output from named
        input arrays; used to validate transformed/generated code.
    :param make_inputs: builds named input arrays for given size bindings.
    """

    name: str
    function: Function
    tile_loops: tuple[str, ...]
    parallel_loop: str | None
    default_size: dict[str, int]
    test_size: dict[str, int]
    complexity: tuple[str, str]
    flops_per_point: int
    reference: Callable[[dict[str, np.ndarray], dict[str, int]], dict[str, np.ndarray]]
    make_inputs: Callable[[dict[str, int], np.random.Generator], dict[str, np.ndarray]]
    sweep_loop: str | None = None
    output_arrays: tuple[str, ...] = field(default=())

    def sizes(self, overrides: dict[str, int] | None = None) -> dict[str, int]:
        merged = dict(self.default_size)
        if overrides:
            merged.update(overrides)
        return merged


# --------------------------------------------------------------------------
# mm: C[i][j] += A[i][k] * B[k][j]   (Fig. 7 of the paper, IJK ordering)
# --------------------------------------------------------------------------


def make_mm() -> Function:
    i, j, k = var("i"), var("j"), var("k")
    A, B, C = var("A"), var("B"), var("C")
    body = assign(C[i, j], C[i, j] + A[i, k] * B[k, j])
    nest = loop("i", 0, "N", loop("j", 0, "N", loop("k", 0, "N", body)))
    return func(
        "mm",
        [
            param("N", I64),
            array("A", "N", "N"),
            array("B", "N", "N"),
            array("C", "N", "N"),
        ],
        nest,
    )


def _mm_reference(arrays: dict[str, np.ndarray], sizes: dict[str, int]) -> dict[str, np.ndarray]:
    return {"C": arrays["C"] + arrays["A"] @ arrays["B"]}


def _mm_inputs(sizes: dict[str, int], rng: np.random.Generator) -> dict[str, np.ndarray]:
    n = sizes["N"]
    return {
        "A": rng.standard_normal((n, n)),
        "B": rng.standard_normal((n, n)),
        "C": rng.standard_normal((n, n)),
    }


# --------------------------------------------------------------------------
# dsyrk: B[i][j] += A[i][k] * A[j][k]   (B = A A^T + B; aligned accesses)
# --------------------------------------------------------------------------


def make_dsyrk() -> Function:
    i, j, k = var("i"), var("j"), var("k")
    A, B = var("A"), var("B")
    body = assign(B[i, j], B[i, j] + A[i, k] * A[j, k])
    nest = loop("i", 0, "N", loop("j", 0, "N", loop("k", 0, "N", body)))
    return func(
        "dsyrk",
        [param("N", I64), array("A", "N", "N"), array("B", "N", "N")],
        nest,
    )


def _dsyrk_reference(arrays: dict[str, np.ndarray], sizes: dict[str, int]) -> dict[str, np.ndarray]:
    return {"B": arrays["B"] + arrays["A"] @ arrays["A"].T}


def _dsyrk_inputs(sizes: dict[str, int], rng: np.random.Generator) -> dict[str, np.ndarray]:
    n = sizes["N"]
    return {"A": rng.standard_normal((n, n)), "B": rng.standard_normal((n, n))}


# --------------------------------------------------------------------------
# jacobi-2d: one 4-point sweep per time step, double buffered
# --------------------------------------------------------------------------


def make_jacobi2d() -> Function:
    i, j = var("i"), var("j")
    A, B = var("A"), var("B")
    sweep = assign(
        B[i, j],
        (A[i - 1, j] + A[i + 1, j] + A[i, j - 1] + A[i, j + 1]) * 0.25,
    )
    copy = assign(A[i, j], B[i, j])
    spatial = loop("i", 1, var("N") - 1, loop("j", 1, var("N") - 1, sweep))
    copy_nest = loop("i", 1, var("N") - 1, loop("j", 1, var("N") - 1, copy))
    time_loop = loop("t", 0, "T", block(spatial, copy_nest))
    return func(
        "jacobi2d",
        [
            param("N", I64),
            param("T", I64),
            array("A", "N", "N"),
            array("B", "N", "N"),
        ],
        time_loop,
    )


def _jacobi2d_reference(arrays: dict[str, np.ndarray], sizes: dict[str, int]) -> dict[str, np.ndarray]:
    a = arrays["A"].copy()
    b = arrays["B"].copy()
    for _ in range(sizes["T"]):
        b[1:-1, 1:-1] = 0.25 * (a[:-2, 1:-1] + a[2:, 1:-1] + a[1:-1, :-2] + a[1:-1, 2:])
        a[1:-1, 1:-1] = b[1:-1, 1:-1]
    return {"A": a, "B": b}


def _jacobi2d_inputs(sizes: dict[str, int], rng: np.random.Generator) -> dict[str, np.ndarray]:
    n = sizes["N"]
    return {"A": rng.standard_normal((n, n)), "B": np.zeros((n, n))}


# --------------------------------------------------------------------------
# 3d-stencil: generic 3x3x3 27-point stencil
# --------------------------------------------------------------------------


def make_stencil3d() -> Function:
    i, j, k = var("i"), var("j"), var("k")
    A, B = var("A"), var("B")
    acc = None
    for di in (-1, 0, 1):
        for dj in (-1, 0, 1):
            for dk in (-1, 0, 1):
                term = A[i + di, j + dj, k + dk]
                acc = term if acc is None else acc + term
    body = assign(B[i, j, k], acc * (1.0 / 27.0))
    nest = loop(
        "i", 1, var("N") - 1,
        loop("j", 1, var("N") - 1, loop("k", 1, var("N") - 1, body)),
    )
    return func(
        "stencil3d",
        [param("N", I64), array("A", "N", "N", "N"), array("B", "N", "N", "N")],
        nest,
    )


def _stencil3d_reference(arrays: dict[str, np.ndarray], sizes: dict[str, int]) -> dict[str, np.ndarray]:
    a = arrays["A"]
    b = arrays["B"].copy()
    acc = np.zeros_like(a[1:-1, 1:-1, 1:-1])
    for di in (-1, 0, 1):
        for dj in (-1, 0, 1):
            for dk in (-1, 0, 1):
                acc += a[
                    1 + di : a.shape[0] - 1 + di,
                    1 + dj : a.shape[1] - 1 + dj,
                    1 + dk : a.shape[2] - 1 + dk,
                ]
    b[1:-1, 1:-1, 1:-1] = acc / 27.0
    return {"B": b}


def _stencil3d_inputs(sizes: dict[str, int], rng: np.random.Generator) -> dict[str, np.ndarray]:
    n = sizes["N"]
    return {"A": rng.standard_normal((n, n, n)), "B": np.zeros((n, n, n))}


# --------------------------------------------------------------------------
# n-body: naive all-pairs force accumulation (softened gravity)
# --------------------------------------------------------------------------


def make_nbody() -> Function:
    i, j = var("i"), var("j")
    px, py, pz = var("px"), var("py"), var("pz")
    fx, fy, fz = var("fx"), var("fy"), var("fz")
    dx = px[j] - px[i]
    dy = py[j] - py[i]
    dz = pz[j] - pz[i]
    r2 = dx * dx + dy * dy + dz * dz + 1e-9
    inv = Call("rsqrt3", (r2,))  # (r^2)^(-3/2)
    body = block(
        assign(fx[i], fx[i] + dx * inv),
        assign(fy[i], fy[i] + dy * inv),
        assign(fz[i], fz[i] + dz * inv),
    )
    nest = loop("i", 0, "n", loop("j", 0, "n", body))
    return func(
        "nbody",
        [
            param("n", I64),
            array("px", "n"),
            array("py", "n"),
            array("pz", "n"),
            array("fx", "n"),
            array("fy", "n"),
            array("fz", "n"),
        ],
        nest,
    )


def _nbody_reference(arrays: dict[str, np.ndarray], sizes: dict[str, int]) -> dict[str, np.ndarray]:
    px, py, pz = arrays["px"], arrays["py"], arrays["pz"]
    dx = px[None, :] - px[:, None]
    dy = py[None, :] - py[:, None]
    dz = pz[None, :] - pz[:, None]
    r2 = dx * dx + dy * dy + dz * dz + 1e-9
    inv = r2 ** -1.5
    return {
        "fx": arrays["fx"] + (dx * inv).sum(axis=1),
        "fy": arrays["fy"] + (dy * inv).sum(axis=1),
        "fz": arrays["fz"] + (dz * inv).sum(axis=1),
    }


def _nbody_inputs(sizes: dict[str, int], rng: np.random.Generator) -> dict[str, np.ndarray]:
    n = sizes["n"]
    return {
        "px": rng.standard_normal(n),
        "py": rng.standard_normal(n),
        "pz": rng.standard_normal(n),
        "fx": np.zeros(n),
        "fy": np.zeros(n),
        "fz": np.zeros(n),
    }


# --------------------------------------------------------------------------
# seidel-2d: Gauss-Seidel sweep — tilable but NOT parallelizable (every
# point depends on already-updated west/north neighbours); exercises the
# analyzer's sequential-tuning path
# --------------------------------------------------------------------------


def make_seidel2d() -> Function:
    i, j = var("i"), var("j")
    A = var("A")
    body = assign(
        A[i, j],
        (A[i - 1, j] + A[i, j - 1] + A[i, j] + A[i + 1, j] + A[i, j + 1]) * 0.2,
    )
    spatial = loop("i", 1, var("N") - 1, loop("j", 1, var("N") - 1, body))
    time_loop = loop("t", 0, "T", block(spatial))
    return func(
        "seidel2d",
        [param("N", I64), param("T", I64), array("A", "N", "N")],
        time_loop,
    )


def _seidel2d_reference(arrays: dict[str, np.ndarray], sizes: dict[str, int]) -> dict[str, np.ndarray]:
    a = arrays["A"].copy()
    n = sizes["N"]
    for _ in range(sizes["T"]):
        for i in range(1, n - 1):
            for j in range(1, n - 1):
                a[i, j] = 0.2 * (
                    a[i - 1, j] + a[i, j - 1] + a[i, j] + a[i + 1, j] + a[i, j + 1]
                )
    return {"A": a}


def _seidel2d_inputs(sizes: dict[str, int], rng: np.random.Generator) -> dict[str, np.ndarray]:
    n = sizes["N"]
    return {"A": rng.standard_normal((n, n))}


# --------------------------------------------------------------------------
# 2mm: two chained matrix products (E = A*B; F = E*C) — two tunable regions
# in one function, the multi-region tuning scenario
# --------------------------------------------------------------------------


def make_2mm() -> Function:
    i, j, k = var("i"), var("j"), var("k")
    A, B, C, E, F = var("A"), var("B"), var("C"), var("E"), var("F")
    first = loop(
        "i", 0, "N",
        loop("j", 0, "N", loop("k", 0, "N", assign(E[i, j], E[i, j] + A[i, k] * B[k, j]))),
    )
    second = loop(
        "i", 0, "N",
        loop("j", 0, "N", loop("k", 0, "N", assign(F[i, j], F[i, j] + E[i, k] * C[k, j]))),
    )
    return func(
        "two_mm",
        [
            param("N", I64),
            array("A", "N", "N"),
            array("B", "N", "N"),
            array("C", "N", "N"),
            array("E", "N", "N"),
            array("F", "N", "N"),
        ],
        first,
        second,
    )


def _2mm_reference(arrays: dict[str, np.ndarray], sizes: dict[str, int]) -> dict[str, np.ndarray]:
    e = arrays["E"] + arrays["A"] @ arrays["B"]
    f = arrays["F"] + e @ arrays["C"]
    return {"E": e, "F": f}


def _2mm_inputs(sizes: dict[str, int], rng: np.random.Generator) -> dict[str, np.ndarray]:
    n = sizes["N"]
    return {
        "A": rng.standard_normal((n, n)),
        "B": rng.standard_normal((n, n)),
        "C": rng.standard_normal((n, n)),
        "E": np.zeros((n, n)),
        "F": np.zeros((n, n)),
    }


# --------------------------------------------------------------------------
# registry
# --------------------------------------------------------------------------

ALL_KERNELS: dict[str, Kernel] = {
    "mm": Kernel(
        name="mm",
        function=make_mm(),
        tile_loops=("i", "j", "k"),
        parallel_loop="i",
        default_size={"N": 1400},
        test_size={"N": 24},
        complexity=("O(N^3)", "O(N^2)"),
        flops_per_point=2,
        reference=_mm_reference,
        make_inputs=_mm_inputs,
        output_arrays=("C",),
    ),
    "dsyrk": Kernel(
        name="dsyrk",
        function=make_dsyrk(),
        tile_loops=("i", "j", "k"),
        parallel_loop="i",
        default_size={"N": 1400},
        test_size={"N": 20},
        complexity=("O(N^3)", "O(N^2)"),
        flops_per_point=2,
        reference=_dsyrk_reference,
        make_inputs=_dsyrk_inputs,
        output_arrays=("B",),
    ),
    "jacobi2d": Kernel(
        name="jacobi2d",
        function=make_jacobi2d(),
        tile_loops=("i", "j"),
        parallel_loop="i",
        sweep_loop="t",
        default_size={"N": 4000, "T": 100},
        test_size={"N": 18, "T": 3},
        complexity=("O(T N^2)", "O(N^2)"),
        flops_per_point=4,
        reference=_jacobi2d_reference,
        make_inputs=_jacobi2d_inputs,
        output_arrays=("A", "B"),
    ),
    "stencil3d": Kernel(
        name="stencil3d",
        function=make_stencil3d(),
        tile_loops=("i", "j", "k"),
        parallel_loop="i",
        default_size={"N": 350},
        test_size={"N": 10},
        complexity=("O(N^3)", "O(N^3)"),
        flops_per_point=27,
        reference=_stencil3d_reference,
        make_inputs=_stencil3d_inputs,
        output_arrays=("B",),
    ),
    "nbody": Kernel(
        name="nbody",
        function=make_nbody(),
        # cache blocking of the reduction dimension only: the j tile loop is
        # hoisted above the (parallel) i loop; tiling i would throttle the
        # worksharing iteration count for no locality gain
        tile_loops=("j",),
        parallel_loop="i",
        default_size={"n": 60000},
        test_size={"n": 32},
        complexity=("O(n^2)", "O(n)"),
        flops_per_point=17,
        reference=_nbody_reference,
        make_inputs=_nbody_inputs,
        output_arrays=("fx", "fy", "fz"),
    ),
}


#: kernels beyond the paper's evaluation set, used by the extended tests
#: and the multi-region machinery (kept out of ALL_KERNELS so the paper's
#: five-kernel experiment sweeps stay exactly the paper's)
EXTRA_KERNELS: dict[str, Kernel] = {
    "seidel2d": Kernel(
        name="seidel2d",
        function=make_seidel2d(),
        tile_loops=("i", "j"),
        parallel_loop=None,
        default_size={"N": 2000, "T": 50},
        test_size={"N": 12, "T": 2},
        complexity=("O(T N^2)", "O(N^2)"),
        flops_per_point=5,
        reference=_seidel2d_reference,
        make_inputs=_seidel2d_inputs,
        sweep_loop="t",
        output_arrays=("A",),
    ),
    "2mm": Kernel(
        name="2mm",
        function=make_2mm(),
        tile_loops=("i", "j", "k"),
        parallel_loop="i",
        default_size={"N": 900},
        test_size={"N": 14},
        complexity=("O(N^3)", "O(N^2)"),
        flops_per_point=2,
        reference=_2mm_reference,
        make_inputs=_2mm_inputs,
        output_arrays=("E", "F"),
    ),
}


def get_kernel(name: str) -> Kernel:
    if name in EXTRA_KERNELS:
        return EXTRA_KERNELS[name]
    try:
        return ALL_KERNELS[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; available: {sorted(ALL_KERNELS)}"
        ) from None


def kernel_names() -> list[str]:
    return list(ALL_KERNELS)
