"""A small C-like frontend for user-supplied loop nests.

This is the "input code is loaded by the compiler" step (label 1 in the
paper's Fig. 3).  The accepted language is the kernel class the tuner
operates on::

    void mm(int N, double A[N][N], double B[N][N], double C[N][N]) {
        for (int i = 0; i < N; i++)
            for (int j = 0; j < N; j++)
                for (int k = 0; k < N; k++)
                    C[i][j] += A[i][k] * B[k][j];
    }

Supported: ``int``/``long``/``float``/``double`` scalars, array parameters
with symbolic extents, ``for`` loops (``<`` condition; ``++``/``+=`` step),
assignment and compound assignment (``+=``, ``-=``, ``*=``), arithmetic
expressions, function calls, parenthesised sub-expressions, and both braced
and single-statement loop bodies.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.ir.builder import block
from repro.ir.nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Block,
    Call,
    Expr,
    FloatLit,
    For,
    Function,
    IntLit,
    Param,
    Stmt,
    Var,
)
from repro.ir.types import F32, F64, I32, I64, ArrayType, ScalarType

__all__ = ["parse_function", "ParseError"]


class ParseError(ValueError):
    """Raised when the input does not conform to the accepted subset."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|//[^\n]*|/\*.*?\*/)
  | (?P<num>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?)
  | (?P<name>[A-Za-z_]\w*)
  | (?P<op>\+\+|--|\+=|-=|\*=|/=|<=|>=|==|!=|[-+*/%<>=(){}\[\];,])
    """,
    re.VERBOSE | re.DOTALL,
)

_SCALAR_TYPES: dict[str, ScalarType] = {
    "int": I32,
    "long": I64,
    "float": F32,
    "double": F64,
}


@dataclass
class _Token:
    kind: str
    text: str
    pos: int


def _tokenize(src: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(src):
        m = _TOKEN_RE.match(src, pos)
        if not m:
            raise ParseError(f"unexpected character {src[pos]!r} at offset {pos}")
        pos = m.end()
        kind = m.lastgroup or ""
        if kind == "ws":
            continue
        tokens.append(_Token(kind, m.group(), m.start()))
    tokens.append(_Token("eof", "", len(src)))
    return tokens


class _Parser:
    def __init__(self, src: str) -> None:
        self.tokens = _tokenize(src)
        self.i = 0

    # -- token plumbing ---------------------------------------------------

    @property
    def cur(self) -> _Token:
        return self.tokens[self.i]

    def advance(self) -> _Token:
        tok = self.cur
        self.i += 1
        return tok

    def accept(self, text: str) -> bool:
        if self.cur.text == text and self.cur.kind in ("op", "name"):
            self.i += 1
            return True
        return False

    def expect(self, text: str) -> _Token:
        if self.cur.text != text:
            raise ParseError(
                f"expected {text!r} but found {self.cur.text!r} at offset {self.cur.pos}"
            )
        return self.advance()

    def expect_name(self) -> str:
        if self.cur.kind != "name":
            raise ParseError(
                f"expected identifier, found {self.cur.text!r} at offset {self.cur.pos}"
            )
        return self.advance().text

    # -- grammar ----------------------------------------------------------

    def parse_function(self) -> Function:
        ret = self.expect_name()
        if ret != "void":
            raise ParseError(f"kernels must return void, got {ret!r}")
        name = self.expect_name()
        self.expect("(")
        params: list[Param] = []
        if not self.accept(")"):
            while True:
                params.append(self._parse_param())
                if self.accept(")"):
                    break
                self.expect(",")
        body = self._parse_block()
        if self.cur.kind != "eof":
            raise ParseError(f"trailing input at offset {self.cur.pos}")
        return Function(name, tuple(params), body)

    def _parse_param(self) -> Param:
        base = self.expect_name()
        while self.cur.kind == "name" and self.cur.text in ("long", "int"):
            # allow "long long", "long int"
            self.advance()
            base = "long"
        if base not in _SCALAR_TYPES:
            raise ParseError(f"unknown type {base!r}")
        scalar = _SCALAR_TYPES[base]
        name = self.expect_name()
        shape: list[int | str] = []
        while self.accept("["):
            if self.cur.kind == "num":
                shape.append(int(self.advance().text))
            else:
                shape.append(self.expect_name())
            self.expect("]")
        if shape:
            return Param(name, ArrayType(scalar, tuple(shape)))
        return Param(name, scalar)

    def _parse_block(self) -> Block:
        self.expect("{")
        stmts: list[Stmt] = []
        while not self.accept("}"):
            stmts.append(self._parse_statement())
        return block(*stmts)

    def _parse_statement(self) -> Stmt:
        if self.cur.text == "for":
            return self._parse_for()
        if self.cur.text == "{":
            return self._parse_block()
        return self._parse_assignment()

    def _parse_for(self) -> For:
        self.expect("for")
        self.expect("(")
        if self.cur.text in _SCALAR_TYPES:
            self.advance()  # loop index declaration type
        index = self.expect_name()
        self.expect("=")
        lower = self._parse_expr()
        self.expect(";")
        cond_var = self.expect_name()
        if cond_var != index:
            raise ParseError(f"loop condition must test {index!r}, found {cond_var!r}")
        if self.cur.text == "<":
            self.advance()
            upper = self._parse_expr()
        elif self.cur.text == "<=":
            self.advance()
            upper = BinOp("+", self._parse_expr(), IntLit(1))
        else:
            raise ParseError(f"unsupported loop condition operator {self.cur.text!r}")
        self.expect(";")
        step: Expr
        inc_var = self.expect_name()
        if inc_var != index:
            raise ParseError(f"loop increment must update {index!r}")
        if self.accept("++"):
            step = IntLit(1)
        elif self.accept("+="):
            step = self._parse_expr()
        else:
            raise ParseError(f"unsupported loop increment {self.cur.text!r}")
        self.expect(")")
        if self.cur.text == "{":
            body: Stmt = self._parse_block()
        else:
            body = self._parse_statement()
        if not isinstance(body, Block):
            body = Block((body,))
        return For(index, lower, upper, step, body)

    def _parse_assignment(self) -> Assign:
        target = self._parse_primary()
        if not isinstance(target, (ArrayRef, Var)):
            raise ParseError("assignment target must be a variable or array element")
        op_tok = self.advance()
        value: Expr
        if op_tok.text == "=":
            value = self._parse_expr()
        elif op_tok.text in ("+=", "-=", "*=", "/="):
            rhs = self._parse_expr()
            value = BinOp(op_tok.text[0], target, rhs)
        else:
            raise ParseError(f"expected assignment operator, got {op_tok.text!r}")
        self.expect(";")
        return Assign(target, value)

    # expression grammar: additive > multiplicative > unary > primary

    def _parse_expr(self) -> Expr:
        node = self._parse_term()
        while self.cur.text in ("+", "-"):
            op = self.advance().text
            node = BinOp(op, node, self._parse_term())
        return node

    def _parse_term(self) -> Expr:
        node = self._parse_unary()
        while self.cur.text in ("*", "/", "%"):
            op = self.advance().text
            node = BinOp(op, node, self._parse_unary())
        return node

    def _parse_unary(self) -> Expr:
        if self.accept("-"):
            return BinOp("-", IntLit(0), self._parse_unary())
        if self.accept("+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        tok = self.cur
        if tok.kind == "num":
            self.advance()
            if "." in tok.text or "e" in tok.text or "E" in tok.text:
                return FloatLit(float(tok.text))
            return IntLit(int(tok.text))
        if tok.kind == "name":
            name = self.advance().text
            if self.accept("("):
                args: list[Expr] = []
                if not self.accept(")"):
                    while True:
                        args.append(self._parse_expr())
                        if self.accept(")"):
                            break
                        self.expect(",")
                return Call(name, tuple(args))
            if self.cur.text == "[":
                indices: list[Expr] = []
                while self.accept("["):
                    indices.append(self._parse_expr())
                    self.expect("]")
                return ArrayRef(name, tuple(indices))
            return Var(name)
        if self.accept("("):
            node = self._parse_expr()
            self.expect(")")
            return node
        raise ParseError(f"unexpected token {tok.text!r} at offset {tok.pos}")


def parse_function(source: str) -> Function:
    """Parse a single kernel function from C-like source into IR."""
    return _Parser(source).parse_function()
