"""Version metadata: the trade-off information attached to each generated
code version (paper Fig. 6: "function pointers enriched with meta-information
comprising specific properties of the individual versions").
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["VersionMeta"]


@dataclass(frozen=True)
class VersionMeta:
    """Trade-off metadata of one code version.

    :param index: position in the version table.
    :param time: measured (or predicted) region wall time, seconds.
    :param resources: cpu-seconds (threads × time).
    :param threads: thread count the version was tuned for.
    :param tile_sizes: fixed tile sizes of the version.
    :param values: the full parameter assignment.
    :param energy: measured joules per invocation when the tuning run
        included the energy objective; ``None`` otherwise.
    """

    index: int
    time: float
    resources: float
    threads: int
    tile_sizes: tuple[tuple[str, int], ...]
    values: tuple[tuple[str, int], ...] = field(default=())
    energy: float | None = None

    @property
    def efficiency_proxy(self) -> float:
        """time/resources = 1/threads — a metadata-only efficiency ordering
        (true efficiency additionally needs the sequential reference)."""
        return self.time / self.resources if self.resources else 1.0

    def objective(self, weights: tuple[float, float]) -> float:
        """Weighted-sum score Σ w_c f_c(v) used by the runtime's default
        selection policy (paper §IV)."""
        return weights[0] * self.time + weights[1] * self.resources

    def describe(self) -> str:
        tiles = ",".join(f"{k}={v}" for k, v in self.tile_sizes)
        return (
            f"v{self.index}: threads={self.threads} tiles[{tiles}] "
            f"t={self.time:.4g}s r={self.resources:.4g}cpu-s"
        )
