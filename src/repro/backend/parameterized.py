"""Parameterized-tiling backend — the alternative to multi-versioning.

Paper §IV: "for some transformations, it would also be possible to generate
a single, parameterized version of the code instead of performing
multi-versioning (see e.g. [9]). However, this approach is not general, as
there are some transformations such as loop unrolling, fission and fusion
which can not be realized using parameterized code."

This module implements that alternative so the trade-off can be measured:
one C function whose tile sizes and thread count are runtime arguments,
plus a parameter table holding the Pareto points and a dispatcher.  The
benchmark ``test_ext_parameterized`` compares the two backends' code sizes;
the generality limitation is enforced here — skeletons with an unroll
parameter are rejected, exactly the case the paper names.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backend.cgen import C_PRELUDE, _stmt_to_c
from repro.backend.meta import VersionMeta
from repro.ir.nodes import Param
from repro.ir.types import ArrayType, I64
from repro.transform.collapse import collapse
from repro.transform.skeleton import TransformationSkeleton
from repro.transform.tiling import tile

__all__ = ["ParameterizedUnit", "build_parameterized_c"]


@dataclass(frozen=True)
class ParameterizedUnit:
    """A single-function parameterized translation unit."""

    kernel: str
    source: str
    parameters: tuple[str, ...]
    table: tuple[VersionMeta, ...]


def build_parameterized_c(
    skeleton: TransformationSkeleton,
    metas: list[VersionMeta],
) -> ParameterizedUnit:
    """Emit the parameterized variant of a skeleton plus its Pareto table.

    :raises ValueError: if the skeleton contains transformations that are
        not expressible with runtime parameters (unrolling).
    """
    if skeleton.unrollable:
        raise ValueError(
            "unrolling cannot be expressed as a runtime parameter "
            "(paper section IV) — use the multi-versioning backend"
        )
    region = skeleton.region
    fn = region.function
    kernel = fn.name

    tile_vars = {v: f"t_{v}" for v in skeleton.tile_band}
    nest = tile(region.nest, dict(tile_vars))
    if skeleton.collapse_outer >= 2 and len(skeleton.tile_band) >= skeleton.collapse_outer:
        nest = collapse(nest, skeleton.collapse_outer)

    if skeleton.parallel:
        from repro.transform.parallelize import parallelize
        from repro.transform.skeleton import _parallelize_inner
        from repro.transform.tiling import tile_var

        kind, pv = skeleton.parallel_spec()
        if kind == "collapse" or pv is None:
            nest = parallelize(nest, "nthreads")
        else:
            target = tile_var(str(pv)) if kind == "tile" else str(pv)
            if nest.var == target:
                nest = parallelize(nest, "nthreads")
            else:
                nest = _parallelize_inner(nest, target, "nthreads")  # type: ignore[arg-type]

    from repro.transform.splice import replace_at_path

    body_fn = replace_at_path(fn, region.path, nest)

    # signature: original params + tile sizes + thread count
    extra = [Param(tile_vars[v], I64) for v in skeleton.tile_band]
    extra.append(Param("nthreads", I64))
    decls = []
    args = []
    for p in list(fn.params) + extra:
        if isinstance(p.type, ArrayType):
            dims = "".join(f"[{d}]" for d in p.type.shape)
            decls.append(f"{p.type.elem.cname} {p.name}{dims}")
        else:
            decls.append(f"{p.type.cname} {p.name}")
        args.append(p.name)

    lines = [C_PRELUDE]
    lines.append(f"void {kernel}_parameterized({', '.join(decls)})")
    lines.append("{")
    lines.extend(_stmt_to_c(body_fn.body, 1, set()))
    lines.append("}")

    # the Pareto points become table rows of runtime parameters
    param_names = tuple(tile_vars[v] for v in skeleton.tile_band) + ("nthreads",)
    lines.append(
        f"""
typedef struct {{
    long long {'; long long '.join(param_names)};
    double time;
    double resources;
}} {kernel}_paramset_t;

static const {kernel}_paramset_t {kernel}_paramsets[] = {{"""
    )
    for meta in metas:
        tiles = dict(meta.tile_sizes)
        row = ", ".join(str(tiles[v]) for v in skeleton.tile_band)
        lines.append(
            f"    {{ {row}, {meta.threads}, {meta.time!r}, {meta.resources!r} }},"
        )
    lines.append(
        f"""}};

enum {{ {kernel}_num_paramsets = sizeof({kernel}_paramsets) / sizeof({kernel}_paramsets[0]) }};
"""
    )
    return ParameterizedUnit(
        kernel=kernel,
        source="\n".join(lines),
        parameters=param_names,
        table=tuple(metas),
    )
