"""Multi-versioned C output (paper Fig. 6).

For a tuned region, generates one translation unit containing:

* the outlined region function in one specialized variant per Pareto point
  (``<kernel>_v0``, ``<kernel>_v1`` …, each with fixed tile sizes and a
  baked thread count),
* a statically initialized version table with the trade-off metadata,
* a weighted-sum selection helper mirroring the runtime's default policy,
* a dispatch wrapper with the original kernel signature.

The paper argues multi-versioning with fixed parameters lets the binary
compiler generate better code than a parameterized variant; fixing the tile
sizes as literals here is exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backend.cgen import C_PRELUDE, function_to_c
from repro.backend.meta import VersionMeta
from repro.ir.nodes import Function
from repro.ir.types import ArrayType

__all__ = ["MultiVersionUnit", "build_multiversion_c"]


@dataclass(frozen=True)
class MultiVersionUnit:
    """A generated multi-versioned translation unit."""

    kernel: str
    source: str
    versions: tuple[VersionMeta, ...]


def _signature(fn: Function) -> tuple[str, str]:
    """(parameter declaration list, argument forwarding list)."""
    decls, args = [], []
    for p in fn.params:
        if isinstance(p.type, ArrayType):
            dims = "".join(f"[{d}]" for d in p.type.shape)
            decls.append(f"{p.type.elem.cname} {p.name}{dims}")
        else:
            decls.append(f"{p.type.cname} {p.name}")
        args.append(p.name)
    return ", ".join(decls), ", ".join(args)


def build_multiversion_c(
    kernel_name: str,
    variants: list[tuple[Function, VersionMeta]],
) -> MultiVersionUnit:
    """Aggregate specialized variants into one multi-versioned C unit.

    :param variants: (specialized function IR, metadata) per Pareto point,
        all sharing the original kernel signature.
    """
    if not variants:
        raise ValueError("need at least one version")
    base_fn = variants[0][0]
    decls, args = _signature(base_fn)

    parts = [C_PRELUDE]
    metas = []
    for fn, meta in variants:
        parts.append(function_to_c(fn, name=f"{kernel_name}_v{meta.index}", prelude=False))
        metas.append(meta)

    fn_ptr_type = f"{kernel_name}_fn_t"
    parts.append(
        f"""
typedef void (*{fn_ptr_type})({decls});

typedef struct {{
    {fn_ptr_type} fn;
    double time;        /* measured region wall time [s] */
    double resources;   /* threads x time [cpu-s] */
    int threads;        /* tuned thread count */
    const char *params; /* parameter assignment */
}} {kernel_name}_version_t;

static const {kernel_name}_version_t {kernel_name}_versions[] = {{"""
    )
    for fn, meta in variants:
        params_str = " ".join(f"{k}={v}" for k, v in meta.values)
        parts.append(
            f'    {{ {kernel_name}_v{meta.index}, {meta.time!r}, '
            f'{meta.resources!r}, {meta.threads}, "{params_str}" }},'
        )
    parts.append(
        f"""}};

enum {{ {kernel_name}_num_versions = sizeof({kernel_name}_versions) / sizeof({kernel_name}_versions[0]) }};

/* Default runtime policy (paper section IV): pick the version minimizing
 * the user-weighted objective sum  w_time * t(v) + w_res * r(v). */
static int {kernel_name}_select_version(double w_time, double w_res)
{{
    int best = 0;
    double best_score = w_time * {kernel_name}_versions[0].time
                      + w_res * {kernel_name}_versions[0].resources;
    for (int i = 1; i < {kernel_name}_num_versions; ++i) {{
        double score = w_time * {kernel_name}_versions[i].time
                     + w_res * {kernel_name}_versions[i].resources;
        if (score < best_score) {{
            best_score = score;
            best = i;
        }}
    }}
    return best;
}}

/* Dispatch wrapper: delegates the region invocation to the runtime-selected
 * version (label 6 in the paper's Fig. 3). */
void {kernel_name}_dispatch(double w_time, double w_res, {decls})
{{
    int v = {kernel_name}_select_version(w_time, w_res);
    {kernel_name}_versions[v].fn({args});
}}
"""
    )
    return MultiVersionUnit(
        kernel=kernel_name,
        source="\n".join(parts),
        versions=tuple(metas),
    )
