"""Code generation backends.

The paper's backend (Fig. 3, label 5) outlines each tuned region into a
function, generates one specialized variant per Pareto-optimal configuration
and embeds a statically generated table of function pointers enriched with
trade-off metadata (Fig. 6).

* :mod:`repro.backend.cgen` — C + OpenMP source from IR functions,
* :mod:`repro.backend.multiversion` — the multi-versioned C translation
  unit with the version table,
* :mod:`repro.backend.pygen` — executable Python functions compiled from
  IR (used by the runtime system and the examples to really run versions),
* :mod:`repro.backend.meta` — version metadata records shared between the
  backends and the runtime.
"""

from repro.backend.cgen import function_to_c
from repro.backend.meta import VersionMeta
from repro.backend.multiversion import MultiVersionUnit, build_multiversion_c
from repro.backend.parameterized import ParameterizedUnit, build_parameterized_c
from repro.backend.pygen import compile_function, compile_worksharing

__all__ = [
    "function_to_c",
    "VersionMeta",
    "MultiVersionUnit",
    "build_multiversion_c",
    "compile_function",
    "compile_worksharing",
    "ParameterizedUnit",
    "build_parameterized_c",
]
