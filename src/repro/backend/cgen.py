"""C + OpenMP code generation from IR functions.

Produces C99 (variable-length-array parameters, ``long long`` indices).
Parallel loops become ``#pragma omp parallel for`` with the version's baked
thread count; collapsed loops are emitted directly (the collapse transform
already rewrote the body in terms of the linear index).

The output is real, compilable code — the test suite runs it through
``gcc -fsyntax-only -fopenmp`` when gcc is available.
"""

from __future__ import annotations

from repro.ir.nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Block,
    Call,
    Expr,
    FloatLit,
    For,
    Function,
    IntLit,
    Max,
    Min,
    Stmt,
    UnOp,
    Var,
)
from repro.ir.types import ArrayType
from repro.ir.visitors import collect

__all__ = ["function_to_c", "expr_to_c", "C_PRELUDE"]

C_PRELUDE = """\
#include <math.h>
#ifdef _OPENMP
#include <omp.h>
#endif

#define REPRO_MIN(a, b) ((a) < (b) ? (a) : (b))
#define REPRO_MAX(a, b) ((a) > (b) ? (a) : (b))

static inline double repro_rsqrt3(double x) { return 1.0 / (x * sqrt(x)); }
static inline double repro_rsqrt(double x) { return 1.0 / sqrt(x); }
"""

_INTRINSIC_C = {
    "sqrt": "sqrt",
    "rsqrt": "repro_rsqrt",
    "rsqrt3": "repro_rsqrt3",
    "exp": "exp",
    "log": "log",
    "abs": "fabs",
    "min": "REPRO_MIN",
    "max": "REPRO_MAX",
}

_PREC = {"+": 10, "-": 10, "*": 20, "/": 20, "%": 20, "//": 20}


def expr_to_c(expr: Expr, parent_prec: int = 0) -> str:
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, IntLit):
        return str(expr.value)
    if isinstance(expr, FloatLit):
        text = repr(expr.value)
        return text if ("." in text or "e" in text) else text + ".0"
    if isinstance(expr, ArrayRef):
        return expr.array + "".join(f"[{expr_to_c(i)}]" for i in expr.indices)
    if isinstance(expr, BinOp):
        # '//' on non-negative loop arithmetic maps to C integer division
        op = "/" if expr.op == "//" else expr.op
        prec = _PREC[expr.op]
        lhs = expr_to_c(expr.lhs, prec)
        rhs = expr_to_c(expr.rhs, prec + 1)
        text = f"{lhs} {op} {rhs}"
        return f"({text})" if prec < parent_prec else text
    if isinstance(expr, UnOp):
        return f"{expr.op}({expr_to_c(expr.operand)})"
    if isinstance(expr, Min):
        return f"REPRO_MIN({expr_to_c(expr.lhs)}, {expr_to_c(expr.rhs)})"
    if isinstance(expr, Max):
        return f"REPRO_MAX({expr_to_c(expr.lhs)}, {expr_to_c(expr.rhs)})"
    if isinstance(expr, Call):
        fn = _INTRINSIC_C.get(expr.fn)
        if fn is None:
            raise ValueError(f"no C lowering for intrinsic {expr.fn!r}")
        args = ", ".join(expr_to_c(a) for a in expr.args)
        return f"{fn}({args})"
    raise TypeError(f"cannot lower expression {expr!r}")


def _stmt_to_c(stmt: Stmt, indent: int, declared: set[str]) -> list[str]:
    pad = "    " * indent
    if isinstance(stmt, Block):
        lines: list[str] = []
        for s in stmt.stmts:
            lines.extend(_stmt_to_c(s, indent, declared))
        return lines
    if isinstance(stmt, Assign):
        return [f"{pad}{expr_to_c(stmt.target)} = {expr_to_c(stmt.value)};"]
    if isinstance(stmt, For):
        lines = []
        header = (
            f"for (long long {stmt.var} = {expr_to_c(stmt.lower)}; "
            f"{stmt.var} < {expr_to_c(stmt.upper)}; "
            f"{stmt.var} += {expr_to_c(stmt.step)})"
        )
        if stmt.parallel:
            threads = stmt.annotation("num_threads")
            clause = f" num_threads({threads})" if threads else ""
            lines.append(f"{pad}#pragma omp parallel for{clause} schedule(static)")
        lines.append(pad + header + " {")
        lines.extend(_stmt_to_c(stmt.body, indent + 1, declared))
        lines.append(pad + "}")
        return lines
    raise TypeError(f"cannot lower statement {stmt!r}")


def function_to_c(fn: Function, name: str | None = None, prelude: bool = True) -> str:
    """Emit one IR function as C source.

    The tree is algebraically simplified first (:mod:`repro.ir.simplify`)
    so mechanically built bounds like ``0 + (c // 1) * 1`` emit clean.

    :param name: override the emitted function name (used for versioned
        variants ``mm_v0``, ``mm_v1``...).
    :param prelude: include the shared prelude (headers/macros); disable
        when aggregating several functions into one translation unit.
    """
    from repro.ir.simplify import simplify

    fn = simplify(fn)  # type: ignore[assignment]
    params = []
    for p in fn.params:
        if isinstance(p.type, ArrayType):
            dims = "".join(f"[{d}]" for d in p.type.shape)
            params.append(f"{p.type.elem.cname} {p.name}{dims}")
        else:
            params.append(f"{p.type.cname} {p.name}")
    header = f"void {name or fn.name}({', '.join(params)})"
    body = _stmt_to_c(fn.body, 1, set())
    text = header + " {\n" + "\n".join(body) + "\n}\n"
    if prelude:
        return C_PRELUDE + "\n" + text
    return text
