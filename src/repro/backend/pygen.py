"""Python code generation: compile IR functions to executable callables.

The runtime system and the examples need versions they can *actually run*.
This backend translates an IR function into Python source (plain nested
loops, exact IR semantics) and ``compile()``s it.  Generated callables take
``(arrays: dict[str, np.ndarray], scalars: dict[str, int])`` and mutate the
arrays in place.

Parallel loops execute their iteration chunks via a thread pool when a
``num_threads`` annotation is present and ``parallel=True`` is requested —
NumPy array element writes release no useful parallelism under the GIL, so
this is about faithfully exercising the runtime's worksharing structure, not
speed.  The generated code is validated against the reference interpreter in
the test suite.
"""

from __future__ import annotations

import math
from collections.abc import Callable

import numpy as np

from repro.ir.interp import INTRINSICS
from repro.ir.nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Block,
    Call,
    Expr,
    FloatLit,
    For,
    Function,
    IntLit,
    Max,
    Min,
    Stmt,
    UnOp,
    Var,
)
from repro.ir.types import ArrayType

__all__ = ["compile_function", "function_to_python"]


def _expr(expr: Expr) -> str:
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, IntLit):
        return str(expr.value)
    if isinstance(expr, FloatLit):
        return repr(expr.value)
    if isinstance(expr, ArrayRef):
        idx = ", ".join(_expr(i) for i in expr.indices)
        return f"{expr.array}[{idx}]"
    if isinstance(expr, BinOp):
        return f"({_expr(expr.lhs)} {expr.op} {_expr(expr.rhs)})"
    if isinstance(expr, UnOp):
        return f"({expr.op}{_expr(expr.operand)})"
    if isinstance(expr, Min):
        return f"min({_expr(expr.lhs)}, {_expr(expr.rhs)})"
    if isinstance(expr, Max):
        return f"max({_expr(expr.lhs)}, {_expr(expr.rhs)})"
    if isinstance(expr, Call):
        args = ", ".join(_expr(a) for a in expr.args)
        return f"_intrinsics[{expr.fn!r}]({args})"
    raise TypeError(f"cannot lower expression {expr!r}")


def _stmt(stmt: Stmt, indent: int, lines: list[str]) -> None:
    pad = "    " * indent
    if isinstance(stmt, Block):
        if not stmt.stmts:
            lines.append(pad + "pass")
        for s in stmt.stmts:
            _stmt(s, indent, lines)
        return
    if isinstance(stmt, Assign):
        lines.append(f"{pad}{_expr(stmt.target)} = {_expr(stmt.value)}")
        return
    if isinstance(stmt, For):
        lines.append(
            f"{pad}for {stmt.var} in range({_expr(stmt.lower)}, "
            f"{_expr(stmt.upper)}, {_expr(stmt.step)}):"
        )
        _stmt(stmt.body, indent + 1, lines)
        return
    raise TypeError(f"cannot lower statement {stmt!r}")


def function_to_python(fn: Function, name: str | None = None) -> str:
    """Python source text of *fn* (for inspection/debugging)."""
    from repro.ir.simplify import simplify

    fn = simplify(fn)  # type: ignore[assignment]
    array_names = [p.name for p in fn.params if isinstance(p.type, ArrayType)]
    scalar_names = [p.name for p in fn.params if not isinstance(p.type, ArrayType)]
    lines = [f"def {name or fn.name}(arrays, scalars):"]
    for a in array_names:
        lines.append(f"    {a} = arrays[{a!r}]")
    for s in scalar_names:
        lines.append(f"    {s} = scalars[{s!r}]")
    _stmt(fn.body, 1, lines)
    return "\n".join(lines) + "\n"


def compile_function(
    fn: Function, name: str | None = None
) -> Callable[[dict[str, np.ndarray], dict[str, int]], None]:
    """Compile *fn* to a Python callable mutating its arrays in place."""
    src = function_to_python(fn, name=name)
    namespace: dict = {"_intrinsics": INTRINSICS, "math": math, "min": min, "max": max}
    code = compile(src, filename=f"<pygen:{fn.name}>", mode="exec")
    exec(code, namespace)
    out = namespace[name or fn.name]
    out.__source__ = src  # keep the text inspectable
    return out


def compile_worksharing(fn: Function, name: str | None = None):
    """Compile *fn* into (bounds, chunk) callables for threaded execution.

    The outermost parallel loop is the worksharing loop (the structure the
    multi-versioning backend produces for the collapsed schedules).

    * ``bounds(arrays, scalars) -> (lo, hi, step)`` evaluates the parallel
      loop's range;
    * ``chunk(arrays, scalars, lo, hi)`` executes the function with the
      parallel loop restricted to ``[lo, hi)`` — chunks of distinct ranges
      write disjoint data for the parallelizable schedules, so a thread
      pool may run them concurrently (see
      :class:`repro.evaluation.native.NativeExecutor`).

    :raises ValueError: if the function has no top-level parallel loop
        (e.g. n-body's parallel loop is nested inside the hoisted tile
        loop — the native executor does not workshare such shapes).
    """
    from dataclasses import replace as dc_replace

    from repro.ir.visitors import collect

    parallel_loops = [
        s for s in collect(fn.body, For) if isinstance(s, For) and s.parallel
    ]
    top = None
    if isinstance(fn.body, Block):
        for stmt in fn.body.stmts:
            if isinstance(stmt, For) and stmt.parallel:
                top = stmt
                break
    if top is None:
        raise ValueError(
            f"{fn.name!r} has no top-level parallel loop to workshare"
            + (" (parallel loop is nested)" if parallel_loops else "")
        )

    base = name or fn.name
    array_names = [p.name for p in fn.params if isinstance(p.type, ArrayType)]
    scalar_names = [p.name for p in fn.params if not isinstance(p.type, ArrayType)]

    prelude = [f"    {a} = arrays[{a!r}]" for a in array_names]
    prelude += [f"    {s} = scalars[{s!r}]" for s in scalar_names]

    bounds_lines = [f"def {base}_bounds(arrays, scalars):"]
    bounds_lines += prelude
    bounds_lines.append(
        f"    return ({_expr(top.lower)}, {_expr(top.upper)}, {_expr(top.step)})"
    )

    chunked = dc_replace(top, lower=Var("_chunk_lo"), upper=Var("_chunk_hi"))
    new_stmts = tuple(chunked if s is top else s for s in fn.body.stmts)
    chunk_fn = Function(fn.name, fn.params, Block(new_stmts))
    chunk_lines = [f"def {base}_chunk(arrays, scalars, _chunk_lo, _chunk_hi):"]
    chunk_lines += prelude
    _stmt(chunk_fn.body, 1, chunk_lines)

    src = "\n".join(bounds_lines) + "\n\n" + "\n".join(chunk_lines) + "\n"
    namespace: dict = {"_intrinsics": INTRINSICS, "math": math, "min": min, "max": max}
    exec(compile(src, filename=f"<pygen-ws:{fn.name}>", mode="exec"), namespace)
    bounds = namespace[f"{base}_bounds"]
    chunk = namespace[f"{base}_chunk"]
    bounds.__source__ = chunk.__source__ = src
    return bounds, chunk
