"""Persistent cross-run measurement cache.

Repeated experiment sweeps, benchmarks and ``repro report`` re-measure
identical (kernel, machine, seed, configuration) points across *process*
runs — the in-memory ledger of :class:`~repro.evaluation.simulator.
SimulatedTarget` cannot help there.  :class:`MeasurementDiskCache` is the
on-disk half: a directory of JSONL shards, one per **target fingerprint**
(a content hash over the region's cost-model signature, the machine, the
noise seed/level, the measurement protocol and the cache schema version),
each shard mapping canonical configuration keys to their measured
(:class:`Objectives`, :class:`Measurement`) pairs.

Design points:

* **correct by keying, not by trust** — a shard is only ever consulted by
  a target whose fingerprint derives from every input that influences a
  measurement, so two targets that could disagree can never share
  entries; bumping :data:`SCHEMA_VERSION` rotates every fingerprint and
  therefore invalidates all previous caches at once;
* **append-only JSONL** — commits append one line per configuration;
  torn or corrupt lines (crashed writer, concurrent appender) are
  skipped on load instead of poisoning the shard;
* **exact round-trip** — floats are serialized with ``repr``-fidelity
  JSON, so a configuration served from disk is bit-identical to the one
  that was measured, samples included.  The evaluation ledger still
  counts a disk-served configuration towards ``E`` (it is an evaluation
  the optimizer asked for), so reported E is identical between cold and
  warm caches; the engine's ``disk_hits`` counter reports the savings
  separately.
"""

from __future__ import annotations

import hashlib
import json
import threading
from pathlib import Path

from repro.evaluation.measurements import Measurement
from repro.evaluation.objectives import Objectives

__all__ = ["MeasurementDiskCache", "DEFAULT_CACHE_DIR", "SCHEMA_VERSION"]

#: bump to invalidate every existing on-disk cache entry
SCHEMA_VERSION = 1

#: default cache root used by the CLI's bare ``--cache-dir`` flag
DEFAULT_CACHE_DIR = "~/.cache/repro"


def _fingerprint(*parts: object) -> str:
    h = hashlib.blake2b(digest_size=16)
    for part in parts:
        h.update(repr(part).encode())
        h.update(b"\x00")
    return h.hexdigest()


class _Shard:
    """One fingerprint's key → (Objectives, Measurement) store."""

    def __init__(self, path: Path, fingerprint: str) -> None:
        self.path = path
        self.fingerprint = fingerprint
        self._records: dict[tuple, tuple[Objectives, Measurement]] | None = None
        self._lock = threading.Lock()

    # -- load -----------------------------------------------------------

    def _load(self) -> dict[tuple, tuple[Objectives, Measurement]]:
        if self._records is not None:
            return self._records
        records: dict[tuple, tuple[Objectives, Measurement]] = {}
        try:
            with open(self.path, encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        d = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn/corrupt line: skip, don't poison
                    if "schema" in d:
                        if d.get("fingerprint") != self.fingerprint:
                            return {}  # foreign header: treat as empty
                        continue
                    try:
                        key = tuple(int(v) for v in d["k"])
                        samples = tuple(float(s) for s in d["s"])
                        energy = d.get("e")
                        obj = Objectives(
                            time=float(d["v"]),
                            threads=key[-1],
                            energy=None if energy is None else float(energy),
                        )
                        records[key] = (
                            obj,
                            Measurement(value=float(d["v"]), samples=samples),
                        )
                    except (KeyError, TypeError, ValueError, IndexError):
                        continue
        except OSError:
            pass  # no shard yet
        self._records = records
        return records

    # -- queries --------------------------------------------------------

    def get(self, key: tuple) -> tuple[Objectives, Measurement] | None:
        with self._lock:
            return self._load().get(key)

    def __len__(self) -> int:
        with self._lock:
            return len(self._load())

    # -- commits --------------------------------------------------------

    def put_many(
        self, items: list[tuple[tuple, Objectives, Measurement]]
    ) -> int:
        """Append *items* (skipping keys already present); returns the
        number of new entries written."""
        if not items:
            return 0
        with self._lock:
            records = self._load()
            fresh = [
                (key, obj, meas)
                for key, obj, meas in items
                if key not in records
            ]
            if not fresh:
                return 0
            new_file = not self.path.exists()
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as fh:
                if new_file:
                    fh.write(
                        json.dumps(
                            {
                                "schema": SCHEMA_VERSION,
                                "fingerprint": self.fingerprint,
                            }
                        )
                        + "\n"
                    )
                for key, obj, meas in fresh:
                    fh.write(
                        json.dumps(
                            {
                                "k": list(key),
                                "v": meas.value,
                                "s": list(meas.samples),
                                "e": obj.energy,
                            }
                        )
                        + "\n"
                    )
                    records[key] = (obj, meas)
            return len(fresh)


class MeasurementDiskCache:
    """A directory of measurement shards shared by any number of targets.

    :param root: cache directory (created on first write); ``~`` expands.
    :param schema_version: override for tests — a different version
        rotates every fingerprint, modelling a format change.
    """

    def __init__(
        self, root: str | Path, schema_version: int = SCHEMA_VERSION
    ) -> None:
        self.root = Path(root).expanduser()
        self.schema_version = int(schema_version)
        self._shards: dict[str, _Shard] = {}
        self._lock = threading.Lock()
        #: accounting across every attached target
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def shard_for(self, target_fingerprint: str) -> _Shard:
        """The shard a target with this fingerprint reads and writes."""
        fp = _fingerprint(
            "repro-measurement-cache", self.schema_version, target_fingerprint
        )
        with self._lock:
            shard = self._shards.get(fp)
            if shard is None:
                shard = _Shard(self.root / f"{fp}.jsonl", fp)
                self._shards[fp] = shard
        return shard

    # -- target-facing API ----------------------------------------------

    def fetch(
        self, target_fingerprint: str, key: tuple
    ) -> tuple[Objectives, Measurement] | None:
        hit = self.shard_for(target_fingerprint).get(key)
        if hit is None:
            self.misses += 1
        else:
            self.hits += 1
        return hit

    def store_many(
        self,
        target_fingerprint: str,
        items: list[tuple[tuple, Objectives, Measurement]],
    ) -> int:
        written = self.shard_for(target_fingerprint).put_many(items)
        self.stores += written
        return written

    def summary(self) -> str:
        return (
            f"disk-cache root={self.root} hits={self.hits} "
            f"misses={self.misses} stores={self.stores}"
        )
