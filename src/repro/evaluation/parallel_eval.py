"""The parallel evaluation engine.

Paper §III-A: "multiple independent configurations are generated, compiled
and if possible evaluated in parallel on distinct instances of the targeted
platform", and §IV notes the evaluator "exploits the availability of
multiple cores ... to generate, compile and execute code versions in
parallel".  :class:`EvaluationEngine` is that component: optimizers hand it
the configurations of one generation and it runs a three-stage pipeline —

1. **dedup** — configurations are canonicalized (via the target's
   ``config_key``) and deduplicated both within the batch and against the
   target's memo cache, so each unique configuration is computed at most
   once per run;
2. **dispatch** — unique configurations are sharded into
   ``ceil(B/workers)``-sized **chunks** that fan out to a worker pool
   (``max_workers="auto"`` sizes it at three quarters of the visible cores,
   the MITuna default), each worker executing one *vectorized*
   ``compute_keys(chunk)`` call so the NumPy batch path is never traded
   away for parallelism.  Workers are *pure*: they produce
   ``key → (Objectives, Measurement)`` results without touching the
   evaluation ledger.  The default ``backend="thread"`` shares the model;
   ``backend="process"`` moves chunks to a ``ProcessPoolExecutor`` over
   pickled model state for true parallelism on large grids;
3. **commit** — the engine commits worker results serially, in batch
   order, through the target's locked single-writer ``commit``.  Because
   measurement noise is hash-derived per key, results are bit-identical to
   the serial path and the ``E`` metric (paper Table VI) stays exact no
   matter how many workers race.

A robustness layer wraps dispatch: one wall-clock deadline per attempt
(``concurrent.futures.wait`` — n stragglers cost one timeout, not n),
bounded per-chunk retry with linear backoff, and graceful degradation —
configurations whose pooled attempts keep failing are rescued **per key**
serially in the caller's thread, and an engine that has to rescue
``degrade_after`` consecutive batches stops using the pool altogether.
:class:`FaultPolicy` injects failures for testing.  :class:`EngineStats`
records the accounting (dispatched / cache hits / deduped / disk hits /
retried / failed, wall time).

When the target carries a persistent
:class:`~repro.evaluation.disk_cache.MeasurementDiskCache`, the engine
consults it between dedup and dispatch (counted as ``disk_hits``) and
persists freshly computed chunks after the commit stage, so repeated runs
perform zero model evaluations for already-cached configurations while
``E`` stays exact.

Besides the blocking single-target :meth:`EvaluationEngine.evaluate_batch`,
the engine offers a **fused session** for multi-region tuning
(:meth:`fused_submit` / :meth:`fused_wait`): several regions' generation
batches — each against its *own* target — share one persistent worker pool,
are deduplicated **across regions** by target fingerprint (equal
fingerprints ⇒ one computation serves every region, counted as
``shared_hits``; each consuming region still commits to its own ledger, so
per-region ``E`` is exactly what separate evaluation would have produced),
and commit deterministically in per-batch order as soon as each batch's
results drain.  The cross-region scheduler in
:mod:`repro.driver.multiregion` is the consumer.

``BatchEvaluator`` remains as a backwards-compatible alias.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field, fields

from repro.evaluation.measurements import Measurement
from repro.evaluation.objectives import Objectives
from repro.evaluation.simulator import SimulatedTarget
from repro.obs import DISABLED, Observability

__all__ = [
    "EvaluationEngine",
    "EngineStats",
    "BatchResult",
    "FusedBatch",
    "FaultPolicy",
    "FlakyFaultPolicy",
    "InjectedFault",
    "EvaluationError",
    "BatchEvaluator",
    "auto_workers",
]


class InjectedFault(RuntimeError):
    """Raised by fault policies to simulate a worker failure."""


class EvaluationError(RuntimeError):
    """A configuration could not be evaluated even after retries and the
    serial rescue path."""


def auto_workers() -> int:
    """Default worker-pool width: ``nproc * 3 / 4`` (MITuna's default),
    never below 1."""
    return max(1, (os.cpu_count() or 4) * 3 // 4)


class FaultPolicy:
    """Injectable fault hook for testing the engine's robustness layer.

    :meth:`check` is called before every computation attempt.  The base
    policy never fails; subclasses raise (or sleep, to trip the timeout
    path) to simulate flaky compilers, crashed runs, or hung targets.
    """

    def check(self, key: tuple, attempt: int, serial: bool) -> None:
        """Called with the canonical config key, the 1-based attempt number
        and whether the attempt runs serially in the caller's thread (the
        rescue/degraded path) rather than on the worker pool."""


@dataclass
class FlakyFaultPolicy(FaultPolicy):
    """Deterministic fault injection.

    :param fail_attempts: raise :class:`InjectedFault` on pooled attempts
        ``<= fail_attempts`` (0 disables).
    :param slow_attempts: sleep ``delay_s`` on pooled attempts
        ``<= slow_attempts`` — combined with an engine timeout this
        exercises the timeout/retry path.
    :param keys: restrict the faults to these canonical keys (None = all).
    :param fail_serial: also fail serial (rescue) attempts — makes the
        failure terminal.
    """

    fail_attempts: int = 0
    slow_attempts: int = 0
    delay_s: float = 0.0
    keys: frozenset | None = None
    fail_serial: bool = False
    calls: list = field(default_factory=list)

    def check(self, key: tuple, attempt: int, serial: bool) -> None:
        if self.keys is not None and key not in self.keys:
            return
        self.calls.append((key, attempt, serial))
        if serial:
            if self.fail_serial:
                raise InjectedFault(f"injected serial fault for {key}")
            return
        if attempt <= self.slow_attempts and self.delay_s > 0:
            time.sleep(self.delay_s)
        if attempt <= self.fail_attempts:
            raise InjectedFault(f"injected fault for {key} (attempt {attempt})")


@dataclass
class EngineStats:
    """Evaluation-engine accounting (cumulative or per batch).

    ``configs = dispatched + cache_hits + deduped + disk_hits +
    shared_hits`` always holds; ``E`` grows by exactly
    ``new_evaluations`` (disk hits commit to the ledger too, so E is
    identical between cold and warm disk caches).
    """

    batches: int = 0
    configs: int = 0
    #: unique configurations actually computed
    dispatched: int = 0
    #: configurations served from the target's memo cache
    cache_hits: int = 0
    #: duplicate configurations within batches (computed once)
    deduped: int = 0
    #: configurations served from the persistent on-disk cache
    disk_hits: int = 0
    #: configurations served by another region's computation in a fused
    #: session (equal target fingerprints ⇒ shared measurement)
    shared_hits: int = 0
    #: ledger commits (== dispatched unless an external caller raced)
    new_evaluations: int = 0
    #: retry attempts after pooled failures/timeouts
    retried: int = 0
    #: pooled attempts abandoned after the per-config timeout
    timeouts: int = 0
    #: configurations rescued serially after all pooled attempts failed
    failed: int = 0
    #: batches evaluated serially because the engine degraded
    serial_fallbacks: int = 0
    wall_time_s: float = 0.0

    def merge(self, other: "EngineStats") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def summary(self) -> str:
        return (
            f"batches={self.batches} configs={self.configs} "
            f"dispatched={self.dispatched} cache_hits={self.cache_hits} "
            f"deduped={self.deduped} disk_hits={self.disk_hits} "
            f"shared_hits={self.shared_hits} retried={self.retried} "
            f"failed={self.failed} wall={self.wall_time_s:.3f}s"
        )

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class BatchResult:
    """Objectives for one batch, in input order."""

    objectives: tuple[Objectives, ...]
    new_evaluations: int
    stats: EngineStats | None = None


@dataclass
class FusedBatch:
    """One region's in-flight batch inside a fused evaluation session.

    Returned by :meth:`EvaluationEngine.fused_submit`; once
    :meth:`EvaluationEngine.fused_wait` hands it back, :attr:`objectives`
    holds the results in submission order and :attr:`stats` the batch's
    accounting.

    :param region: caller-chosen label (trace events carry it).
    :param fp: the target's measurement fingerprint — the cross-region
        dedup key: equal fingerprints measure identically, so one
        computation serves every region that shares one.
    """

    region: str
    target: SimulatedTarget
    fp: str
    #: every submitted canonical key, input order
    keys: list[tuple]
    #: the unique ledger-miss keys this batch commits, in batch order
    order: list[tuple]
    #: session-result entries that must exist before the batch can commit
    needs: set[tuple]
    #: keys this batch dispatched itself (persisted to disk after commit)
    compute: list[tuple]
    stats: EngineStats
    t0: float
    objectives: tuple[Objectives, ...] | None = None
    done: bool = False


class EvaluationEngine:
    """Parallel, fault-tolerant batch evaluator over a target platform.

    :param target: the (simulated) platform; must provide ``config_key``,
        ``lookup``, pure ``compute_keys`` and single-writer ``commit``.
    :param max_workers: worker threads; ``"auto"`` → :func:`auto_workers`,
        1 (the default) evaluates serially through the same pipeline.
    :param timeout_s: wall-time limit per pooled *attempt* — one deadline
        covers the whole fan-out (a worker cannot be killed, but its
        result is abandoned and its chunk retried).  None disables.
    :param retries: extra attempts after a failed/timed-out pooled attempt.
    :param backoff_s: linear backoff between retry rounds.
    :param degrade_after: after this many consecutive batches needing the
        serial rescue, the engine stops using the pool entirely.
    :param fault_policy: test hook, see :class:`FaultPolicy`.
    :param obs: observability handle — every batch becomes an
        ``engine.batch`` span and the accounting is folded into metric
        counters/histograms; the default disabled handle is free.
    :param backend: ``"thread"`` (default) shares the model between
        workers; ``"process"`` pickles the target's pure measurement
        state into a cached ``ProcessPoolExecutor`` for true parallelism
        on large grids (incompatible with ``fault_policy``, whose
        in-memory call log cannot cross processes).
    :param chunk_size: configurations per worker chunk; None (default)
        uses ``ceil(B/workers)`` so one vectorized call per worker covers
        the batch.  ``chunk_size=1`` reproduces per-key dispatch (the
        benchmark baseline).  Any value is bit-identical.
    """

    def __init__(
        self,
        target: SimulatedTarget,
        max_workers: int | str = 1,
        timeout_s: float | None = None,
        retries: int = 2,
        backoff_s: float = 0.02,
        degrade_after: int = 2,
        fault_policy: FaultPolicy | None = None,
        obs: Observability | None = None,
        backend: str = "thread",
        chunk_size: int | None = None,
    ) -> None:
        if max_workers == "auto" or max_workers is None:
            max_workers = auto_workers()
        if int(max_workers) < 1:
            raise ValueError("max_workers must be >= 1 (or 'auto')")
        if backend not in ("thread", "process"):
            raise ValueError(f"backend must be 'thread' or 'process', got {backend!r}")
        if backend == "process" and fault_policy is not None:
            raise ValueError(
                "backend='process' cannot inject faults: the policy's state "
                "lives in this process — use the thread backend for fault tests"
            )
        if chunk_size is not None and int(chunk_size) < 1:
            raise ValueError("chunk_size must be >= 1 (or None for auto)")
        self.target = target
        self.max_workers = int(max_workers)
        self.timeout_s = timeout_s
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self.degrade_after = int(degrade_after)
        self.fault_policy = fault_policy
        self.obs = obs or DISABLED
        self.backend = backend
        self.chunk_size = None if chunk_size is None else int(chunk_size)
        #: cumulative accounting across all batches
        self.stats = EngineStats()
        self._degraded = False
        self._strikes = 0
        self._process_pool: ProcessPoolExecutor | None = None
        # fused-session state (multi-target cross-region scheduling)
        self._fused_pool = None
        self._fused_pending: list[FusedBatch] = []
        self._fused_futures: dict = {}
        self._fused_results: dict[tuple[str, tuple], tuple] = {}
        self._fused_inflight: set[tuple[str, tuple]] = set()

    # ------------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """Whether repeated worker failures forced permanent serial mode."""
        return self._degraded

    def reset_faults(self) -> None:
        """Re-arm the worker pool after degradation."""
        self._degraded = False
        self._strikes = 0

    def close(self) -> None:
        """Release the cached process pool and the fused-session pool
        (the single-target thread backend's pools are per batch)."""
        if self._process_pool is not None:
            self._process_pool.shutdown(wait=False, cancel_futures=True)
            self._process_pool = None
        if self._fused_pool is not None:
            self._fused_pool.shutdown(wait=False, cancel_futures=True)
            self._fused_pool = None
        self.fused_reset()

    # ------------------------------------------------------------------

    def evaluate_batch(
        self, configs: list[tuple[dict[str, int], int]]
    ) -> BatchResult:
        """Evaluate ``[(tile_sizes, threads), ...]``; preserves order.

        Results are bit-identical for any ``max_workers`` and the ledger's
        ``E`` grows by exactly the number of configurations that were new
        to the target.
        """
        t0 = time.perf_counter()
        batch = EngineStats(batches=1, configs=len(configs))

        with self.obs.tracer.span(
            "engine.batch", configs=len(configs), workers=self.max_workers
        ) as span:
            keys = [self.target.config_key(tiles, thr) for tiles, thr in configs]
            pending: dict[tuple, None] = {}
            for key in keys:
                if key in pending:
                    batch.deduped += 1
                elif self.target.lookup(key) is not None:
                    batch.cache_hits += 1
                else:
                    pending[key] = None
            order = list(pending)

            results: dict[tuple, tuple[Objectives, Measurement]] = {}
            # persistent-cache phase: serve what a previous process already
            # measured; hits are committed below like any computed result,
            # so E stays exact while dispatch shrinks to the cold keys
            if getattr(self.target, "has_disk_cache", False):
                for key in order:
                    disk = self.target.disk_fetch(key)
                    if disk is not None:
                        results[key] = disk
                        batch.disk_hits += 1
            compute = [key for key in order if key not in results]
            batch.dispatched = len(compute)

            serial = self.max_workers == 1 or self._degraded or len(compute) <= 1
            if compute:
                if serial:
                    if self._degraded:
                        batch.serial_fallbacks += 1
                    self._compute_serial(compute, results, batch)
                else:
                    self._compute_parallel(compute, results, batch)

            # single-writer commit, in batch order — the only ledger mutation
            for key in order:
                obj, measurement = results[key]
                if self.target.commit(key, obj, measurement):
                    batch.new_evaluations += 1

            if compute and getattr(self.target, "has_disk_cache", False):
                self.target.disk_store_many(
                    [(key, *results[key]) for key in compute]
                )

            objectives = tuple(self.target.lookup(key) for key in keys)
            batch.wall_time_s = time.perf_counter() - t0
            span.set(**batch.as_dict())

        self._observe_batch(batch)
        self.stats.merge(batch)
        return BatchResult(
            objectives=objectives,
            new_evaluations=batch.new_evaluations,
            stats=batch,
        )

    def _observe_batch(self, batch: EngineStats) -> None:
        """Fold one batch's accounting into the metrics registry."""
        m = self.obs.metrics
        m.counter(
            "repro_engine_batches_total", "evaluation batches processed"
        ).inc()
        m.counter(
            "repro_engine_configs_total", "configurations submitted"
        ).inc(batch.configs)
        m.counter(
            "repro_engine_dispatched_total", "unique configurations computed"
        ).inc(batch.dispatched)
        m.counter(
            "repro_engine_cache_hits_total", "configurations served from the memo cache"
        ).inc(batch.cache_hits)
        m.counter(
            "repro_engine_deduped_total", "in-batch duplicate configurations"
        ).inc(batch.deduped)
        m.counter(
            "repro_engine_disk_hits_total",
            "configurations served from the persistent disk cache",
        ).inc(batch.disk_hits)
        m.counter(
            "repro_engine_shared_hits_total",
            "configurations served by a sibling region's computation",
        ).inc(batch.shared_hits)
        m.counter(
            "repro_engine_retries_total", "retry attempts after pooled failures"
        ).inc(batch.retried)
        m.counter(
            "repro_engine_timeouts_total", "pooled attempts abandoned on timeout"
        ).inc(batch.timeouts)
        m.counter(
            "repro_engine_failed_total", "configurations rescued serially"
        ).inc(batch.failed)
        m.counter(
            "repro_engine_serial_fallbacks_total", "batches run serially after degradation"
        ).inc(batch.serial_fallbacks)
        m.gauge(
            "repro_engine_degraded", "1 while the engine is in permanent serial mode"
        ).set(int(self._degraded))
        m.histogram(
            "repro_engine_batch_seconds", "wall time per evaluation batch"
        ).observe(batch.wall_time_s)

    # -- serial path -------------------------------------------------------

    def _compute_serial(self, order, results, batch) -> None:
        if self.fault_policy is None:
            # bulk vectorized computation; bit-identical to any chunking
            for key, result in zip(order, self.target.compute_keys(order)):
                results[key] = result
            return
        for key in order:
            results[key] = self._rescue(key, batch, first_attempt=1)

    # -- pooled path -------------------------------------------------------

    def _chunks(self, keys: list[tuple]) -> list[tuple[tuple, ...]]:
        """Shard *keys* into the per-worker chunks of one fan-out: by
        default ``ceil(B/workers)`` keys each, so every worker makes one
        vectorized ``compute_keys`` call over its whole share."""
        size = self.chunk_size or max(1, math.ceil(len(keys) / self.max_workers))
        return [tuple(keys[i : i + size]) for i in range(0, len(keys), size)]

    def _submit_chunk(self, pool, chunk: tuple[tuple, ...], attempt: int):
        if self.backend == "process":
            return pool.submit(_proc_compute, chunk)
        return pool.submit(self._compute_chunk, chunk, attempt)

    def _compute_parallel(self, order, results, batch) -> None:
        remaining = list(order)
        position = {key: i for i, key in enumerate(order)}
        attempt = 1
        pool = self._pool()
        try:
            while remaining and attempt <= 1 + self.retries:
                if attempt > 1:
                    batch.retried += len(remaining)
                    time.sleep(self.backoff_s * (attempt - 1))
                futures = {
                    self._submit_chunk(pool, chunk, attempt): chunk
                    for chunk in self._chunks(remaining)
                }
                # one deadline for the whole attempt: n stragglers cost one
                # timeout budget, not n sequential ones
                done, not_done = wait(set(futures), timeout=self.timeout_s)
                still_failing = []
                for future in not_done:
                    batch.timeouts += 1
                    future.cancel()
                    still_failing.extend(futures[future])
                for future in done:
                    chunk = futures[future]
                    try:
                        chunk_results = future.result()
                    except Exception:
                        still_failing.extend(chunk)
                    else:
                        for key, result in zip(chunk, chunk_results):
                            results[key] = result
                # wait() hands back sets — restore batch order so retry
                # chunking (and therefore accounting) is deterministic
                still_failing.sort(key=position.__getitem__)
                remaining = still_failing
                attempt += 1
        finally:
            if self.backend == "thread":
                # don't wait for abandoned (timed-out) workers
                pool.shutdown(wait=False, cancel_futures=True)

        if remaining:
            batch.failed += len(remaining)
            self._strikes += 1
            if self._strikes >= self.degrade_after and not self._degraded:
                self._degraded = True
                self.obs.tracer.event(
                    "engine.degraded",
                    strikes=self._strikes,
                    failed_configs=len(remaining),
                )
            # last line of defence: per-key serial rescue in this thread
            for key in remaining:
                results[key] = self._rescue(key, batch, first_attempt=attempt)
        else:
            self._strikes = 0

    def _pool(self):
        if self.backend == "process":
            if self._process_pool is None:
                self._process_pool = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    initializer=_proc_init,
                    initargs=(self.target,),
                )
            return self._process_pool
        return ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="repro-eval"
        )

    def _compute_chunk(
        self, keys: tuple[tuple, ...], attempt: int, target=None
    ) -> list[tuple[Objectives, Measurement]]:
        """Pure chunk computation (worker body): one vectorized
        ``compute_keys`` call per chunk; a fault on any key fails the whole
        chunk (its keys are retried together, then rescued per key).
        *target* defaults to the engine's own; the fused session passes
        each batch's region target explicitly."""
        if self.fault_policy is not None:
            for key in keys:
                self.fault_policy.check(key, attempt, False)
        return (target or self.target).compute_keys(list(keys))

    def _compute_one(
        self, key: tuple, attempt: int, serial: bool, target=None
    ) -> tuple[Objectives, Measurement]:
        """Pure per-configuration computation (rescue body)."""
        if self.fault_policy is not None:
            self.fault_policy.check(key, attempt, serial)
        return (target or self.target).compute_keys([key])[0]

    def _rescue(
        self, key: tuple, batch: EngineStats, first_attempt: int, target=None
    ) -> tuple[Objectives, Measurement]:
        """Serial computation with bounded retries; the last line of
        defence — raises :class:`EvaluationError` if even this fails."""
        last_error: Exception | None = None
        for attempt in range(first_attempt, first_attempt + self.retries + 1):
            try:
                return self._compute_one(key, attempt, serial=True, target=target)
            except Exception as exc:  # noqa: BLE001 — deliberate catch-all
                last_error = exc
                batch.retried += 1
                time.sleep(self.backoff_s)
        raise EvaluationError(
            f"configuration {key} failed after {self.retries + 1} serial attempts"
        ) from last_error

    # -- fused multi-target session (cross-region scheduling) --------------
    #
    # Several regions' batches — each against its own target — share one
    # persistent pool.  Dedup happens at three levels: within the batch
    # (deduped), against the batch's own ledger (cache_hits), and across
    # the whole session by target fingerprint (shared_hits: a key another
    # region computed, fetched from disk, or still has in flight).  The
    # coordinator thread owns all session state — workers only ever run
    # the pure compute_keys, so no locking beyond the targets' commit
    # locks is needed.  Commits are per batch, in batch order, as soon as
    # a batch's results have drained; results are therefore bit-identical
    # for any worker count, chunk size, or completion interleaving.

    @property
    def fused_active(self) -> bool:
        """Whether the fused session has undrained batches."""
        return bool(self._fused_pending)

    def fused_reset(self) -> None:
        """Drop all fused-session state (pending batches, shared results).

        Call between independent runs; the worker pool itself survives
        until :meth:`close`."""
        self._fused_pending.clear()
        self._fused_futures.clear()
        self._fused_results.clear()
        self._fused_inflight.clear()

    def fused_submit(
        self,
        target: SimulatedTarget,
        configs: list[tuple[dict[str, int], int]],
        region: str = "",
    ) -> FusedBatch:
        """Enqueue one region's batch into the fused session.

        Dedups against the batch itself, *target*'s ledger, the session's
        shared results, and sibling in-flight chunks; dispatches only the
        cold remainder as ``ceil(B/workers)`` chunks onto the shared pool.
        Returns immediately — :meth:`fused_wait` delivers the batch once
        its results (own chunks plus awaited sibling keys) are in.
        """
        fp = target.fingerprint()
        keys = [target.config_key(tiles, thr) for tiles, thr in configs]
        bstats = EngineStats(batches=1, configs=len(keys))

        pending: dict[tuple, None] = {}
        for key in keys:
            if key in pending:
                bstats.deduped += 1
            elif target.lookup(key) is not None:
                bstats.cache_hits += 1
            else:
                pending[key] = None
        order = list(pending)

        compute: list[tuple] = []
        for key in order:
            gk = (fp, key)
            if gk in self._fused_results:
                bstats.shared_hits += 1
            elif gk in self._fused_inflight:
                bstats.shared_hits += 1
            elif getattr(target, "has_disk_cache", False) and (
                disk := target.disk_fetch(key)
            ) is not None:
                self._fused_results[gk] = disk
                bstats.disk_hits += 1
            else:
                compute.append(key)
        bstats.dispatched = len(compute)

        batch = FusedBatch(
            region=region,
            target=target,
            fp=fp,
            keys=keys,
            order=order,
            needs={(fp, key) for key in order},
            compute=compute,
            stats=bstats,
            t0=time.perf_counter(),
        )
        for chunk in self._chunks(compute):
            future = self._fused_submit_chunk(chunk, target)
            self._fused_futures[future] = (fp, chunk, batch)
            self._fused_inflight.update((fp, key) for key in chunk)
        self._fused_pending.append(batch)
        return batch

    def fused_wait(self) -> list[FusedBatch]:
        """Block until at least one pending batch is complete; commit and
        return every complete batch (submission order).  Returns ``[]``
        only when nothing is pending.

        A failed chunk is rescued per key serially in the caller's thread
        (bounded retries, then :class:`EvaluationError`) — the fused path
        trades the pooled retry/timeout dance for deterministic inline
        rescue, since one straggler would stall every region behind it.
        """
        t0 = time.perf_counter()
        while True:
            ready = [
                b
                for b in self._fused_pending
                if b.needs.issubset(self._fused_results.keys())
            ]
            if ready or not self._fused_futures:
                break
            done, _ = wait(set(self._fused_futures), return_when=FIRST_COMPLETED)
            for future in done:
                fp, chunk, owner = self._fused_futures.pop(future)
                try:
                    chunk_results = future.result()
                except Exception:
                    owner.stats.failed += len(chunk)
                    chunk_results = [
                        self._rescue(
                            key, owner.stats, first_attempt=2, target=owner.target
                        )
                        for key in chunk
                    ]
                for key, result in zip(chunk, chunk_results):
                    self._fused_results[(fp, key)] = result
                    self._fused_inflight.discard((fp, key))

        m = self.obs.metrics
        m.gauge(
            "repro_scheduler_inflight_chunks",
            "fused-session worker chunks currently in flight",
        ).set(len(self._fused_futures))
        m.histogram(
            "repro_scheduler_drain_seconds",
            "coordinator wait time per fused drain",
        ).observe(time.perf_counter() - t0)

        for batch in ready:
            self._fused_commit(batch)
            self._fused_pending.remove(batch)
        return ready

    def _fused_submit_chunk(self, chunk: tuple[tuple, ...], target):
        pool = self._fused_pool
        if pool is None:
            if self.backend == "process":
                pool = ProcessPoolExecutor(max_workers=self.max_workers)
            else:
                pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-fused",
                )
            self._fused_pool = pool
        if self.backend == "process":
            # the target pickles only its pure measurement state, so
            # shipping it per chunk costs one small pickle, no ledger
            return pool.submit(_proc_compute_target, target, chunk)
        return pool.submit(self._compute_chunk, chunk, 1, target)

    def _fused_commit(self, batch: FusedBatch) -> None:
        """Single-writer commit of one complete batch, in batch order."""
        for key in batch.order:
            obj, measurement = self._fused_results[(batch.fp, key)]
            if batch.target.commit(key, obj, measurement):
                batch.stats.new_evaluations += 1
        if batch.compute and getattr(batch.target, "has_disk_cache", False):
            batch.target.disk_store_many(
                [
                    (key, *self._fused_results[(batch.fp, key)])
                    for key in batch.compute
                ]
            )
        batch.objectives = tuple(batch.target.lookup(key) for key in batch.keys)
        batch.stats.wall_time_s = time.perf_counter() - batch.t0
        batch.done = True
        self.obs.tracer.event(
            "scheduler.batch",
            region=batch.region,
            configs=batch.stats.configs,
            dispatched=batch.stats.dispatched,
            cache_hits=batch.stats.cache_hits,
            deduped=batch.stats.deduped,
            shared_hits=batch.stats.shared_hits,
            disk_hits=batch.stats.disk_hits,
            new_evaluations=batch.stats.new_evaluations,
            latency_s=batch.stats.wall_time_s,
        )
        self._observe_batch(batch.stats)
        self.stats.merge(batch.stats)


# -- process-backend worker half ------------------------------------------
#
# The target's __getstate__ ships only the pure measurement function (model
# + noise parameters) to each worker process once, at pool start; chunks
# then cross the pipe as plain key tuples and results as (Objectives,
# Measurement) pairs.  The parent keeps the ledger and commits serially,
# exactly as with the thread backend.

_PROC_TARGET: SimulatedTarget | None = None


def _proc_init(target: SimulatedTarget) -> None:
    global _PROC_TARGET
    _PROC_TARGET = target


def _proc_compute(keys: tuple[tuple, ...]) -> list[tuple[Objectives, Measurement]]:
    assert _PROC_TARGET is not None, "worker process was not initialized"
    return _PROC_TARGET.compute_keys(list(keys))


def _proc_compute_target(
    target: SimulatedTarget, keys: tuple[tuple, ...]
) -> list[tuple[Objectives, Measurement]]:
    """Fused-session process worker: the session serves many targets, so no
    single target can be pinned at pool init — each chunk ships its own
    (the pickle carries only pure measurement state, no ledger)."""
    return target.compute_keys(list(keys))


#: Backwards-compatible alias — the old BatchEvaluator interface
#: (``BatchEvaluator(target, max_workers=n).evaluate_batch(configs)``) is a
#: strict subset of the engine's.
BatchEvaluator = EvaluationEngine
