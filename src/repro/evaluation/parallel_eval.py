"""Batch evaluation of configuration sets.

Paper §III-A: "multiple independent configurations are generated, compiled
and if possible evaluated in parallel on distinct instances of the targeted
platform", and §IV notes the evaluator "exploits the availability of
multiple cores ... to generate, compile and execute code versions in
parallel".  :class:`BatchEvaluator` reproduces that interface: it takes the
list of configurations an optimizer generation produces and evaluates them
as a batch, optionally with a thread pool (the simulated evaluator releases
the GIL only trivially, but the structure — and the per-batch accounting —
matches the paper's design and works unchanged with a heavier evaluator).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.evaluation.objectives import Objectives
from repro.evaluation.simulator import SimulatedTarget

__all__ = ["BatchEvaluator", "BatchResult"]


@dataclass(frozen=True)
class BatchResult:
    """Objectives for one batch, in input order."""

    objectives: tuple[Objectives, ...]
    new_evaluations: int


@dataclass
class BatchEvaluator:
    """Evaluates configuration batches against a :class:`SimulatedTarget`.

    :param target: the (simulated) platform.
    :param max_workers: >1 evaluates the batch with a thread pool,
        mirroring the paper's parallel evaluation of independent
        configurations.
    """

    target: SimulatedTarget
    max_workers: int = 1

    def evaluate_batch(
        self, configs: list[tuple[dict[str, int], int]]
    ) -> BatchResult:
        """Evaluate ``[(tile_sizes, threads), ...]``; preserves order."""
        before = self.target.evaluations
        if self.max_workers > 1 and len(configs) > 1:
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                results = list(
                    pool.map(lambda c: self.target.evaluate(c[0], c[1]), configs)
                )
        else:
            results = [self.target.evaluate(tiles, thr) for tiles, thr in configs]
        return BatchResult(
            objectives=tuple(results),
            new_evaluations=self.target.evaluations - before,
        )
