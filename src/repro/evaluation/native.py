"""Native execution: really running generated versions, with threads.

The simulated target predicts times for paper-scale problems; this module
*actually executes* generated code versions on real arrays — sequentially
or with a worksharing thread pool that mirrors the OpenMP schedule the C
backend emits (static chunking of the outermost parallel loop).

Python threads share the GIL, so this is not about speed: it validates the
worksharing structure end-to-end (disjoint chunks compose to the correct
result for the parallelizable schedules) and provides honest wall-clock
measurements for small problem sizes.
"""

from __future__ import annotations

import time as _time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.backend.pygen import compile_function, compile_worksharing
from repro.evaluation.measurements import Measurement, MeasurementProtocol
from repro.ir.nodes import Function

__all__ = ["NativeExecutor"]


@dataclass
class NativeExecutor:
    """Executes an IR function (a generated version) on real data.

    :param fn: the specialized version's IR (from
        :meth:`TransformationSkeleton.instantiate` + ``apply()``).
    :param threads: worksharing width; 1 executes sequentially.  For
        ``threads > 1`` the function must have a top-level parallel loop.
    :param schedule: ``"static"`` (OpenMP-static-style equal chunks on a
        thread pool) or ``"workstealing"`` (fine-grained chunks on the
        Insieme-style work-stealing pool, one chunk per worksharing
        iteration group).
    """

    fn: Function
    threads: int = 1
    schedule: str = "static"

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise ValueError("threads must be >= 1")
        if self.schedule not in ("static", "workstealing"):
            raise ValueError(f"unknown schedule {self.schedule!r}")
        if self.threads == 1:
            self._body = compile_function(self.fn)
            self._bounds = None
        else:
            self._bounds, self._body = compile_worksharing(self.fn)

    # ------------------------------------------------------------------

    def _chunks(self, arrays, scalars) -> list[tuple[int, int]]:
        assert self._bounds is not None
        lo, hi, step = self._bounds(arrays, scalars)
        total = max(0, -(-(hi - lo) // step))
        per = -(-total // self.threads)
        out = []
        for t in range(self.threads):
            c_lo = lo + t * per * step
            c_hi = min(hi, c_lo + per * step)
            if c_lo >= hi:
                break
            out.append((c_lo, c_hi))
        return out

    def _fine_chunks(self, arrays, scalars, per_worker: int = 4) -> list[tuple[int, int]]:
        """Smaller chunks for dynamic scheduling (several per worker)."""
        assert self._bounds is not None
        lo, hi, step = self._bounds(arrays, scalars)
        total = max(0, -(-(hi - lo) // step))
        pieces = max(1, self.threads * per_worker)
        per = max(1, -(-total // pieces))
        out = []
        c_lo = lo
        while c_lo < hi:
            c_hi = min(hi, c_lo + per * step)
            out.append((c_lo, c_hi))
            c_lo = c_hi
        return out

    def run(self, arrays: dict[str, np.ndarray], scalars: dict[str, int]) -> float:
        """Execute once in place; returns the wall time in seconds."""
        t0 = _time.perf_counter()
        if self.threads == 1:
            self._body(arrays, scalars)
        elif self.schedule == "workstealing":
            from repro.runtime.tasks import Task, WorkStealingPool

            chunks = self._fine_chunks(arrays, scalars)
            tasks = [
                Task(fn=lambda lo=lo, hi=hi: self._body(arrays, scalars, lo, hi))
                for lo, hi in chunks
            ]
            WorkStealingPool(workers=self.threads).run(tasks)
        else:
            chunks = self._chunks(arrays, scalars)
            with ThreadPoolExecutor(max_workers=self.threads) as pool:
                futures = [
                    pool.submit(self._body, arrays, scalars, lo, hi)
                    for lo, hi in chunks
                ]
                for f in futures:
                    f.result()
        return _time.perf_counter() - t0

    def measure(
        self,
        arrays: dict[str, np.ndarray],
        scalars: dict[str, int],
        protocol: MeasurementProtocol | None = None,
    ) -> Measurement:
        """Median-of-k wall-clock measurement; each repetition runs on a
        fresh copy of the inputs (the kernels mutate their arrays)."""
        protocol = protocol or MeasurementProtocol(repetitions=3)

        def sample() -> float:
            fresh = {k: v.copy() for k, v in arrays.items()}
            return max(self.run(fresh, scalars), 1e-9)

        return protocol.measure(sample)
