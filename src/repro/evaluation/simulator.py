"""The simulated target platform: configuration → measured objectives.

Combines the deterministic :class:`~repro.evaluation.cost.RegionCostModel`
with run-to-run measurement noise and the median-of-k protocol the paper
uses (§V-B1).  Noise is *hash-derived*: each (configuration, repetition)
pair maps through a keyed blake2b hash to a uniform variate, which the
inverse normal CDF turns into a lognormal factor.  This makes measurements
fully deterministic, independent of evaluation order, and identical between
the scalar and the vectorized batch paths.

The target also keeps the evaluation ledger: ``evaluations`` is the metric
``E`` of the paper's Table VI ("the number of points evaluated for obtaining
a solution set").  Results are memoized per configuration — re-querying a
known configuration hits the cache, mirroring an auto-tuner that records
its history.
"""

from __future__ import annotations

import numpy as np
from scipy.special import ndtri

from repro.evaluation.cost import RegionCostModel
from repro.evaluation.measurements import Measurement, MeasurementProtocol
from repro.evaluation.objectives import Objectives
from repro.util.rng import spawn_seed
from repro.util.stats import median

__all__ = ["SimulatedTarget"]

_U64 = float(1 << 64)


class SimulatedTarget:
    """Evaluates (tile sizes, threads) configurations on a simulated machine.

    :param model: per-region analytical cost model.
    :param seed: base seed of the noise process; same seed → identical
        measurements.
    :param noise: relative measurement jitter (sigma of the lognormal).
    :param protocol: sampling protocol (median of k).
    :param collapsed: worksharing collapse depth forwarded to the model.
    """

    def __init__(
        self,
        model: RegionCostModel,
        seed: int = 0,
        noise: float = 0.015,
        protocol: MeasurementProtocol | None = None,
        collapsed: int | None = None,
        measure_energy: bool = False,
    ) -> None:
        self.model = model
        self.seed = int(seed)
        self.noise = float(noise)
        self.protocol = protocol or MeasurementProtocol()
        self.collapsed = collapsed
        self.measure_energy = bool(measure_energy)
        self.evaluations = 0
        self._cache: dict[tuple, Objectives] = {}
        self._measurements: dict[tuple, Measurement] = {}

    # ------------------------------------------------------------------

    @property
    def machine(self):
        return self.model.machine

    @property
    def band(self) -> tuple[str, ...]:
        return self.model.band

    def config_key(self, tile_sizes: dict[str, int], threads: int) -> tuple:
        """Canonical key: tile sizes clipped into [1, extent], band order."""
        tiles = tuple(
            int(min(max(1, tile_sizes.get(v, self.model.extent[v])), self.model.extent[v]))
            for v in self.band
        )
        return tiles + (int(threads),)

    # -- noise ----------------------------------------------------------

    def _noise_factors(self, key: tuple, reps: int) -> np.ndarray:
        """Deterministic lognormal factors for each repetition of *key*."""
        u = np.array(
            [
                (spawn_seed(self.seed, key, rep) + 0.5) / _U64
                for rep in range(reps)
            ]
        )
        return np.exp(self.noise * ndtri(u))

    # -- single-configuration path ---------------------------------------

    def evaluate(self, tile_sizes: dict[str, int], threads: int) -> Objectives:
        """Measure a configuration (median of k noisy runs); memoized."""
        key = self.config_key(tile_sizes, threads)
        hit = self._cache.get(key)
        if hit is not None:
            return hit

        true_time = self.model.time(tile_sizes, threads, collapsed=self.collapsed)
        samples = tuple(true_time * self._noise_factors(key, self.protocol.repetitions))
        measurement = Measurement(value=median(samples), samples=samples)
        energy = None
        if self.measure_energy:
            # energy measurements share the run's jitter: scale the model
            # energy by the same median noise factor as the time
            true_energy = self.model.energy(tile_sizes, threads, collapsed=self.collapsed)
            energy = true_energy * (measurement.value / true_time)
        obj = Objectives(time=measurement.value, threads=int(threads), energy=energy)
        self.evaluations += 1
        self._cache[key] = obj
        self._measurements[key] = measurement
        return obj

    # -- batch path -------------------------------------------------------

    def evaluate_batch(
        self, tiles: np.ndarray, threads: np.ndarray
    ) -> np.ndarray:
        """Vectorized evaluation of B configurations.

        :param tiles: int array (B, len(band)) in band order.
        :param threads: int array (B,).
        :returns: measured (median-of-k noisy) times, float array (B,).

        Every configuration is counted in the ledger exactly once across
        both paths; results agree bit-for-bit with :meth:`evaluate`.
        """
        tiles = np.asarray(tiles, dtype=np.int64)
        threads = np.asarray(threads, dtype=np.int64)
        ext = np.array([self.model.extent[v] for v in self.band], dtype=np.int64)
        clipped = np.clip(tiles, 1, ext[None, :])
        true_times = self.model.time_batch(clipped, threads, collapsed=self.collapsed)
        reps = self.protocol.repetitions
        out = np.empty(len(true_times))
        for b in range(len(true_times)):
            key = tuple(int(x) for x in clipped[b]) + (int(threads[b]),)
            cached = self._cache.get(key)
            if cached is not None:
                out[b] = cached.time
                continue
            samples = tuple(true_times[b] * self._noise_factors(key, reps))
            measurement = Measurement(value=median(samples), samples=samples)
            energy = None
            if self.measure_energy:
                tile_map = {v: int(x) for v, x in zip(self.band, clipped[b])}
                true_energy = self.model.energy(
                    tile_map, int(threads[b]), collapsed=self.collapsed
                )
                energy = true_energy * (measurement.value / true_times[b])
            obj = Objectives(
                time=measurement.value, threads=int(threads[b]), energy=energy
            )
            self.evaluations += 1
            self._cache[key] = obj
            self._measurements[key] = measurement
            out[b] = obj.time
        return out

    def cached_objectives(self, tile_sizes: dict[str, int], threads: int) -> Objectives:
        """The full Objectives record of an evaluated configuration."""
        key = self.config_key(tile_sizes, threads)
        try:
            return self._cache[key]
        except KeyError:
            raise KeyError(f"configuration {key} has not been evaluated") from None

    # -- introspection ----------------------------------------------------

    def true_time(self, tile_sizes: dict[str, int], threads: int) -> float:
        """Noise-free model time (not counted as an evaluation)."""
        return self.model.time(tile_sizes, threads, collapsed=self.collapsed)

    def measurement(self, tile_sizes: dict[str, int], threads: int) -> Measurement:
        self.evaluate(tile_sizes, threads)
        return self._measurements[self.config_key(tile_sizes, threads)]

    def reset_ledger(self) -> None:
        """Clear the evaluation count and cache (fresh experiment run)."""
        self.evaluations = 0
        self._cache.clear()
        self._measurements.clear()
