"""The simulated target platform: configuration → measured objectives.

Combines the deterministic :class:`~repro.evaluation.cost.RegionCostModel`
with run-to-run measurement noise and the median-of-k protocol the paper
uses (§V-B1).  Noise is *hash-derived*: each (configuration, repetition)
pair maps through a keyed blake2b hash to a uniform variate, which the
inverse normal CDF turns into a lognormal factor.  This makes measurements
fully deterministic, independent of evaluation order, and identical between
the scalar and the vectorized batch paths.

The target also keeps the evaluation ledger: ``evaluations`` is the metric
``E`` of the paper's Table VI ("the number of points evaluated for obtaining
a solution set").  Results are memoized per configuration — re-querying a
known configuration hits the cache, mirroring an auto-tuner that records
its history.

The ledger is **thread-safe**: measurement itself is pure (see
:meth:`SimulatedTarget.compute_keys`) and all ledger mutation goes through
the locked :meth:`SimulatedTarget.commit`, so concurrent evaluators —
external callers as well as the
:class:`~repro.evaluation.parallel_eval.EvaluationEngine` worker pool —
can never lose ``E`` increments or double-count a configuration.

Attaching a :class:`~repro.evaluation.disk_cache.MeasurementDiskCache`
extends the memo across *process* runs: before computing, the target
consults the on-disk shard keyed by its :meth:`fingerprint` (model,
machine, seed, noise, protocol); disk hits are committed to the ledger
like any other measurement, so ``E`` is identical between cold and warm
caches.  Targets are picklable for the engine's process backend — the
pickled state carries only the pure measurement function (model + noise
parameters), never the ledger, lock, or cache handle.
"""

from __future__ import annotations

import hashlib
import threading
import time as _time
from collections.abc import Sequence

import numpy as np
from scipy.special import ndtri

from repro.evaluation.cost import RegionCostModel
from repro.evaluation.measurements import Measurement, MeasurementProtocol
from repro.evaluation.objectives import Objectives
from repro.util.rng import seed_hasher, spawn_seed, spawn_seed_from
from repro.util.stats import median

__all__ = ["SimulatedTarget"]

_U64 = float(1 << 64)


class SimulatedTarget:
    """Evaluates (tile sizes, threads) configurations on a simulated machine.

    :param model: per-region analytical cost model.
    :param seed: base seed of the noise process; same seed → identical
        measurements.
    :param noise: relative measurement jitter (sigma of the lognormal).
    :param protocol: sampling protocol (median of k).
    :param collapsed: worksharing collapse depth forwarded to the model.
    :param disk_cache: optional persistent measurement cache shared
        across process runs (see
        :class:`~repro.evaluation.disk_cache.MeasurementDiskCache`).
    """

    def __init__(
        self,
        model: RegionCostModel,
        seed: int = 0,
        noise: float = 0.015,
        protocol: MeasurementProtocol | None = None,
        collapsed: int | None = None,
        measure_energy: bool = False,
        disk_cache=None,
    ) -> None:
        self.model = model
        self.seed = int(seed)
        self.noise = float(noise)
        self.protocol = protocol or MeasurementProtocol()
        self.collapsed = collapsed
        self.measure_energy = bool(measure_energy)
        self.disk_cache = disk_cache
        self.evaluations = 0
        self._cache: dict[tuple, Objectives] = {}
        self._measurements: dict[tuple, Measurement] = {}
        self._fingerprint: str | None = None
        self._lock = threading.Lock()

    # -- pickling (process backend) ---------------------------------------

    def __getstate__(self) -> dict:
        """Ship only the pure measurement function: model + noise/protocol
        parameters.  The ledger, lock and disk-cache handle stay behind —
        worker processes compute, the parent commits."""
        state = self.__dict__.copy()
        del state["_lock"]
        state["disk_cache"] = None
        state["evaluations"] = 0
        state["_cache"] = {}
        state["_measurements"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------

    @property
    def machine(self):
        return self.model.machine

    @property
    def band(self) -> tuple[str, ...]:
        return self.model.band

    def config_key(self, tile_sizes: dict[str, int], threads: int) -> tuple:
        """Canonical key: tile sizes clipped into [1, extent], band order."""
        tiles = tuple(
            int(min(max(1, tile_sizes.get(v, self.model.extent[v])), self.model.extent[v]))
            for v in self.band
        )
        return tiles + (int(threads),)

    def fingerprint(self) -> str:
        """Content hash of everything that determines a measurement: the
        cost model's fingerprint plus the noise seed/level, protocol,
        collapse depth and energy mode.  Equal fingerprints → bit-identical
        measurements for every canonical key, which is what licenses the
        persistent disk cache to serve them across processes."""
        if self._fingerprint is None:
            h = hashlib.blake2b(digest_size=16)
            for part in (
                "simulated-target",
                self.model.fingerprint(),
                self.seed,
                self.noise,
                self.protocol,
                self.collapsed,
                self.measure_energy,
            ):
                h.update(repr(part).encode())
                h.update(b"\x00")
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    # -- persistent cache --------------------------------------------------

    @property
    def has_disk_cache(self) -> bool:
        return self.disk_cache is not None

    def disk_fetch(self, key: tuple):
        """(Objectives, Measurement) from the persistent cache, or None."""
        if self.disk_cache is None:
            return None
        return self.disk_cache.fetch(self.fingerprint(), key)

    def disk_store_many(
        self, items: list[tuple[tuple, Objectives, Measurement]]
    ) -> int:
        """Persist freshly computed measurements; returns entries written."""
        if self.disk_cache is None or not items:
            return 0
        return self.disk_cache.store_many(self.fingerprint(), items)

    # -- noise ----------------------------------------------------------

    def _noise_factors(self, key: tuple, reps: int) -> np.ndarray:
        """Deterministic lognormal factors for each repetition of *key*."""
        u = np.array(
            [
                (spawn_seed(self.seed, key, rep) + 0.5) / _U64
                for rep in range(reps)
            ]
        )
        return np.exp(self.noise * ndtri(u))

    def _noise_factor_matrix(self, keys: Sequence[tuple], reps: int) -> np.ndarray:
        """(len(keys), reps) lognormal factors in one batch.

        Bit-identical to stacking :meth:`_noise_factors` per key (asserted
        by ``tests/test_evaluation.py``): the seed prefix is hashed once and
        forked per (key, repetition) suffix — the same byte stream blake2b
        sees in :func:`~repro.util.rng.spawn_seed` — and the inverse-CDF /
        exp transform runs elementwise over the whole matrix.
        """
        prefix = seed_hasher(self.seed)
        u = np.empty((len(keys), reps), dtype=float)
        for i, key in enumerate(keys):
            key_prefix = prefix.copy()
            key_prefix.update(b"\x00")
            key_prefix.update(repr(key).encode())
            row = u[i]
            for rep in range(reps):
                row[rep] = (spawn_seed_from(key_prefix, rep) + 0.5) / _U64
        return np.exp(self.noise * ndtri(u))

    # -- pure computation (no ledger mutation) ----------------------------

    def compute_keys(
        self, keys: Sequence[tuple]
    ) -> list[tuple[Objectives, Measurement]]:
        """Measure canonical keys **purely** — the ledger is not touched.

        This is the worker half of the engine's dedup → dispatch → commit
        pipeline: because the noise is hash-derived per (key, repetition),
        the result of a key is independent of evaluation order and of how a
        batch is partitioned across workers, so any chunking of *keys* is
        bit-identical to one bulk call (``time_batch`` is row-elementwise).
        Callers are responsible for recording results via :meth:`commit`.
        """
        if not len(keys):
            return []
        tiles = np.array([k[:-1] for k in keys], dtype=np.int64)
        threads = np.array([k[-1] for k in keys], dtype=np.int64)
        true_times = np.asarray(
            self.model.time_batch(tiles, threads, collapsed=self.collapsed)
        )
        reps = self.protocol.repetitions
        overhead = self.protocol.overhead_s
        if overhead > 0:
            # the simulated pipeline latency is per configuration no matter
            # how the batch is chunked
            _time.sleep(overhead * len(keys))
        # one hash-derived factor matrix + one median sweep for the whole
        # chunk: the per-key loop below only assembles result objects
        factors = self._noise_factor_matrix(keys, reps)
        samples = true_times[:, None] * factors
        medians = np.median(samples, axis=1)
        out = []
        for b, key in enumerate(keys):
            measurement = Measurement(
                value=float(medians[b]), samples=tuple(samples[b])
            )
            energy = None
            if self.measure_energy:
                # energy measurements share the run's jitter: scale the
                # model energy by the same median noise factor as the time
                tile_map = {v: int(x) for v, x in zip(self.band, key[:-1])}
                true_energy = self.model.energy(
                    tile_map, int(key[-1]), collapsed=self.collapsed
                )
                energy = true_energy * (measurement.value / true_times[b])
            obj = Objectives(
                time=measurement.value, threads=int(key[-1]), energy=energy
            )
            out.append((obj, measurement))
        return out

    # -- the single-writer ledger ------------------------------------------

    def lookup(self, key: tuple) -> Objectives | None:
        """Memoized result of a canonical key, or None."""
        with self._lock:
            return self._cache.get(key)

    def commit(self, key: tuple, obj: Objectives, measurement: Measurement) -> bool:
        """Record a computed measurement in the ledger; returns whether the
        key was new (and therefore counted towards ``E``).  Atomic: a key
        can never be counted twice, and no increment is ever lost."""
        with self._lock:
            if key in self._cache:
                return False
            self.evaluations += 1
            self._cache[key] = obj
            self._measurements[key] = measurement
            return True

    # -- single-configuration path ---------------------------------------

    def evaluate(self, tile_sizes: dict[str, int], threads: int) -> Objectives:
        """Measure a configuration (median of k noisy runs); memoized.

        Safe to call from multiple threads: computation happens outside the
        lock (it is pure and deterministic, so a racing double-compute
        yields the same value) and :meth:`commit` arbitrates the ledger.
        """
        key = self.config_key(tile_sizes, threads)
        hit = self.lookup(key)
        if hit is not None:
            return hit
        disk = self.disk_fetch(key)
        if disk is not None:
            self.commit(key, *disk)
            return self.lookup(key)
        if self.protocol.overhead_s > 0:
            _time.sleep(self.protocol.overhead_s)

        true_time = self.model.time(tile_sizes, threads, collapsed=self.collapsed)
        samples = tuple(true_time * self._noise_factors(key, self.protocol.repetitions))
        measurement = Measurement(value=median(samples), samples=samples)
        energy = None
        if self.measure_energy:
            # energy measurements share the run's jitter: scale the model
            # energy by the same median noise factor as the time
            true_energy = self.model.energy(tile_sizes, threads, collapsed=self.collapsed)
            energy = true_energy * (measurement.value / true_time)
        obj = Objectives(time=measurement.value, threads=int(threads), energy=energy)
        self.commit(key, obj, measurement)
        self.disk_store_many([(key, obj, measurement)])
        return self.lookup(key)

    # -- batch path -------------------------------------------------------

    def evaluate_batch(
        self, tiles: np.ndarray, threads: np.ndarray
    ) -> np.ndarray:
        """Vectorized evaluation of B configurations.

        :param tiles: int array (B, len(band)) in band order.
        :param threads: int array (B,).
        :returns: measured (median-of-k noisy) times, float array (B,).

        Duplicates (within the batch or against the memo cache) are
        deduplicated before computation, so every configuration is counted
        in the ledger exactly once across both paths; results agree
        bit-for-bit with :meth:`evaluate`.
        """
        tiles = np.asarray(tiles, dtype=np.int64)
        threads = np.asarray(threads, dtype=np.int64)
        ext = np.array([self.model.extent[v] for v in self.band], dtype=np.int64)
        clipped = np.clip(tiles, 1, ext[None, :])
        keys = [
            tuple(int(x) for x in clipped[b]) + (int(threads[b]),)
            for b in range(len(clipped))
        ]
        pending = dict.fromkeys(k for k in keys if self.lookup(k) is None)
        to_compute = list(pending)
        if self.disk_cache is not None:
            to_compute = []
            for key in pending:
                disk = self.disk_fetch(key)
                if disk is not None:
                    self.commit(key, *disk)
                else:
                    to_compute.append(key)
        computed = []
        for key, result in zip(to_compute, self.compute_keys(to_compute)):
            self.commit(key, *result)
            computed.append((key, *result))
        self.disk_store_many(computed)
        return np.array([self.lookup(key).time for key in keys])

    def cached_objectives(self, tile_sizes: dict[str, int], threads: int) -> Objectives:
        """The full Objectives record of an evaluated configuration."""
        key = self.config_key(tile_sizes, threads)
        hit = self.lookup(key)
        if hit is None:
            raise KeyError(f"configuration {key} has not been evaluated")
        return hit

    # -- introspection ----------------------------------------------------

    def true_time(self, tile_sizes: dict[str, int], threads: int) -> float:
        """Noise-free model time (not counted as an evaluation)."""
        return self.model.time(tile_sizes, threads, collapsed=self.collapsed)

    def measurement(self, tile_sizes: dict[str, int], threads: int) -> Measurement:
        self.evaluate(tile_sizes, threads)
        return self._measurements[self.config_key(tile_sizes, threads)]

    def reset_ledger(self) -> None:
        """Clear the evaluation count and cache (fresh experiment run)."""
        with self._lock:
            self.evaluations = 0
            self._cache.clear()
            self._measurements.clear()
