"""Objective definitions for the multi-objective tuning problem.

The paper optimizes each region for **execution time** and **parallel
efficiency** simultaneously.  Efficiency `e(x) = s(x)/x` is a monotone
transform of **resource usage** ``x · t_p(x)`` (cpu-seconds), which is the
quantity shown on the axes of Fig. 8/9 ("resource usage") — minimizing
(time, resources) is equivalent to maximizing (speedup, efficiency) and
keeps both objectives in minimization form for the solver.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Objectives", "speedup", "efficiency", "resource_usage"]


@dataclass(frozen=True)
class Objectives:
    """One configuration's measured objective values.

    :param time: wall time of the region, seconds.
    :param threads: threads used (needed to derive efficiency/resources).
    :param energy: joules, when the target measures it (the paper's third
        example objective, §III-B1); ``None`` in the bi-objective setting.
    """

    time: float
    threads: int
    energy: float | None = None

    @property
    def resources(self) -> float:
        """CPU-seconds consumed: ``threads × time``."""
        return self.threads * self.time

    def vector(self) -> tuple[float, float]:
        """Minimization vector (time, resources) handed to the optimizer."""
        return (self.time, self.resources)

    def vector3(self) -> tuple[float, float, float]:
        """Tri-objective minimization vector (time, resources, energy)."""
        if self.energy is None:
            raise ValueError("energy was not measured for this configuration")
        return (self.time, self.resources, self.energy)

    def speedup(self, t_seq: float) -> float:
        return speedup(self.time, t_seq)

    def efficiency(self, t_seq: float) -> float:
        return efficiency(self.time, self.threads, t_seq)


def speedup(t_parallel: float, t_seq: float) -> float:
    """``s(x) = t_s / t_p(x)`` with ``t_s`` the fastest sequential version."""
    if t_parallel <= 0:
        raise ValueError("parallel time must be positive")
    return t_seq / t_parallel

def efficiency(t_parallel: float, threads: int, t_seq: float) -> float:
    """``e(x) = s(x) / x``."""
    if threads < 1:
        raise ValueError("threads must be >= 1")
    return speedup(t_parallel, t_seq) / threads


def resource_usage(t_parallel: float, threads: int) -> float:
    """CPU-seconds: ``x · t_p(x)``; relative resources in the paper's
    Table III are this quantity normalized by ``t_s``."""
    return threads * t_parallel
