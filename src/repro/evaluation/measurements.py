"""The measurement protocol.

Paper §V-B1: "Each of the resulting configurations has been evaluated
multiple times and the median of the collected execution times was used for
comparison."  :class:`MeasurementProtocol` reproduces that: k noisy samples,
median aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.stats import median

__all__ = ["Measurement", "MeasurementProtocol"]


@dataclass(frozen=True)
class Measurement:
    """One aggregated measurement of a configuration."""

    value: float
    samples: tuple[float, ...]

    @property
    def repetitions(self) -> int:
        return len(self.samples)

    @property
    def spread(self) -> float:
        """Relative spread (max-min)/median — a quick noise indicator."""
        if not self.samples:
            return 0.0
        return (max(self.samples) - min(self.samples)) / self.value


@dataclass
class MeasurementProtocol:
    """Median-of-k sampling.

    :param repetitions: samples per configuration (the paper evaluates each
        configuration "multiple times"; 5 is our default).
    :param overhead_s: fixed wall-clock cost per measured configuration
        (seconds, slept by the simulated target).  Models the generate +
        compile + run latency of a real evaluation pipeline; the parallel
        evaluation engine benchmarks use it to exercise worker scaling.
    """

    repetitions: int = 5
    overhead_s: float = 0.0

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        if self.overhead_s < 0:
            raise ValueError("overhead_s must be >= 0")

    def measure(self, sampler) -> Measurement:
        """Aggregate ``repetitions`` calls of ``sampler() -> float``."""
        samples = tuple(float(sampler()) for _ in range(self.repetitions))
        for s in samples:
            if s <= 0:
                raise ValueError(f"non-positive time sample {s}")
        return Measurement(value=median(samples), samples=samples)
