"""Evaluation substrate: turning configurations into measurements.

The paper evaluates configurations by generating, compiling and running code
variants on the target machine (§III-A, label 3).  Here the target machines
are simulated: :mod:`repro.evaluation.cost` predicts the execution time of a
tiled, parallelized region on a :class:`~repro.machine.model.MachineModel`
from first principles (cache-capacity-driven traffic, bandwidth saturation,
load imbalance, parallel overheads), :mod:`repro.evaluation.simulator` adds
measurement noise and the median-of-k protocol the paper uses, and
:mod:`repro.evaluation.parallel_eval` provides the parallel, fault-tolerant
:class:`~repro.evaluation.parallel_eval.EvaluationEngine` that evaluates
configuration batches the way the paper's optimizer does ("multiple
independent configurations are generated, compiled and ... evaluated in
parallel") while keeping the ledger exact under concurrency.

:mod:`repro.evaluation.native` can also *really* execute generated NumPy
versions for small problem sizes (used to sanity-check the pipeline, not
for the paper-scale experiments).
"""

from repro.evaluation.cost import RegionCostModel
from repro.evaluation.disk_cache import DEFAULT_CACHE_DIR, MeasurementDiskCache
from repro.evaluation.measurements import Measurement, MeasurementProtocol
from repro.evaluation.simulator import SimulatedTarget
from repro.evaluation.parallel_eval import (
    BatchEvaluator,
    BatchResult,
    EngineStats,
    EvaluationEngine,
    FaultPolicy,
    FlakyFaultPolicy,
    auto_workers,
)
from repro.evaluation.native import NativeExecutor
from repro.evaluation.objectives import (
    Objectives,
    efficiency,
    resource_usage,
    speedup,
)

__all__ = [
    "RegionCostModel",
    "SimulatedTarget",
    "MeasurementDiskCache",
    "DEFAULT_CACHE_DIR",
    "Measurement",
    "MeasurementProtocol",
    "BatchEvaluator",
    "BatchResult",
    "EngineStats",
    "EvaluationEngine",
    "FaultPolicy",
    "FlakyFaultPolicy",
    "auto_workers",
    "NativeExecutor",
    "Objectives",
    "speedup",
    "efficiency",
    "resource_usage",
]
