"""Analytical execution-time model for tiled parallel loop nests.

This is the simulation substrate standing in for the paper's physical
Westmere and Barcelona machines (see DESIGN.md §2 for the substitution
rationale).  Given a region's affine access streams, a machine model, tile
sizes and a thread count, it predicts wall time from first principles:

1. **Reuse units.**  After tiling, execution decomposes into nested units:
   the whole problem (``W``), one full tile (``s=0``), the suffix of point
   loops from depth ``s`` (``0 < s < n``) down to a single innermost
   iteration (``s=n``).  For each cache level the model picks the largest
   unit whose working set fits the level's *effective* capacity — shared
   levels are divided by the number of threads co-resident on the socket,
   which is exactly the mechanism the paper names as the reason optimal
   tile sizes depend on thread count (§II).

2. **Traffic.**  A stream (all references of an array with identical linear
   subscript parts) is re-fetched once per iteration of every loop outside
   its reuse unit up to and including the innermost loop it depends on; its
   per-unit footprint is counted in cache lines, so strided column walks
   (e.g. ``B[k][j]`` in IJK mm) pay full lines for single elements.

3. **Time.**  Roofline-style combination: compute + loop overhead versus
   per-level fill bandwidths, per-core DRAM bandwidth, and per-socket DRAM
   bandwidth shared by the threads placed there (the source of the
   speedup/efficiency trade-off).  Load imbalance multiplies the critical
   path by ``ceil(P/T)·T/P`` with ``P`` the worksharing iteration count
   after collapsing — the mechanism that makes collapsing worthwhile and
   penalises huge tiles at large thread counts.

The model is deterministic; measurement noise is layered on top by
:class:`repro.evaluation.simulator.SimulatedTarget`.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.features import analyze_features
from repro.analysis.polyhedral import AccessFunction, access_functions
from repro.analysis.regions import TunableRegion
from repro.machine.model import MachineModel
from repro.machine.topology import place_threads

__all__ = ["RegionCostModel", "Stream"]


@dataclass(frozen=True)
class Stream:
    """All references of one array sharing a linear subscript part.

    :param coeff_dims: per array dimension, the (var, coeff) terms of the
        subscript's linear part.
    :param const_span: per dimension, (max-min) over the group's subscript
        constants — the halo widening of e.g. stencil reads.
    :param depends: band variables occurring anywhere in the subscripts.
    """

    array: str
    coeff_dims: tuple[tuple[tuple[str, int], ...], ...]
    const_span: tuple[int, ...]
    depends: frozenset[str]
    has_write: bool
    elem_size: int

    def extents(self, spans: dict[str, int]) -> tuple[int, ...]:
        """Data extent touched per dimension when each loop var covers
        ``spans[var]`` consecutive values."""
        out = []
        for coeffs, extra in zip(self.coeff_dims, self.const_span):
            extent = 1 + extra
            for var, coeff in coeffs:
                extent += abs(coeff) * (spans.get(var, 1) - 1)
            out.append(extent)
        return tuple(out)

    def footprint_lines(self, spans: dict[str, int], line_elems: int) -> float:
        """Cache lines touched per unit execution (line granularity on the
        innermost dimension only — outer dimensions are strided)."""
        ext = self.extents(spans)
        lines = math.ceil(ext[-1] / line_elems) if ext else 1
        for e in ext[:-1]:
            lines *= e
        return float(lines)

    def footprint_bytes(self, spans: dict[str, int], line_size: int) -> float:
        line_elems = max(1, line_size // self.elem_size)
        return self.footprint_lines(spans, line_elems) * line_size


class RegionCostModel:
    """Predicts region execution time on a machine for (tiles, threads).

    The constructor performs all per-region analysis once; :meth:`time` is a
    cheap arithmetic evaluation suitable for O(10^5) calls in brute-force
    sweeps.

    :param region: the tunable region (untransformed nest).
    :param bindings: problem-size values for all symbolic extents.
    :param machine: target machine description.
    :param flops_per_iteration: override for the arithmetic per innermost
        iteration (defaults to the static feature count).
    :param parallel_spec: how the generated code workshares, matching
        :meth:`repro.transform.skeleton.TransformationSkeleton.parallel_spec`:
        ``("collapse", n)`` — the outer *n* tile loops are coalesced into
        the parallel loop (default, n = min(2, band)); ``("tile", var)`` —
        var's tile loop alone is parallel; ``("point", var)`` — the untiled
        loop *var* is parallel (n-body's ``i`` under a hoisted ``j`` tile
        loop), incurring one fork/join per enclosing tile-loop iteration.
    """

    def __init__(
        self,
        region: TunableRegion,
        bindings: dict[str, int],
        machine: MachineModel,
        flops_per_iteration: float | None = None,
        parallel_spec: tuple[str, object] | None = None,
    ) -> None:
        self.region = region
        self.machine = machine
        self.bindings = dict(bindings)
        self.parallel_spec = parallel_spec

        feats = analyze_features(region, bindings)
        self.flops_per_iteration = (
            float(flops_per_iteration)
            if flops_per_iteration is not None
            else float(feats.flops_per_iteration)
        )
        self.sweep_factor = feats.sweep_factor
        self.total_iterations = feats.total_iterations

        self.band = tuple(lv for lv in region.domain.vars)
        self.extent = {v: region.domain.extent(v, bindings) for v in self.band}
        self.streams = self._build_streams()

        arrays = region.function.arrays
        self._elem_size = max(
            (at.elem.size for at in arrays.values()), default=8
        )

    # ------------------------------------------------------------------
    # stream extraction
    # ------------------------------------------------------------------

    def _build_streams(self) -> tuple[Stream, ...]:
        arrays = self.region.function.arrays
        groups: dict[tuple, list[AccessFunction]] = {}
        for acc in access_functions(self.region.nest):
            if acc.array not in arrays:
                continue
            key = (acc.array, acc.linear_part())
            groups.setdefault(key, []).append(acc)

        streams = []
        band_set = set(self.band)
        for (array, linear), accs in groups.items():
            rank = accs[0].rank
            coeff_dims: list[tuple[tuple[str, int], ...]] = []
            const_span: list[int] = []
            depends: set[str] = set()
            for d in range(rank):
                consts = []
                coeffs: tuple[tuple[str, int], ...] = ()
                for acc in accs:
                    sub = acc.subscripts[d]
                    if sub is None:
                        # non-affine subscript: treat as touching the dim fully
                        coeffs = ()
                        consts = [0]
                        break
                    coeffs = tuple((v, c) for v, c in sub.coeffs if v in band_set)
                    consts.append(sub.const)
                coeff_dims.append(coeffs)
                const_span.append(max(consts) - min(consts) if consts else 0)
                depends.update(v for v, _ in coeffs)
            streams.append(
                Stream(
                    array=array,
                    coeff_dims=tuple(coeff_dims),
                    const_span=tuple(const_span),
                    depends=frozenset(depends),
                    has_write=any(a.is_write for a in accs),
                    elem_size=arrays[array].elem.size,
                )
            )
        return tuple(streams)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def time(
        self,
        tile_sizes: dict[str, int],
        threads: int,
        collapsed: int | None = None,
    ) -> float:
        """Predicted wall time in seconds for one kernel invocation.

        :param tile_sizes: tile size per band var; vars omitted default to
            their full extent (``tile_sizes={}`` models the untiled code).
        :param threads: worksharing thread count (1 = sequential, no
            parallel overhead).
        :param collapsed: how many outer tile loops are collapsed into the
            worksharing loop; overrides the constructor's ``parallel_spec``.
        """
        return self._evaluate(tile_sizes, threads, collapsed)["time"]

    def energy(
        self,
        tile_sizes: dict[str, int],
        threads: int,
        collapsed: int | None = None,
    ) -> float:
        """Predicted energy in joules for one kernel invocation.

        Power model: active sockets draw their idle/uncore power for the
        whole run, each busy core adds its active power, and every byte
        moved from DRAM costs a fixed energy (see the machine's
        ``*_power``/``dram_energy_per_byte`` parameters).  Energy is the
        paper's third example objective (§III-B1) and exhibits its own
        optimum: few threads waste idle power over a long runtime, many
        threads burn core power against sublinear speedup.
        """
        parts = self._evaluate(tile_sizes, threads, collapsed)
        machine = self.machine
        placement = parts["placement"]
        t = parts["time"]
        power = (
            placement.active_sockets * machine.idle_power_per_socket
            + threads * machine.active_power_per_core
        )
        dram_bytes = parts["dram_bytes_total"]
        return t * power + dram_bytes * machine.dram_energy_per_byte

    def _evaluate(
        self,
        tile_sizes: dict[str, int],
        threads: int,
        collapsed: int | None = None,
    ) -> dict:
        """Shared scalar evaluation: returns time plus the component values
        the energy model needs."""
        machine = self.machine
        tiles = {v: int(min(max(1, tile_sizes.get(v, self.extent[v])), self.extent[v]))
                 for v in self.band}
        trips = {v: math.ceil(self.extent[v] / tiles[v]) for v in self.band}

        placement = place_threads(machine, threads)

        # ---- load imbalance over the worksharing loop --------------------
        par_iters, invocations = self._parallel_structure(tiles, trips, collapsed)
        if threads > 1:
            chunks = math.ceil(par_iters / threads)
            share = chunks / par_iters  # busiest thread's work fraction
        else:
            share = 1.0

        # ---- traffic per cache level -------------------------------------
        spans_units = self._unit_spans(tiles)
        whole_spans = {v: self.extent[v] for v in self.band}

        level_traffic: list[float] = []
        prev = math.inf
        for level in machine.levels:
            if level.shared:
                cap_unit = level.size / placement.max_threads_per_socket
                cap_whole = float(level.size)
            else:
                cap_unit = float(level.size)
                cap_whole = float(level.size)

            ws_whole = sum(
                s.footprint_bytes(whole_spans, level.line_size) for s in self.streams
            )
            if ws_whole <= cap_whole:
                traffic = self._compulsory_traffic(whole_spans, level.line_size)
            else:
                s_idx = self._fitting_unit(spans_units, cap_unit, level.line_size)
                traffic = self._unit_traffic(
                    spans_units[s_idx], s_idx, tiles, trips, level.line_size
                )
                compulsory = self._compulsory_traffic(whole_spans, level.line_size)
                traffic = max(traffic, compulsory)
            traffic = min(traffic, prev) if level_traffic else traffic
            prev = traffic
            level_traffic.append(traffic)

        # ---- per-thread times --------------------------------------------
        freq = machine.freq_hz
        flops = self.flops_per_iteration * self.total_iterations
        compute_t = flops * share / (machine.flops_per_cycle * freq)

        loop_iters, loop_entries = self._loop_overhead_counts(tiles, trips)
        overhead_t = (
            loop_iters * machine.loop_overhead_cycles
            + loop_entries * machine.loop_entry_cycles
        ) * share / freq

        mem_times = []
        for level, traffic in zip(machine.levels, level_traffic):
            mem_times.append(traffic * share / level.fetch_bw)

        # TLB: same reuse-unit machinery at page granularity; column walks
        # through more pages than the TLB holds pay a walk per new page.
        tlb_idx = self._fitting_unit(spans_units, machine.tlb_reach, machine.page_size)
        tlb_ws_whole = sum(
            s.footprint_bytes(whole_spans, machine.page_size) for s in self.streams
        )
        tlb_compulsory = self._compulsory_traffic(whole_spans, machine.page_size)
        if tlb_ws_whole <= machine.tlb_reach:
            tlb_traffic = tlb_compulsory
        else:
            tlb_traffic = max(
                self._unit_traffic(
                    spans_units[tlb_idx], tlb_idx, tiles, trips, machine.page_size
                ),
                tlb_compulsory,
            )
        tlb_misses = tlb_traffic / machine.page_size
        overhead_t += tlb_misses * machine.tlb_miss_cycles * share / freq

        dram_traffic = level_traffic[-1]
        mem_times.append(dram_traffic * share / machine.dram_bw_per_core)
        per_socket_threads = placement.max_threads_per_socket
        mem_times.append(
            dram_traffic * share * per_socket_threads / machine.dram_bw_per_socket
        )

        # roofline with a residual: compute and memory mostly overlap, but
        # a fraction of the smaller term stays exposed (out-of-order windows
        # are finite) — this keeps secondary traffic gradients visible even
        # for compute-bound configurations
        work_t = compute_t + overhead_t
        mem_t = max(mem_times)
        busy = max(work_t, mem_t) + machine.mem_overlap_residual * min(work_t, mem_t)

        # coherence / NUMA tax: populated sockets contend on shared chip
        # resources; extra active sockets add snoop/cross-socket coherence
        # cost.  This (plus DRAM saturation and imbalance) produces the
        # efficiency decay of the paper's Table III.
        if threads > 1:
            cps = machine.cores_per_socket
            fill = (placement.max_threads_per_socket - 1) / max(1, cps - 1)
            tax = 1.0 + machine.smp_tax * fill
            tax += machine.numa_tax * (placement.active_sockets - 1)
            busy *= tax
            busy += (
                machine.fork_join_base + machine.fork_join_per_thread * threads
            ) * invocations

        return {
            "time": busy * self.sweep_factor,
            "placement": placement,
            # total DRAM bytes moved by the whole run (all threads)
            "dram_bytes_total": dram_traffic * self.sweep_factor,
            "share": share,
        }

    def _parallel_structure(
        self,
        tiles: dict[str, int],
        trips: dict[str, int],
        collapsed: int | None,
    ) -> tuple[int, int]:
        """(worksharing iteration count P, parallel-region invocations per
        kernel call) under the configured parallel spec."""
        spec = self.parallel_spec
        if collapsed is not None:
            spec = ("collapse", collapsed)
        if spec is None:
            spec = ("collapse", min(2, len(self.band)))
        kind, arg = spec
        if kind == "collapse":
            n = max(1, min(int(arg or 1), len(self.band)))
            par = 1
            for v in self.band[:n]:
                par *= trips[v]
            return par, 1
        if kind == "tile":
            return trips[str(arg)], 1
        if kind == "point":
            var = str(arg)
            # one fork/join per iteration of the enclosing tile loops (the
            # tile loops of all tiled vars sit above the point loop)
            invocations = 1
            for v in self.band:
                if v != var and tiles[v] < self.extent[v]:
                    invocations *= trips[v]
            return self.extent[var], invocations
        if kind == "none":
            return 1, 1
        raise ValueError(f"unknown parallel spec {spec!r}")

    # -- helpers ----------------------------------------------------------

    def _unit_spans(self, tiles: dict[str, int]) -> list[dict[str, int]]:
        """Spans of the reuse units: index ``s`` fixes the first ``s`` band
        vars (span 1) and lets the rest cover a full tile."""
        units = []
        for s in range(len(self.band) + 1):
            spans = {}
            for pos, v in enumerate(self.band):
                spans[v] = 1 if pos < s else tiles[v]
            units.append(spans)
        return units

    def _fitting_unit(
        self, spans_units: list[dict[str, int]], capacity: float, line_size: int
    ) -> int:
        for s, spans in enumerate(spans_units):
            ws = sum(s_.footprint_bytes(spans, line_size) for s_ in self.streams)
            if ws <= capacity:
                return s
        return len(spans_units) - 1

    def _unit_traffic(
        self,
        spans: dict[str, int],
        s_idx: int,
        tiles: dict[str, int],
        trips: dict[str, int],
        line_size: int,
    ) -> float:
        """Total traffic when the reuse unit is the point-loop suffix at
        depth ``s_idx``.

        Per stream: let ``d`` be the innermost loop outside the unit the
        stream depends on (outer sequence = all tile loops, then the point
        loops above the unit).  The stream is re-fetched once per combined
        iteration of the loops *outside* ``d``; loop ``d`` itself is merged
        into the footprint (its span expanded by its iteration count), so
        that consecutive fetches along a contiguous dimension share cache
        lines instead of paying a full line each — this is what makes a
        column walk (``B[k][j]`` untiled) expensive and a row walk cheap."""
        outer: list[tuple[str, int]] = [(v, trips[v]) for v in self.band]
        outer += [(v, tiles[v]) for v in self.band[:s_idx]]

        total = 0.0
        for stream in self.streams:
            depth = -1
            for idx, (v, _count) in enumerate(outer):
                if v in stream.depends:
                    depth = idx
            if depth < 0:
                bytes_total = stream.footprint_bytes(spans, line_size)
            else:
                fetches = 1.0
                for idx in range(depth):
                    fetches *= outer[idx][1]
                d_var, d_count = outer[depth]
                expanded = dict(spans)
                expanded[d_var] = min(
                    self.extent[d_var], d_count * spans.get(d_var, 1)
                )
                bytes_total = fetches * stream.footprint_bytes(expanded, line_size)
            weight = 2.0 if stream.has_write else 1.0
            total += bytes_total * weight
        return total

    def _compulsory_traffic(self, whole_spans: dict[str, int], line_size: int) -> float:
        """Cold-miss floor: every touched line once (twice for written
        streams — fetch plus writeback)."""
        total = 0.0
        for stream in self.streams:
            weight = 2.0 if stream.has_write else 1.0
            total += stream.footprint_bytes(whole_spans, line_size) * weight
        return total

    def _loop_overhead_counts(
        self, tiles: dict[str, int], trips: dict[str, int]
    ) -> tuple[float, float]:
        """(iterations of non-innermost loops, loop entries) of the tiled
        nest — tile loops outermost, point loops inside.  Innermost-loop
        bookkeeping is folded into the machine's sustained flop rate, so
        only outer-level iterations and loop entries (bound computation,
        branch misprediction on exit) are charged."""
        counts = [trips[v] for v in self.band] + [tiles[v] for v in self.band]
        iters = 0.0
        entries = 1.0
        cumulative = 1.0
        for level, c in enumerate(counts):
            entries += cumulative
            cumulative *= c
            if level < len(counts) - 1:
                iters += cumulative
        return iters, entries

    # ------------------------------------------------------------------
    # vectorized batch evaluation
    # ------------------------------------------------------------------
    #
    # Identical semantics to :meth:`time`, evaluated for B configurations at
    # once with NumPy.  Brute-force sweeps (the paper's 10^4..10^5 point
    # grids) and heatmap generation use this path; a property-based test
    # asserts scalar/batch agreement.

    def time_batch(
        self,
        tiles: np.ndarray,
        threads: np.ndarray,
        collapsed: int | None = None,
    ) -> np.ndarray:
        """Vectorized :meth:`time`.

        :param tiles: int array (B, len(band)) — tile sizes in band order.
        :param threads: int array (B,).
        :returns: float array (B,) of seconds.
        """
        machine = self.machine
        band = self.band
        n = len(band)
        tiles = np.asarray(tiles, dtype=np.int64)
        threads = np.asarray(threads, dtype=np.int64)
        if tiles.ndim != 2 or tiles.shape[1] != n:
            raise ValueError(f"tiles must have shape (B, {n})")
        B = tiles.shape[0]
        if threads.shape != (B,):
            raise ValueError("threads must have shape (B,)")

        ext = np.array([self.extent[v] for v in band], dtype=np.int64)
        t = np.clip(tiles, 1, ext[None, :])
        trips = -(-ext[None, :] // t)  # ceil div, (B, n)

        # thread placement (vectorized over the few distinct thread counts)
        cps = machine.cores_per_socket
        max_per_socket = np.minimum(threads, cps)
        active_sockets = -(-threads // cps)

        # worksharing structure per the parallel spec
        spec = self.parallel_spec
        if collapsed is not None:
            spec = ("collapse", collapsed)
        if spec is None:
            spec = ("collapse", min(2, n))
        kind, arg = spec
        invocations = np.ones(B)
        if kind == "collapse":
            depth = max(1, min(int(arg or 1), n))
            par_iters = np.prod(trips[:, :depth], axis=1)
        elif kind == "tile":
            par_iters = trips[:, band.index(str(arg))]
        elif kind == "point":
            pos = band.index(str(arg))
            par_iters = np.full(B, ext[pos])
            for j in range(n):
                if j != pos:
                    invocations = invocations * np.where(t[:, j] < ext[j], trips[:, j], 1)
        elif kind == "none":
            par_iters = np.ones(B)
        else:
            raise ValueError(f"unknown parallel spec {spec!r}")
        share = np.where(
            threads > 1, np.ceil(par_iters / threads) / par_iters, 1.0
        )

        # spans per unit: (n_units, B, n)
        n_units = n + 1
        spans = np.empty((n_units, B, n), dtype=np.int64)
        for s in range(n_units):
            spans[s] = t
            spans[s, :, :s] = 1
        whole = np.broadcast_to(ext[None, :], (B, n))

        def fp_bytes(stream: Stream, sp: np.ndarray, line_size: int) -> np.ndarray:
            """Footprint bytes for spans sp (..., n)."""
            line_elems = max(1, line_size // stream.elem_size)
            lines = None
            ndim = len(stream.coeff_dims)
            for d, (coeffs, extra) in enumerate(
                zip(stream.coeff_dims, stream.const_span)
            ):
                e = np.full(sp.shape[:-1], 1 + extra, dtype=np.float64)
                for var, coeff in coeffs:
                    pos = band.index(var)
                    e = e + abs(coeff) * (sp[..., pos] - 1)
                if d == ndim - 1:
                    e = np.ceil(e / line_elems)
                lines = e if lines is None else lines * e
            if lines is None:
                lines = np.ones(sp.shape[:-1])
            return lines * line_size

        def unit_traffic(s: int, line_size: int) -> np.ndarray:
            """Traffic (B,) for reuse unit s at the given line size."""
            # outer sequence: n tile loops (counts=trips), s point loops (counts=t)
            out_counts = [trips[:, i] for i in range(n)] + [t[:, i] for i in range(s)]
            out_vars = list(band) + list(band[:s])
            total = np.zeros(B)
            sp = spans[s]
            for stream in self.streams:
                depth = -1
                for idx, v in enumerate(out_vars):
                    if v in stream.depends:
                        depth = idx
                weight = 2.0 if stream.has_write else 1.0
                if depth < 0:
                    total += weight * fp_bytes(stream, sp, line_size)
                    continue
                fetches = np.ones(B)
                for idx in range(depth):
                    fetches = fetches * out_counts[idx]
                d_var = out_vars[depth]
                pos = band.index(d_var)
                expanded = sp.copy()
                expanded[:, pos] = np.minimum(
                    ext[pos], out_counts[depth] * sp[:, pos]
                )
                total += weight * fetches * fp_bytes(stream, expanded, line_size)
            return total

        def compulsory(line_size: int) -> np.ndarray:
            total = np.zeros(B)
            for stream in self.streams:
                weight = 2.0 if stream.has_write else 1.0
                total += weight * fp_bytes(stream, whole, line_size)
            return total

        def level_traffic_for(capacity: np.ndarray, cap_whole: float, line_size: int) -> np.ndarray:
            ws_units = np.zeros((n_units, B))
            for s in range(n_units):
                for stream in self.streams:
                    ws_units[s] += fp_bytes(stream, spans[s], line_size)
            # smallest s whose working set fits; fallback: last unit
            fits = ws_units <= capacity[None, :]
            s_star = np.where(fits.any(axis=0), fits.argmax(axis=0), n_units - 1)
            traffic = np.zeros(B)
            comp = compulsory(line_size)
            for s in range(n_units):
                mask = s_star == s
                if mask.any():
                    traffic[mask] = unit_traffic(s, line_size)[mask]
            traffic = np.maximum(traffic, comp)
            ws_whole = np.zeros(B)
            for stream in self.streams:
                ws_whole += fp_bytes(stream, whole, line_size)
            whole_fits = ws_whole <= cap_whole
            traffic[whole_fits] = comp[whole_fits]
            return traffic

        level_traffic = []
        prev = None
        for level in machine.levels:
            if level.shared:
                cap_unit = level.size / max_per_socket
            else:
                cap_unit = np.full(B, float(level.size))
            traffic = level_traffic_for(cap_unit, float(level.size), level.line_size)
            if prev is not None:
                traffic = np.minimum(traffic, prev)
            prev = traffic
            level_traffic.append(traffic)

        freq = machine.freq_hz
        flops = self.flops_per_iteration * self.total_iterations
        compute_t = flops * share / (machine.flops_per_cycle * freq)

        # loop overhead (non-innermost iterations + entries)
        counts = [trips[:, i] for i in range(n)] + [t[:, i].astype(float) for i in range(n)]
        iters = np.zeros(B)
        entries = np.ones(B)
        cumulative = np.ones(B)
        for level_idx, c in enumerate(counts):
            entries = entries + cumulative
            cumulative = cumulative * c
            if level_idx < len(counts) - 1:
                iters = iters + cumulative
        overhead_t = (
            iters * machine.loop_overhead_cycles + entries * machine.loop_entry_cycles
        ) * share / freq

        # TLB
        tlb_cap = np.full(B, float(machine.tlb_reach))
        tlb_traffic = level_traffic_for(tlb_cap, float(machine.tlb_reach), machine.page_size)
        overhead_t += (
            tlb_traffic / machine.page_size * machine.tlb_miss_cycles * share / freq
        )

        mem_times = [
            traffic * share / level.fetch_bw
            for level, traffic in zip(machine.levels, level_traffic)
        ]
        dram_traffic = level_traffic[-1]
        mem_times.append(dram_traffic * share / machine.dram_bw_per_core)
        mem_times.append(
            dram_traffic * share * max_per_socket / machine.dram_bw_per_socket
        )

        work_t = compute_t + overhead_t
        mem_t = mem_times[0]
        for mt in mem_times[1:]:
            mem_t = np.maximum(mem_t, mt)
        busy = np.maximum(work_t, mem_t) + machine.mem_overlap_residual * np.minimum(
            work_t, mem_t
        )

        par_mask = threads > 1
        fill = (max_per_socket - 1) / max(1, cps - 1)
        tax = 1.0 + machine.smp_tax * fill + machine.numa_tax * (active_sockets - 1)
        busy = np.where(par_mask, busy * tax, busy)
        busy = np.where(
            par_mask,
            busy
            + (machine.fork_join_base + machine.fork_join_per_thread * threads)
            * invocations,
            busy,
        )
        return busy * self.sweep_factor

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------

    def fingerprint(self) -> str:
        """Content hash of everything that determines :meth:`time`.

        Two models with equal fingerprints produce identical times for
        every (tiles, threads) configuration, so the fingerprint can key
        a persistent measurement cache across processes.  Every repr used
        is deterministic — ``Stream.depends`` (a frozenset, whose repr
        order follows hash randomization) is sorted explicitly."""
        h = hashlib.blake2b(digest_size=16)

        def feed(part: object) -> None:
            h.update(repr(part).encode())
            h.update(b"\x00")

        feed(self.machine)
        feed(sorted(self.bindings.items()))
        feed(self.band)
        feed(sorted(self.extent.items()))
        feed(self.flops_per_iteration)
        feed(self.sweep_factor)
        feed(self.total_iterations)
        feed(self.parallel_spec)
        feed(self._elem_size)
        for stream in self.streams:
            feed(
                (
                    stream.array,
                    stream.coeff_dims,
                    stream.const_span,
                    tuple(sorted(stream.depends)),
                    stream.has_write,
                    stream.elem_size,
                )
            )
        return h.hexdigest()

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------

    def baseline_time(self) -> float:
        """Sequential untiled execution ("GCC -O3" reference row)."""
        return self.time({}, threads=1)

    def sequential_time(self, tile_sizes: dict[str, int]) -> float:
        return self.time(tile_sizes, threads=1)
