"""Experiment setup: kernels × machines at paper scale.

An :class:`ExperimentSetup` bundles everything one benchmark needs: the
region, cost model, simulated target, skeleton/problem constructors and the
brute-force tile grid.  Grid resolutions approximate the paper's sweeps
(mm used >14,000 tile configurations; our defaults land in the same order
of magnitude while keeping the full harness fast on one core).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.regions import TunableRegion, extract_regions
from repro.evaluation.cost import RegionCostModel
from repro.evaluation.parallel_eval import EvaluationEngine
from repro.evaluation.simulator import SimulatedTarget
from repro.frontend.kernels import Kernel, get_kernel
from repro.machine.model import MachineModel
from repro.optimizer.brute_force import grid_candidates
from repro.optimizer.problem import TuningProblem
from repro.transform.skeleton import TransformationSkeleton, default_skeleton

__all__ = ["EXPERIMENT_KERNELS", "ExperimentSetup", "make_setup", "brute_force_grid"]

#: kernels in the paper's evaluation order (Table VI)
EXPERIMENT_KERNELS = ("mm", "dsyrk", "jacobi2d", "stencil3d", "nbody")

#: brute-force grid points per tile dimension, chosen so the total
#: evaluation counts land at the paper's 10^4 scale regardless of the
#: kernel's tile-space dimensionality (mm: 13^3 x 5 threads ~ 11k;
#: jacobi-2d: 40^2 x 5 ~ 8k; n-body: 3600 x 6 ~ 21.6k, cf. the paper's
#: 21,780)
_GRID_POINTS = {3: 13, 2: 40, 1: 3600}


def brute_force_grid(kernel: Kernel, region: TunableRegion, sizes: dict[str, int]) -> dict[str, list[int]]:
    """Regular tile grid per tuned loop, upper-bounded at extent/2 (the
    paper's static restriction)."""
    band = kernel.tile_loops
    points = _GRID_POINTS.get(len(band), 13)
    grid = {}
    for v in band:
        extent = region.domain.extent(v, sizes)
        # multi-dim bands use the paper's extent/2 upper bound; a single
        # tuned (reduction) dimension sweeps up to the full extent so the
        # "no blocking" configuration is part of the search space
        hi = extent if len(band) == 1 else max(1, extent // 2)
        grid[v] = grid_candidates(1, hi, points)
    return grid


@dataclass
class ExperimentSetup:
    """One (kernel, machine) experiment instance."""

    kernel: Kernel
    machine: MachineModel
    sizes: dict[str, int]
    region: TunableRegion
    seed: int = 0
    noise: float = 0.015

    _model: RegionCostModel | None = field(default=None, repr=False)

    def skeleton(self, thread_choices: tuple[int, ...] = ()) -> TransformationSkeleton:
        return default_skeleton(
            self.region,
            self.sizes,
            self.machine.total_cores,
            thread_choices=thread_choices,
            band=self.kernel.tile_loops,
        )

    @property
    def model(self) -> RegionCostModel:
        if self._model is None:
            self._model = RegionCostModel(
                self.region,
                self.sizes,
                self.machine,
                flops_per_iteration=self.kernel.flops_per_point,
                parallel_spec=self.skeleton().parallel_spec(),
            )
        return self._model

    def target(self, seed: int | None = None, disk_cache=None) -> SimulatedTarget:
        return SimulatedTarget(
            self.model,
            seed=self.seed if seed is None else seed,
            noise=self.noise,
            disk_cache=disk_cache,
        )

    def problem(
        self,
        seed: int | None = None,
        thread_choices: tuple[int, ...] = (),
        workers: int | str = 1,
        obs=None,
        disk_cache=None,
        backend: str = "thread",
    ) -> TuningProblem:
        target = self.target(seed, disk_cache=disk_cache)
        return TuningProblem.from_skeleton(
            self.skeleton(thread_choices),
            target,
            engine=EvaluationEngine(
                target, max_workers=workers, obs=obs, backend=backend
            ),
            obs=obs,
        )

    def tile_grid(self) -> dict[str, list[int]]:
        return brute_force_grid(self.kernel, self.region, self.sizes)

    @property
    def thread_counts(self) -> tuple[int, ...]:
        return self.machine.default_thread_counts()


def make_setup(
    kernel_name: str,
    machine: MachineModel,
    sizes: dict[str, int] | None = None,
    seed: int = 0,
    noise: float = 0.015,
) -> ExperimentSetup:
    kernel = get_kernel(kernel_name)
    merged = kernel.sizes(sizes)
    region = extract_regions(kernel.function)[0]
    return ExperimentSetup(
        kernel=kernel,
        machine=machine,
        sizes=merged,
        region=region,
        seed=seed,
        noise=noise,
    )
