"""Shared experiment setups for the benchmark harness.

The benchmarks under ``benchmarks/`` regenerate every table and figure of
the paper's evaluation (Section V).  This package centralises the common
machinery: paper-scale problem setup, brute-force sweeps with raw data
retention, per-thread-count optima, cross-thread penalty matrices, and the
speedup/efficiency bookkeeping of Fig. 1/8 and Tables II/III/V.
"""

from repro.experiments.setups import (
    EXPERIMENT_KERNELS,
    ExperimentSetup,
    brute_force_grid,
    make_setup,
)
from repro.experiments.sweeps import (
    BruteForceSweep,
    cross_penalty_matrix,
    run_brute_force,
    speedup_efficiency_rows,
)

__all__ = [
    "EXPERIMENT_KERNELS",
    "ExperimentSetup",
    "make_setup",
    "brute_force_grid",
    "BruteForceSweep",
    "run_brute_force",
    "cross_penalty_matrix",
    "speedup_efficiency_rows",
]
