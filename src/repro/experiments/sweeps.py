"""Brute-force sweeps and the derived paper statistics.

:class:`BruteForceSweep` runs the full tile-grid × thread-count cross
product once per (kernel, machine) and exposes the derived quantities the
paper's tables/figures are made of:

* per-thread-count optimal tiles and times (Table II left columns),
* the cross-thread penalty matrix (Table II right columns, Table V rows),
* speedup/efficiency/relative-resources per Pareto tip (Table III, Fig 1),
* the raw (time, resources) cloud per thread count (Fig 8),
* the global non-dominated front (Fig 9's brute-force curve).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.setups import ExperimentSetup
from repro.optimizer.brute_force import BruteForceData, brute_force_search
from repro.optimizer.rsgde3 import OptimizerResult
from repro.util.stats import relative_loss

__all__ = [
    "BruteForceSweep",
    "run_brute_force",
    "cross_penalty_matrix",
    "speedup_efficiency_rows",
]


@dataclass
class BruteForceSweep:
    """A completed brute-force evaluation of one experiment setup."""

    setup: ExperimentSetup
    result: OptimizerResult
    data: BruteForceData

    @property
    def evaluations(self) -> int:
        return self.result.evaluations

    def optimal_tiles(self) -> dict[int, tuple[dict[str, int], float]]:
        """thread count → (best tile sizes, measured time)."""
        out = {}
        for thr in self.data.thread_counts():
            values, t = self.data.best_for_threads(thr)
            tiles = {
                name[len("tile_"):]: v
                for name, v in values.items()
                if name.startswith("tile_")
            }
            out[thr] = (tiles, t)
        return out

    def sequential_time(self) -> float:
        """Fastest (tiled) sequential time — the paper's ``t_s``."""
        _, t = self.data.best_for_threads(1)
        return t

    def cloud(self, threads: int) -> tuple[np.ndarray, np.ndarray]:
        """(times, resources) of every grid point at a thread count —
        one 'line' of Fig 8."""
        mask = self.data.threads == threads
        times = self.data.times[mask]
        return times, times * threads


def run_brute_force(setup: ExperimentSetup, seed: int | None = None) -> BruteForceSweep:
    problem = setup.problem(seed=seed)
    result, data = brute_force_search(
        problem,
        setup.tile_grid(),
        list(setup.thread_counts),
        keep_data=True,
    )
    assert data is not None
    return BruteForceSweep(setup=setup, result=result, data=data)


def cross_penalty_matrix(sweep: BruteForceSweep) -> dict[int, dict[int, float]]:
    """Table II's right half: percentage loss of running the tiles tuned
    for thread count *a* at thread count *b*, relative to *b*'s optimum.

    Uses the noise-free model times for the cross entries (re-measuring a
    known configuration, as the paper does when re-running the binaries).
    """
    optima = sweep.optimal_tiles()
    target = sweep.setup.target()
    matrix: dict[int, dict[int, float]] = {}
    best_time = {thr: target.true_time(tiles, thr) for thr, (tiles, _) in optima.items()}
    for tuned_thr, (tiles, _) in optima.items():
        row = {}
        for run_thr in optima:
            cross = target.true_time(tiles, run_thr)
            row[run_thr] = relative_loss(cross, best_time[run_thr])
        matrix[tuned_thr] = row
    return matrix


def speedup_efficiency_rows(sweep: BruteForceSweep) -> list[dict[str, float]]:
    """Table III: per thread count, speedup/efficiency/relative time and
    resources of the per-count optimum (the Pareto tips of Fig 8)."""
    t_seq = sweep.sequential_time()
    rows = []
    for thr, (_tiles, t) in sorted(sweep.optimal_tiles().items()):
        speedup = t_seq / t
        rows.append(
            {
                "threads": thr,
                "time": t,
                "speedup": speedup,
                "efficiency": speedup / thr,
                "relative_time": t / t_seq,
                "relative_resources": thr * t / t_seq,
            }
        )
    return rows
