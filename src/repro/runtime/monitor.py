"""Runtime monitoring: execution history and (simulated) system state.

The Insieme runtime lets components consult "real-time system monitoring
results for their decision-making processes".  Here the monitor records
which version ran when (and how long it took) and tracks the mutable system
context — currently the number of cores available to the process — which the
context-sensitive policies (e.g. :class:`ThreadCapPolicy`) read.

Time comes from an injectable :class:`~repro.obs.clock.Clock` (the same
protocol the tracer uses), so tests can pin ``ExecutionRecord.timestamp``
with a :class:`~repro.obs.clock.FakeClock` instead of matching against
``time.time()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.clock import Clock, SystemClock

__all__ = ["ExecutionRecord", "RuntimeMonitor"]


@dataclass(frozen=True)
class ExecutionRecord:
    """One region invocation."""

    region: str
    version_index: int
    threads: int
    predicted_time: float
    wall_time: float
    timestamp: float


@dataclass
class RuntimeMonitor:
    """Execution ledger plus system context.

    :param available_cores: cores the scheduler may use right now; external
        events (co-scheduled jobs) update it via :meth:`set_available_cores`,
        after which executors re-select versions.
    :param clock: time source for record timestamps (and for executors
        timing invocations); inject a FakeClock for deterministic tests.
    """

    available_cores: int = 0
    history: list[ExecutionRecord] = field(default_factory=list)
    clock: Clock = field(default_factory=SystemClock)

    def context(self) -> dict:
        ctx: dict = {}
        if self.available_cores > 0:
            ctx["available_cores"] = self.available_cores
        return ctx

    def set_available_cores(self, cores: int) -> None:
        if cores < 1:
            raise ValueError("available cores must be positive")
        self.available_cores = cores

    def record(
        self,
        region: str,
        version_index: int,
        threads: int,
        predicted_time: float,
        wall_time: float,
    ) -> None:
        self.history.append(
            ExecutionRecord(
                region=region,
                version_index=version_index,
                threads=threads,
                predicted_time=predicted_time,
                wall_time=wall_time,
                timestamp=self.clock.now(),
            )
        )

    def selections(self) -> list[int]:
        return [r.version_index for r in self.history]

    def total_cpu_seconds(self) -> float:
        return sum(r.wall_time * r.threads for r in self.history)
