"""Runtime monitoring: execution history and (simulated) system state.

The Insieme runtime lets components consult "real-time system monitoring
results for their decision-making processes".  Here the monitor records
which version ran when (and how long it took) and tracks the mutable system
context — currently the number of cores available to the process — which the
context-sensitive policies (e.g. :class:`ThreadCapPolicy`) read.

Time comes from an injectable :class:`~repro.obs.clock.Clock` (the same
protocol the tracer uses), so tests can pin ``ExecutionRecord.timestamp``
with a :class:`~repro.obs.clock.FakeClock` instead of matching against
``time.time()``.

Under serving traffic the monitor is written from many dispatch workers at
once, so ingestion is built around **one lock and batched writes**:

* :meth:`RuntimeMonitor.record` is the single-observation path (one lock
  acquisition, history append plus aggregate update);
* :meth:`RuntimeMonitor.observe_many` commits N observations under a single
  acquisition;
* :meth:`RuntimeMonitor.shard` hands out per-worker :class:`MonitorShard`
  buffers that batch observations locally and flush through
  ``observe_many`` — N observations cost one lock acquisition per shard
  flush instead of N;
* aggregate totals (:meth:`invocations`, :meth:`total_cpu_seconds`,
  :meth:`version_counts`) are maintained incrementally, so they stay exact
  even when ``history_limit`` bounds the in-memory ledger for long-running
  serving loops.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

from repro.obs.clock import Clock, SystemClock

__all__ = ["ExecutionRecord", "MonitorShard", "RuntimeMonitor"]


@dataclass(frozen=True)
class ExecutionRecord:
    """One region invocation."""

    region: str
    version_index: int
    threads: int
    predicted_time: float
    wall_time: float
    timestamp: float


@dataclass
class RuntimeMonitor:
    """Execution ledger plus system context.

    :param available_cores: cores the scheduler may use right now; external
        events (co-scheduled jobs) update it via :meth:`set_available_cores`,
        after which executors re-select versions.
    :param clock: time source for record timestamps (and for executors
        timing invocations); inject a FakeClock for deterministic tests.
    :param history_limit: keep only the newest N execution records (the
        aggregate totals remain exact); ``None`` keeps everything.
    """

    available_cores: int = 0
    history: list[ExecutionRecord] = field(default_factory=list)
    clock: Clock = field(default_factory=SystemClock)
    history_limit: int | None = None

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        if self.history_limit is not None:
            self.history = deque(self.history, maxlen=self.history_limit)
        self._invocations = 0
        self._cpu_seconds = 0.0
        self._version_counts: dict[tuple[str, int], int] = {}
        for record in self.history:
            self._aggregate(record.region, record.version_index,
                            record.threads, record.wall_time)

    def _aggregate(
        self, region: str, version_index: int, threads: int, wall_time: float
    ) -> None:
        self._invocations += 1
        self._cpu_seconds += wall_time * threads
        key = (region, version_index)
        self._version_counts[key] = self._version_counts.get(key, 0) + 1

    # -- system context --------------------------------------------------

    def context(self) -> dict:
        ctx: dict = {}
        if self.available_cores > 0:
            ctx["available_cores"] = self.available_cores
        return ctx

    def set_available_cores(self, cores: int) -> None:
        if cores < 1:
            raise ValueError("available cores must be positive")
        self.available_cores = cores

    # -- ingestion -------------------------------------------------------

    def record(
        self,
        region: str,
        version_index: int,
        threads: int,
        predicted_time: float,
        wall_time: float,
    ) -> None:
        """Record one invocation (one lock acquisition)."""
        with self._lock:
            self.history.append(
                ExecutionRecord(
                    region=region,
                    version_index=version_index,
                    threads=threads,
                    predicted_time=predicted_time,
                    wall_time=wall_time,
                    timestamp=self.clock.now(),
                )
            )
            self._aggregate(region, version_index, threads, wall_time)

    def observe_many(self, observations) -> int:
        """Commit a batch of ``(region, version_index, threads,
        predicted_time, wall_time)`` tuples under a single lock acquisition;
        every record in the batch shares one timestamp.  Returns the number
        of observations committed."""
        batch = list(observations)
        if not batch:
            return 0
        with self._lock:
            stamp = self.clock.now()
            for region, version_index, threads, predicted, wall in batch:
                self.history.append(
                    ExecutionRecord(
                        region=region,
                        version_index=version_index,
                        threads=threads,
                        predicted_time=predicted,
                        wall_time=wall,
                        timestamp=stamp,
                    )
                )
                self._aggregate(region, version_index, threads, wall)
        return len(batch)

    def absorb(
        self,
        region: str,
        version_index: int,
        threads: int,
        count: int,
        cpu_seconds: float,
    ) -> None:
        """Aggregate-only ingestion: fold *count* invocations of one
        version into the totals without materializing per-request history.
        The serving loop's aggregate ledger mode uses this so million-
        request replays do not allocate a record per request."""
        with self._lock:
            self._invocations += count
            self._cpu_seconds += cpu_seconds
            key = (region, version_index)
            self._version_counts[key] = self._version_counts.get(key, 0) + count

    def shard(self, capacity: int = 256) -> "MonitorShard":
        """A per-worker observation buffer flushing through
        :meth:`observe_many`."""
        return MonitorShard(self, capacity=capacity)

    # -- queries ---------------------------------------------------------

    def selections(self) -> list[int]:
        with self._lock:
            return [r.version_index for r in self.history]

    def records(self) -> list[ExecutionRecord]:
        """Consistent snapshot of the execution history."""
        with self._lock:
            return list(self.history)

    @property
    def invocations(self) -> int:
        """Exact number of recorded invocations (survives history trims)."""
        return self._invocations

    def total_cpu_seconds(self) -> float:
        return self._cpu_seconds

    def version_counts(self) -> dict[tuple[str, int], int]:
        """``(region, version index) -> exact invocation count``."""
        with self._lock:
            return dict(self._version_counts)


class MonitorShard:
    """A thread-local observation buffer for one dispatch worker.

    Observations accumulate locally (no locking); :meth:`flush` — called
    automatically when the buffer reaches *capacity* — commits them through
    the monitor's batched ``observe_many``, so N observations cost one lock
    acquisition instead of N.  Not thread-safe by design: give each worker
    its own shard.
    """

    def __init__(self, monitor: RuntimeMonitor, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("shard capacity must be positive")
        self.monitor = monitor
        self.capacity = capacity
        self._buffer: list[tuple] = []
        self.flushes = 0

    def __len__(self) -> int:
        return len(self._buffer)

    def observe(
        self,
        region: str,
        version_index: int,
        threads: int,
        predicted_time: float,
        wall_time: float,
    ) -> None:
        self._buffer.append(
            (region, version_index, threads, predicted_time, wall_time)
        )
        if len(self._buffer) >= self.capacity:
            self.flush()

    def flush(self) -> int:
        """Commit everything buffered; returns the number committed."""
        if not self._buffer:
            return 0
        committed = self.monitor.observe_many(self._buffer)
        self._buffer.clear()
        self.flushes += 1
        return committed
