"""Region execution with dynamic version selection.

The executor is the runtime-side endpoint of the paper's pipeline: region
invocations are delegated to it (label 6 in Fig. 3), it consults the
selection policy and the monitor's system context, runs the chosen version
and records the outcome.  Policies can be swapped and the context can change
between invocations — the "dynamically adjusting to changing circumstances"
of the abstract.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field

import numpy as np

from repro.runtime.monitor import RuntimeMonitor
from repro.runtime.selection import SelectionPolicy, WeightedSumPolicy
from repro.runtime.version_table import Version, VersionTable

__all__ = ["RegionExecutor"]


@dataclass
class RegionExecutor:
    """Executes a multi-versioned region under a selection policy.

    :param table: the region's version table.
    :param policy: selection policy (defaults to the paper's weighted sum
        with equal weights).
    :param monitor: shared runtime monitor; a private one is created when
        not supplied.
    """

    table: VersionTable
    policy: SelectionPolicy = field(default_factory=WeightedSumPolicy)
    monitor: RuntimeMonitor = field(default_factory=RuntimeMonitor)

    def set_policy(self, policy: SelectionPolicy) -> None:
        self.policy = policy

    def select(self) -> Version:
        """The version the current policy would pick right now."""
        return self.policy.select(self.table, self.monitor.context())

    def execute(
        self,
        arrays: dict[str, np.ndarray],
        scalars: dict[str, int],
    ) -> Version:
        """Run the selected version on the given data; returns it."""
        version = self.select()
        t0 = _time.perf_counter()
        version(arrays, scalars)
        wall = _time.perf_counter() - t0
        self.monitor.record(
            region=self.table.region_name,
            version_index=version.meta.index,
            threads=version.meta.threads,
            predicted_time=version.meta.time,
            wall_time=wall,
        )
        return version

    def recalibrate(self, min_samples: int = 3) -> int:
        """Fold observed wall times back into the version metadata.

        The static optimizer's times come from tuning-time measurement;
        production conditions drift ("dynamically adjusting to changing
        circumstances").  For every version with at least *min_samples*
        recorded executions of this region, its metadata time (and the
        derived resources/energy-proportional fields) is replaced by the
        observed median, so subsequent policy decisions reflect reality.

        :returns: the number of versions whose metadata was updated.
        """
        from dataclasses import replace as dc_replace

        from repro.runtime.version_table import VersionTable
        from repro.util.stats import median

        samples: dict[int, list[float]] = {}
        for record in self.monitor.history:
            if record.region != self.table.region_name:
                continue
            samples.setdefault(record.version_index, []).append(record.wall_time)

        updated = 0
        new_versions = []
        for version in self.table:
            obs = samples.get(version.meta.index, [])
            if len(obs) >= min_samples:
                observed = median(obs)
                scale = observed / version.meta.time if version.meta.time > 0 else 1.0
                meta = dc_replace(
                    version.meta,
                    time=observed,
                    resources=observed * version.meta.threads,
                    energy=None
                    if version.meta.energy is None
                    else version.meta.energy * scale,
                )
                new_versions.append(dc_replace(version, meta=meta))
                updated += 1
            else:
                new_versions.append(version)
        if updated:
            self.table = VersionTable(
                region_name=self.table.region_name, versions=tuple(new_versions)
            )
        return updated
