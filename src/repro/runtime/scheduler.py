"""Region execution with dynamic version selection.

The executor is the runtime-side endpoint of the paper's pipeline: region
invocations are delegated to it (label 6 in Fig. 3), it consults the
selection policy and the monitor's system context, runs the chosen version
and records the outcome.  Policies can be swapped and the context can change
between invocations — the "dynamically adjusting to changing circumstances"
of the abstract.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs import DISABLED, Observability
from repro.runtime.compiled import CompiledSelection, compile_policy
from repro.runtime.monitor import RuntimeMonitor
from repro.runtime.selection import SelectionPolicy, WeightedSumPolicy
from repro.runtime.version_table import Version, VersionTable

__all__ = ["RegionExecutor"]


@dataclass
class RegionExecutor:
    """Executes a multi-versioned region under a selection policy.

    :param table: the region's version table.
    :param policy: selection policy (defaults to the paper's weighted sum
        with equal weights).
    :param monitor: shared runtime monitor; a private one is created when
        not supplied.  Its clock also times invocations.
    :param obs: observability handle — every decision becomes a
        ``runtime.selection`` event (policy, context, chosen version,
        predicted vs. actual time).
    :param compiled: use the precompiled selection path when the policy
        supports it (deterministic policies); disable to force the scalar
        per-call oracle everywhere.

    Deterministic policies are compiled against the frozen table once and
    every subsequent decision replays the stored result; the cache is keyed
    on the identity of both the policy object and the table's versions
    tuple, so :meth:`set_policy` and :meth:`recalibrate` (which builds a new
    table) invalidate it without any explicit bookkeeping.
    """

    table: VersionTable
    policy: SelectionPolicy = field(default_factory=WeightedSumPolicy)
    monitor: RuntimeMonitor = field(default_factory=RuntimeMonitor)
    obs: Observability | None = None
    compiled: bool = True

    def __post_init__(self) -> None:
        self._compiled_policy: SelectionPolicy | None = None
        self._compiled_versions: tuple[Version, ...] | None = None
        self._compiled_selection: CompiledSelection | None = None

    def set_policy(self, policy: SelectionPolicy) -> None:
        self.policy = policy

    def compiled_selection(self) -> CompiledSelection | None:
        """The policy compiled against the current table (cached), or
        ``None`` when the policy is stateful or compilation is disabled."""
        if not self.compiled:
            return None
        if (
            self._compiled_policy is not self.policy
            or self._compiled_versions is not self.table.versions
        ):
            self._compiled_selection = compile_policy(self.policy, self.table)
            self._compiled_policy = self.policy
            self._compiled_versions = self.table.versions
        return self._compiled_selection

    def _select(self) -> Version:
        compiled = self.compiled_selection()
        if compiled is not None:
            return compiled.select(self.monitor.context())
        return self.policy.select(self.table, self.monitor.context())

    def select(self) -> Version:
        """The version the current policy would pick right now."""
        version = self._select()
        self._emit_selection(version, wall_time=None)
        return version

    def execute(
        self,
        arrays: dict[str, np.ndarray],
        scalars: dict[str, int],
    ) -> Version:
        """Run the selected version on the given data; returns it."""
        version = self._select()
        clock = self.monitor.clock
        t0 = clock.perf()
        version(arrays, scalars)
        wall = clock.perf() - t0
        self.monitor.record(
            region=self.table.region_name,
            version_index=version.meta.index,
            threads=version.meta.threads,
            predicted_time=version.meta.time,
            wall_time=wall,
        )
        self._emit_selection(version, wall_time=wall)
        return version

    def _emit_selection(self, version: Version, wall_time: float | None) -> None:
        """Publish one selection decision (actual time only when the
        version actually ran)."""
        obs = self.obs or DISABLED
        obs.tracer.event(
            "runtime.selection",
            region=self.table.region_name,
            policy=self.policy.describe(),
            context=self.monitor.context(),
            version=version.meta.index,
            threads=version.meta.threads,
            predicted_time=version.meta.time,
            actual_time=wall_time,
        )
        m = obs.metrics
        m.counter(
            "repro_runtime_selections_total", "version-selection decisions"
        ).inc()
        if wall_time is not None:
            m.counter(
                "repro_runtime_executions_total", "region invocations executed"
            ).inc()
            m.histogram(
                "repro_runtime_wall_seconds", "observed region wall time"
            ).observe(wall_time)

    def recalibrate(self, min_samples: int = 3) -> int:
        """Fold observed wall times back into the version metadata.

        The static optimizer's times come from tuning-time measurement;
        production conditions drift ("dynamically adjusting to changing
        circumstances").  For every version with at least *min_samples*
        recorded executions of this region, its metadata time (and the
        derived resources/energy-proportional fields) is replaced by the
        observed median, so subsequent policy decisions reflect reality.

        :returns: the number of versions whose metadata was updated.
        """
        from dataclasses import replace as dc_replace

        from repro.runtime.version_table import VersionTable
        from repro.util.stats import median

        samples: dict[int, list[float]] = {}
        for record in self.monitor.records():
            if record.region != self.table.region_name:
                continue
            samples.setdefault(record.version_index, []).append(record.wall_time)

        updated = 0
        new_versions = []
        for version in self.table:
            obs = samples.get(version.meta.index, [])
            if len(obs) >= min_samples:
                observed = median(obs)
                scale = observed / version.meta.time if version.meta.time > 0 else 1.0
                meta = dc_replace(
                    version.meta,
                    time=observed,
                    resources=observed * version.meta.threads,
                    energy=None
                    if version.meta.energy is None
                    else version.meta.energy * scale,
                )
                new_versions.append(dc_replace(version, meta=meta))
                updated += 1
            else:
                new_versions.append(version)
        if updated:
            self.table = VersionTable(
                region_name=self.table.region_name, versions=tuple(new_versions)
            )
        return updated
