"""The in-process version table.

Mirrors the statically generated C table (paper Fig. 6): one entry per
Pareto-optimal code version, carrying the callable (from
:mod:`repro.backend.pygen`) and the trade-off metadata the selection
policies consult.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.backend.meta import VersionMeta
from repro.optimizer.archive import ParetoArchive

__all__ = ["Version", "VersionTable"]


@dataclass(frozen=True)
class Version:
    """One executable code version with its metadata."""

    meta: VersionMeta
    fn: Callable[[dict[str, np.ndarray], dict[str, int]], None] | None = None

    def __call__(self, arrays: dict[str, np.ndarray], scalars: dict[str, int]) -> None:
        if self.fn is None:
            raise RuntimeError(
                f"version {self.meta.index} has no executable body "
                "(metadata-only table)"
            )
        self.fn(arrays, scalars)


@dataclass
class VersionTable:
    """All versions of one tuned region, ordered by index."""

    region_name: str
    versions: tuple[Version, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.versions:
            raise ValueError("a version table needs at least one version")
        indices = [v.meta.index for v in self.versions]
        if indices != sorted(set(indices)):
            raise ValueError(f"version indices must be unique and sorted: {indices}")

    def __len__(self) -> int:
        return len(self.versions)

    def __iter__(self):
        return iter(self.versions)

    def __getitem__(self, index: int) -> Version:
        for v in self.versions:
            if v.meta.index == index:
                return v
        raise IndexError(f"no version with index {index}")

    @property
    def metas(self) -> list[VersionMeta]:
        return [v.meta for v in self.versions]

    def pareto_summary(self) -> str:
        return "\n".join(v.meta.describe() for v in self.versions)

    def fastest(self) -> Version:
        return min(self.versions, key=lambda v: v.meta.time)

    def most_efficient(self) -> Version:
        return min(self.versions, key=lambda v: v.meta.resources)

    # -- front quality ---------------------------------------------------

    def objective_points(self) -> np.ndarray:
        """(time, resources) rows in version-index order."""
        return np.array(
            [(v.meta.time, v.meta.resources) for v in self.versions], dtype=float
        ).reshape(-1, 2)

    def archive(self, reference: np.ndarray | None = None) -> ParetoArchive:
        """The table's versions as a :class:`ParetoArchive`, payloads being
        the versions themselves.  The default reference is the table's own
        objective maxima × 1.1 (the optimizers' normalization rule)."""
        pts = self.objective_points()
        if reference is None:
            reference = pts.max(axis=0) * 1.1
        archive = ParetoArchive(reference)
        archive.add_many(pts, payloads=list(self.versions))
        return archive

    def hypervolume(self, reference: np.ndarray | None = None) -> float:
        """Hypervolume covered by the table's versions — a one-number
        quality indicator for a deployed multi-versioned region."""
        return self.archive(reference).hypervolume
