"""The in-process version table.

Mirrors the statically generated C table (paper Fig. 6): one entry per
Pareto-optimal code version, carrying the callable (from
:mod:`repro.backend.pygen`) and the trade-off metadata the selection
policies consult.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.backend.meta import VersionMeta
from repro.optimizer.archive import ParetoArchive

__all__ = ["Version", "VersionColumns", "VersionTable"]


@dataclass(frozen=True)
class Version:
    """One executable code version with its metadata."""

    meta: VersionMeta
    fn: Callable[[dict[str, np.ndarray], dict[str, int]], None] | None = None

    def __call__(self, arrays: dict[str, np.ndarray], scalars: dict[str, int]) -> None:
        if self.fn is None:
            raise RuntimeError(
                f"version {self.meta.index} has no executable body "
                "(metadata-only table)"
            )
        self.fn(arrays, scalars)


@dataclass(frozen=True)
class VersionColumns:
    """The table's metadata as column vectors (version-table order).

    The frozen, dictionary-free view the precompiled selection path scores
    against: one float64 vector per objective, ``np.nan`` marking versions
    without energy metadata.  Arrays are read-only — they are shared by
    every compiled policy of the owning table.
    """

    indices: np.ndarray
    times: np.ndarray
    resources: np.ndarray
    threads: np.ndarray
    energies: np.ndarray

    @classmethod
    def of(cls, versions: tuple[Version, ...]) -> "VersionColumns":
        cols = cls(
            indices=np.array([v.meta.index for v in versions], dtype=np.int64),
            times=np.array([v.meta.time for v in versions], dtype=float),
            resources=np.array([v.meta.resources for v in versions], dtype=float),
            threads=np.array([v.meta.threads for v in versions], dtype=np.int64),
            energies=np.array(
                [
                    np.nan if v.meta.energy is None else v.meta.energy
                    for v in versions
                ],
                dtype=float,
            ),
        )
        for arr in (cols.indices, cols.times, cols.resources, cols.threads,
                    cols.energies):
            arr.setflags(write=False)
        return cols

    @property
    def has_energy(self) -> np.ndarray:
        return ~np.isnan(self.energies)


@dataclass
class VersionTable:
    """All versions of one tuned region, ordered by index.

    The ``versions`` tuple is treated as frozen: derived artifacts
    (:meth:`columns`, :meth:`objective_points`, :meth:`archive`) are
    computed once and cached against the tuple's identity, so per-call
    consumers (the precompiled selection path scores every policy against
    :meth:`columns`) never rebuild arrays.  Replacing ``versions`` — the
    executor's ``recalibrate`` builds a whole new table — invalidates every
    cache automatically.
    """

    region_name: str
    versions: tuple[Version, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.versions:
            raise ValueError("a version table needs at least one version")
        indices = [v.meta.index for v in self.versions]
        if indices != sorted(set(indices)):
            raise ValueError(f"version indices must be unique and sorted: {indices}")
        self._invalidate()

    def _invalidate(self) -> None:
        self._cached_for: tuple[Version, ...] | None = None
        self._columns: VersionColumns | None = None
        self._points: np.ndarray | None = None
        self._archives: dict[tuple, ParetoArchive] = {}

    def _fresh(self) -> None:
        """Drop derived caches when the versions tuple was swapped."""
        if self._cached_for is not self.versions:
            self._invalidate()
            self._cached_for = self.versions

    def __len__(self) -> int:
        return len(self.versions)

    def __iter__(self):
        return iter(self.versions)

    def __getitem__(self, index: int) -> Version:
        for v in self.versions:
            if v.meta.index == index:
                return v
        raise IndexError(f"no version with index {index}")

    @property
    def metas(self) -> list[VersionMeta]:
        return [v.meta for v in self.versions]

    def pareto_summary(self) -> str:
        return "\n".join(v.meta.describe() for v in self.versions)

    def fastest(self) -> Version:
        return min(self.versions, key=lambda v: v.meta.time)

    def most_efficient(self) -> Version:
        return min(self.versions, key=lambda v: v.meta.resources)

    # -- frozen column cache ---------------------------------------------

    def columns(self) -> VersionColumns:
        """Cached read-only metadata vectors (see :class:`VersionColumns`)."""
        self._fresh()
        if self._columns is None:
            self._columns = VersionColumns.of(self.versions)
        return self._columns

    # -- front quality ---------------------------------------------------

    def objective_points(self) -> np.ndarray:
        """(time, resources) rows in version-index order.

        Cached on the frozen table (read-only array); rebuilt only when the
        ``versions`` tuple itself is replaced.
        """
        self._fresh()
        if self._points is None:
            points = np.array(
                [(v.meta.time, v.meta.resources) for v in self.versions],
                dtype=float,
            ).reshape(-1, 2)
            points.setflags(write=False)
            self._points = points
        return self._points

    def archive(self, reference: np.ndarray | None = None) -> ParetoArchive:
        """The table's versions as a :class:`ParetoArchive`, payloads being
        the versions themselves.  The default reference is the table's own
        objective maxima × 1.1 (the optimizers' normalization rule).

        Archives are cached per reference point and shared — treat the
        result as read-only (copy it before adding points)."""
        self._fresh()
        pts = self.objective_points()
        if reference is None:
            reference = pts.max(axis=0) * 1.1
        cache_key = tuple(float(r) for r in np.asarray(reference).ravel())
        archive = self._archives.get(cache_key)
        if archive is None:
            archive = ParetoArchive(np.asarray(reference, dtype=float))
            archive.add_many(pts, payloads=list(self.versions))
            self._archives[cache_key] = archive
        return archive

    def hypervolume(self, reference: np.ndarray | None = None) -> float:
        """Hypervolume covered by the table's versions — a one-number
        quality indicator for a deployed multi-versioned region."""
        return self.archive(reference).hypervolume
