"""Runtime system: dynamic selection among generated code versions.

The paper's runtime (Fig. 3, label 6) receives multi-versioned regions and
"dynamically selects among the available code versions" using configurable,
application-specific policies — the default being the weighted-sum rule of
§IV (select the version minimizing ``Σ_c w_c f_c(v)``).

* :mod:`repro.runtime.version_table` — the in-process version table,
* :mod:`repro.runtime.selection` — selection policies,
* :mod:`repro.runtime.scheduler` — region executor with dynamic
  re-selection on context changes (available cores, energy budgets),
* :mod:`repro.runtime.monitor` — execution history and system state,
* :mod:`repro.runtime.compiled` — deterministic policies folded into
  constant-time precompiled selections,
* :mod:`repro.runtime.serving` — high-throughput dispatch of a request
  stream across worker threads.
"""

from repro.runtime.version_table import Version, VersionColumns, VersionTable
from repro.runtime.selection import (
    EfficiencyFloorPolicy,
    EnergyCapPolicy,
    FastestPolicy,
    GreenestPolicy,
    MostEfficientPolicy,
    SelectionPolicy,
    ThreadCapPolicy,
    TimeCapPolicy,
    WeightedSumPolicy,
    policy_by_name,
)
from repro.runtime.compiled import (
    CompiledSelection,
    FixedSelection,
    ThreadCapSelection,
    compile_policy,
)
from repro.runtime.scheduler import RegionExecutor
from repro.runtime.tasks import Task, WorkStealingPool
from repro.runtime.online import BanditSelector
from repro.runtime.monitor import ExecutionRecord, MonitorShard, RuntimeMonitor
from repro.runtime.serving import (
    DispatchEngine,
    DispatchRequest,
    DispatchResult,
    Workload,
    generate_workload,
)

__all__ = [
    "Version",
    "VersionColumns",
    "VersionTable",
    "SelectionPolicy",
    "WeightedSumPolicy",
    "FastestPolicy",
    "MostEfficientPolicy",
    "TimeCapPolicy",
    "ThreadCapPolicy",
    "EfficiencyFloorPolicy",
    "GreenestPolicy",
    "EnergyCapPolicy",
    "policy_by_name",
    "CompiledSelection",
    "FixedSelection",
    "ThreadCapSelection",
    "compile_policy",
    "RegionExecutor",
    "Task",
    "WorkStealingPool",
    "BanditSelector",
    "RuntimeMonitor",
    "MonitorShard",
    "ExecutionRecord",
    "DispatchEngine",
    "DispatchRequest",
    "DispatchResult",
    "Workload",
    "generate_workload",
]
