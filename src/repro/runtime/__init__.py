"""Runtime system: dynamic selection among generated code versions.

The paper's runtime (Fig. 3, label 6) receives multi-versioned regions and
"dynamically selects among the available code versions" using configurable,
application-specific policies — the default being the weighted-sum rule of
§IV (select the version minimizing ``Σ_c w_c f_c(v)``).

* :mod:`repro.runtime.version_table` — the in-process version table,
* :mod:`repro.runtime.selection` — selection policies,
* :mod:`repro.runtime.scheduler` — region executor with dynamic
  re-selection on context changes (available cores, energy budgets),
* :mod:`repro.runtime.monitor` — execution history and system state.
"""

from repro.runtime.version_table import Version, VersionTable
from repro.runtime.selection import (
    EfficiencyFloorPolicy,
    EnergyCapPolicy,
    FastestPolicy,
    GreenestPolicy,
    MostEfficientPolicy,
    SelectionPolicy,
    ThreadCapPolicy,
    TimeCapPolicy,
    WeightedSumPolicy,
    policy_by_name,
)
from repro.runtime.scheduler import RegionExecutor
from repro.runtime.tasks import Task, WorkStealingPool
from repro.runtime.online import BanditSelector
from repro.runtime.monitor import ExecutionRecord, RuntimeMonitor

__all__ = [
    "Version",
    "VersionTable",
    "SelectionPolicy",
    "WeightedSumPolicy",
    "FastestPolicy",
    "MostEfficientPolicy",
    "TimeCapPolicy",
    "ThreadCapPolicy",
    "EfficiencyFloorPolicy",
    "GreenestPolicy",
    "EnergyCapPolicy",
    "policy_by_name",
    "RegionExecutor",
    "Task",
    "WorkStealingPool",
    "BanditSelector",
    "RuntimeMonitor",
    "ExecutionRecord",
]
