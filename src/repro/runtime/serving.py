"""High-throughput serving loop: dispatching a request stream.

The paper's runtime sits inside one process and answers "which version do I
run *now*?" per region invocation.  This module scales that decision to
serving-style traffic: a stream of ``(region, context)`` requests is
dispatched across worker threads through the **precompiled** selection path
(:mod:`repro.runtime.compiled`), observations are aggregated through the
monitor's sharded ingestion (:class:`~repro.runtime.monitor.MonitorShard`),
and the whole loop is observable (``dispatch.batch`` trace spans,
``repro_dispatch_*`` metrics).

The key throughput lever: a deterministic policy's decision is a pure
function of ``(region, context)``, so a compiled replay never decides per
request — each worker groups its chunk by distinct ``(region,
available_cores)`` pair, takes **one** compiled selection per group, and
fills the result array with a vectorized mask assignment.  Stateful
policies (the bandit) and per-request history recording fall back to the
per-request loop.

Replays are deterministic: the workload generator draws from a seeded RNG
stream, deterministic decisions depend only on each request's own (region,
context) so the per-request selection sequence is bit-identical for any
worker count and for grouped vs per-request dispatch, and "wall times" fed
back to the monitor are the versions' metadata times.  The engine therefore
doubles as its own differential harness — running the same workload with
``compiled=False`` must yield the identical selection sequence, which
``tests/test_serving.py`` and the throughput benchmark assert for every
registered policy.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.obs import DISABLED, Observability
from repro.runtime.compiled import CompiledSelection, compile_policy
from repro.runtime.monitor import RuntimeMonitor
from repro.runtime.selection import SelectionPolicy, WeightedSumPolicy
from repro.runtime.version_table import Version, VersionTable
from repro.util.rng import derive_rng

__all__ = [
    "DispatchEngine",
    "DispatchRequest",
    "DispatchResult",
    "Workload",
    "generate_workload",
]


@dataclass(frozen=True)
class DispatchRequest:
    """One region invocation to dispatch.

    ``available_cores`` is the runtime context accompanying the request
    (``None`` = no context, the policy sees an empty dict) — the
    context-sensitive policies (``thread_cap``) read it.
    """

    region: str
    available_cores: int | None = None

    def context(self) -> dict:
        if self.available_cores is None:
            return {}
        return {"available_cores": self.available_cores}


@dataclass(frozen=True)
class Workload:
    """A request stream in column form.

    ``region_ids[i]`` indexes ``regions``; ``cores`` is the per-request
    ``available_cores`` context (``None`` = the whole stream carries no
    context).  The array representation is what lets the dispatch engine
    group a chunk by distinct (region, cores) pair instead of deciding per
    request.
    """

    regions: tuple[str, ...]
    region_ids: np.ndarray
    cores: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.cores is not None and len(self.cores) != len(self.region_ids):
            raise ValueError("cores must align with region_ids")

    def __len__(self) -> int:
        return len(self.region_ids)

    def __getitem__(self, item):
        if isinstance(item, slice):
            return Workload(
                regions=self.regions,
                region_ids=self.region_ids[item],
                cores=None if self.cores is None else self.cores[item],
            )
        i = int(item)
        return DispatchRequest(
            region=self.regions[int(self.region_ids[i])],
            available_cores=None if self.cores is None else int(self.cores[i]),
        )

    def __iter__(self):
        for i in range(len(self)):
            yield self[i]

    @classmethod
    def of(cls, requests) -> "Workload":
        """Column form of an explicit request sequence.  The stream must be
        uniform: either every request carries an ``available_cores`` context
        or none does."""
        if isinstance(requests, Workload):
            return requests
        reqs = list(requests)
        names: list[str] = []
        index: dict[str, int] = {}
        ids = np.empty(len(reqs), dtype=np.int64)
        with_cores = sum(r.available_cores is not None for r in reqs)
        if with_cores not in (0, len(reqs)):
            raise ValueError(
                "mixed context streams are not supported: either every "
                "request carries available_cores or none does"
            )
        cores = np.empty(len(reqs), dtype=np.int64) if with_cores else None
        for i, r in enumerate(reqs):
            rid = index.get(r.region)
            if rid is None:
                rid = index[r.region] = len(names)
                names.append(r.region)
            ids[i] = rid
            if cores is not None:
                cores[i] = r.available_cores
        return cls(regions=tuple(names), region_ids=ids, cores=cores)


def generate_workload(
    regions,
    n_requests: int,
    seed: int = 0,
    core_choices=None,
) -> Workload:
    """A deterministic request stream.

    Regions are drawn uniformly from *regions*; when *core_choices* is
    given, each request also carries an ``available_cores`` context drawn
    uniformly from it.  Same arguments → same stream, independent of
    NumPy's global RNG state.
    """
    regions = list(regions)
    if not regions:
        raise ValueError("workload needs at least one region")
    if n_requests < 0:
        raise ValueError("n_requests must be non-negative")
    rng = derive_rng(seed, "serving", "workload")
    region_ids = rng.integers(len(regions), size=n_requests)
    cores = None
    if core_choices:
        choices = np.asarray(list(core_choices), dtype=np.int64)
        cores = choices[rng.integers(len(choices), size=n_requests)]
    return Workload(
        regions=tuple(regions), region_ids=region_ids.astype(np.int64), cores=cores
    )


@dataclass
class DispatchResult:
    """Outcome of one replay."""

    #: chosen version index per request, in request order
    selections: np.ndarray
    #: number of requests dispatched
    requests: int
    #: worker threads used
    workers: int
    #: wall-clock seconds for the replay (monitor clock)
    elapsed: float
    #: ``(region, version index) -> count`` over the replay
    version_counts: dict[tuple[str, int], int] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Selections per second (``inf`` for a zero-length replay timed
        at clock resolution)."""
        if self.elapsed <= 0.0:
            return float("inf")
        return self.requests / self.elapsed


class DispatchEngine:
    """Dispatches a request stream over multi-versioned regions.

    :param tables: ``region name -> VersionTable`` for every region the
        workload may name.
    :param policy: the selection policy (shared across regions, as the
        paper's "dynamically configurable" runtime policy is).
    :param monitor: shared runtime monitor; observations flow through
        per-worker shards or the aggregate ledger.
    :param obs: observability handle — each worker batch becomes a
        ``dispatch.batch`` span, totals surface as ``repro_dispatch_*``
        metrics.
    :param workers: dispatch threads (the request array is split into
        disjoint contiguous chunks, so results are position-stable).
    :param compiled: use the precompiled grouped path for deterministic
        policies; ``False`` forces the scalar per-call oracle (the
        differential baseline).
    :param aggregate_ledger: fold observations into the monitor's exact
        aggregate totals without materializing per-request history records
        (the default for million-request replays); ``False`` routes every
        observation through a history-recording :class:`MonitorShard`
        instead (which also disables the grouped fill — history needs the
        per-request order).
    """

    def __init__(
        self,
        tables: dict[str, VersionTable],
        policy: SelectionPolicy | None = None,
        *,
        monitor: RuntimeMonitor | None = None,
        obs: Observability | None = None,
        workers: int = 1,
        compiled: bool = True,
        aggregate_ledger: bool = True,
        shard_capacity: int = 1024,
    ) -> None:
        if not tables:
            raise ValueError("dispatch engine needs at least one region table")
        if workers < 1:
            raise ValueError("workers must be positive")
        self.tables = dict(tables)
        self.policy = policy if policy is not None else WeightedSumPolicy()
        self.monitor = monitor if monitor is not None else RuntimeMonitor()
        self.obs = obs
        self.workers = workers
        self.compiled = compiled
        self.aggregate_ledger = aggregate_ledger
        self.shard_capacity = shard_capacity
        self._compiled: dict[str, CompiledSelection | None] = {}
        self._compiled_policy: SelectionPolicy | None = None

    # ------------------------------------------------------------------

    def _compiled_for(self, region: str) -> CompiledSelection | None:
        """Region's compiled selection, rebuilt when the policy changed."""
        if self._compiled_policy is not self.policy:
            self._compiled = {}
            self._compiled_policy = self.policy
        if region not in self._compiled:
            self._compiled[region] = (
                compile_policy(self.policy, self.tables[region])
                if self.compiled
                else None
            )
        return self._compiled[region]

    def _select(self, region: str, context: dict) -> Version:
        compiled = self._compiled_for(region)
        if compiled is not None:
            return compiled.select(context)
        return self.policy.select(self.tables[region], context)

    # ------------------------------------------------------------------

    def _dispatch_grouped(
        self, wl: Workload, lo: int, hi: int, out: np.ndarray
    ) -> None:
        """Fill ``out[lo:hi]`` by (region, cores) group: one compiled
        decision per distinct pair, one vectorized mask assignment per
        group.  Bit-identical to the per-request loop because deterministic
        decisions depend only on each request's own (region, context)."""
        ids = wl.region_ids[lo:hi]
        cores = None if wl.cores is None else wl.cores[lo:hi]
        view = out[lo:hi]
        for rid, region in enumerate(wl.regions):
            mask = ids == rid
            n = int(mask.sum())
            if n == 0:
                continue
            comp = self._compiled_for(region)
            if comp.context_free or cores is None:
                version = comp.select({})
                meta = version.meta
                view[mask] = meta.index
                self.monitor.absorb(
                    region, meta.index, meta.threads, n,
                    meta.time * meta.threads * n,
                )
            else:
                group_cores = cores[mask]
                for c in np.unique(group_cores):
                    sub = mask & (cores == c)
                    version = comp.select({"available_cores": int(c)})
                    meta = version.meta
                    view[sub] = meta.index
                    k = int(sub.sum())
                    self.monitor.absorb(
                        region, meta.index, meta.threads, k,
                        meta.time * meta.threads * k,
                    )

    def _dispatch_loop(
        self, wl: Workload, lo: int, hi: int, out: np.ndarray
    ) -> None:
        """Per-request dispatch: the scalar oracle baseline, and the path
        for stateful policies and history-recording replays."""
        shard = None if self.aggregate_ledger else self.monitor.shard(
            self.shard_capacity
        )
        # learning policies (the bandit) consume the observed walls too
        learn = getattr(self.policy, "observe", None)
        # aggregate mode: (region, version index) -> [count, cpu seconds,
        # threads], folded into the monitor once at the end of the chunk
        totals: dict[tuple[str, int], list] = {}
        regions, ids, cores = wl.regions, wl.region_ids, wl.cores
        for pos in range(lo, hi):
            region = regions[int(ids[pos])]
            ctx = {} if cores is None else {"available_cores": int(cores[pos])}
            version = self._select(region, ctx)
            meta = version.meta
            out[pos] = meta.index
            wall = meta.time
            if learn is not None:
                learn(meta.index, wall)
            if shard is not None:
                shard.observe(region, meta.index, meta.threads, meta.time, wall)
            else:
                key = (region, meta.index)
                entry = totals.get(key)
                if entry is None:
                    totals[key] = [1, wall * meta.threads, meta.threads]
                else:
                    entry[0] += 1
                    entry[1] += wall * meta.threads
        if shard is not None:
            shard.flush()
        for (region, index), (count, cpu, threads) in totals.items():
            self.monitor.absorb(region, index, threads, count, cpu)

    def _dispatch_range(
        self, wl: Workload, lo: int, hi: int, out: np.ndarray, worker: int
    ) -> None:
        """Dispatch one worker's contiguous chunk ``[lo, hi)``."""
        obs = self.obs or DISABLED
        grouped = (
            self.aggregate_ledger
            and getattr(self.policy, "observe", None) is None
            and self.compiled
            and all(self._compiled_for(r) is not None for r in wl.regions)
        )
        with obs.tracer.span(
            "dispatch.batch",
            worker=worker,
            offset=lo,
            size=hi - lo,
            grouped=grouped,
        ):
            if grouped:
                self._dispatch_grouped(wl, lo, hi, out)
            else:
                self._dispatch_loop(wl, lo, hi, out)

    # ------------------------------------------------------------------

    def replay(self, requests) -> DispatchResult:
        """Dispatch every request; returns the per-request selections.

        Accepts a :class:`Workload` (preferred) or any iterable of
        :class:`DispatchRequest`.  Deterministic policies yield a selection
        sequence independent of the worker count (each request's decision
        depends only on its own region and context); stateful policies (the
        bandit) interleave observations and should be replayed with
        ``workers=1`` when a reproducible sequence matters.
        """
        wl = Workload.of(requests)
        obs = self.obs or DISABLED
        n = len(wl)
        out = np.zeros(n, dtype=np.int64)
        clock = self.monitor.clock
        before = self.monitor.version_counts()
        t0 = clock.perf()
        workers = min(self.workers, n) or 1
        if workers == 1:
            self._dispatch_range(wl, 0, n, out, worker=0)
        else:
            bounds = np.linspace(0, n, workers + 1).astype(int)
            threads = [
                threading.Thread(
                    target=self._dispatch_range,
                    args=(wl, int(bounds[w]), int(bounds[w + 1]), out, w),
                    name=f"dispatch-{w}",
                )
                for w in range(workers)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        elapsed = clock.perf() - t0

        after = self.monitor.version_counts()
        counts = {
            key: after[key] - before.get(key, 0)
            for key in after
            if after[key] != before.get(key, 0)
        }
        m = obs.metrics
        m.counter(
            "repro_dispatch_requests_total", "requests dispatched"
        ).inc(n)
        m.counter("repro_dispatch_replays_total", "replay batches run").inc()
        m.gauge("repro_dispatch_workers", "dispatch worker threads").set(workers)
        m.histogram(
            "repro_dispatch_replay_seconds", "wall time per replay batch"
        ).observe(elapsed)
        obs.tracer.event(
            "dispatch.replay",
            requests=n,
            workers=workers,
            policy=self.policy.describe(),
            compiled=self.compiled,
            elapsed=elapsed,
        )
        return DispatchResult(
            selections=out,
            requests=n,
            workers=workers,
            elapsed=elapsed,
            version_counts=counts,
        )
