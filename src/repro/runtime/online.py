"""Online version selection: learning from production measurements.

The paper's related work distinguishes offline searching (its own
approach) from "(2) online tuning of program parameters".  Multi-versioning
makes a hybrid natural: the static optimizer ships the Pareto set, and the
runtime *learns which version is actually fastest in production* — the
tuning-time measurements may be stale (different co-runners, input shapes,
frequencies).

:class:`BanditSelector` treats the versions as arms of a stochastic bandit
and minimizes observed time with UCB1 (or ε-greedy) on top of the metadata
prior.  It composes with :class:`~repro.runtime.scheduler.RegionExecutor`
as a policy: exploration happens on real invocations, and the observed
medians can be folded back via ``executor.recalibrate()``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.runtime.selection import SelectionPolicy
from repro.runtime.version_table import Version, VersionTable
from repro.util.rng import derive_rng

__all__ = ["BanditSelector"]


@dataclass
class BanditSelector(SelectionPolicy):
    """A learning selection policy minimizing observed wall time.

    :param strategy: ``"ucb1"`` (default) or ``"epsilon"`` (ε-greedy).
    :param epsilon: exploration rate for the ε-greedy strategy.
    :param exploration: UCB exploration weight (in units of the observed
        time scale).
    :param prior_weight: how many pseudo-observations the metadata time
        contributes per version (0 ignores the static prediction).
    :param seed: randomness for ε-greedy exploration.

    Feed observations with :meth:`observe` (the executor's recorded wall
    time); :meth:`select` then balances exploitation and exploration.
    """

    strategy: str = "ucb1"
    epsilon: float = 0.1
    exploration: float = 0.5
    prior_weight: float = 1.0
    seed: int = 0
    _counts: dict[int, int] = field(default_factory=dict)
    _sums: dict[int, float] = field(default_factory=dict)
    _total: int = 0

    def __post_init__(self) -> None:
        if self.strategy not in ("ucb1", "epsilon"):
            raise ValueError(f"unknown strategy {self.strategy!r}")
        self._rng = derive_rng(self.seed, "bandit")

    # ------------------------------------------------------------------

    def observe(self, version_index: int, wall_time: float) -> None:
        """Record one production measurement of a version."""
        if wall_time <= 0:
            raise ValueError("wall time must be positive")
        self._counts[version_index] = self._counts.get(version_index, 0) + 1
        self._sums[version_index] = self._sums.get(version_index, 0.0) + wall_time
        self._total += 1

    def mean_time(self, version: Version) -> float:
        """Posterior-mean time: metadata prior blended with observations."""
        idx = version.meta.index
        n = self._counts.get(idx, 0)
        s = self._sums.get(idx, 0.0)
        w = self.prior_weight
        denom = n + w
        if denom <= 0:
            return version.meta.time
        return (s + w * version.meta.time) / denom

    def observations(self, version_index: int) -> int:
        return self._counts.get(version_index, 0)

    # ------------------------------------------------------------------

    def select(self, table: VersionTable, context: dict | None = None) -> Version:
        if self.strategy == "epsilon":
            if self._rng.random() < self.epsilon:
                versions = list(table)
                return versions[int(self._rng.integers(len(versions)))]
            return min(table, key=self.mean_time)

        # UCB1 on negated time, scaled by the table's time spread
        scale = max(v.meta.time for v in table) - min(v.meta.time for v in table)
        scale = scale or max(v.meta.time for v in table) or 1.0
        total = max(1, self._total)

        def score(v: Version) -> float:
            n = self._counts.get(v.meta.index, 0) + self.prior_weight
            bonus = self.exploration * scale * math.sqrt(2 * math.log(total + 1) / n)
            return self.mean_time(v) - bonus

        return min(table, key=score)

    def describe(self) -> str:
        return f"bandit({self.strategy}, n={self._total})"
