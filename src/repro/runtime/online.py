"""Online version selection: learning from production measurements.

The paper's related work distinguishes offline searching (its own
approach) from "(2) online tuning of program parameters".  Multi-versioning
makes a hybrid natural: the static optimizer ships the Pareto set, and the
runtime *learns which version is actually fastest in production* — the
tuning-time measurements may be stale (different co-runners, input shapes,
frequencies).

:class:`BanditSelector` treats the versions as arms of a stochastic bandit
and minimizes observed time with UCB1 (or ε-greedy) on top of the metadata
prior.  It composes with :class:`~repro.runtime.scheduler.RegionExecutor`
as a policy: exploration happens on real invocations, and the observed
medians can be folded back via ``executor.recalibrate()``.

Statistics live in NumPy arrays (counts / running means / Welford M2 per
arm) guarded by one lock, so the serving loop can feed observations from
many worker threads without losing a single count, and :meth:`select`
computes every arm's UCB score in **one** vectorized expression instead of
a per-arm Python loop.  :meth:`select_scalar` keeps the per-arm loop
in-tree as the differential oracle — both paths read the same statistics
through the same floating-point operations, so their selection sequences
are identical.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.runtime.selection import SelectionPolicy
from repro.runtime.version_table import Version, VersionTable
from repro.util.rng import derive_rng

__all__ = ["BanditSelector"]


@dataclass
class BanditSelector(SelectionPolicy):
    """A learning selection policy minimizing observed wall time.

    :param strategy: ``"ucb1"`` (default) or ``"epsilon"`` (ε-greedy).
    :param epsilon: exploration rate for the ε-greedy strategy.
    :param exploration: UCB exploration weight (in units of the observed
        time scale).
    :param prior_weight: how many pseudo-observations the metadata time
        contributes per version (0 ignores the static prediction).
    :param seed: randomness for ε-greedy exploration.

    Feed observations with :meth:`observe` (the executor's recorded wall
    time) or in bulk with :meth:`observe_many`; :meth:`select` then
    balances exploitation and exploration.  Thread-safe: concurrent
    ``observe``/``select`` calls never lose an observation and never raise.
    """

    strategy: str = "ucb1"
    epsilon: float = 0.1
    exploration: float = 0.5
    prior_weight: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.strategy not in ("ucb1", "epsilon"):
            raise ValueError(f"unknown strategy {self.strategy!r}")
        self._rng = derive_rng(self.seed, "bandit")
        self._lock = threading.Lock()
        # per-arm statistics, slot-indexed; _slots maps version index -> slot
        self._slots: dict[int, int] = {}
        self._counts = np.zeros(0, dtype=np.int64)
        self._means = np.zeros(0, dtype=float)
        self._m2 = np.zeros(0, dtype=float)
        self._total = 0
        # cached alignment of a table's version order onto slots; the
        # epoch bumps whenever a new arm appears
        self._epoch = 0
        self._aligned: tuple[tuple[Version, ...], int, np.ndarray] | None = None

    # ------------------------------------------------------------------

    def _slot_locked(self, version_index: int) -> int:
        slot = self._slots.get(version_index)
        if slot is None:
            slot = len(self._slots)
            self._slots[version_index] = slot
            grown = slot + 1
            for name in ("_counts", "_means", "_m2"):
                old = getattr(self, name)
                new = np.zeros(grown, dtype=old.dtype)
                new[: len(old)] = old
                setattr(self, name, new)
            self._epoch += 1
        return slot

    def _observe_locked(self, version_index: int, wall_time: float) -> None:
        slot = self._slot_locked(version_index)
        self._counts[slot] += 1
        delta = wall_time - self._means[slot]
        self._means[slot] += delta / self._counts[slot]
        self._m2[slot] += delta * (wall_time - self._means[slot])
        self._total += 1

    def observe(self, version_index: int, wall_time: float) -> None:
        """Record one production measurement of a version."""
        if wall_time <= 0:
            raise ValueError("wall time must be positive")
        with self._lock:
            self._observe_locked(version_index, wall_time)

    def observe_many(self, version_indices, wall_times) -> None:
        """Record a batch of measurements under a single lock acquisition."""
        pairs = list(zip(version_indices, wall_times))
        if any(wall <= 0 for _, wall in pairs):
            raise ValueError("wall time must be positive")
        with self._lock:
            for idx, wall in pairs:
                self._observe_locked(int(idx), float(wall))

    # -- statistics ------------------------------------------------------

    def mean_time(self, version: Version) -> float:
        """Posterior-mean time: metadata prior blended with observations."""
        with self._lock:
            slot = self._slots.get(version.meta.index)
            n = int(self._counts[slot]) if slot is not None else 0
            s = n * self._means[slot] if slot is not None else 0.0
        w = self.prior_weight
        denom = n + w
        if denom <= 0:
            return version.meta.time
        return (s + w * version.meta.time) / denom

    def observations(self, version_index: int) -> int:
        with self._lock:
            slot = self._slots.get(version_index)
            return int(self._counts[slot]) if slot is not None else 0

    def statistics(self) -> dict[int, tuple[int, float, float]]:
        """``version index -> (count, mean, M2)`` snapshot."""
        with self._lock:
            return {
                idx: (
                    int(self._counts[slot]),
                    float(self._means[slot]),
                    float(self._m2[slot]),
                )
                for idx, slot in self._slots.items()
            }

    # ------------------------------------------------------------------

    def _alignment(self, table: VersionTable) -> np.ndarray:
        """Slot of each table position (-1 = never observed), cached per
        (versions tuple, arm epoch)."""
        cached = self._aligned
        if (
            cached is not None
            and cached[0] is table.versions
            and cached[1] == self._epoch
        ):
            return cached[2]
        slots = np.array(
            [self._slots.get(v.meta.index, -1) for v in table.versions],
            dtype=np.int64,
        )
        self._aligned = (table.versions, self._epoch, slots)
        return slots

    def _snapshot(self, table: VersionTable) -> tuple[np.ndarray, np.ndarray, int]:
        """(counts, sums) aligned to table order plus the grand total,
        captured atomically."""
        with self._lock:
            slots = self._alignment(table)
            if self._counts.size == 0:
                zeros = np.zeros(len(slots), dtype=np.int64)
                return zeros, np.zeros(len(slots)), self._total
            observed = slots >= 0
            safe = np.where(observed, slots, 0)
            counts = np.where(observed, self._counts[safe], 0)
            sums = np.where(observed, counts * self._means[safe], 0.0)
            return counts, sums, self._total

    def _scores(self, table: VersionTable) -> np.ndarray:
        """Every arm's UCB score in one vectorized expression."""
        cols = table.columns()
        prior = cols.times
        scale = prior.max() - prior.min()
        scale = scale or prior.max() or 1.0
        counts, sums, total = self._snapshot(table)
        w = self.prior_weight
        n = counts + w
        means = (sums + w * prior) / n
        bonus = self.exploration * scale * np.sqrt(
            2 * np.log(max(1, total) + 1) / n
        )
        return means - bonus

    def select(self, table: VersionTable, context: dict | None = None) -> Version:
        if self.strategy == "epsilon":
            if self._rng.random() < self.epsilon:
                versions = list(table)
                return versions[int(self._rng.integers(len(versions)))]
            counts, sums, _ = self._snapshot(table)
            w = self.prior_weight
            means = (sums + w * table.columns().times) / (counts + w)
            return table.versions[int(np.argmin(means))]
        return table.versions[int(np.argmin(self._scores(table)))]

    def select_scalar(self, table: VersionTable, context: dict | None = None) -> Version:
        """Per-arm scoring loop — the differential oracle for
        :meth:`select`.  Reads the same statistics through the same
        floating-point operations, one arm at a time; the chosen version is
        always identical to the vectorized path."""
        if self.strategy == "epsilon":
            return self.select(table, context)
        cols = table.columns()
        prior = cols.times
        scale = prior.max() - prior.min()
        scale = scale or prior.max() or 1.0
        counts, sums, total = self._snapshot(table)
        w = self.prior_weight
        best, best_pos = None, 0
        for pos in range(len(table.versions)):
            n = counts[pos] + w
            mean = (sums[pos] + w * prior[pos]) / n
            bonus = self.exploration * scale * np.sqrt(
                2 * np.log(max(1, total) + 1) / n
            )
            score = mean - bonus
            if best is None or score < best:
                best, best_pos = score, pos
        return table.versions[best_pos]

    def describe(self) -> str:
        return f"bandit({self.strategy}, n={self._total})"
