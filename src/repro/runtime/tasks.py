"""A work-stealing task pool.

The Insieme Runtime System's "fundamental application model enables
low-overhead generic task processing" — worksharing loops are decomposed
into tasks that idle workers steal from busy ones.  This module implements
that substrate: per-worker double-ended queues (owner pops from the bottom,
thieves steal from the top), randomized victim selection, and a termination
protocol based on a shared outstanding-task counter.

Python's GIL means no parallel speedup for CPU-bound tasks; the scheduler's
*behaviour* (distribution, stealing under imbalance, completion semantics)
is real and tested, and the executor plugs into
:class:`repro.evaluation.native.NativeExecutor` as the dynamic-scheduling
alternative to static chunking.
"""

from __future__ import annotations

import threading
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.util.rng import derive_rng

__all__ = ["Task", "WorkStealingPool"]


@dataclass
class Task:
    """A unit of work: a callable plus bookkeeping."""

    fn: Callable[[], object]
    name: str = ""
    result: object = None
    error: BaseException | None = None
    done: bool = False


class WorkStealingPool:
    """Execute a batch of tasks on *workers* threads with work stealing.

    Usage::

        pool = WorkStealingPool(workers=4, seed=0)
        results = pool.run([Task(fn=lambda: ...), ...])

    Tasks are distributed round-robin onto per-worker deques; each worker
    pops locally (LIFO, cache-friendly) and steals (FIFO, oldest first)
    from a random victim when its own deque runs dry.  ``run`` returns when
    every task has executed; the first task error is re-raised.

    :param workers: number of worker threads.
    :param seed: seed of the victim-selection randomness (deterministic
        stealing *attempts*; actual steal counts depend on timing).
    """

    def __init__(self, workers: int, seed: int = 0) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.seed = seed
        self.steals = 0
        self.executed_by: list[int] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------

    def run(self, tasks: list[Task]) -> list[object]:
        """Execute all tasks; returns their results in input order."""
        if not tasks:
            return []
        deques: list[deque[Task]] = [deque() for _ in range(self.workers)]
        for idx, task in enumerate(tasks):
            deques[idx % self.workers].append(task)

        outstanding = threading.Semaphore(0)
        remaining = len(tasks)
        state_lock = threading.Lock()
        self.steals = 0
        self.executed_by = [0] * self.workers
        first_error: list[BaseException | None] = [None]
        done_flag = threading.Event()

        def execute(task: Task, worker: int) -> None:
            try:
                task.result = task.fn()
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                task.error = exc
                with state_lock:
                    if first_error[0] is None:
                        first_error[0] = exc
            finally:
                task.done = True
                with state_lock:
                    self.executed_by[worker] += 1
                nonlocal_remaining_dec()

        def nonlocal_remaining_dec() -> None:
            nonlocal remaining
            with state_lock:
                remaining -= 1
                if remaining == 0:
                    done_flag.set()

        def worker_loop(worker: int) -> None:
            rng = derive_rng(self.seed, "worker", worker)
            own = deques[worker]
            while not done_flag.is_set():
                task: Task | None = None
                with state_lock:
                    if own:
                        task = own.pop()  # LIFO from own bottom
                if task is None:
                    # steal: oldest task from a random victim
                    victims = [v for v in range(self.workers) if v != worker]
                    if victims:
                        order = rng.permutation(len(victims))
                        for vi in order:
                            victim = victims[int(vi)]
                            with state_lock:
                                if deques[victim]:
                                    task = deques[victim].popleft()
                                    self.steals += 1
                                    break
                if task is None:
                    if done_flag.wait(timeout=0.0005):
                        break
                    continue
                execute(task, worker)

        threads = [
            threading.Thread(target=worker_loop, args=(w,), daemon=True)
            for w in range(self.workers)
        ]
        for t in threads:
            t.start()
        done_flag.wait()
        for t in threads:
            t.join(timeout=5.0)

        if first_error[0] is not None:
            raise first_error[0]
        return [t.result for t in tasks]
