"""Version-selection policies.

"The actual policy for selecting code versions is dynamically configurable"
(paper §IV).  The default is the paper's weighted-sum rule; the others cover
the scenarios §III-A sketches: user-fixed priorities, system-wide
performance settings (thread caps when the machine is shared), and quality-
of-service constraints (deadlines, efficiency floors).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.runtime.compiled import (
    CompiledSelection,
    FixedSelection,
    ThreadCapSelection,
    masked_argmin,
)
from repro.runtime.version_table import Version, VersionTable

__all__ = [
    "SelectionPolicy",
    "WeightedSumPolicy",
    "FastestPolicy",
    "MostEfficientPolicy",
    "TimeCapPolicy",
    "ThreadCapPolicy",
    "EfficiencyFloorPolicy",
    "GreenestPolicy",
    "EnergyCapPolicy",
    "policy_by_name",
]


class SelectionPolicy:
    """Base: maps a version table (+ runtime context) to a version.

    Deterministic policies additionally implement :meth:`compile`, folding
    themselves into a :class:`~repro.runtime.compiled.CompiledSelection`
    whose per-call cost is O(1); the scalar :meth:`select` stays in-tree as
    the differential oracle (compiled and per-call selection sequences must
    be identical).  Stateful policies leave ``compile`` returning ``None``.
    """

    def select(self, table: VersionTable, context: dict | None = None) -> Version:
        raise NotImplementedError

    def compile(self, table: VersionTable) -> CompiledSelection | None:
        return None

    def describe(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class WeightedSumPolicy(SelectionPolicy):
    """Paper §IV: pick the version minimizing ``w_t·time + w_r·resources``.

    Because metadata times/resources live on very different scales, weights
    are applied to *normalized* objectives (min-max over the table) so that
    ``w_time=1, w_resources=0`` reproduces FastestPolicy and the reverse
    MostEfficientPolicy, with a smooth trade-off in between.
    """

    w_time: float = 0.5
    w_resources: float = 0.5

    def select(self, table: VersionTable, context: dict | None = None) -> Version:
        versions = list(table)
        if not versions:
            raise ValueError(
                "cannot select a version from an empty version table"
            )
        times = [v.meta.time for v in versions]
        ress = [v.meta.resources for v in versions]
        t_lo, t_span = min(times), max(times) - min(times)
        r_lo, r_span = min(ress), max(ress) - min(ress)

        def norm(x: float, lo: float, span: float) -> float:
            # degenerate tables (single version, or every version sharing
            # the same time/resources) have zero span: the objective
            # carries no signal, so its normalized contribution is 0 —
            # never a division by zero or a NaN score
            return 0.0 if span <= 0.0 else (x - lo) / span

        return min(
            versions,
            key=lambda v: self.w_time * norm(v.meta.time, t_lo, t_span)
            + self.w_resources * norm(v.meta.resources, r_lo, r_span),
        )

    def compile(self, table: VersionTable) -> CompiledSelection:
        cols = table.columns()
        t, r = cols.times, cols.resources
        t_span = float(t.max() - t.min())
        r_span = float(r.max() - r.min())
        nt = (t - t.min()) / t_span if t_span > 0.0 else np.zeros(len(t))
        nr = (r - r.min()) / r_span if r_span > 0.0 else np.zeros(len(r))
        scores = self.w_time * nt + self.w_resources * nr
        return FixedSelection(table.versions[masked_argmin(scores)])

    def describe(self) -> str:
        return f"weighted(w_t={self.w_time}, w_r={self.w_resources})"


@dataclass(frozen=True)
class FastestPolicy(SelectionPolicy):
    """Minimize wall time regardless of resource cost."""

    def select(self, table: VersionTable, context: dict | None = None) -> Version:
        return table.fastest()

    def compile(self, table: VersionTable) -> CompiledSelection:
        return FixedSelection(table.versions[masked_argmin(table.columns().times)])


@dataclass(frozen=True)
class MostEfficientPolicy(SelectionPolicy):
    """Minimize cpu-seconds (maximize parallel efficiency)."""

    def select(self, table: VersionTable, context: dict | None = None) -> Version:
        return table.most_efficient()

    def compile(self, table: VersionTable) -> CompiledSelection:
        return FixedSelection(
            table.versions[masked_argmin(table.columns().resources)]
        )


@dataclass(frozen=True)
class TimeCapPolicy(SelectionPolicy):
    """Meet a deadline as cheaply as possible: among versions with
    ``time <= cap`` pick the fewest cpu-seconds; if none qualifies, fall
    back to the fastest version."""

    cap: float

    def select(self, table: VersionTable, context: dict | None = None) -> Version:
        qualifying = [v for v in table if v.meta.time <= self.cap]
        if not qualifying:
            return table.fastest()
        return min(qualifying, key=lambda v: v.meta.resources)

    def compile(self, table: VersionTable) -> CompiledSelection:
        cols = table.columns()
        idx = masked_argmin(cols.resources, cols.times <= self.cap)
        if idx is None:
            idx = masked_argmin(cols.times)
        return FixedSelection(table.versions[idx])

    def describe(self) -> str:
        return f"time_cap({self.cap:g}s)"


@dataclass(frozen=True)
class ThreadCapPolicy(SelectionPolicy):
    """System-wide core budget (machine shared with other jobs): fastest
    version not exceeding the available cores.

    The cap defaults to ``context['available_cores']`` so an executor can
    re-select when the machine's free-core count changes — the "dynamically
    adjusting to changing circumstances" scenario of the abstract.
    """

    cap: int | None = None

    def select(self, table: VersionTable, context: dict | None = None) -> Version:
        cap = self.cap
        if cap is None:
            cap = int((context or {}).get("available_cores", max(v.meta.threads for v in table)))
        qualifying = [v for v in table if v.meta.threads <= cap]
        if not qualifying:
            qualifying = [min(table, key=lambda v: v.meta.threads)]
        return min(qualifying, key=lambda v: v.meta.time)

    def compile(self, table: VersionTable) -> CompiledSelection:
        if self.cap is None:
            # cap comes from the runtime context: prefix-best per distinct
            # thread count, binary-searched per call
            return ThreadCapSelection(table)
        cols = table.columns()
        idx = masked_argmin(cols.times, cols.threads <= self.cap)
        if idx is None:
            idx = masked_argmin(cols.threads)
        return FixedSelection(table.versions[idx])

    def describe(self) -> str:
        return f"thread_cap({self.cap if self.cap is not None else 'context'})"


@dataclass(frozen=True)
class EfficiencyFloorPolicy(SelectionPolicy):
    """Fastest version whose parallel efficiency (relative to the table's
    best sequential entry) stays above a floor; versions without a
    sequential reference fall back to the resources ordering."""

    floor: float = 0.8

    def select(self, table: VersionTable, context: dict | None = None) -> Version:
        seq = [v for v in table if v.meta.threads == 1]
        if not seq:
            return table.most_efficient()
        t_seq = min(v.meta.time for v in seq)
        qualifying = [
            v
            for v in table
            if (t_seq / v.meta.time) / v.meta.threads >= self.floor
        ]
        if not qualifying:
            return table.most_efficient()
        return min(qualifying, key=lambda v: v.meta.time)

    def compile(self, table: VersionTable) -> CompiledSelection:
        cols = table.columns()
        sequential = cols.threads == 1
        if not sequential.any():
            idx = masked_argmin(cols.resources)
        else:
            t_seq = cols.times[sequential].min()
            feasible = (t_seq / cols.times) / cols.threads >= self.floor
            idx = masked_argmin(cols.times, feasible)
            if idx is None:
                idx = masked_argmin(cols.resources)
        return FixedSelection(table.versions[idx])

    def describe(self) -> str:
        return f"efficiency_floor({self.floor:g})"


@dataclass(frozen=True)
class GreenestPolicy(SelectionPolicy):
    """Minimize energy per invocation; versions without energy metadata
    fall back to the resources ordering (cpu-seconds as energy proxy)."""

    def select(self, table: VersionTable, context: dict | None = None) -> Version:
        with_energy = [v for v in table if v.meta.energy is not None]
        if not with_energy:
            return table.most_efficient()
        return min(with_energy, key=lambda v: v.meta.energy)

    def compile(self, table: VersionTable) -> CompiledSelection:
        cols = table.columns()
        idx = masked_argmin(cols.energies, cols.has_energy)
        if idx is None:
            idx = masked_argmin(cols.resources)
        return FixedSelection(table.versions[idx])


@dataclass(frozen=True)
class EnergyCapPolicy(SelectionPolicy):
    """Fastest version within an energy budget per invocation; infeasible
    budgets fall back to the greenest version."""

    cap: float

    def select(self, table: VersionTable, context: dict | None = None) -> Version:
        qualifying = [
            v for v in table if v.meta.energy is not None and v.meta.energy <= self.cap
        ]
        if not qualifying:
            return GreenestPolicy().select(table, context)
        return min(qualifying, key=lambda v: v.meta.time)

    def compile(self, table: VersionTable) -> CompiledSelection:
        cols = table.columns()
        # NaN marks missing energy metadata; substitute +inf so the
        # comparison never touches a NaN
        energies = np.where(cols.has_energy, cols.energies, np.inf)
        feasible = energies <= self.cap
        idx = masked_argmin(cols.times, feasible)
        if idx is None:
            return GreenestPolicy().compile(table)
        return FixedSelection(table.versions[idx])

    def describe(self) -> str:
        return f"energy_cap({self.cap:g}J)"


_NAMED = {
    "fastest": FastestPolicy,
    "efficient": MostEfficientPolicy,
    "balanced": lambda: WeightedSumPolicy(0.5, 0.5),
    "greenest": GreenestPolicy,
}

#: parameterized policies: name -> (class, argument parser, arg required).
#: ``thread_cap`` and ``efficiency_floor`` have sensible defaults (context
#: cores / 0.8), the cap policies need an explicit budget.
_PARAMETERIZED = {
    "time_cap": (TimeCapPolicy, float, True),
    "thread_cap": (ThreadCapPolicy, int, False),
    "efficiency_floor": (EfficiencyFloorPolicy, float, False),
    "energy_cap": (EnergyCapPolicy, float, True),
}


def _available() -> list[str]:
    return sorted(_NAMED) + sorted(f"{n}:<value>" for n in _PARAMETERIZED)


def policy_by_name(name: str) -> SelectionPolicy:
    """Construct a policy from a short name.

    Plain names: ``fastest``, ``efficient``, ``balanced``, ``greenest``.
    Parameterized names carry their argument after a colon:
    ``time_cap:<seconds>``, ``thread_cap:<cores>``,
    ``efficiency_floor:<fraction>``, ``energy_cap:<joules>`` —
    ``thread_cap`` (cap from the runtime context) and
    ``efficiency_floor`` (0.8) may omit it.
    """
    base, _, arg = name.partition(":")
    if base in _NAMED:
        if arg:
            raise KeyError(f"policy {base!r} takes no parameter, got {arg!r}")
        return _NAMED[base]()
    if base in _PARAMETERIZED:
        cls, parse, required = _PARAMETERIZED[base]
        if not arg:
            if required:
                raise KeyError(
                    f"policy {base!r} needs a parameter, e.g. {base}:<value>"
                )
            return cls()
        try:
            value = parse(arg)
        except ValueError:
            raise KeyError(
                f"invalid parameter {arg!r} for policy {base!r} "
                f"(expected {parse.__name__})"
            ) from None
        return cls(value)
    raise KeyError(f"unknown policy {name!r}; available: {_available()}")
