"""Precompiled policy scoring: version selection as a frozen decision.

The paper's runtime consults the selection policy on *every* region
invocation; under serving-style traffic the scalar ``SelectionPolicy.select``
implementations — Python loops re-scoring the whole version table per call —
dominate dispatch cost.  But every deterministic policy is a pure function
of (table metadata, policy parameters, runtime context), and the table is
frozen between recalibrations: the decision can be computed **once** and
replayed.

``policy.compile(table)`` folds a policy into a :class:`CompiledSelection`:

* context-free policies (weighted sum, fastest/most-efficient, explicit
  caps, floors, greenest) reduce to a score/feasibility vector over the
  table's cached :class:`~repro.runtime.version_table.VersionColumns` and a
  **single argmin at compile time** — per-call selection is returning a
  stored :class:`~repro.runtime.version_table.Version`;
* ``thread_cap`` with the cap read from the runtime context precomputes the
  prefix-best version per distinct thread count, so a call is one dict get
  plus a binary search — no per-call rescoring.

Tie-breaking matches the scalar path exactly (``min`` keeps the first
minimum in table order; ``argmin`` does the same), and the scalar
implementations stay in-tree as the differential oracle: for every policy
registered in ``policy_by_name`` the compiled and per-call selection
sequences must be identical (asserted by ``tests/test_serving.py``).
Learning policies (:class:`~repro.runtime.online.BanditSelector`) are
stateful and do not compile — ``compile_policy`` returns ``None`` and
callers fall back to the per-call path.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

import numpy as np

from repro.runtime.version_table import Version, VersionTable

__all__ = [
    "CompiledSelection",
    "FixedSelection",
    "ThreadCapSelection",
    "compile_policy",
    "masked_argmin",
]


def masked_argmin(scores: np.ndarray, feasible: np.ndarray | None = None) -> int | None:
    """Position of the smallest score among feasible rows.

    First minimum wins — the same tie-break as ``min()`` over versions in
    table order.  Returns ``None`` when no row is feasible.
    """
    s = np.asarray(scores, dtype=float)
    if feasible is not None:
        if not feasible.any():
            return None
        s = np.where(feasible, s, np.inf)
    return int(np.argmin(s))


class CompiledSelection:
    """One (policy, table) pair frozen into constant-time selection."""

    #: whether the decision ignores the runtime context entirely
    context_free = True

    def select(self, context: dict | None = None) -> Version:
        raise NotImplementedError


@dataclass(frozen=True)
class FixedSelection(CompiledSelection):
    """A context-free policy: the argmin was taken at compile time."""

    version: Version

    def select(self, context: dict | None = None) -> Version:
        return self.version


class ThreadCapSelection(CompiledSelection):
    """``thread_cap`` with the core budget read from the runtime context.

    Compile time sorts the versions by thread count and records the
    prefix-best (fastest, first-in-table on ties) version per distinct
    count; a call binary-searches ``context['available_cores']`` into the
    thresholds.  Caps below every version fall back to the version with the
    fewest threads — the scalar policy's rule.
    """

    context_free = False

    def __init__(self, table: VersionTable) -> None:
        cols = table.columns()
        threads, times = cols.threads, cols.times
        thresholds: list[int] = []
        winners: list[int] = []
        best: tuple[float, int] | None = None
        for pos in np.argsort(threads, kind="stable"):
            pos = int(pos)
            if (
                best is None
                or times[pos] < best[0]
                or (times[pos] == best[0] and pos < best[1])
            ):
                best = (float(times[pos]), pos)
            count = int(threads[pos])
            if thresholds and thresholds[-1] == count:
                winners[-1] = best[1]
            else:
                thresholds.append(count)
                winners.append(best[1])
        self._thresholds = thresholds
        self._winners = [table.versions[i] for i in winners]
        self._smallest = table.versions[masked_argmin(threads)]
        self._default_cap = thresholds[-1]

    def select(self, context: dict | None = None) -> Version:
        cap = int((context or {}).get("available_cores", self._default_cap))
        i = bisect_right(self._thresholds, cap)
        if i == 0:
            return self._smallest
        return self._winners[i - 1]


def compile_policy(policy, table: VersionTable) -> CompiledSelection | None:
    """Compile *policy* against *table*, or ``None`` when the policy is
    stateful/unknown and must stay on the per-call path."""
    compiler = getattr(policy, "compile", None)
    if compiler is None:
        return None
    return compiler(table)
