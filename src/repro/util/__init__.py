"""Shared utilities: deterministic RNG handling, statistics, table formatting."""

from repro.util.rng import derive_rng, spawn_seed
from repro.util.stats import median, mean, geomean, relative_loss
from repro.util.tables import Table

__all__ = [
    "derive_rng",
    "spawn_seed",
    "median",
    "mean",
    "geomean",
    "relative_loss",
    "Table",
]
