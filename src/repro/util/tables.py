"""Plain-text table rendering for benchmark reports.

The benchmark harness reproduces the paper's tables; this module renders them
as aligned ASCII so the output of ``pytest benchmarks/`` can be compared
side-by-side with the paper.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["Table"]


class Table:
    """An append-only table with a header row and aligned column rendering.

    >>> t = Table(["kernel", "E", "V(S)"])
    >>> t.add_row(["mm", 724, 0.88])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], title: str | None = None) -> None:
        self.columns = [str(c) for c in columns]
        self.title = title
        self.rows: list[list[str]] = []

    def add_row(self, values: Sequence[object]) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([_fmt(v) for v in values])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(" | ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return f"{value:.4f}"
    return str(value)
