"""Small statistics helpers used by the measurement protocol and reports."""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

__all__ = ["median", "mean", "geomean", "relative_loss", "summarize"]


def median(values: Sequence[float]) -> float:
    """Median of a non-empty sequence (lower middle for even length avoided:
    the conventional average of the two central elements is returned)."""
    xs = sorted(values)
    if not xs:
        raise ValueError("median of empty sequence")
    n = len(xs)
    mid = n // 2
    if n % 2:
        return float(xs[mid])
    return 0.5 * (xs[mid - 1] + xs[mid])


def mean(values: Iterable[float]) -> float:
    xs = list(values)
    if not xs:
        raise ValueError("mean of empty sequence")
    return sum(xs) / len(xs)


def geomean(values: Iterable[float]) -> float:
    xs = list(values)
    if not xs:
        raise ValueError("geomean of empty sequence")
    if any(x <= 0 for x in xs):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(x) for x in xs) / len(xs))


def relative_loss(value: float, best: float) -> float:
    """Relative performance loss of *value* over *best* in percent.

    Matches the paper's Table II convention: running a configuration tuned
    for a different thread count that takes ``value`` seconds instead of the
    per-count optimum ``best`` incurs ``100 * (value / best - 1)`` % loss.
    """
    if best <= 0:
        raise ValueError("best must be positive")
    return 100.0 * (value / best - 1.0)


def summarize(values: Sequence[float]) -> dict[str, float]:
    """Return min/median/mean/max of a sample as a dict (for reports)."""
    xs = sorted(values)
    return {
        "min": float(xs[0]),
        "median": median(xs),
        "mean": mean(xs),
        "max": float(xs[-1]),
        "n": float(len(xs)),
    }
