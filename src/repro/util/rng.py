"""Deterministic random-number plumbing.

Every stochastic component in the framework (GDE3, random search, the
measurement-noise model) takes an explicit seed or ``numpy.random.Generator``
so that experiments are reproducible run-to-run.  This module centralises the
seed-derivation scheme: child seeds are derived by hashing a parent seed with
a string key, which keeps independent components decorrelated without having
to thread generator objects through every call site.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["spawn_seed", "seed_hasher", "spawn_seed_from", "derive_rng"]

_MASK64 = (1 << 64) - 1


def spawn_seed(parent: int, *keys: object) -> int:
    """Derive a child seed from *parent* and a sequence of hashable keys.

    The derivation is stable across processes and Python versions (it uses
    blake2b rather than ``hash()``).  Distinct key tuples give independent
    64-bit seeds.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(parent) & _MASK64).encode())
    for key in keys:
        h.update(b"\x00")
        h.update(repr(key).encode())
    return int.from_bytes(h.digest(), "little")


def seed_hasher(parent: int, *keys: object) -> "hashlib.blake2b":
    """A reusable hash prefix for deriving many sibling seeds.

    ``spawn_seed(parent, a, b)`` rehashes the full ``(parent, a)`` prefix
    for every ``b``.  Batch callers (the simulator hashes one seed per
    (configuration, repetition) pair) instead hash the common prefix once
    and fork per suffix with :func:`spawn_seed_from`, which feeds blake2b
    the identical byte stream — the derived seeds are bit-identical to
    :func:`spawn_seed`, only the redundant prefix work disappears.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(parent) & _MASK64).encode())
    for key in keys:
        h.update(b"\x00")
        h.update(repr(key).encode())
    return h


def spawn_seed_from(prefix: "hashlib.blake2b", *keys: object) -> int:
    """Finish a :func:`seed_hasher` prefix with trailing *keys*.

    ``spawn_seed_from(seed_hasher(p, a), b) == spawn_seed(p, a, b)``.
    """
    h = prefix.copy()
    for key in keys:
        h.update(b"\x00")
        h.update(repr(key).encode())
    return int.from_bytes(h.digest(), "little")


def derive_rng(parent: int | np.random.Generator | None, *keys: object) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` derived from *parent* and *keys*.

    ``parent`` may be an integer seed, an existing generator (a child seed is
    drawn from it), or ``None`` for OS entropy.
    """
    if parent is None:
        return np.random.default_rng()
    if isinstance(parent, np.random.Generator):
        parent = int(parent.integers(0, _MASK64, dtype=np.uint64))
    return np.random.default_rng(spawn_seed(parent, *keys) if keys else int(parent) & _MASK64)
