"""Loop interchange on perfect nests, with a dependence-based legality check."""

from __future__ import annotations

from repro.ir.nodes import Block, For, Stmt
from repro.ir.visitors import loop_nest, perfect_nest
from repro.analysis.dependence import Dependence

__all__ = ["interchange", "can_interchange", "permute"]


def can_interchange(
    deps: list[Dependence], lvars: list[str], var_a: str, var_b: str
) -> bool:
    """Interchanging two loops is legal iff no dependence direction vector
    becomes lexicographically negative under the swap.

    Reduction self-dependences are exempt (associative reordering)."""
    order = list(lvars)
    ia, ib = order.index(var_a), order.index(var_b)
    order[ia], order[ib] = order[ib], order[ia]
    perm = [lvars.index(v) for v in order]
    for dep in deps:
        if dep.is_reduction:
            continue
        swapped = [dep.directions[p] for p in perm]
        for d in swapped:
            if d == "=":
                continue
            if d in (">", "*"):
                return False
            break  # leading '<' keeps the vector positive
    return True


def interchange(nest_root: For, var_a: str, var_b: str) -> For:
    """Swap the positions of two loops in a perfect nest (pure rewrite)."""
    loops, body = perfect_nest(nest_root)
    lvars = [lp.var for lp in loops]
    if var_a not in lvars or var_b not in lvars:
        raise ValueError(f"loops {var_a!r}/{var_b!r} not found in nest {lvars}")
    order = list(lvars)
    ia, ib = order.index(var_a), order.index(var_b)
    order[ia], order[ib] = order[ib], order[ia]
    return permute(nest_root, order)


def permute(nest_root: For, new_order: list[str]) -> For:
    """Rebuild the perfect nest with loops in *new_order* (outermost first).

    Bounds must be invariant to the permuted band (rectangular nests), which
    the kernels in scope satisfy; violated invariance raises ``ValueError``.
    """
    loops, body = perfect_nest(nest_root)
    by_var = {lp.var: lp for lp in loops}
    if sorted(new_order) != sorted(by_var):
        raise ValueError(
            f"permutation {new_order} does not match nest loops {sorted(by_var)}"
        )
    from repro.ir.visitors import free_vars

    band = set(new_order)
    for lp in loops:
        bound_free = free_vars(lp.lower) | free_vars(lp.upper) | free_vars(lp.step)
        if bound_free & band:
            raise ValueError(
                f"cannot permute: bounds of {lp.var!r} depend on band loops"
            )

    inner: Stmt = body if isinstance(body, Block) else Block((body,))
    for var in reversed(new_order):
        lp = by_var[var]
        inner = For(
            var=lp.var,
            lower=lp.lower,
            upper=lp.upper,
            step=lp.step,
            body=inner if isinstance(inner, Block) else Block((inner,)),
            parallel=lp.parallel,
            annotations=lp.annotations,
        )
    assert isinstance(inner, For)
    return inner
