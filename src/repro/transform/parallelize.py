"""Marking loops for parallel (worksharing) execution."""

from __future__ import annotations

from dataclasses import replace

from repro.ir.nodes import For

__all__ = ["parallelize"]


def parallelize(loop: For, num_threads: int | str | None = None) -> For:
    """Mark *loop* parallel; optionally pin the thread count.

    The thread count annotation is what the multi-versioning backend bakes
    into each generated version (the paper tunes it as a first-class
    parameter alongside tile sizes).  A *string* thread count names a
    runtime variable — the parameterized backend's case."""
    out = replace(loop, parallel=True)
    if num_threads is not None:
        if isinstance(num_threads, str):
            out = out.with_annotation("num_threads", num_threads)
        else:
            if num_threads < 1:
                raise ValueError(f"num_threads must be >= 1, got {num_threads}")
            out = out.with_annotation("num_threads", int(num_threads))
    return out
