"""Loop skewing.

Skewing replaces an inner loop index ``j`` by ``j' = j + f·i`` (iterating
``j'`` over shifted bounds and recovering ``j = j' − f·i`` in the body).
It never changes the execution order by itself, but it transforms
dependence vectors: a wavefront dependence ``(1, −1)`` becomes
``(1, f−1)`` — non-negative for ``f ≥ 1`` — turning an untilable loop pair
into a fully permutable (tilable) band.  This is the classic enabling
transformation for stencils with carried dependences (Gauss-Seidel,
wavefront recurrences), rounding out the transformation toolbox the
paper's skeletons draw from.

Limitations (by design, matching the rectangular-nest scope of the rest of
the pipeline): the skewed nest's inner bounds become parallelogram-shaped
(``lower + f·i ≤ j' < upper + f·i``); downstream consumers that assume
rectangular domains (the brute-force grid, the cost model's extents) treat
the skewed loop conservatively via its bounding box.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace

from repro.analysis.dependence import Dependence
from repro.ir.builder import block
from repro.ir.nodes import Block, For, IntLit, Stmt, Var
from repro.ir.visitors import loop_nest, substitute

__all__ = ["skew", "skewed_directions", "skew_factor_for_band"]


def skew(nest_root: For, outer: str, inner: str, factor: int) -> For:
    """Skew loop *inner* by ``factor ×`` loop *outer*.

    The inner loop's index becomes ``inner + factor·outer`` (bounds shifted
    accordingly); every use of ``inner`` in the body reads
    ``inner' − factor·outer``.  Execution order is unchanged, so the
    transformation is always legal on its own.
    """
    if factor == 0:
        return nest_root
    loops = loop_nest(nest_root)
    lvars = [lp.var for lp in loops]
    if outer not in lvars or inner not in lvars:
        raise ValueError(f"loops {outer!r}/{inner!r} not found in nest {lvars}")
    if lvars.index(outer) >= lvars.index(inner):
        raise ValueError(f"{outer!r} must enclose {inner!r}")

    ov = Var(outer)

    def rewrite(stmt: Stmt) -> Stmt:
        if isinstance(stmt, For) and stmt.var == inner:
            new_lower = stmt.lower + ov * factor
            new_upper = stmt.upper + ov * factor
            body = substitute(stmt.body, {inner: Var(inner) - ov * factor})
            return dc_replace(
                stmt,
                lower=new_lower,
                upper=new_upper,
                body=body if isinstance(body, Block) else Block((body,)),  # type: ignore[arg-type]
                annotations=stmt.annotations + (("skewed_by", (outer, factor)),),
            )
        if isinstance(stmt, For):
            inner_body = rewrite(stmt.body)
            return dc_replace(
                stmt,
                body=inner_body if isinstance(inner_body, Block) else Block((inner_body,)),  # type: ignore[arg-type]
            )
        if isinstance(stmt, Block):
            return Block(tuple(rewrite(s) for s in stmt.stmts))
        return stmt

    out = rewrite(nest_root)
    assert isinstance(out, For)
    return out


def skewed_directions(
    dep: Dependence, lvars: list[str], outer: str, inner: str, factor: int
) -> tuple[str, ...]:
    """Dependence directions after skewing, from exact distances.

    The skew maps distance ``(…, d_o, …, d_i, …)`` to
    ``(…, d_o, …, d_i + factor·d_o, …)``.  Entries without exact distances
    stay as they are except that a ``'>'`` inner entry with a known outer
    distance can flip sign; those conservative cases return ``'*'``.
    """
    oi, ii = lvars.index(outer), lvars.index(inner)
    dirs = list(dep.directions)
    if dep.distance is None:
        return tuple(dirs)
    d_o = dep.distance[oi]
    d_i = dep.distance[ii]
    if d_i is None or d_o is None:
        if dirs[ii] != "=":
            dirs[ii] = "*"
        return tuple(dirs)
    new_di = d_i + factor * d_o
    dirs[ii] = "=" if new_di == 0 else ("<" if new_di > 0 else ">")
    return tuple(dirs)


def skew_factor_for_band(deps: list[Dependence], lvars: list[str], outer: str, inner: str) -> int | None:
    """The smallest non-negative skew factor making every dependence's
    (outer, inner) direction pair non-negative, or ``None`` if none ≤ 8
    works (needs exact distances on the inner entries)."""
    for factor in range(0, 9):
        ok = True
        for dep in deps:
            if dep.is_reduction:
                continue
            dirs = skewed_directions(dep, lvars, outer, inner, factor)
            for v in (outer, inner):
                if dirs[lvars.index(v)] in (">", "*"):
                    ok = False
                    break
            if not ok:
                break
        if ok:
            return factor
    return None
