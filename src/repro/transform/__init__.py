"""Loop transformations and transformation skeletons.

These implement the paper's tuning actions: loop tiling of the tilable band,
collapsing of the outer tile loops (to mitigate load imbalance, §IV),
parallelization of the resulting outermost loop, plus interchange and
unrolling as additional skeleton building blocks.

All transformations are pure: they take an IR subtree and return a new one.
:mod:`repro.transform.skeleton` packages them into parametric
*transformation skeletons* whose unbound parameters (tile sizes, thread
count, unroll factor) the optimizer tunes.
"""

from repro.transform.tiling import tile
from repro.transform.collapse import collapse
from repro.transform.interchange import can_interchange, interchange
from repro.transform.unroll import unroll
from repro.transform.fusion import can_fuse, fission, fuse
from repro.transform.skew import skew, skew_factor_for_band, skewed_directions
from repro.transform.parallelize import parallelize
from repro.transform.splice import replace_at_path, stmt_at_path
from repro.transform.skeleton import (
    Parameter,
    TransformationSkeleton,
    TransformedRegion,
    default_skeleton,
)

__all__ = [
    "tile",
    "collapse",
    "interchange",
    "can_interchange",
    "unroll",
    "fuse",
    "fission",
    "can_fuse",
    "skew",
    "skewed_directions",
    "skew_factor_for_band",
    "parallelize",
    "replace_at_path",
    "stmt_at_path",
    "Parameter",
    "TransformationSkeleton",
    "TransformedRegion",
    "default_skeleton",
]
