"""Loop collapsing (coalescing) of adjacent perfectly nested loops.

The paper applies collapsing to the two outermost tile loops before
parallelizing: with large tiles the outer tile loop alone has too few
iterations to balance across many threads (§II, §IV).  Collapsing the
``i``/``j`` tile loops multiplies the worksharing iteration count.

``collapse(nest, 2)`` rewrites

.. code-block:: none

    for i_t in [li, Ui) step Ti:
      for j_t in [lj, Uj) step Tj: S(i_t, j_t)

into

.. code-block:: none

    for c in [0, nti*ntj) step 1:          # nti = ceil((Ui-li)/Ti), ...
        S(li + (c / ntj)*Ti, lj + (c % ntj)*Tj)

The collapsed loop carries the annotation ``("collapsed", (v1, v2, ...))``
and ``("collapsed_trips", (expr1, expr2, ...))`` with per-loop trip-count
expressions, which the backends use for emitting OpenMP ``collapse`` or the
explicit index recovery shown above.
"""

from __future__ import annotations

from repro.ir.builder import block
from repro.ir.nodes import Block, Expr, For, IntLit, Stmt, Var
from repro.ir.visitors import loop_nest, substitute

__all__ = ["collapse", "COLLAPSE_VAR"]

COLLAPSE_VAR = "cidx"


def _trip_expr(lp: For) -> Expr:
    """Ceil-div trip count ``ceil((upper-lower)/step)`` as an IR expression
    (exact integer arithmetic given runtime values)."""
    span = lp.upper - lp.lower
    if isinstance(lp.step, IntLit) and lp.step.value == 1:
        return span
    return (span + lp.step - 1) // lp.step


def collapse(nest_root: For, count: int) -> For:
    """Collapse the *count* outermost loops of the perfect nest into one.

    The loops must be perfectly nested (each body a single statement — the
    next loop).  Bounds of inner loops must not depend on outer collapsed
    loop variables (rectangular band), which holds for tile loops.

    :raises ValueError: if fewer than *count* perfectly nested loops exist
        or the band is not rectangular.
    """
    if count < 2:
        raise ValueError("collapse needs at least 2 loops")
    loops = loop_nest(nest_root)
    if len(loops) < count:
        raise ValueError(
            f"cannot collapse {count} loops: nest has only {len(loops)}"
        )
    band = loops[:count]
    band_vars = [lp.var for lp in band]
    for lp in band[1:]:
        free = _bound_vars(lp)
        overlap = free & set(band_vars)
        if overlap:
            raise ValueError(
                f"collapse band not rectangular: bounds of {lp.var!r} depend on {overlap}"
            )

    inner_body: Stmt = band[-1].body

    trips = [_trip_expr(lp) for lp in band]
    c = Var(COLLAPSE_VAR)

    # index recovery: for band (v0, v1, ..., v_{n-1}) with trips (n0..n_{n-1})
    #   v_{n-1} = l_{n-1} + (c % n_{n-1}) * s_{n-1}
    #   v_{n-2} = l_{n-2} + ((c / n_{n-1}) % n_{n-2}) * s_{n-2}
    #   ...
    mapping: dict[str, Expr] = {}
    quotient: Expr = c
    for lp, trip in zip(reversed(band), reversed(trips)):
        idx = quotient % trip
        recovered = lp.lower + idx * lp.step
        mapping[lp.var] = recovered
        quotient = quotient // trip

    new_body = substitute(inner_body, mapping)

    total: Expr = trips[0]
    for t in trips[1:]:
        total = total * t

    return For(
        var=COLLAPSE_VAR,
        lower=IntLit(0),
        upper=total,
        step=IntLit(1),
        body=new_body if isinstance(new_body, Block) else Block((new_body,)),  # type: ignore[arg-type]
        annotations=(
            ("collapsed", tuple(band_vars)),
            ("collapsed_trips", tuple(trips)),
            ("collapsed_loops", tuple(band)),
        ),
    )


def _bound_vars(lp: For) -> set[str]:
    from repro.ir.visitors import free_vars

    return free_vars(lp.lower) | free_vars(lp.upper) | free_vars(lp.step)
