"""Transformation skeletons: parametric transformation sequences per region.

Paper §III-A: "the analyzer determines a set of transformation skeletons
which describe generic sequences of code transformations using unbound
parameters for tunable properties (e.g. tile sizes, unrolling factors or
number of threads)".

A :class:`TransformationSkeleton` binds a region to the sequence

    tile(band, t_1..t_n) → collapse(outer 2 tile loops) → parallelize(threads)
    [→ unroll(innermost, u)]

with the tile sizes, thread count and (optionally) the unroll factor left as
:class:`Parameter`\\ s.  :meth:`TransformationSkeleton.instantiate` turns a
concrete parameter assignment into a :class:`TransformedRegion` — the IR the
backend turns into one code version.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

from repro.analysis.regions import TunableRegion
from repro.ir.nodes import Block, For, Function, Stmt
from repro.transform.collapse import collapse
from repro.transform.parallelize import parallelize
from repro.transform.splice import replace_at_path
from repro.transform.tiling import tile, tile_var
from repro.transform.unroll import unroll


def _parallelize_inner(nest: For, target_var: str, threads: int) -> For:
    """Mark the descendant loop named *target_var* parallel."""
    from repro.ir.visitors import transform as ir_transform

    found = False

    def mark(node):
        nonlocal found
        if isinstance(node, For) and node.var == target_var:
            found = True
            return parallelize(node, threads)
        return None

    out = ir_transform(nest, mark)
    if not found:
        raise ValueError(f"no loop named {target_var!r} to parallelize")
    assert isinstance(out, For)
    return out

__all__ = ["Parameter", "TransformationSkeleton", "TransformedRegion", "default_skeleton"]


@dataclass(frozen=True)
class Parameter:
    """One unbound tuning parameter.

    :param name: e.g. ``tile_i`` or ``threads``.
    :param lo: inclusive lower bound.
    :param hi: inclusive upper bound.
    :param choices: when non-empty, the parameter is categorical over these
        values and ``lo``/``hi`` are ignored for sampling (but retained as
        the numeric envelope for the rough-set boundary logic).
    """

    name: str
    lo: int
    hi: int
    choices: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.choices and self.lo > self.hi:
            raise ValueError(f"parameter {self.name!r}: lo {self.lo} > hi {self.hi}")
        if self.choices and list(self.choices) != sorted(set(self.choices)):
            raise ValueError(f"parameter {self.name!r}: choices must be sorted unique")

    @property
    def is_categorical(self) -> bool:
        return bool(self.choices)

    def clamp(self, value: float) -> int:
        """Snap a (possibly fractional, out-of-range) value into the domain."""
        if self.choices:
            return min(self.choices, key=lambda c: abs(c - value))
        return int(min(max(round(value), self.lo), self.hi))

    def span(self) -> tuple[int, int]:
        if self.choices:
            return self.choices[0], self.choices[-1]
        return self.lo, self.hi


@dataclass(frozen=True)
class TransformedRegion:
    """The result of instantiating a skeleton: transformed IR + metadata."""

    region: TunableRegion
    nest: For
    values: tuple[tuple[str, int], ...]
    tile_sizes: tuple[tuple[str, int], ...]
    num_threads: int
    collapsed: int
    unroll_factor: int = 1

    def value(self, name: str) -> int:
        return dict(self.values)[name]

    def apply(self) -> Function:
        """The whole kernel function with the transformed nest spliced in."""
        return replace_at_path(self.region.function, self.region.path, self.nest)


@dataclass(frozen=True)
class TransformationSkeleton:
    """A parametric transformation recipe for one region.

    :param tile_band: the loops whose tile sizes are parameters (any subset
        of the region's tilable band — n-body tiles only its reduction
        dimension ``j``).
    :param collapse_outer: how many outermost tile loops to coalesce into
        the worksharing loop; 0/1 disables collapsing.  Must only cover
        parallelizable dimensions (collapsing a reduction dimension into a
        parallel loop would race on the accumulator).
    :param parallel_var: the loop variable carrying the parallelism when no
        collapse happens — either a tiled var (its *tile* loop is marked)
        or an untiled one (its original loop is marked, e.g. n-body's
        ``i`` inside the hoisted ``j`` tile loop).
    """

    region: TunableRegion
    parameters: tuple[Parameter, ...]
    tile_band: tuple[str, ...]
    collapse_outer: int = 2
    parallel: bool = True
    parallel_var: str | None = None
    unrollable: bool = False

    def parallel_spec(self) -> tuple[str, object]:
        """How the instantiated code workshares — consumed by the cost
        model: ``("collapse", n)``, ``("tile", var)``, ``("point", var)``
        or ``("none", None)``."""
        if not self.parallel:
            return ("none", None)
        if self.collapse_outer >= 2 and len(self.tile_band) >= self.collapse_outer:
            return ("collapse", self.collapse_outer)
        pv = self.parallel_var or self.tile_band[0]
        if pv in self.tile_band:
            return ("tile", pv)
        return ("point", pv)

    def parameter(self, name: str) -> Parameter:
        for p in self.parameters:
            if p.name == name:
                return p
        raise KeyError(f"skeleton has no parameter {name!r}")

    @property
    def parameter_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.parameters)

    def validate(self, values: dict[str, int]) -> None:
        for p in self.parameters:
            if p.name not in values:
                raise KeyError(f"missing value for parameter {p.name!r}")
            v = values[p.name]
            lo, hi = p.span()
            if p.is_categorical:
                if v not in p.choices:
                    raise ValueError(f"{p.name}={v} not in choices {p.choices}")
            elif not (lo <= v <= hi):
                raise ValueError(f"{p.name}={v} outside [{lo}, {hi}]")

    def instantiate(self, values: dict[str, int]) -> TransformedRegion:
        """Apply the transformation sequence with concrete parameter values."""
        self.validate(values)
        tile_sizes = {v: int(values[f"tile_{v}"]) for v in self.tile_band}
        nest = tile(self.region.nest, tile_sizes)  # type: ignore[arg-type]

        collapsed = 0
        if self.collapse_outer >= 2 and len(self.tile_band) >= self.collapse_outer:
            nest = collapse(nest, self.collapse_outer)
            collapsed = self.collapse_outer

        threads = int(values.get("threads", 1))
        if self.parallel:
            kind, pv = self.parallel_spec()
            if kind in ("collapse",) or pv is None:
                nest = parallelize(nest, threads)
            else:
                target = tile_var(pv) if kind == "tile" else pv
                if nest.var == target:
                    nest = parallelize(nest, threads)
                else:
                    nest = _parallelize_inner(nest, str(target), threads)

        unroll_factor = int(values.get("unroll", 1))
        if self.unrollable and unroll_factor > 1:
            nest = _unroll_innermost(nest, unroll_factor)

        return TransformedRegion(
            region=self.region,
            nest=nest,
            values=tuple(sorted(values.items())),
            tile_sizes=tuple(sorted(tile_sizes.items())),
            num_threads=threads,
            collapsed=collapsed,
            unroll_factor=unroll_factor,
        )


def _unroll_innermost(nest: For, factor: int) -> For:
    """Unroll the innermost loop of the (tiled) nest in place."""

    def go(stmt: Stmt) -> Stmt:
        if isinstance(stmt, For):
            inner_fors = [s for s in stmt.body.stmts if isinstance(s, For)] if isinstance(stmt.body, Block) else []
            if isinstance(stmt.body, Block) and len(stmt.body.stmts) == 1 and inner_fors:
                new_inner = go(stmt.body.stmts[0])
                body = new_inner if isinstance(new_inner, Block) else Block((new_inner,))
                return dc_replace(stmt, body=body)
            return unroll(stmt, factor)  # type: ignore[return-value]
        return stmt

    result = go(nest)
    assert isinstance(result, For)
    return result


def default_skeleton(
    region: TunableRegion,
    bindings: dict[str, int],
    max_threads: int,
    thread_choices: tuple[int, ...] = (),
    tile_upper: dict[str, int] | None = None,
    with_unroll: bool = False,
    band: tuple[str, ...] | None = None,
) -> TransformationSkeleton:
    """The paper's default recipe for a region.

    Tile-size upper bounds default to half the loop extent ("larger tile
    sizes clearly have little potential to dominate smaller tile sizes",
    §V-B3); the thread-count bound comes from the target machine.  Both
    restrictions "could easily be extracted statically from the targeted
    region and platform".

    Collapsing covers the outermost two tile loops only when both are
    parallelizable ("tiled and optionally collapsed, without sacrificing
    the possibility of parallelizing the resulting loop", §IV) — for a
    reduction like n-body the collapse is skipped and the parallel loop is
    the outermost parallelizable one instead.

    :param band: restrict tiling to a subset of the region's tilable band
        (must be contained in it).
    """
    full_band = region.tile_band
    if not full_band:
        raise ValueError(f"region {region.name} has no tilable band")
    if band is None:
        band = full_band
    else:
        invalid = [v for v in band if v not in full_band]
        if invalid:
            raise ValueError(
                f"loops {invalid} are outside the tilable band {full_band}"
            )
    params: list[Parameter] = []
    for v in band:
        try:
            extent = region.domain.extent(v, bindings)
        except KeyError as exc:
            raise ValueError(
                f"loop {v!r} of region {region.name} has non-rectangular "
                f"bounds (depend on {exc.args[0]!r}); the default skeleton "
                "handles rectangular bands — skew or restrict the band first"
            ) from None
        hi = max(1, extent // 2)
        if tile_upper and v in tile_upper:
            hi = max(1, min(hi, tile_upper[v]))
        params.append(Parameter(name=f"tile_{v}", lo=1, hi=hi))
    parallel_var = region.parallel_candidate()
    if parallel_var is not None:
        if thread_choices:
            lo, hi = min(thread_choices), max(thread_choices)
            params.append(Parameter(name="threads", lo=lo, hi=hi, choices=tuple(sorted(set(thread_choices)))))
        else:
            params.append(Parameter(name="threads", lo=1, hi=max_threads))
    if with_unroll:
        params.append(Parameter(name="unroll", lo=1, hi=8, choices=(1, 2, 4, 8)))
    parallelizable = set(region.parallelizable)
    can_collapse = (
        len(band) >= 2
        and parallel_var == band[0]
        and band[0] in parallelizable
        and band[1] in parallelizable
    )
    return TransformationSkeleton(
        region=region,
        parameters=tuple(params),
        tile_band=tuple(band),
        collapse_outer=2 if can_collapse else 0,
        parallel=parallel_var is not None,
        parallel_var=parallel_var,
        unrollable=with_unroll,
    )
