"""Loop tiling (strip-mine + interchange) on perfect nests.

``tile(nest, {"i": 32, "j": 288, "k": 9})`` rewrites

.. code-block:: none

    for i in [0,N): for j in [0,N): for k in [0,N): S(i,j,k)

into

.. code-block:: none

    for i_t in [0,N) step 32:
      for j_t in [0,N) step 288:
        for k_t in [0,N) step 9:
          for i in [i_t, min(i_t+32, N)):
            for j in [j_t, min(j_t+288, N)):
              for k in [k_t, min(k_t+9, N)): S(i,j,k)

Tile loops carry the annotation ``("tile_loop", var)``; point loops carry
``("point_loop", var)``.  Loops of the nest not named in the tile map stay in
place below the tile band (they are only strip-mined if requested).

Legality is the caller's responsibility (use
:func:`repro.analysis.dependence.tilable_band`); this module validates only
structural preconditions (perfect nest, unit steps, band is a nest prefix).
"""

from __future__ import annotations

from repro.ir.builder import block
from repro.ir.nodes import Block, Expr, For, IntLit, Max, Min, Stmt, Var, as_expr
from repro.ir.visitors import loop_nest, perfect_nest

__all__ = ["tile", "tile_var"]


def tile_var(var: str) -> str:
    """Name of the tile loop iterating tile origins of *var*."""
    return f"{var}_t"


def tile(nest_root: For, tile_sizes: dict[str, int | str]) -> For:
    """Tile the perfect nest at *nest_root* with the given per-loop sizes.

    :param tile_sizes: loop var → tile size.  An ``int`` produces a fixed
        size (multi-versioning); a ``str`` produces a symbolic size read
        from a variable of that name (parameterized tiling, cf. §IV's
        discussion of parameterization vs. multi-versioning).
    :raises ValueError: for structural violations (non-perfect nest, the
        tiled loops not forming a prefix of the nest, non-unit steps, or a
        non-positive fixed tile size).
    """
    loops, body = perfect_nest(nest_root)
    lvars = [lp.var for lp in loops]

    missing = [v for v in tile_sizes if v not in lvars]
    if missing:
        raise ValueError(f"tile sizes given for loops not in nest: {missing}")
    tiled = [v for v in lvars if v in tile_sizes]
    if not tiled:
        raise ValueError("no loops to tile")
    # Tiled loops need not be a nest prefix: tiling {'j'} of an (i, j) nest
    # hoists j's tile loop above i (cache blocking of a reduction dimension
    # with the parallel loop kept intact, as in blocked n-body).  Hoisting
    # is an interchange across the intervening loops, so every loop from
    # the outermost loop down to the innermost *tiled* one must belong to a
    # permutable band — the caller's responsibility, like band legality.
    for lp in loops:
        if not (isinstance(lp.step, IntLit) and lp.step.value == 1):
            raise ValueError(f"loop {lp.var!r} must have unit step to be tiled")
    for v in tiled:
        size = tile_sizes[v]
        if isinstance(size, int) and size < 1:
            raise ValueError(f"tile size for {v!r} must be >= 1, got {size}")

    by_var = {lp.var: lp for lp in loops}

    # inner loops in original nest order: tiled vars become point loops
    # within their tile, untiled loops stay as they are.  Point-loop bounds
    # are guarded on both ends (max with the actual lower, min with the
    # actual upper) so non-rectangular bands — skewed loops whose bounds
    # depend on outer indices — tile correctly: tiles outside the actual
    # range for the current outer index simply run empty.
    inner: Stmt = body if isinstance(body, Block) else Block((body,))
    for lp in reversed(loops):
        if lp.var in tile_sizes:
            size = _size_expr(tile_sizes[lp.var])
            origin = Var(tile_var(lp.var))
            inner = For(
                var=lp.var,
                lower=Max(origin, lp.lower),
                upper=Min(origin + size, lp.upper),
                step=IntLit(1),
                body=_as_block(inner),
                annotations=(("point_loop", lp.var),),
            )
        else:
            inner = For(lp.var, lp.lower, lp.upper, lp.step, _as_block(inner),
                        parallel=lp.parallel, annotations=lp.annotations)

    # outermost: tile loops.  A tiled loop whose bounds reference other
    # nest variables (a skewed inner loop) gets *bounding-box* tile-loop
    # bounds: the referenced variable is replaced by both of its extremes
    # and the min/max of the corners taken; the guarded point loops then
    # skip the parts of each tile outside the actual parallelogram.
    out: Stmt = inner
    for v in reversed(tiled):
        lp = by_var[v]
        size = _size_expr(tile_sizes[v])
        box_lower = _bounding(lp.lower, by_var, want_min=True)
        box_upper = _bounding(lp.upper, by_var, want_min=False)
        out = For(
            var=tile_var(v),
            lower=box_lower,
            upper=box_upper,
            step=size,
            body=_as_block(out),
            annotations=(("tile_loop", v),),
        )
    assert isinstance(out, For)
    return out


def _bounding(expr: Expr, by_var: dict[str, For], want_min: bool) -> Expr:
    """Replace references to other nest variables in a bound expression by
    the extremes of their ranges, combining corners with min/max.

    Handles one level of dependence (the referenced loops' own bounds must
    not reference further nest variables), which covers skewed bands.
    """
    from repro.ir.visitors import free_vars, substitute

    refs = [v for v in free_vars(expr) if v in by_var]
    if not refs:
        return expr
    out: Expr | None = None
    corners = [{}]
    for v in refs:
        ref_lp = by_var[v]
        if free_vars(ref_lp.lower) & set(by_var) or free_vars(ref_lp.upper) & set(by_var):
            raise ValueError(
                f"cannot tile: bounds of {v!r} themselves depend on nest variables"
            )
        lo = ref_lp.lower
        hi = ref_lp.upper - 1  # last value of a half-open unit-step loop
        corners = [
            {**corner, v: extreme} for corner in corners for extreme in (lo, hi)
        ]
    for corner in corners:
        candidate = substitute(expr, corner)  # type: ignore[assignment]
        if out is None:
            out = candidate  # type: ignore[assignment]
        else:
            out = Min(out, candidate) if want_min else Max(out, candidate)  # type: ignore[arg-type]
    assert out is not None
    return out


def _size_expr(size: int | str) -> Expr:
    return Var(size) if isinstance(size, str) else as_expr(int(size))


def _as_block(stmt: Stmt) -> Block:
    return stmt if isinstance(stmt, Block) else Block((stmt,))
