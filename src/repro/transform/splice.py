"""Structural splicing: replacing a region's nest inside its function.

Regions carry a structural *path* (see
:class:`repro.analysis.regions.TunableRegion`): a sequence of child indices
starting at the function body, where a ``Block`` child index selects a
statement and a ``For`` has its body block at index 0.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace

from repro.ir.nodes import Block, For, Function, Stmt

__all__ = ["stmt_at_path", "replace_at_path"]


def stmt_at_path(function: Function, path: tuple[int, ...]) -> Stmt:
    """The statement at *path* within *function*'s body."""
    node: Stmt = function.body
    for idx in path:
        if isinstance(node, Block):
            node = node.stmts[idx]
        elif isinstance(node, For):
            if idx != 0:
                raise IndexError(f"For nodes have a single child (body) at 0, got {idx}")
            node = node.body
        else:
            raise IndexError(f"path descends into a leaf at {node!r}")
    return node


def replace_at_path(function: Function, path: tuple[int, ...], new_stmt: Stmt) -> Function:
    """A copy of *function* with the statement at *path* replaced."""

    def rebuild(node: Stmt, remaining: tuple[int, ...]) -> Stmt:
        if not remaining:
            return new_stmt
        idx, rest = remaining[0], remaining[1:]
        if isinstance(node, Block):
            stmts = list(node.stmts)
            stmts[idx] = rebuild(stmts[idx], rest)
            return Block(tuple(stmts))
        if isinstance(node, For):
            if idx != 0:
                raise IndexError(f"For nodes have a single child (body) at 0, got {idx}")
            new_body = rebuild(node.body, rest)
            if not isinstance(new_body, Block):
                new_body = Block((new_body,))
            return dc_replace(node, body=new_body)
        raise IndexError(f"path descends into a leaf at {node!r}")

    new_body = rebuild(function.body, path)
    if not isinstance(new_body, Block):
        new_body = Block((new_body,))
    return dc_replace(function, body=new_body)
