"""Loop fusion and fission (distribution).

The paper cites fusion and fission among the transformations that "can not
be realized using parameterized code" (§IV) — one more reason for
multi-versioning.  This module provides both, with dependence-based
legality checks:

* :func:`fuse` merges two adjacent loops with identical headers into one;
  legal iff no dependence between the bodies is reversed by the merge —
  i.e. for every write in one body and access to the same array in the
  other, the fused execution order must not flip a cross-iteration
  dependence direction.  The conservative test implemented here admits
  identical-subscript and loop-invariant patterns and rejects negative
  offsets (a read of ``A[i+1]`` in the second loop against a write of
  ``A[i]`` in the first would be broken by fusion).
* :func:`fission` splits a loop whose body holds several statements into
  one loop per statement; legal iff no dependence runs backwards between
  the split statements (a statement must not read what a *later* statement
  wrote in the same iteration's future — which plain statement order
  already precludes for the admitted forward dependences).
"""

from __future__ import annotations

from dataclasses import replace as dc_replace

from repro.analysis.polyhedral import access_functions, affine_of
from repro.ir.nodes import Block, For, Stmt
from repro.ir.visitors import loop_vars

__all__ = ["can_fuse", "fuse", "fission"]


def _headers_match(a: For, b: For) -> bool:
    return (
        a.var == b.var
        and a.lower == b.lower
        and a.upper == b.upper
        and a.step == b.step
    )


def can_fuse(first: For, second: For) -> bool:
    """Conservative fusion legality for two adjacent same-header loops.

    After fusion, iteration ``i`` of the second body runs *before*
    iterations ``j > i`` of the first body.  Any dependence from the first
    loop's writes to the second loop's accesses (or vice versa) with a
    positive distance in the fused index would be reversed; we admit only
    pairs whose subscripts in the shared index differ by a non-positive
    offset (second reads data the first produced in the same or an earlier
    iteration)."""
    if not _headers_match(first, second):
        return False
    shared = first.var

    first_acc = access_functions(first.body)
    second_acc = access_functions(second.body)

    for a in first_acc:
        for b in second_acc:
            if a.array != b.array:
                continue
            if not (a.is_write or b.is_write):
                continue
            if not (a.is_affine and b.is_affine):
                return False
            if a.linear_part() != b.linear_part():
                return False
            for sa, sb in zip(a.subscripts, b.subscripts):
                assert sa is not None and sb is not None
                if sa.coeff(shared) == 0 and sb.coeff(shared) == 0:
                    if sa.const != sb.const and (a.is_write and b.is_write):
                        continue
                    continue
                # offset of the second access relative to the first in the
                # fused loop's index: positive means the second loop touches
                # *future* iterations' data of the first loop -> illegal
                delta = sb.const - sa.const
                coeff = sa.coeff(shared)
                if coeff == 0:
                    return False
                if (delta / coeff) > 0:
                    return False
    return True


def fuse(first: For, second: For) -> For:
    """Fuse two adjacent loops with identical headers into one loop whose
    body concatenates both bodies.

    :raises ValueError: if the headers differ or :func:`can_fuse` rejects
        the pair."""
    if not _headers_match(first, second):
        raise ValueError(
            f"cannot fuse loops with different headers: {first.var!r} vs {second.var!r}"
        )
    if not can_fuse(first, second):
        raise ValueError("fusion would reverse a dependence")
    body = Block(tuple(first.body.stmts) + tuple(second.body.stmts))
    return dc_replace(first, body=body, annotations=first.annotations + (("fused", True),))


def fission(loop: For) -> list[For]:
    """Distribute a loop over the statements of its body (one loop per
    statement, original order).

    Legal for the forward-dependence bodies the IR's statement order
    already implies: statement ``k`` may consume what statements ``< k``
    produced in the same iteration — after fission the earlier statement's
    *whole loop* runs first, which preserves those values.  What breaks
    fission is a *backward* loop-carried dependence (statement ``k``
    consuming what a later statement produced in an earlier iteration);
    the conservative check rejects any array written by a later statement
    and read by an earlier one.

    :raises ValueError: if the body has fewer than two statements or the
        backward-dependence check fails."""
    if not isinstance(loop.body, Block) or len(loop.body.stmts) < 2:
        raise ValueError("fission needs a loop body with at least two statements")
    stmts = loop.body.stmts

    for idx, earlier in enumerate(stmts):
        reads = {
            acc.array for acc in access_functions_of(earlier) if not acc.is_write
        }
        for later in stmts[idx + 1 :]:
            writes = {
                acc.array for acc in access_functions_of(later) if acc.is_write
            }
            if reads & writes:
                raise ValueError(
                    f"fission would break a backward dependence on {sorted(reads & writes)}"
                )

    return [
        dc_replace(loop, body=Block((s,)), annotations=loop.annotations + (("fissioned", idx),))
        for idx, s in enumerate(stmts)
    ]


def access_functions_of(stmt: Stmt):
    """Access functions of a single statement (helper shared with tests)."""
    return access_functions(stmt)
