"""Loop unrolling.

Unrolling is one of the transformations the paper names as requiring
multi-versioning rather than parameterization (§IV: "there are some
transformations such as loop unrolling, fission and fusion which can not be
realized using parameterized code") — which is why the framework fixes the
factor per generated version.

``unroll(loop, factor)`` produces a main loop stepping by ``factor`` with the
body replicated (indices substituted) plus a remainder loop::

    for v in [lo, lo + ((hi-lo)/f)*f) step f: body(v); body(v+1); ... body(v+f-1)
    for v in [lo + ((hi-lo)/f)*f, hi): body(v)

The result is a Block (two loops), so unrolling is applied innermost-last.
"""

from __future__ import annotations

from repro.ir.builder import block
from repro.ir.nodes import Block, For, IntLit, Stmt, Var
from repro.ir.visitors import substitute

__all__ = ["unroll"]


def unroll(loop: For, factor: int) -> Stmt:
    """Unroll *loop* by *factor*; returns the original loop for factor 1.

    Requires unit step.  The trip count need not be a multiple of the
    factor — a remainder loop covers the tail.
    """
    if factor < 1:
        raise ValueError(f"unroll factor must be >= 1, got {factor}")
    if factor == 1:
        return loop
    if not (isinstance(loop.step, IntLit) and loop.step.value == 1):
        raise ValueError("only unit-step loops can be unrolled")

    v = Var(loop.var)
    span = loop.upper - loop.lower
    main_trip = (span // factor) * factor
    main_upper = loop.lower + main_trip

    bodies: list[Stmt] = []
    for offset in range(factor):
        replica = substitute(loop.body, {loop.var: v + offset}) if offset else loop.body
        if isinstance(replica, Block):
            bodies.extend(replica.stmts)
        else:
            bodies.append(replica)  # type: ignore[arg-type]

    main = For(
        var=loop.var,
        lower=loop.lower,
        upper=main_upper,
        step=IntLit(factor),
        body=Block(tuple(bodies)),
        parallel=loop.parallel,
        annotations=loop.annotations + (("unrolled", factor),),
    )
    remainder = For(
        var=loop.var,
        lower=main_upper,
        upper=loop.upper,
        step=IntLit(1),
        body=loop.body,
        annotations=loop.annotations + (("unroll_remainder", factor),),
    )
    return block(main, remainder)
