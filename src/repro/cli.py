"""Command-line interface.

::

    python -m repro kernels
    python -m repro machines
    python -m repro tune mm --machine westmere --emit-c mm_tuned.c
    python -m repro tune mm --size N=700 --energy --optimizer rsgde3 --json out.json
    python -m repro tune mm --trace out.jsonl --metrics
    python -m repro tune-file kernel.c --size N=1400 --machine barcelona
    python -m repro tune-file program.c --multiregion --size N=800 --workers 8
    python -m repro trace out.jsonl
    python -m repro serve-replay mm --policy thread_cap --requests 200000 \
        --cores 2 --cores 8 --baseline

The ``tune`` commands run the full pipeline (analysis → RS-GDE3 →
multi-versioning) against a simulated target machine and print the Pareto
summary; ``--emit-c`` additionally writes the multi-versioned C translation
unit and ``--json`` the machine-readable result.  ``--trace FILE`` records
an end-to-end JSONL trace (driver phases, optimizer generations, engine
batches, runtime selections) and ``--metrics`` prints the run's metrics in
Prometheus text format; ``repro trace FILE`` summarizes a recorded trace.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.driver.compiler import TuningDriver
from repro.evaluation.disk_cache import DEFAULT_CACHE_DIR
from repro.frontend.kernels import ALL_KERNELS, get_kernel
from repro.machine.model import BARCELONA, WESTMERE, machine_by_name
from repro.obs import Observability, TraceError, trace_summary_for_path
from repro.util.tables import Table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-objective auto-tuning framework (SC'12 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("kernels", help="list the registered benchmark kernels")
    sub.add_parser("machines", help="list the simulated target machines")

    def add_cache_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--cache-dir",
            nargs="?",
            const=DEFAULT_CACHE_DIR,
            default=None,
            metavar="DIR",
            help="persist measurements across runs in DIR (bare flag uses "
            f"{DEFAULT_CACHE_DIR}); repeated runs serve cached "
            "configurations from disk without re-evaluating the model",
        )
        p.add_argument(
            "--no-cache",
            action="store_true",
            help="ignore --cache-dir (force every measurement to recompute)",
        )

    def add_obs_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--trace",
            metavar="FILE",
            help="record an end-to-end JSONL trace here (summarize it "
            "later with 'repro trace FILE')",
        )
        p.add_argument(
            "--metrics",
            action="store_true",
            help="print the run's metrics (Prometheus text format) at the end",
        )

    report = sub.add_parser(
        "report", help="run the fast reproduction subset, write markdown"
    )
    report.add_argument("--out", metavar="FILE", help="write here instead of stdout")
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--repetitions", type=int, default=3)
    report.add_argument(
        "--workers",
        default="1",
        metavar="N",
        help="evaluation-engine workers (integer or 'auto' = 3/4 of cores)",
    )
    add_obs_options(report)
    add_cache_options(report)

    trace = sub.add_parser(
        "trace", help="summarize a JSONL trace recorded with --trace"
    )
    trace.add_argument("path", help="trace file written by --trace")

    def add_tune_options(p: argparse.ArgumentParser) -> None:
        add_obs_options(p)
        add_cache_options(p)
        p.add_argument("--machine", default="westmere", help="westmere | barcelona")
        p.add_argument(
            "--size",
            action="append",
            default=[],
            metavar="NAME=VALUE",
            help="problem-size binding (repeatable), e.g. --size N=700",
        )
        p.add_argument(
            "--optimizer",
            default="rsgde3",
            choices=["rsgde3", "nsga2", "random"],
        )
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--workers",
            default="1",
            metavar="N",
            help="evaluate configuration batches with N worker threads "
            "(integer or 'auto' = 3/4 of cores); results are bit-identical "
            "to the serial default",
        )
        p.add_argument(
            "--eval-backend",
            default="thread",
            choices=["thread", "process"],
            help="dispatch backend for the evaluation engine: 'thread' "
            "(default, shared model) or 'process' (pickled model state, "
            "true parallelism for large grids); results are bit-identical",
        )
        p.add_argument(
            "--engine-stats",
            action="store_true",
            help="print evaluation-engine accounting after tuning",
        )
        p.add_argument(
            "--energy",
            action="store_true",
            help="tune (time, resources, energy) instead of (time, resources)",
        )
        p.add_argument(
            "--multiregion",
            action="store_true",
            help="tune every region of the program simultaneously through "
            "the fused cross-region scheduler (one shared worker pool, "
            "program runs amortized across regions); rsgde3 only",
        )
        p.add_argument(
            "--pipeline",
            action="store_true",
            help="with --multiregion: let a region that finishes its "
            "generation early run up to one generation ahead of slower "
            "regions (results stay bit-identical)",
        )
        p.add_argument("--emit-c", metavar="FILE", help="write multi-versioned C here")
        p.add_argument("--json", metavar="FILE", help="write the result as JSON here")

    tune = sub.add_parser("tune", help="tune a registered kernel")
    tune.add_argument("kernel", choices=sorted(ALL_KERNELS))
    add_tune_options(tune)

    tune_file = sub.add_parser("tune-file", help="tune a C-like source file")
    tune_file.add_argument("path", help="file with one kernel function")
    add_tune_options(tune_file)

    serve = sub.add_parser(
        "serve-replay",
        help="tune a kernel, then replay a synthetic request stream "
        "through the runtime's precompiled dispatch path",
    )
    serve.add_argument("kernel", choices=sorted(ALL_KERNELS))
    add_obs_options(serve)
    add_cache_options(serve)
    serve.add_argument("--machine", default="westmere", help="westmere | barcelona")
    serve.add_argument(
        "--size",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="problem-size binding (repeatable), e.g. --size N=700",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--policy",
        default="balanced",
        metavar="NAME",
        help="selection policy for dispatch (see repro.runtime."
        "policy_by_name), e.g. balanced, fastest, thread_cap, time_cap:0.5",
    )
    serve.add_argument(
        "--requests",
        type=int,
        default=100_000,
        metavar="N",
        help="synthetic requests to replay (default 100000)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="dispatch worker threads (default 1)",
    )
    serve.add_argument(
        "--cores",
        action="append",
        type=int,
        default=[],
        metavar="N",
        help="attach an available-cores context drawn uniformly from the "
        "given values (repeatable) — exercises context-sensitive policies",
    )
    serve.add_argument(
        "--baseline",
        action="store_true",
        help="also replay through the scalar per-call path and report the "
        "precompiled speedup (selection sequences are verified identical)",
    )
    serve.add_argument("--json", metavar="FILE", help="write the result as JSON here")
    return parser


def _parse_workers(value: str) -> int | str:
    if value == "auto":
        return "auto"
    try:
        workers = int(value)
    except ValueError:
        raise SystemExit(
            f"--workers expects an integer or 'auto', got {value!r}"
        ) from None
    if workers < 1:
        raise SystemExit("--workers must be >= 1")
    return workers


def _build_obs(args) -> Observability | None:
    """One observability handle per invocation: a collecting tracer when
    ``--trace`` was given, metrics-only for a bare ``--metrics``, and None
    (fully disabled) otherwise."""
    if getattr(args, "trace", None):
        obs = Observability.tracing()
    elif getattr(args, "metrics", False):
        obs = Observability.disabled()
    else:
        return None
    if args.trace:
        # fail before the (long) run, not after it — a clear error beats a
        # stack trace once the tuning time is already spent
        try:
            with open(args.trace, "w"):
                pass
        except OSError as exc:
            raise SystemExit(f"cannot write trace file {args.trace}: {exc}") from None
    return obs


def _finish_obs(args, obs: Observability | None, meta: dict, out) -> None:
    """Write the trace file and/or print metrics after a traced run."""
    if obs is None:
        return
    if getattr(args, "trace", None):
        try:
            n = obs.tracer.write_jsonl(args.trace, meta=meta)
        except TraceError as exc:
            raise SystemExit(str(exc)) from None
        print(f"wrote {args.trace} ({n} trace records)", file=out)
    if getattr(args, "metrics", False):
        print(obs.metrics.exposition(), file=out, end="")


def _parse_sizes(entries: list[str]) -> dict[str, int]:
    sizes = {}
    for entry in entries:
        if "=" not in entry:
            raise SystemExit(f"--size expects NAME=VALUE, got {entry!r}")
        name, _, value = entry.partition("=")
        try:
            sizes[name.strip()] = int(value)
        except ValueError:
            raise SystemExit(f"--size value must be an integer: {entry!r}") from None
    return sizes


def _cmd_kernels(out) -> int:
    t = Table(["kernel", "tuned loops", "computation", "memory", "default size"])
    for name in sorted(ALL_KERNELS):
        k = get_kernel(name)
        t.add_row(
            [
                name,
                ",".join(k.tile_loops),
                k.complexity[0],
                k.complexity[1],
                " ".join(f"{a}={b}" for a, b in k.default_size.items()),
            ]
        )
    print(t.render(), file=out)
    return 0


def _cmd_machines(out) -> int:
    t = Table(["machine", "sockets x cores", "L1/L2/L3", "thread counts"])
    for m in (WESTMERE, BARCELONA):
        t.add_row(
            [
                m.name,
                f"{m.sockets} x {m.cores_per_socket}",
                f"{m.level('L1').size // 1024}K/{m.level('L2').size // 1024}K/"
                f"{m.level('L3').size // (1024 * 1024)}M",
                ",".join(map(str, m.default_thread_counts())),
            ]
        )
    print(t.render(), file=out)
    return 0


def _cache_dir(args) -> str | None:
    if getattr(args, "no_cache", False):
        return None
    return getattr(args, "cache_dir", None)


def _cmd_tune(args, out) -> int:
    machine = machine_by_name(args.machine)
    obs = _build_obs(args)
    driver = TuningDriver(
        machine=machine,
        seed=args.seed,
        workers=_parse_workers(args.workers),
        obs=obs,
        cache_dir=_cache_dir(args),
        backend=args.eval_backend,
    )
    sizes = _parse_sizes(args.size)

    if args.multiregion:
        return _cmd_tune_multiregion(args, out, machine, obs, driver, sizes)
    if args.pipeline:
        raise SystemExit("--pipeline requires --multiregion")

    if args.command == "tune":
        tuned = driver.tune_kernel(
            args.kernel,
            sizes=sizes or None,
            optimizer=args.optimizer,
            run_seed=args.seed,
            with_energy=args.energy,
        )
    else:
        source = Path(args.path).read_text()
        if not sizes:
            raise SystemExit("tune-file requires --size bindings for the symbolic extents")
        tuned = driver.tune_source(
            source, sizes=sizes, optimizer=args.optimizer, run_seed=args.seed
        )

    if obs is not None and obs.enabled:
        # exercise the runtime layer so the trace is end to end: one
        # selection decision per core policy against the tuned table
        tuned.preview_selections()

    print(tuned.summary(), file=out)

    stats = tuned.engine_stats
    if args.engine_stats and stats is not None:
        print(
            f"engine: workers={tuned.engine.max_workers} "
            f"backend={tuned.engine.backend} {stats.summary()}",
            file=out,
        )
        if driver.disk_cache is not None:
            print(driver.disk_cache.summary(), file=out)

    if args.emit_c:
        unit = tuned.emit_c()
        Path(args.emit_c).write_text(unit.source)
        print(f"wrote {args.emit_c} ({len(unit.versions)} versions)", file=out)

    if args.json:
        payload = {
            "kernel": tuned.name,
            "machine": machine.name,
            "optimizer": args.optimizer,
            "evaluations": tuned.result.evaluations,
            "generations": tuned.result.generations,
            "baseline_time": tuned.baseline_time,
            "sequential_time": tuned.sequential_time,
            "front": [
                {
                    "values": dict(c.values),
                    "objectives": list(c.objectives),
                }
                for c in tuned.result.front
            ],
        }
        if stats is not None:
            payload["engine"] = {
                "workers": tuned.engine.max_workers,
                **stats.as_dict(),
            }
        Path(args.json).write_text(json.dumps(payload, indent=1))
        print(f"wrote {args.json}", file=out)

    _finish_obs(
        args,
        obs,
        meta={
            "command": args.command,
            "kernel": tuned.name,
            "machine": machine.name,
            "optimizer": args.optimizer,
            "seed": args.seed,
            "workers": str(args.workers),
        },
        out=out,
    )
    return 0


def _cmd_tune_multiregion(args, out, machine, obs, driver, sizes) -> int:
    """``tune --multiregion`` / ``tune-file --multiregion``: all regions
    of the program at once through the fused cross-region scheduler."""
    if args.optimizer != "rsgde3":
        raise SystemExit(
            f"--multiregion tunes with rsgde3 only (got --optimizer {args.optimizer})"
        )
    if args.energy:
        raise SystemExit("--multiregion does not support --energy yet")
    if args.emit_c:
        raise SystemExit("--multiregion does not support --emit-c yet")

    if args.command == "tune":
        from repro.frontend.kernels import get_kernel

        kernel = get_kernel(args.kernel)
        fn, merged, name = kernel.function, kernel.sizes(sizes or None), args.kernel
    else:
        from repro.frontend.parser import parse_function

        if not sizes:
            raise SystemExit(
                "tune-file requires --size bindings for the symbolic extents"
            )
        fn = parse_function(Path(args.path).read_text())
        merged, name = sizes, fn.name

    result = driver.tune_multiregion(
        fn, merged, run_seed=args.seed, pipeline=args.pipeline
    )

    print(f"{name} on {machine.name}: {len(result.results)} regions", file=out)
    print(result.summary(), file=out)
    if args.engine_stats and result.engine_stats is not None:
        print(f"engine: workers={args.workers} {result.engine_stats.summary()}", file=out)
        if driver.disk_cache is not None:
            print(driver.disk_cache.summary(), file=out)

    if args.json:
        payload = {
            "kernel": name,
            "machine": machine.name,
            "optimizer": args.optimizer,
            "multiregion": True,
            "pipeline": args.pipeline,
            "program_runs": result.program_runs,
            "generations": result.generations,
            "sharing_factor": result.sharing_factor,
            "regions": [
                {
                    "evaluations": r.evaluations,
                    "generations": r.generations,
                    "front": [
                        {
                            "values": dict(c.values),
                            "objectives": list(c.objectives),
                        }
                        for c in r.front
                    ],
                }
                for r in result.results
            ],
        }
        if result.engine_stats is not None:
            payload["engine"] = {
                "workers": str(args.workers),
                **result.engine_stats.as_dict(),
            }
        Path(args.json).write_text(json.dumps(payload, indent=1))
        print(f"wrote {args.json}", file=out)

    _finish_obs(
        args,
        obs,
        meta={
            "command": args.command,
            "kernel": name,
            "machine": machine.name,
            "optimizer": args.optimizer,
            "multiregion": "true",
            "seed": args.seed,
            "workers": str(args.workers),
        },
        out=out,
    )
    return 0


def _cmd_report(args, out) -> int:
    from repro.report import generate_report

    obs = _build_obs(args)
    text = generate_report(
        repetitions=args.repetitions,
        seed=args.seed,
        workers=_parse_workers(args.workers),
        obs=obs,
        cache_dir=_cache_dir(args),
    )
    if args.out:
        Path(args.out).write_text(text)
        print(f"wrote {args.out}", file=out)
    else:
        print(text, file=out)
    _finish_obs(
        args,
        obs,
        meta={"command": "report", "seed": args.seed, "workers": str(args.workers)},
        out=out,
    )
    return 0


def _cmd_serve_replay(args, out) -> int:
    """``serve-replay``: tune, then drive the runtime dispatch path with a
    deterministic synthetic request stream and report throughput."""
    import numpy as np

    from repro.runtime import DispatchEngine, generate_workload, policy_by_name

    if args.requests < 1:
        raise SystemExit("--requests must be >= 1")
    if args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    try:
        policy = policy_by_name(args.policy)
    except KeyError as exc:
        raise SystemExit(str(exc.args[0])) from None

    machine = machine_by_name(args.machine)
    obs = _build_obs(args)
    driver = TuningDriver(
        machine=machine, seed=args.seed, obs=obs, cache_dir=_cache_dir(args)
    )
    tuned = driver.tune_kernel(
        args.kernel,
        sizes=_parse_sizes(args.size) or None,
        run_seed=args.seed,
    )
    table = tuned.build_version_table(executable=False)
    region = table.region_name
    print(
        f"{region} on {machine.name}: {len(table)} versions, "
        f"policy {policy.describe()}",
        file=out,
    )

    workload = generate_workload(
        [region], args.requests, seed=args.seed, core_choices=args.cores or None
    )
    engine = DispatchEngine(
        {region: table}, policy, obs=obs, workers=args.workers
    )
    result = engine.replay(workload)
    print(
        f"replayed {result.requests} requests on {result.workers} worker(s) "
        f"in {result.elapsed:.3f}s ({result.throughput:,.0f} selections/s)",
        file=out,
    )
    for (_, index), count in sorted(result.version_counts.items()):
        v = table[index]
        print(
            f"  version {index}: {count} requests "
            f"(t={v.meta.time:.4g}s, threads={v.meta.threads})",
            file=out,
        )

    speedup = None
    if args.baseline:
        baseline_engine = DispatchEngine(
            {region: table}, policy, workers=args.workers, compiled=False
        )
        baseline = baseline_engine.replay(workload)
        if not np.array_equal(result.selections, baseline.selections):
            raise SystemExit(
                "precompiled and per-call selection sequences diverged "
                "(this is a bug — the compiled path must match its oracle)"
            )
        speedup = baseline.elapsed / result.elapsed if result.elapsed > 0 else float("inf")
        print(
            f"baseline (per-call): {baseline.elapsed:.3f}s "
            f"({baseline.throughput:,.0f} selections/s) — precompiled is "
            f"{speedup:.1f}x faster, selection sequences identical",
            file=out,
        )

    if args.json:
        payload = {
            "kernel": args.kernel,
            "machine": machine.name,
            "policy": args.policy,
            "requests": result.requests,
            "workers": result.workers,
            "elapsed_seconds": result.elapsed,
            "throughput_per_second": result.throughput,
            "version_counts": {
                str(index): count
                for (_, index), count in sorted(result.version_counts.items())
            },
        }
        if speedup is not None:
            payload["baseline_speedup"] = speedup
        Path(args.json).write_text(json.dumps(payload, indent=1))
        print(f"wrote {args.json}", file=out)

    _finish_obs(
        args,
        obs,
        meta={
            "command": "serve-replay",
            "kernel": args.kernel,
            "machine": machine.name,
            "policy": args.policy,
            "requests": args.requests,
            "seed": args.seed,
            "workers": str(args.workers),
        },
        out=out,
    )
    return 0


def _cmd_trace(args, out) -> int:
    try:
        print(trace_summary_for_path(args.path), file=out)
    except TraceError as exc:
        raise SystemExit(str(exc)) from None
    return 0


def main(argv: list[str] | None = None, out=sys.stdout) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "kernels":
            return _cmd_kernels(out)
        if args.command == "machines":
            return _cmd_machines(out)
        if args.command == "report":
            return _cmd_report(args, out)
        if args.command == "trace":
            return _cmd_trace(args, out)
        if args.command == "serve-replay":
            return _cmd_serve_replay(args, out)
        return _cmd_tune(args, out)
    except BrokenPipeError:
        # downstream closed early (| head, | less q) — not an error; point
        # stdout at devnull so the interpreter's exit flush stays quiet
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
