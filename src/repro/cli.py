"""Command-line interface.

::

    python -m repro kernels
    python -m repro machines
    python -m repro tune mm --machine westmere --emit-c mm_tuned.c
    python -m repro tune mm --size N=700 --energy --optimizer rsgde3 --json out.json
    python -m repro tune-file kernel.c --size N=1400 --machine barcelona

The ``tune`` commands run the full pipeline (analysis → RS-GDE3 →
multi-versioning) against a simulated target machine and print the Pareto
summary; ``--emit-c`` additionally writes the multi-versioned C translation
unit and ``--json`` the machine-readable result.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.driver.compiler import TuningDriver
from repro.frontend.kernels import ALL_KERNELS, get_kernel
from repro.machine.model import BARCELONA, WESTMERE, machine_by_name
from repro.util.tables import Table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-objective auto-tuning framework (SC'12 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("kernels", help="list the registered benchmark kernels")
    sub.add_parser("machines", help="list the simulated target machines")

    report = sub.add_parser(
        "report", help="run the fast reproduction subset, write markdown"
    )
    report.add_argument("--out", metavar="FILE", help="write here instead of stdout")
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--repetitions", type=int, default=3)
    report.add_argument(
        "--workers",
        default="1",
        metavar="N",
        help="evaluation-engine workers (integer or 'auto' = 3/4 of cores)",
    )

    def add_tune_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--machine", default="westmere", help="westmere | barcelona")
        p.add_argument(
            "--size",
            action="append",
            default=[],
            metavar="NAME=VALUE",
            help="problem-size binding (repeatable), e.g. --size N=700",
        )
        p.add_argument(
            "--optimizer",
            default="rsgde3",
            choices=["rsgde3", "nsga2", "random"],
        )
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--workers",
            default="1",
            metavar="N",
            help="evaluate configuration batches with N worker threads "
            "(integer or 'auto' = 3/4 of cores); results are bit-identical "
            "to the serial default",
        )
        p.add_argument(
            "--engine-stats",
            action="store_true",
            help="print evaluation-engine accounting after tuning",
        )
        p.add_argument(
            "--energy",
            action="store_true",
            help="tune (time, resources, energy) instead of (time, resources)",
        )
        p.add_argument("--emit-c", metavar="FILE", help="write multi-versioned C here")
        p.add_argument("--json", metavar="FILE", help="write the result as JSON here")

    tune = sub.add_parser("tune", help="tune a registered kernel")
    tune.add_argument("kernel", choices=sorted(ALL_KERNELS))
    add_tune_options(tune)

    tune_file = sub.add_parser("tune-file", help="tune a C-like source file")
    tune_file.add_argument("path", help="file with one kernel function")
    add_tune_options(tune_file)
    return parser


def _parse_workers(value: str) -> int | str:
    if value == "auto":
        return "auto"
    try:
        workers = int(value)
    except ValueError:
        raise SystemExit(
            f"--workers expects an integer or 'auto', got {value!r}"
        ) from None
    if workers < 1:
        raise SystemExit("--workers must be >= 1")
    return workers


def _parse_sizes(entries: list[str]) -> dict[str, int]:
    sizes = {}
    for entry in entries:
        if "=" not in entry:
            raise SystemExit(f"--size expects NAME=VALUE, got {entry!r}")
        name, _, value = entry.partition("=")
        try:
            sizes[name.strip()] = int(value)
        except ValueError:
            raise SystemExit(f"--size value must be an integer: {entry!r}") from None
    return sizes


def _cmd_kernels(out) -> int:
    t = Table(["kernel", "tuned loops", "computation", "memory", "default size"])
    for name in sorted(ALL_KERNELS):
        k = get_kernel(name)
        t.add_row(
            [
                name,
                ",".join(k.tile_loops),
                k.complexity[0],
                k.complexity[1],
                " ".join(f"{a}={b}" for a, b in k.default_size.items()),
            ]
        )
    print(t.render(), file=out)
    return 0


def _cmd_machines(out) -> int:
    t = Table(["machine", "sockets x cores", "L1/L2/L3", "thread counts"])
    for m in (WESTMERE, BARCELONA):
        t.add_row(
            [
                m.name,
                f"{m.sockets} x {m.cores_per_socket}",
                f"{m.level('L1').size // 1024}K/{m.level('L2').size // 1024}K/"
                f"{m.level('L3').size // (1024 * 1024)}M",
                ",".join(map(str, m.default_thread_counts())),
            ]
        )
    print(t.render(), file=out)
    return 0


def _cmd_tune(args, out) -> int:
    machine = machine_by_name(args.machine)
    driver = TuningDriver(
        machine=machine, seed=args.seed, workers=_parse_workers(args.workers)
    )
    sizes = _parse_sizes(args.size)

    if args.command == "tune":
        tuned = driver.tune_kernel(
            args.kernel,
            sizes=sizes or None,
            optimizer=args.optimizer,
            run_seed=args.seed,
            with_energy=args.energy,
        )
    else:
        source = Path(args.path).read_text()
        if not sizes:
            raise SystemExit("tune-file requires --size bindings for the symbolic extents")
        tuned = driver.tune_source(
            source, sizes=sizes, optimizer=args.optimizer, run_seed=args.seed
        )

    print(tuned.summary(), file=out)

    stats = tuned.engine_stats
    if args.engine_stats and stats is not None:
        print(
            f"engine: workers={tuned.engine.max_workers} {stats.summary()}",
            file=out,
        )

    if args.emit_c:
        unit = tuned.emit_c()
        Path(args.emit_c).write_text(unit.source)
        print(f"wrote {args.emit_c} ({len(unit.versions)} versions)", file=out)

    if args.json:
        payload = {
            "kernel": tuned.name,
            "machine": machine.name,
            "optimizer": args.optimizer,
            "evaluations": tuned.result.evaluations,
            "generations": tuned.result.generations,
            "baseline_time": tuned.baseline_time,
            "sequential_time": tuned.sequential_time,
            "front": [
                {
                    "values": dict(c.values),
                    "objectives": list(c.objectives),
                }
                for c in tuned.result.front
            ],
        }
        if stats is not None:
            payload["engine"] = {
                "workers": tuned.engine.max_workers,
                **stats.as_dict(),
            }
        Path(args.json).write_text(json.dumps(payload, indent=1))
        print(f"wrote {args.json}", file=out)
    return 0


def _cmd_report(args, out) -> int:
    from repro.report import generate_report

    text = generate_report(
        repetitions=args.repetitions,
        seed=args.seed,
        workers=_parse_workers(args.workers),
    )
    if args.out:
        Path(args.out).write_text(text)
        print(f"wrote {args.out}", file=out)
    else:
        print(text, file=out)
    return 0


def main(argv: list[str] | None = None, out=sys.stdout) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "kernels":
        return _cmd_kernels(out)
    if args.command == "machines":
        return _cmd_machines(out)
    if args.command == "report":
        return _cmd_report(args, out)
    return _cmd_tune(args, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
