"""Trace-file loading and summarization (the ``repro trace`` subcommand).

Reads a JSONL trace written by :meth:`repro.obs.tracer.Tracer.write_jsonl`
and renders the three views the paper's analysis needs: where the wall
time went (phase breakdown over the span tree), how the optimizer
converged (the V-vs-E trajectory from ``optimizer.generation`` events),
and what the evaluation engine / runtime did (``engine.batch`` span
accounting, ``runtime.selection`` decisions).

Malformed input raises :class:`~repro.obs.tracer.TraceError` with the
offending line number — the CLI turns that into a clean one-line error
instead of a stack trace.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.tracer import TraceError
from repro.util.tables import Table

__all__ = ["load_trace", "summarize_trace", "trace_summary_for_path"]


def load_trace(path: str | Path) -> list[dict]:
    """Parse a JSONL trace file into its records.

    :raises TraceError: if the file is missing, unreadable, empty, or any
        line is not a JSON object with a ``type`` field.
    """
    p = Path(path)
    try:
        text = p.read_text()
    except OSError as exc:
        raise TraceError(f"cannot read trace file {path}: {exc}") from exc

    records: list[dict] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceError(
                f"corrupt trace file {path}: line {lineno} is not valid JSON "
                f"({exc.msg})"
            ) from exc
        if not isinstance(record, dict) or "type" not in record:
            raise TraceError(
                f"corrupt trace file {path}: line {lineno} is not a trace "
                "record (expected a JSON object with a 'type' field)"
            )
        records.append(record)
    if not records:
        raise TraceError(f"trace file {path} is empty")
    return records


# ----------------------------------------------------------------------


def _spans(records: list[dict], name: str | None = None) -> list[dict]:
    return [
        r
        for r in records
        if r.get("type") == "span" and (name is None or r.get("name") == name)
    ]


def _events(records: list[dict], name: str) -> list[dict]:
    return [r for r in records if r.get("type") == "event" and r.get("name") == name]


def _phase_table(records: list[dict]) -> str | None:
    """Wall-time breakdown over top-level spans (no parent in the trace)."""
    spans = _spans(records)
    if not spans:
        return None
    ids = {s["id"] for s in spans}
    roots = [s for s in spans if s.get("parent") not in ids]
    by_name: dict[str, list[dict]] = {}
    for s in roots:
        by_name.setdefault(s["name"], []).append(s)
    total = sum(s.get("duration", 0.0) for s in roots) or 1.0

    t = Table(["phase", "spans", "total [s]", "share"], title="Phase breakdown")
    order = sorted(
        by_name, key=lambda n: -sum(s.get("duration", 0.0) for s in by_name[n])
    )
    for name in order:
        dur = sum(s.get("duration", 0.0) for s in by_name[name])
        t.add_row([name, len(by_name[name]), dur, f"{100 * dur / total:.1f}%"])
    return t.render()


def _convergence_table(records: list[dict]) -> str | None:
    events = _events(records, "optimizer.generation")
    if not events:
        return None
    t = Table(
        ["algorithm", "gen", "E", "|S|", "V(S)", "accepted", "dominated"],
        title="Convergence trajectory",
    )
    for e in events:
        a = e.get("attrs", {})
        hv = a.get("hypervolume", float("nan"))
        t.add_row(
            [
                a.get("algorithm", "?"),
                a.get("generation", "?"),
                a.get("evaluations", "?"),
                a.get("front_size", "?"),
                f"{hv:.4g}" if isinstance(hv, (int, float)) else hv,
                a.get("accepted", 0),
                a.get("dominated", 0),
            ]
        )
    return t.render()


def _engine_table(records: list[dict]) -> str | None:
    batches = _spans(records, "engine.batch")
    if not batches:
        return None
    keys = (
        "configs",
        "dispatched",
        "cache_hits",
        "deduped",
        "new_evaluations",
        "retried",
        "timeouts",
        "failed",
    )
    totals = {k: 0 for k in keys}
    wall = 0.0
    for s in batches:
        a = s.get("attrs", {})
        for k in keys:
            totals[k] += int(a.get(k, 0))
        wall += s.get("duration", 0.0)
    t = Table(
        ["batches", *keys, "wall [s]"],
        title="Evaluation-engine accounting",
    )
    t.add_row([len(batches), *[totals[k] for k in keys], wall])
    return t.render()


def _scheduler_table(records: list[dict]) -> str | None:
    """Per-region accounting of a fused cross-region session, from the
    ``scheduler.batch`` events the engine emits at each batch commit."""
    events = _events(records, "scheduler.batch")
    if not events:
        return None
    keys = ("configs", "dispatched", "cache_hits", "deduped", "shared_hits")
    by_region: dict[str, dict] = {}
    for e in events:
        a = e.get("attrs", {})
        row = by_region.setdefault(
            str(a.get("region", "?")), {"batches": 0, **{k: 0 for k in keys}}
        )
        row["batches"] += 1
        for k in keys:
            row[k] += int(a.get(k, 0))
    t = Table(
        ["region", "batches", *keys],
        title="Cross-region scheduler",
    )
    for region in sorted(by_region):
        row = by_region[region]
        t.add_row([region, row["batches"], *[row[k] for k in keys]])
    return t.render()


def _selection_table(records: list[dict]) -> str | None:
    events = _events(records, "runtime.selection")
    if not events:
        return None
    t = Table(
        ["policy", "decisions", "versions chosen", "avg predicted [s]"],
        title="Runtime selection decisions",
    )
    by_policy: dict[str, list[dict]] = {}
    for e in events:
        by_policy.setdefault(e.get("attrs", {}).get("policy", "?"), []).append(e)
    for policy in sorted(by_policy):
        attrs = [e.get("attrs", {}) for e in by_policy[policy]]
        versions = sorted({str(a.get("version", "?")) for a in attrs})
        predicted = [a.get("predicted_time") for a in attrs]
        predicted = [p for p in predicted if isinstance(p, (int, float))]
        avg = sum(predicted) / len(predicted) if predicted else float("nan")
        t.add_row([policy, len(attrs), ",".join(versions), avg])
    return t.render()


def summarize_trace(records: list[dict]) -> str:
    """Render the phase/convergence/engine/runtime summary of a trace."""
    meta = next((r for r in records if r.get("type") == "meta"), {})
    lines = []
    context = " ".join(
        f"{k}={meta[k]}" for k in ("kernel", "machine", "command") if k in meta
    )
    n_spans = len(_spans(records))
    n_events = sum(1 for r in records if r.get("type") == "event")
    lines.append(
        f"trace: {n_spans} spans, {n_events} events"
        + (f" ({context})" if context else "")
    )
    for section in (
        _phase_table(records),
        _convergence_table(records),
        _engine_table(records),
        _scheduler_table(records),
        _selection_table(records),
    ):
        if section is not None:
            lines.append("")
            lines.append(section)
    return "\n".join(lines)


def trace_summary_for_path(path: str | Path) -> str:
    """Load + summarize in one call (raises :class:`TraceError`)."""
    return summarize_trace(load_trace(path))
