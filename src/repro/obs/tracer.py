"""Span-based tracing with JSONL export.

A :class:`Tracer` records two kinds of telemetry:

* **spans** — timed scopes opened with ``tracer.span(name, **attrs)`` as a
  context manager.  Spans nest: the span opened most recently on the same
  thread becomes the parent, so a trace reconstructs the call tree
  (driver phase → optimizer run → engine batch).
* **events** — instantaneous records (``tracer.event(name, **attrs)``)
  attached to the currently open span, e.g. one per optimizer generation
  or runtime selection decision.

Records accumulate in memory and are written with :meth:`Tracer.write_jsonl`
— one JSON object per line, led by a ``meta`` header.  Timestamps come from
an injectable :class:`~repro.obs.clock.Clock` so traces written under a
:class:`~repro.obs.clock.FakeClock` are byte-deterministic.

The default in every instrumented component is :class:`NullTracer`, whose
``span``/``event`` are constant no-ops returning a shared inert span —
the disabled path costs a method call and nothing else (the overhead
benchmark ``benchmarks/test_obs_overhead.py`` holds it under 2 % of the
tuning wall time).
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

from repro.obs.clock import Clock, SystemClock

__all__ = ["Span", "Tracer", "NullTracer", "NULL_SPAN", "TraceError"]

#: trace file format version, bumped on incompatible schema changes
TRACE_FORMAT = 1


class TraceError(RuntimeError):
    """A trace file is missing, unreadable, or not valid JSONL."""


def _jsonable(value):
    """Coerce attribute values into JSON-serializable built-ins."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    item = getattr(value, "item", None)  # numpy scalars
    if callable(item):
        return _jsonable(item())
    return str(value)


class Span:
    """One timed scope.  Use via ``with tracer.span(...) as span:``."""

    __slots__ = ("tracer", "name", "span_id", "parent_id", "start", "attrs")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self.tracer = tracer
        self.name = name
        self.span_id = tracer._next_id()
        self.parent_id: int | None = None
        self.start = 0.0
        self.attrs = attrs

    def set(self, **attrs) -> None:
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self.parent_id = self.tracer._current_span_id()
        self.start = self.tracer.clock.perf()
        self.tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = self.tracer.clock.perf()
        self.tracer._pop(self)
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.tracer._record(
            {
                "type": "span",
                "name": self.name,
                "id": self.span_id,
                "parent": self.parent_id,
                "start": self.start,
                "end": end,
                "duration": end - self.start,
                "attrs": _jsonable(self.attrs),
            }
        )
        return False


class _NullSpan:
    """Inert span shared by every :class:`NullTracer` call."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-overhead disabled tracer (the default everywhere)."""

    enabled = False

    def span(self, name: str, **attrs) -> _NullSpan:
        return NULL_SPAN

    def event(self, name: str, **attrs) -> None:
        pass

    def records(self) -> list[dict]:
        return []


class Tracer:
    """Collecting tracer.  Thread-safe: spans/events may be recorded from
    worker threads; parenthood follows each thread's own span stack (a
    worker without an open span parents to the root)."""

    enabled = True

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock: Clock = clock or SystemClock()
        self._records: list[dict] = []
        self._lock = threading.Lock()
        self._ids = iter(range(1, 1 << 62)).__next__
        self._local = threading.local()

    # -- recording ------------------------------------------------------

    def span(self, name: str, **attrs) -> Span:
        return Span(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        self._record(
            {
                "type": "event",
                "name": name,
                "span": self._current_span_id(),
                "t": self.clock.perf(),
                "attrs": _jsonable(attrs),
            }
        )

    # -- internal plumbing ----------------------------------------------

    def _next_id(self) -> int:
        with self._lock:
            return self._ids()

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _current_span_id(self) -> int | None:
        stack = self._stack()
        return stack[-1].span_id if stack else None

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    def _record(self, record: dict) -> None:
        with self._lock:
            self._records.append(record)

    # -- export ---------------------------------------------------------

    def records(self) -> list[dict]:
        """Snapshot of everything recorded so far (spans close-ordered)."""
        with self._lock:
            return list(self._records)

    def write_jsonl(self, path: str | Path, meta: dict | None = None) -> int:
        """Write the trace as JSON Lines; returns the number of records.

        The first line is a ``meta`` header carrying the format version
        plus caller-supplied context (kernel, machine, argv, ...).
        """
        header = {"type": "meta", "format": TRACE_FORMAT}
        if meta:
            header.update(_jsonable(meta))
        records = self.records()
        lines = [json.dumps(header, sort_keys=True)]
        lines.extend(json.dumps(r, sort_keys=True) for r in records)
        try:
            Path(path).write_text("\n".join(lines) + "\n")
        except OSError as exc:
            raise TraceError(f"cannot write trace file {path}: {exc}") from exc
        return len(records)
