"""Injectable clocks.

Everything in the observability layer that reads time — span durations,
event timestamps, the runtime monitor's execution records — goes through a
:class:`Clock` so tests can substitute a :class:`FakeClock` and assert on
exact timestamps.  Two time bases are exposed: ``now()`` is wall-clock
(epoch seconds, for human-readable records) and ``perf()`` is monotonic
high-resolution (for durations).  The fake clock drives both from one
counter, which keeps traces written under it fully deterministic.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

__all__ = ["Clock", "SystemClock", "FakeClock"]


@runtime_checkable
class Clock(Protocol):
    """The time source protocol shared by the tracer and the runtime."""

    def now(self) -> float:
        """Wall-clock time in epoch seconds."""
        ...  # pragma: no cover - protocol

    def perf(self) -> float:
        """Monotonic high-resolution time in seconds."""
        ...  # pragma: no cover - protocol


class SystemClock:
    """The real time source (``time.time`` / ``time.perf_counter``)."""

    def now(self) -> float:
        return _time.time()

    def perf(self) -> float:
        return _time.perf_counter()


@dataclass
class FakeClock:
    """A manually advanced clock for deterministic tests.

    :param t: current time, returned by both ``now`` and ``perf``.
    :param tick: automatic advance applied *after* every read, so
        consecutive reads are strictly increasing without explicit
        :meth:`advance` calls (0 disables).
    """

    t: float = 0.0
    tick: float = 0.0

    def now(self) -> float:
        return self._read()

    def perf(self) -> float:
        return self._read()

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise ValueError("cannot advance a clock backwards")
        self.t += dt

    def _read(self) -> float:
        value = self.t
        self.t += self.tick
        return value
