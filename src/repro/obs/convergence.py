"""Per-generation optimizer telemetry.

The paper's evidence is *trajectories*: hypervolume V(S) and Pareto-set
size |S| as functions of the evaluation count E (Tables VI–VIII, Figs.
4–5).  A :class:`ConvergenceRecord` captures one point of that curve —
every optimizer emits one per generation (or per batch for the
non-generational strategies), both onto its
:class:`~repro.optimizer.rsgde3.OptimizerResult` and, when tracing is
enabled, as ``optimizer.generation`` events in the trace.

Records are derived exclusively from the deterministic evaluation ledger,
so a trajectory is bit-identical across evaluation-engine worker counts.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = ["ConvergenceRecord", "population_delta", "emit_generation"]


@dataclass(frozen=True)
class ConvergenceRecord:
    """One point of the V-vs-E convergence trajectory.

    :param generation: 0 for the initial population, then 1, 2, ...
    :param evaluations: cumulative E spent by this run so far.
    :param front_size: |S| — size of the population's non-dominated front.
    :param hypervolume: V of the population front against the run's fixed
        reference point (established from the initial population).
    :param accepted: configurations that entered the population this
        generation (trial vectors that survived selection).
    :param dominated: previous members displaced this generation.
    """

    generation: int
    evaluations: int
    front_size: int
    hypervolume: float
    accepted: int = 0
    dominated: int = 0

    def as_dict(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_dict(d: dict) -> "ConvergenceRecord":
        return ConvergenceRecord(
            generation=int(d["generation"]),
            evaluations=int(d["evaluations"]),
            front_size=int(d["front_size"]),
            hypervolume=float(d["hypervolume"]),
            accepted=int(d.get("accepted", 0)),
            dominated=int(d.get("dominated", 0)),
        )


def emit_generation(obs, algorithm: str, record: ConvergenceRecord) -> None:
    """Publish one convergence point as an ``optimizer.generation`` trace
    event plus the optimizer gauges/counters (*obs* is an
    :class:`~repro.obs.Observability` handle; duck-typed to avoid the
    circular import)."""
    obs.tracer.event(
        "optimizer.generation", algorithm=algorithm, **record.as_dict()
    )
    m = obs.metrics
    m.counter(
        "repro_optimizer_generations_total", "optimizer generations executed"
    ).inc()
    m.gauge(
        "repro_optimizer_hypervolume", "population-front hypervolume V(S)"
    ).set(record.hypervolume)
    m.gauge(
        "repro_optimizer_front_size", "non-dominated front size |S|"
    ).set(record.front_size)
    m.gauge(
        "repro_optimizer_evaluations", "evaluations E spent by the current run"
    ).set(record.evaluations)


def population_delta(before, after) -> tuple[int, int]:
    """(accepted, dominated) between two populations of configurations.

    Membership is by parameter assignment (``Configuration.values``):
    *accepted* counts members of *after* not present in *before*,
    *dominated* counts members of *before* that were displaced.
    """
    old = {c.values for c in before}
    new = {c.values for c in after}
    return len(new - old), len(old - new)
