"""A small metrics registry: counters, gauges, histograms.

Instruments are created lazily through the registry (``metrics.counter(
"repro_engine_batches_total")``) and rendered with
:meth:`MetricsRegistry.exposition` in the Prometheus text format, so the
output of ``repro tune ... --metrics`` can be diffed, scraped, or pushed
as-is.  All instruments are thread-safe (the engine's worker pool and the
runtime executor may update them concurrently) and cheap enough to stay on
unconditionally — tracing is the opt-in half of the observability layer,
metrics are always collected.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: default histogram buckets (seconds): spans µs-scale engine batches up to
#: multi-second tuning phases
DEFAULT_BUCKETS = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0
)


def _fmt(value: float) -> str:
    """Prometheus-style number formatting (integers without a dot)."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def expose(self) -> list[str]:
        return [f"{self.name} {_fmt(self._value)}"]


class Gauge:
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def expose(self) -> list[str]:
        return [f"{self.name} {_fmt(self._value)}"]


class Histogram:
    """Cumulative-bucket histogram of observed values."""

    kind = "histogram"

    def __init__(
        self, name: str, help: str = "", buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> None:
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError("histogram buckets must be strictly increasing")
        self.name = name
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        idx = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def expose(self) -> list[str]:
        lines = []
        cumulative = 0
        for bound, n in zip(self.buckets, self._counts):
            cumulative += n
            lines.append(f'{self.name}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
        cumulative += self._counts[-1]
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{self.name}_sum {_fmt(self._sum)}")
        lines.append(f"{self.name}_count {self._count}")
        return lines


class MetricsRegistry:
    """Name → instrument map with get-or-create accessors."""

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = cls(name, help, **kwargs)
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {name!r} is a {instrument.kind}, not a {cls.kind}"
                )
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get(Histogram, name, help, buckets=buckets)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def as_dict(self) -> dict[str, float | dict]:
        """Flat snapshot (histograms report sum and count)."""
        out: dict[str, float | dict] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                out[name] = {"sum": instrument.sum, "count": instrument.count}
            else:
                out[name] = instrument.value
        return out

    def exposition(self) -> str:
        """Prometheus text exposition of every registered instrument."""
        lines = []
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if instrument.help:
                lines.append(f"# HELP {name} {instrument.help}")
            lines.append(f"# TYPE {name} {instrument.kind}")
            lines.extend(instrument.expose())
        return "\n".join(lines) + ("\n" if lines else "")
