"""``repro.obs`` — end-to-end tracing and metrics.

The observability layer the rest of the framework reports into:

* :mod:`repro.obs.clock` — injectable time sources (deterministic tests);
* :mod:`repro.obs.tracer` — span tracer with JSONL export, plus the
  zero-overhead :class:`NullTracer` default;
* :mod:`repro.obs.metrics` — counter/gauge/histogram registry with
  Prometheus text exposition;
* :mod:`repro.obs.convergence` — per-generation optimizer telemetry
  (the paper's V-vs-E trajectories as first-class data);
* :mod:`repro.obs.summary` — trace-file summarization backing the
  ``repro trace`` subcommand.

Instrumented components take one :class:`Observability` handle bundling a
tracer and a metrics registry; ``Observability.disabled()`` (the default
everywhere) costs nothing on the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.clock import Clock, FakeClock, SystemClock
from repro.obs.convergence import ConvergenceRecord, emit_generation, population_delta
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.summary import load_trace, summarize_trace, trace_summary_for_path
from repro.obs.tracer import NullTracer, Span, TraceError, Tracer

__all__ = [
    "Observability",
    "Clock",
    "SystemClock",
    "FakeClock",
    "Tracer",
    "NullTracer",
    "Span",
    "TraceError",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "ConvergenceRecord",
    "population_delta",
    "emit_generation",
    "load_trace",
    "summarize_trace",
    "trace_summary_for_path",
]


@dataclass
class Observability:
    """The handle instrumented components report through.

    :param tracer: a collecting :class:`Tracer` or the no-op
        :class:`NullTracer`.
    :param metrics: the run's :class:`MetricsRegistry`; metrics are cheap
        and always collected, tracing is the opt-in half.
    """

    tracer: Tracer | NullTracer = field(default_factory=NullTracer)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    @property
    def enabled(self) -> bool:
        """Whether span/event tracing is active."""
        return getattr(self.tracer, "enabled", False)

    @classmethod
    def disabled(cls) -> "Observability":
        """Null tracer + fresh registry — the zero-overhead default."""
        return cls()

    @classmethod
    def tracing(cls, clock: Clock | None = None) -> "Observability":
        """A collecting tracer (with an optional injected clock)."""
        return cls(tracer=Tracer(clock=clock))


#: shared inert instance used as the fallback when a component was built
#: without an explicit handle (never written to by enabled paths)
DISABLED = Observability.disabled()
