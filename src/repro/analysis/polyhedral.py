"""Affine (polyhedral) abstractions of loop nests.

The paper's analyzer performs its dependence test "based on the polyhedral
model".  This module provides the polyhedral building blocks for the kernel
class at hand: affine expressions over loop indices and symbolic parameters,
per-statement iteration domains, and per-reference access functions.

An :class:`AffineExpr` is a linear form ``Σ coeff_v · v + const`` with
integer coefficients over named variables (loop indices and size parameters
like ``N``).  Non-affine expressions are reported as such (``affine_of``
returns ``None``) so clients can fall back to conservative handling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Block,
    Expr,
    FloatLit,
    For,
    IntLit,
    Node,
    Var,
)
from repro.ir.visitors import collect, loop_nest

__all__ = [
    "AffineExpr",
    "affine_of",
    "AccessFunction",
    "access_functions",
    "LoopBounds",
    "IterationDomain",
    "iteration_domain",
]


@dataclass(frozen=True)
class AffineExpr:
    """``Σ coeffs[v]·v + const`` — immutable, normalized (no zero coeffs)."""

    coeffs: tuple[tuple[str, int], ...]
    const: int = 0

    @staticmethod
    def make(coeffs: dict[str, int] | None = None, const: int = 0) -> "AffineExpr":
        items = tuple(sorted((v, c) for v, c in (coeffs or {}).items() if c != 0))
        return AffineExpr(items, const)

    @staticmethod
    def var(name: str) -> "AffineExpr":
        return AffineExpr.make({name: 1})

    @staticmethod
    def constant(value: int) -> "AffineExpr":
        return AffineExpr.make({}, value)

    def coeff(self, name: str) -> int:
        for v, c in self.coeffs:
            if v == name:
                return c
        return 0

    @property
    def vars(self) -> frozenset[str]:
        return frozenset(v for v, _ in self.coeffs)

    def __add__(self, other: "AffineExpr") -> "AffineExpr":
        merged = dict(self.coeffs)
        for v, c in other.coeffs:
            merged[v] = merged.get(v, 0) + c
        return AffineExpr.make(merged, self.const + other.const)

    def __sub__(self, other: "AffineExpr") -> "AffineExpr":
        return self + other.scale(-1)

    def scale(self, factor: int) -> "AffineExpr":
        return AffineExpr.make({v: c * factor for v, c in self.coeffs}, self.const * factor)

    def is_constant(self) -> bool:
        return not self.coeffs

    def evaluate(self, bindings: dict[str, int]) -> int:
        total = self.const
        for v, c in self.coeffs:
            total += c * bindings[v]
        return total

    def restrict(self, keep: frozenset[str] | set[str]) -> "AffineExpr":
        """Project onto the given variables (drop all other terms)."""
        return AffineExpr.make({v: c for v, c in self.coeffs if v in keep}, self.const)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{c}*{v}" if c != 1 else v for v, c in self.coeffs]
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)


def affine_of(expr: Expr) -> AffineExpr | None:
    """Affine form of *expr*, or ``None`` if it is not affine.

    Multiplication is affine only when one side is a constant.  Division and
    modulo are treated as non-affine (the transformations introduce them only
    in places the analysis never re-inspects).
    """
    if isinstance(expr, Var):
        return AffineExpr.var(expr.name)
    if isinstance(expr, IntLit):
        return AffineExpr.constant(expr.value)
    if isinstance(expr, FloatLit):
        return None
    if isinstance(expr, BinOp):
        lhs = affine_of(expr.lhs)
        rhs = affine_of(expr.rhs)
        if lhs is None or rhs is None:
            return None
        if expr.op == "+":
            return lhs + rhs
        if expr.op == "-":
            return lhs - rhs
        if expr.op == "*":
            if lhs.is_constant():
                return rhs.scale(lhs.const)
            if rhs.is_constant():
                return lhs.scale(rhs.const)
            return None
        return None
    return None


@dataclass(frozen=True)
class AccessFunction:
    """One array reference abstracted as affine subscripts.

    ``subscripts[d]`` is the affine form of dimension ``d``'s index
    expression, or ``None`` for a non-affine subscript.

    :param in_reduction: the access belongs to a recognized reduction
        statement (``X = X op e`` with the target read on the right-hand
        side) — its self-dependences may be relaxed by transformations that
        exploit associativity.
    """

    array: str
    subscripts: tuple[AffineExpr | None, ...]
    is_write: bool
    ref: ArrayRef
    in_reduction: bool = False

    @property
    def rank(self) -> int:
        return len(self.subscripts)

    @property
    def is_affine(self) -> bool:
        return all(s is not None for s in self.subscripts)

    def vars(self) -> frozenset[str]:
        out: set[str] = set()
        for s in self.subscripts:
            if s is not None:
                out |= s.vars
        return frozenset(out)

    def linear_part(self) -> tuple[tuple[tuple[str, int], ...] | None, ...]:
        """The linear coefficients per dimension (constants stripped); used
        to detect uniformly generated reference pairs."""
        return tuple(None if s is None else s.coeffs for s in self.subscripts)


def access_functions(stmt: Node) -> list[AccessFunction]:
    """Extract all access functions from the statements in *stmt*.

    Writes are the assignment targets; everything else is a read.  The same
    syntactic reference appearing on both sides (``C[i,j] = C[i,j] + ...``)
    yields one write and one read access.
    """
    accesses: list[AccessFunction] = []
    for assign in collect(stmt, Assign):
        assert isinstance(assign, Assign)
        reduction = isinstance(assign.target, ArrayRef) and any(
            ref == assign.target for ref in collect(assign.value, ArrayRef)
        )
        if isinstance(assign.target, ArrayRef):
            accesses.append(
                _make_access(assign.target, is_write=True, in_reduction=reduction)
            )
        for ref in collect(assign.value, ArrayRef):
            accesses.append(
                _make_access(  # type: ignore[arg-type]
                    ref, is_write=False, in_reduction=reduction and ref == assign.target
                )
            )
    return accesses


def _make_access(ref: ArrayRef, is_write: bool, in_reduction: bool = False) -> AccessFunction:
    return AccessFunction(
        array=ref.array,
        subscripts=tuple(affine_of(ix) for ix in ref.indices),
        is_write=is_write,
        ref=ref,
        in_reduction=in_reduction,
    )


@dataclass(frozen=True)
class LoopBounds:
    """One loop's half-open affine bounds ``lower <= var < upper``; ``None``
    for non-affine bounds."""

    var: str
    lower: AffineExpr | None
    upper: AffineExpr | None
    step: int | None

    def trip_count(self, bindings: dict[str, int]) -> int:
        """Concrete trip count with sizes bound; requires affine bounds whose
        free variables are all in *bindings* (i.e. rectangular loops)."""
        if self.lower is None or self.upper is None or self.step is None:
            raise ValueError(f"loop {self.var!r} has non-affine bounds")
        lo = self.lower.evaluate(bindings)
        hi = self.upper.evaluate(bindings)
        if hi <= lo:
            return 0
        return -(-(hi - lo) // self.step)


@dataclass(frozen=True)
class IterationDomain:
    """The (rectangular) iteration domain of a perfect loop nest."""

    loops: tuple[LoopBounds, ...] = field(default=())

    @property
    def depth(self) -> int:
        return len(self.loops)

    @property
    def vars(self) -> tuple[str, ...]:
        return tuple(lb.var for lb in self.loops)

    def bounds(self, var: str) -> LoopBounds:
        for lb in self.loops:
            if lb.var == var:
                return lb
        raise KeyError(f"no loop {var!r} in domain")

    def size(self, bindings: dict[str, int]) -> int:
        total = 1
        for lb in self.loops:
            total *= lb.trip_count(bindings)
        return total

    def extent(self, var: str, bindings: dict[str, int]) -> int:
        return self.bounds(var).trip_count(bindings)


def iteration_domain(stmt: For) -> IterationDomain:
    """The iteration domain of the perfect nest rooted at *stmt*."""
    loops = []
    for lp in loop_nest(stmt):
        step_aff = affine_of(lp.step)
        step = step_aff.const if step_aff is not None and step_aff.is_constant() else None
        loops.append(
            LoopBounds(
                var=lp.var,
                lower=affine_of(lp.lower),
                upper=affine_of(lp.upper),
                step=step,
            )
        )
    return IterationDomain(tuple(loops))
