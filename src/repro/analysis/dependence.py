"""Dependence testing on perfect loop nests.

The analyzer needs two facts per region (paper §IV): the largest loop band
that can be *tiled* (and optionally collapsed), and which loops can be
*parallelized*.  Both derive from data-dependence direction vectors.

The test implemented here is exact for uniformly generated reference pairs
(identical linear parts, constant subscript offsets — all pairs occurring in
the evaluated kernel class) and conservative otherwise:

* uniform pairs ⇒ exact distance vectors, e.g. the ``k``-carried reduction
  in mm yields direction ``(=, =, <)``;
* non-uniform affine pairs ⇒ per-dimension GCD test to disprove a solution,
  otherwise direction ``*`` (unknown) in every loop whose index occurs in
  the subscripts and ``<`` in loops that occur in neither;
* any non-affine subscript ⇒ fully conservative ``(*, …, *)``.

Legality rules derived from the directions:

* a loop is **parallelizable** iff no dependence is carried by it (its entry
  is ``=`` in every dependence whose outer entries are all ``=``);
* a loop band is **tilable** (fully permutable) iff every dependence has
  only ``=``/``<``/distance ≥ 0 entries within the band.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.ir.nodes import For, Stmt
from repro.analysis.polyhedral import AccessFunction, access_functions
from repro.ir.visitors import loop_vars

__all__ = [
    "DependenceKind",
    "Dependence",
    "analyze_dependences",
    "tilable_band",
    "parallel_loops",
]


class DependenceKind(enum.Enum):
    FLOW = "flow"  # write -> read
    ANTI = "anti"  # read -> write
    OUTPUT = "output"  # write -> write


#: direction entries: '=', '<', '>', '*'
Direction = str


@dataclass(frozen=True)
class Dependence:
    """A data dependence between two references of the same array.

    ``directions[k]`` refers to the k-th loop of the analyzed nest (outermost
    first).  ``distance`` is the exact distance vector when known.
    ``is_reduction`` marks self-dependences of associative update statements
    (``X op= e`` with X not indexed by the carrying loop) which tiling and
    privatizing transformations may relax.
    """

    array: str
    kind: DependenceKind
    directions: tuple[Direction, ...]
    distance: tuple[int | None, ...] | None = None
    is_reduction: bool = False

    def carried_level(self) -> int | None:
        """Index of the outermost non-'=' entry, or ``None`` if loop
        independent.  A ``*`` entry counts as (potentially) carried."""
        for level, d in enumerate(self.directions):
            if d != "=":
                return level
        return None


def analyze_dependences(nest_root: For) -> list[Dependence]:
    """All pairwise dependences of the perfect nest rooted at *nest_root*."""
    lvars = loop_vars(nest_root)
    accesses = access_functions(nest_root)
    by_array: dict[str, list[AccessFunction]] = {}
    for acc in accesses:
        by_array.setdefault(acc.array, []).append(acc)

    deps: list[Dependence] = []
    for array, accs in by_array.items():
        for a_idx, a in enumerate(accs):
            for b in accs[a_idx:]:
                if not (a.is_write or b.is_write):
                    continue
                if a is b:
                    if not a.is_write:
                        continue
                    # self-output dependence: a write whose subscripts do
                    # not pin every loop re-touches the same element across
                    # iterations (e.g. A[0] = ..., or C[i][j] across k)
                    dep = _self_output(array, a, lvars)
                else:
                    dep = _test_pair(array, a, b, lvars)
                if dep is not None:
                    deps.append(dep)
    return deps


def _self_output(array: str, acc: AccessFunction, lvars: list[str]) -> Dependence | None:
    """Output dependence of a single write with itself across iterations:
    carried by every loop whose index the subscripts do not constrain."""
    if not acc.is_affine:
        return Dependence(
            array, DependenceKind.OUTPUT, tuple("*" for _ in lvars), None, acc.in_reduction
        )
    # a loop var is *pinned* iff some dimension's subscript involves exactly
    # that one loop var (injective in it) — coupled subscripts like A[i+j]
    # pin neither i nor j (iterations (0,1) and (1,0) hit the same element)
    pinned: set[str] = set()
    for sub in acc.subscripts:
        assert sub is not None
        terms = [v for v, _c in sub.coeffs if v in lvars]
        if len(terms) == 1:
            pinned.add(terms[0])
    dirs = tuple("=" if v in pinned else "*" for v in lvars)
    if all(d == "=" for d in dirs):
        return None  # every loop pinned: each iteration writes its own element
    return Dependence(
        array,
        DependenceKind.OUTPUT,
        dirs,
        None,
        is_reduction=acc.in_reduction,
    )


def _classify(a: AccessFunction, b: AccessFunction) -> DependenceKind:
    if a.is_write and b.is_write:
        return DependenceKind.OUTPUT
    if a.is_write:
        return DependenceKind.FLOW
    return DependenceKind.ANTI


def _test_pair(
    array: str, a: AccessFunction, b: AccessFunction, lvars: list[str]
) -> Dependence | None:
    kind = _classify(a, b)
    reduction = _is_reduction_pair(a, b)

    if not (a.is_affine and b.is_affine):
        return Dependence(array, kind, tuple("*" for _ in lvars), None, reduction)

    if a.linear_part() == b.linear_part():
        return _uniform_pair(array, kind, a, b, lvars, reduction)
    return _nonuniform_pair(array, kind, a, b, lvars, reduction)


def _is_reduction_pair(a: AccessFunction, b: AccessFunction) -> bool:
    """A read/write pair of the same reference expression — the shape of an
    accumulation statement's self-dependence."""
    return a.ref.indices == b.ref.indices and a.is_write != b.is_write


def _uniform_pair(
    array: str,
    kind: DependenceKind,
    a: AccessFunction,
    b: AccessFunction,
    lvars: list[str],
    reduction: bool,
) -> Dependence | None:
    """Exact test for identical linear parts: per dimension the constraint is
    ``L(I) + c_a = L(I') + c_b``  ⇔  ``L(Δ) = c_b - c_a`` with ``Δ = I' - I``.

    For single-index subscripts this pins the distance in that index; indices
    appearing in no subscript stay free (distance unknown, direction ``*``
    before lexicographic normalization).
    """
    distance: dict[str, int] = {}
    constrained: set[str] = set()
    for sub_a, sub_b in zip(a.subscripts, b.subscripts):
        assert sub_a is not None and sub_b is not None
        delta_const = sub_b.const - sub_a.const
        terms = [(v, c) for v, c in sub_a.coeffs if v in lvars]
        params = [v for v, _ in sub_a.coeffs if v not in lvars]
        if params and terms:
            # coupled with symbolic parameters (e.g. i*N + j) — be conservative
            return Dependence(array, kind, tuple("*" for _ in lvars), None, reduction)
        if not terms:
            if delta_const != 0:
                return None  # constant subscripts differ: no dependence
            continue
        if len(terms) == 1:
            v, coeff = terms[0]
            if delta_const % coeff != 0:
                return None  # GCD test failure in 1 variable: independent
            d = -delta_const // coeff  # L(Δ)=c_b-c_a with source=a ⇒ Δ_v
            if v in distance and distance[v] != d:
                return None  # contradictory constraints: independent
            distance[v] = d
            constrained.add(v)
        else:
            # multi-variable subscript: GCD test, otherwise unknown
            g = math.gcd(*(abs(c) for _, c in terms))
            if delta_const % g != 0:
                return None
            constrained.update(v for v, _ in terms)
            for v, _ in terms:
                distance.pop(v, None)  # coupled: distances unknown

    dist_vec: list[int | None] = []
    dirs: list[Direction] = []
    for v in lvars:
        if v in distance:
            d = distance[v]
            dist_vec.append(d)
            dirs.append("=" if d == 0 else ("<" if d > 0 else ">"))
        elif v in constrained:
            dist_vec.append(None)
            dirs.append("*")
        else:
            # unconstrained loop: any distance possible (e.g. reduction loop)
            dist_vec.append(None)
            dirs.append("*")

    if all(d == "=" for d in dirs) and a.ref.indices == b.ref.indices and kind is not DependenceKind.FLOW:
        # the trivially-equal read/write pair within one statement instance
        # is not a loop-carried dependence; keep only the flow variant
        pass

    dirs_n, dist_n = _normalize(dirs, dist_vec)
    if dirs_n is None:
        return None  # only the zero vector satisfied the system: no dependence
    return Dependence(array, kind, tuple(dirs_n), tuple(dist_n), reduction)


def _nonuniform_pair(
    array: str,
    kind: DependenceKind,
    a: AccessFunction,
    b: AccessFunction,
    lvars: list[str],
    reduction: bool,
) -> Dependence | None:
    """Different linear parts: disprove with a per-dimension GCD test over
    the combined coefficient set, otherwise return a conservative direction
    vector ('*' wherever either access involves the loop)."""
    involved: set[str] = set()
    for sub_a, sub_b in zip(a.subscripts, b.subscripts):
        assert sub_a is not None and sub_b is not None
        coeffs = [c for v, c in sub_a.coeffs if v in lvars]
        coeffs += [c for v, c in sub_b.coeffs if v in lvars]
        delta_const = sub_b.const - sub_a.const
        if not coeffs:
            if delta_const != 0:
                return None
            continue
        g = math.gcd(*(abs(c) for c in coeffs))
        if delta_const % g != 0:
            return None
        involved.update(v for v, _ in sub_a.coeffs if v in lvars)
        involved.update(v for v, _ in sub_b.coeffs if v in lvars)
    dirs = tuple("*" if v in involved else "*" for v in lvars)
    return Dependence(array, kind, dirs, None, reduction)


def _normalize(
    dirs: list[Direction], dist: list[int | None]
) -> tuple[list[Direction] | None, list[int | None]]:
    """Lexicographically normalize so the dependence flows forward: the first
    non-'=' entry must not be '>'.  Exact '>' leaders are flipped (swap of
    source and sink); '*' leaders stay (they subsume both orientations).

    An all-'=' exact vector describes the same statement instance — not a
    dependence — signalled by returning ``None``."""
    for d in dirs:
        if d == "=":
            continue
        if d == ">":
            flipped = ["<" if x == ">" else (">" if x == "<" else x) for x in dirs]
            return flipped, [None if x is None else -x for x in dist]
        return dirs, dist
    # all '='
    if all(x == 0 for x in dist if x is not None) and None not in dist:
        return None, dist
    return dirs, dist


def tilable_band(nest_root: For, deps: list[Dependence] | None = None) -> list[str]:
    """The longest prefix of the nest's loops forming a fully permutable
    (hence tilable) band.

    A band ``l_0..l_m`` is fully permutable iff every dependence has
    non-negative direction (``=`` or ``<``) in each band loop.  Reduction
    self-dependences are exempt: re-ordering an associative accumulation is
    admitted, matching the paper's tiling of the mm ``k`` loop.
    """
    lvars = loop_vars(nest_root)
    if deps is None:
        deps = analyze_dependences(nest_root)
    band: list[str] = []
    for level, v in enumerate(lvars):
        ok = True
        for dep in deps:
            if dep.is_reduction:
                continue
            if dep.directions[level] in (">", "*"):
                ok = False
                break
        if not ok:
            break
        band.append(v)
    return band


def parallel_loops(nest_root: For, deps: list[Dependence] | None = None) -> list[str]:
    """Loops that carry no dependence and can be marked parallel.

    Loop ``l`` is parallelizable iff there is no dependence whose outermost
    non-'=' direction entry sits at ``l`` (reduction self-dependences again
    exempt — they are resolved by privatization, though the paper only ever
    parallelizes genuinely independent loops)."""
    lvars = loop_vars(nest_root)
    if deps is None:
        deps = analyze_dependences(nest_root)
    out: list[str] = []
    for level, v in enumerate(lvars):
        carried = False
        for dep in deps:
            if dep.is_reduction and dep.kind is not DependenceKind.FLOW:
                continue
            lvl = dep.carried_level()
            if lvl == level:
                carried = True
                break
            # '*' at an outer level may also mean carried here
            if lvl is not None and lvl < level and dep.directions[lvl] == "*":
                if dep.directions[level] != "=":
                    carried = True
                    break
        if not carried:
            out.append(v)
    return out
