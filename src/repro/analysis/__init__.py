"""Program analysis: the paper's "Code Analyzer" component (Fig. 3, label 1-2).

Given a kernel function, the analyzer

1. extracts affine iteration domains and access functions
   (:mod:`repro.analysis.polyhedral`),
2. runs a dependence test to obtain direction/distance vectors
   (:mod:`repro.analysis.dependence`),
3. determines the largest tilable loop band and the parallelizable loops,
   yielding tunable regions (:mod:`repro.analysis.regions`),
4. computes static features — flops per point, per-array footprints,
   complexity classes — consumed by the machine cost model and Table IV
   (:mod:`repro.analysis.features`).
"""

from repro.analysis.polyhedral import (
    AccessFunction,
    AffineExpr,
    IterationDomain,
    access_functions,
    affine_of,
    iteration_domain,
)
from repro.analysis.dependence import (
    Dependence,
    DependenceKind,
    analyze_dependences,
    parallel_loops,
    tilable_band,
)
from repro.analysis.regions import TunableRegion, extract_regions
from repro.analysis.features import KernelFeatures, analyze_features

__all__ = [
    "AffineExpr",
    "AccessFunction",
    "IterationDomain",
    "affine_of",
    "access_functions",
    "iteration_domain",
    "Dependence",
    "DependenceKind",
    "analyze_dependences",
    "tilable_band",
    "parallel_loops",
    "TunableRegion",
    "extract_regions",
    "KernelFeatures",
    "analyze_features",
]
