"""Tunable-region extraction — the analyzer's output fed to the optimizer.

The paper (§IV): "The Analyzer searches for nested loops and performs a
dependency test (based on the polyhedral model) to determine the largest
subset of loops which can be tiled and optionally collapsed, without
sacrificing the possibility of parallelizing the resulting loop."

A :class:`TunableRegion` is one perfect loop nest together with its
dependence summary, tilable band, parallelizable loops and the enclosing
sequential sweep loops (e.g. jacobi-2d's time loop, which repeats the region
but is itself not tuned).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.dependence import (
    Dependence,
    analyze_dependences,
    parallel_loops,
    tilable_band,
)
from repro.analysis.polyhedral import IterationDomain, iteration_domain
from repro.ir.nodes import Block, For, Function, Stmt
from repro.ir.visitors import loop_nest

__all__ = ["TunableRegion", "extract_regions"]


@dataclass(frozen=True)
class TunableRegion:
    """One tuning target inside a function.

    :param function: the enclosing kernel function.
    :param nest: the outermost loop of the region's perfect nest.
    :param path: structural position of ``nest`` inside the function body
        (indices into nested Block/For bodies) so transformed regions can be
        spliced back.
    :param sweep_loops: vars of enclosing sequential loops repeating the
        region (outermost first).
    :param domain: iteration domain of the nest.
    :param dependences: dependence summary.
    :param tile_band: loop vars (outermost first) of the largest tilable band.
    :param parallelizable: loop vars that may be run in parallel.
    """

    function: Function
    nest: For
    path: tuple[int, ...]
    sweep_loops: tuple[str, ...]
    domain: IterationDomain
    dependences: tuple[Dependence, ...]
    tile_band: tuple[str, ...]
    parallelizable: tuple[str, ...]

    @property
    def name(self) -> str:
        return f"{self.function.name}@{'.'.join(map(str, self.path)) or 'root'}"

    @property
    def depth(self) -> int:
        return self.domain.depth

    def parallel_candidate(self) -> str | None:
        """The outermost parallelizable loop inside the tile band (the loop
        whose tile loop the backend parallelizes after collapsing)."""
        for v in self.tile_band:
            if v in self.parallelizable:
                return v
        return None


def extract_regions(function: Function) -> list[TunableRegion]:
    """All tunable regions of *function*.

    Walks the body; each maximal perfect nest whose tilable band is non-empty
    becomes a region.  Loops whose bodies hold several statements/loops are
    treated as sweep context and recursed into (jacobi-2d's time loop wraps
    two tunable spatial nests)."""
    regions: list[TunableRegion] = []

    def visit(stmt: Stmt, path: tuple[int, ...], sweeps: tuple[str, ...]) -> None:
        if isinstance(stmt, Block):
            for idx, inner in enumerate(stmt.stmts):
                visit(inner, path + (idx,), sweeps)
            return
        if not isinstance(stmt, For):
            return
        nest = loop_nest(stmt)
        innermost_body = nest[-1].body
        is_perfect_to_computation = not (
            isinstance(innermost_body, Block)
            and any(isinstance(s, For) for s in innermost_body.stmts)
        )
        if is_perfect_to_computation and len(nest) >= 1:
            deps = analyze_dependences(stmt)
            band = tilable_band(stmt, deps)
            if band:
                regions.append(
                    TunableRegion(
                        function=function,
                        nest=stmt,
                        path=path,
                        sweep_loops=sweeps,
                        domain=iteration_domain(stmt),
                        dependences=tuple(deps),
                        tile_band=tuple(band),
                        parallelizable=tuple(parallel_loops(stmt, deps)),
                    )
                )
                return
        # imperfect nesting (or untilable): the chain of single-statement
        # loops above the split point becomes sweep context
        sweep_vars = sweeps
        node: Stmt = stmt
        inner_path = path
        while isinstance(node, For):
            body = node.body
            if isinstance(body, Block) and any(isinstance(s, For) for s in body.stmts):
                sweep_vars = sweep_vars + (node.var,)
                visit(body, inner_path + (0,), sweep_vars)
                return
            if isinstance(body, Block) and len(body.stmts) == 1:
                sweep_vars = sweep_vars + (node.var,)
                node = body.stmts[0]
                inner_path = inner_path + (0, 0)
            else:
                return

    visit(function.body, (), ())
    return regions
