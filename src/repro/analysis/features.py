"""Static kernel features.

The Insieme infrastructure supports "automatic evaluation of static and
dynamic program features to be used in program analysis and optimization".
This module computes the static features consumed downstream:

* floating-point operation counts per innermost iteration and in total,
* per-array data footprints,
* computation/memory complexity classes (paper Table IV),
* per-reference stream descriptors (stride of the innermost dimension per
  loop variable) used by the machine cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.polyhedral import AccessFunction, access_functions, iteration_domain
from repro.analysis.regions import TunableRegion
from repro.ir.nodes import BinOp, Call, Function, UnOp
from repro.ir.types import ArrayType
from repro.ir.visitors import collect

__all__ = ["KernelFeatures", "analyze_features", "count_flops_per_iteration"]

#: flop cost of intrinsic calls (sqrt-class ops count as several flops)
_INTRINSIC_FLOPS = {
    "sqrt": 6,
    "rsqrt": 6,
    "rsqrt3": 8,
    "exp": 10,
    "log": 10,
    "min": 1,
    "max": 1,
}


def count_flops_per_iteration(region: TunableRegion) -> int:
    """Floating-point operations executed per innermost-loop iteration.

    Counts value arithmetic only: subscript expressions are address
    computation, and structurally identical subtrees are counted once (a
    compiler would CSE the repeated differences in e.g. n-body)."""
    from repro.ir.nodes import ArrayRef, Assign
    from repro.ir.visitors import perfect_nest

    _, inner = perfect_nest(region.nest)
    seen: set[object] = set()
    flops = 0

    def visit(expr: object) -> None:
        nonlocal flops
        if isinstance(expr, ArrayRef):
            return
        if isinstance(expr, (BinOp, UnOp, Call)) and expr not in seen:
            seen.add(expr)
            flops += _INTRINSIC_FLOPS.get(expr.fn, 4) if isinstance(expr, Call) else 1
        for child in expr.children():  # type: ignore[union-attr]
            visit(child)

    for assign in collect(inner, Assign):
        assert isinstance(assign, Assign)
        visit(assign.value)
    return flops


@dataclass(frozen=True)
class KernelFeatures:
    """Static summary of one tunable region.

    :param flops_per_iteration: arithmetic per innermost iteration.
    :param total_iterations: product of all trip counts (with sizes bound).
    :param sweep_factor: repetitions contributed by enclosing sweep loops.
    :param footprint_bytes: per-array byte footprints.
    :param accesses: affine access functions of the region.
    """

    region_name: str
    flops_per_iteration: int
    total_iterations: int
    sweep_factor: int
    footprint_bytes: dict[str, int]
    accesses: tuple[AccessFunction, ...]

    @property
    def total_flops(self) -> int:
        return self.flops_per_iteration * self.total_iterations * self.sweep_factor

    @property
    def total_footprint(self) -> int:
        return sum(self.footprint_bytes.values())


def analyze_features(region: TunableRegion, bindings: dict[str, int]) -> KernelFeatures:
    """Compute :class:`KernelFeatures` for *region* with problem sizes bound.

    ``bindings`` must cover all symbolic array extents and loop bounds (and
    sweep-loop bounds, e.g. ``T`` for jacobi-2d)."""
    fn = region.function
    footprints: dict[str, int] = {}
    arrays = fn.arrays
    for acc in access_functions(region.nest):
        at = arrays.get(acc.array)
        if at is None:
            continue
        footprints[acc.array] = at.byte_size(bindings)

    sweep_factor = 1
    for sweep_var in region.sweep_loops:
        sweep_factor *= _sweep_trip(fn, sweep_var, bindings)

    return KernelFeatures(
        region_name=region.name,
        flops_per_iteration=count_flops_per_iteration(region),
        total_iterations=region.domain.size(bindings),
        sweep_factor=sweep_factor,
        footprint_bytes=footprints,
        accesses=tuple(access_functions(region.nest)),
    )


def _sweep_trip(fn: Function, var: str, bindings: dict[str, int]) -> int:
    """Trip count of the named sweep loop found anywhere in *fn*."""
    from repro.ir.nodes import For
    from repro.analysis.polyhedral import affine_of

    for node in collect(fn.body, For):
        assert isinstance(node, For)
        if node.var == var:
            lo = affine_of(node.lower)
            hi = affine_of(node.upper)
            step = affine_of(node.step)
            if lo is None or hi is None or step is None or not step.is_constant():
                raise ValueError(f"sweep loop {var!r} has non-affine bounds")
            return max(0, -(-(hi.evaluate(bindings) - lo.evaluate(bindings)) // step.const))
    raise KeyError(f"sweep loop {var!r} not found in function {fn.name!r}")
