"""Tests for the extended kernel registry (seidel-2d, 2mm) — kernels beyond
the paper's evaluation set that exercise the analyzer's other paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import extract_regions
from repro.driver import TuningDriver
from repro.driver.multiregion import MultiRegionTuner
from repro.frontend import get_kernel
from repro.frontend.kernels import ALL_KERNELS, EXTRA_KERNELS
from repro.ir.interp import run_function
from repro.machine import WESTMERE
from repro.optimizer.gde3 import GDE3Settings
from repro.optimizer.rsgde3 import RSGDE3Settings
from repro.transform import default_skeleton

FAST = RSGDE3Settings(
    gde3=GDE3Settings(population_size=12), max_generations=8, patience=2
)


class TestRegistrySeparation:
    def test_paper_set_unchanged(self):
        assert sorted(ALL_KERNELS) == ["dsyrk", "jacobi2d", "mm", "nbody", "stencil3d"]

    def test_extra_kernels_reachable(self):
        assert get_kernel("seidel2d").name == "seidel2d"
        assert get_kernel("2mm").name == "2mm"


@pytest.mark.parametrize("name", sorted(EXTRA_KERNELS))
class TestExtraKernelSemantics:
    def test_reference_consistency(self, name, rng):
        k = get_kernel(name)
        inputs = k.make_inputs(k.test_size, rng)
        out = run_function(k.function, inputs, k.test_size)
        ref = k.reference(inputs, k.test_size)
        for a in k.output_arrays:
            assert np.allclose(out[a], ref[a]), (name, a)

    def test_skeleton_instantiation_preserves_semantics(self, name, rng):
        k = get_kernel(name)
        region = extract_regions(k.function)[0]
        sk = default_skeleton(region, k.test_size, 4, band=k.tile_loops)
        values = {p.name: max(p.lo, min(p.hi, 3)) for p in sk.parameters}
        fn2 = sk.instantiate(values).apply()
        inputs = k.make_inputs(k.test_size, rng)
        out = run_function(fn2, inputs, k.test_size)
        ref = k.reference(inputs, k.test_size)
        for a in k.output_arrays:
            assert np.allclose(out[a], ref[a]), (name, a)


class TestSeidel:
    def test_tilable_but_not_parallelizable(self):
        k = get_kernel("seidel2d")
        region = extract_regions(k.function)[0]
        assert region.tile_band == ("i", "j")
        assert region.parallelizable == ()
        assert region.parallel_candidate() is None

    def test_skeleton_has_no_threads_parameter(self):
        k = get_kernel("seidel2d")
        region = extract_regions(k.function)[0]
        sk = default_skeleton(region, k.test_size, 40)
        assert "threads" not in sk.parameter_names
        assert not sk.parallel
        assert sk.parallel_spec() == ("none", None)

    def test_sequential_tuning_runs(self):
        driver = TuningDriver(machine=WESTMERE, seed=6, settings=FAST)
        tuned = driver.tune_kernel("seidel2d", sizes={"N": 1000, "T": 5})
        assert tuned.result.size >= 1
        # sequential-only: every version runs with one thread
        assert all(m.threads == 1 for m in tuned.version_metas())

    def test_generated_c_has_no_pragma(self):
        driver = TuningDriver(machine=WESTMERE, seed=6, settings=FAST)
        tuned = driver.tune_kernel("seidel2d", sizes={"N": 500, "T": 3})
        assert "#pragma omp" not in tuned.emit_c().source


class TestTwoMM:
    def test_two_regions(self):
        k = get_kernel("2mm")
        regions = extract_regions(k.function)
        assert len(regions) == 2
        for r in regions:
            assert r.tile_band == ("i", "j", "k")
            assert r.parallelizable == ("i", "j")

    def test_multiregion_tuning_shares_runs(self):
        k = get_kernel("2mm")
        tuner = MultiRegionTuner(
            function=k.function,
            sizes={"N": 500},
            machine=WESTMERE,
            settings=FAST,
            seed=2,
        )
        res = tuner.run(seed=1)
        assert len(res.results) == 2
        assert res.sharing_factor > 1.5  # symmetric regions stay in lock-step


class TestNonRectangularInputs:
    """Loop shapes beyond the rectangular kernel class: the pipeline must
    reject them cleanly rather than mis-tune them."""

    def test_triangular_recurrence_yields_no_region(self):
        from repro.frontend import parse_function

        src = """
        void trsolve(int N, double A[N][N], double B[N]) {
            for (int i = 0; i < N; i++)
                for (int j = 0; j < i; j++)
                    B[i] += A[i][j] * B[j];
        }
        """
        fn = parse_function(src)
        # B[j] reads earlier B[i] results: a true recurrence — conservative
        # analysis must produce no tunable band and hence no region
        assert extract_regions(fn) == []

    def test_triangular_domain_skeleton_rejected_cleanly(self):
        from repro.frontend import parse_function

        src = """
        void tri_copy(int N, double A[N][N], double B[N][N]) {
            for (int i = 0; i < N; i++)
                for (int j = 0; j < i; j++)
                    B[i][j] = A[i][j];
        }
        """
        fn = parse_function(src)
        regions = extract_regions(fn)
        assert regions, "independent triangular copy is a region"
        with pytest.raises(ValueError, match="non-rectangular"):
            default_skeleton(regions[0], {"N": 100}, 8)

    def test_restricted_band_on_triangular_nest_works(self):
        """Tiling only the rectangular outer loop of a triangular nest is
        fine — the escape hatch the error message suggests."""
        from repro.frontend import parse_function

        src = """
        void tri_copy(int N, double A[N][N], double B[N][N]) {
            for (int i = 0; i < N; i++)
                for (int j = 0; j < i; j++)
                    B[i][j] = A[i][j];
        }
        """
        fn = parse_function(src)
        region = extract_regions(fn)[0]
        sk = default_skeleton(region, {"N": 100}, 8, band=("i",))
        assert sk.parameter_names == ("tile_i", "threads")
