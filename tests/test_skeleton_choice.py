"""Tests for skeleton selection as a tuning parameter (paper §III-B1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import extract_regions
from repro.frontend import get_kernel
from repro.ir.builder import assign, loop, var
from repro.ir.visitors import loop_vars
from repro.machine import WESTMERE
from repro.optimizer import RSGDE3
from repro.optimizer.gde3 import GDE3Settings
from repro.optimizer.rsgde3 import RSGDE3Settings
from repro.optimizer.skeleton_choice import (
    SkeletonChoiceProblem,
    build_skeleton_choice,
    legal_loop_orders,
)


class TestLegalLoopOrders:
    def test_mm_fully_permutable(self, mm_region):
        orders = legal_loop_orders(mm_region)
        assert len(orders) == 6  # reduction self-dependence is exempt

    def test_wavefront_restricts_orders(self):
        from repro.analysis import extract_regions
        from repro.ir.builder import array, func, param
        from repro.ir.types import I64

        i, j = var("i"), var("j")
        body = assign(var("A")[i, j], var("A")[i - 1, j + 1] + 0.0)
        nest = loop("i", 1, "N", loop("j", 0, var("N") - 1, body))
        fn = func("f", [param("N", I64), array("A", "N", "N")], nest)
        region = extract_regions(fn)[0]
        # band collapses to just (i,): only the identity order of it remains
        orders = legal_loop_orders(region)
        assert orders == [("i",)]

    def test_stencil_all_orders(self):
        k = get_kernel("stencil3d")
        region = extract_regions(k.function)[0]
        assert len(legal_loop_orders(region)) == 6


class TestBuildSkeletonChoice:
    @pytest.fixture(scope="class")
    def problem(self):
        k = get_kernel("mm")
        return build_skeleton_choice(k.function, {"N": 700}, WESTMERE, seed=5)

    def test_space_has_skeleton_parameter(self, problem):
        assert "skeleton" in problem.space.names
        p = problem.space.parameter("skeleton")
        assert p.choices == tuple(range(len(problem.orders)))

    def test_sub_problem_per_order(self, problem):
        assert len(problem.sub_problems) == len(problem.orders)

    def test_models_differ_by_order(self, problem):
        """Loop order matters: the same tiles cost differently in different
        orders (column walks vs row walks)."""
        tiles = {"i": 96, "j": 288, "k": 9}
        times = [
            sub.target.true_time(tiles, 10) for sub in problem.sub_problems
        ]
        assert max(times) / min(times) > 3

    def test_evaluate_dispatches_by_skeleton(self, problem):
        values = {"tile_i": 64, "tile_j": 64, "tile_k": 8, "threads": 10}
        c0 = problem.evaluate({**values, "skeleton": 0})
        c_bad = None
        for idx in range(len(problem.orders)):
            c = problem.evaluate({**values, "skeleton": idx})
            if c_bad is None or c.objectives[0] > c_bad.objectives[0]:
                c_bad = c
        assert c_bad.objectives[0] > c0.objectives[0]

    def test_batch_matches_single(self, problem):
        names = problem.space.names
        values = {"tile_i": 32, "tile_j": 64, "tile_k": 8, "threads": 5, "skeleton": 1}
        vec = np.array([[values[n] for n in names]], dtype=float)
        batch = problem.evaluate_batch(vec)[0]
        single = problem.evaluate(values)
        assert batch.objectives == single.objectives

    def test_evaluations_sum_over_subproblems(self, problem):
        before = problem.evaluations
        problem.evaluate(
            {"tile_i": 11, "tile_j": 11, "tile_k": 11, "threads": 2, "skeleton": 2}
        )
        assert problem.evaluations == before + 1

    def test_max_orders_cap(self):
        k = get_kernel("mm")
        p = build_skeleton_choice(k.function, {"N": 300}, WESTMERE, max_orders=2)
        assert len(p.orders) == 2


class TestOptimizerOverSkeletonChoice:
    def test_rsgde3_prefers_good_orders(self):
        k = get_kernel("mm")
        problem = build_skeleton_choice(k.function, {"N": 1400}, WESTMERE, seed=5)
        settings = RSGDE3Settings(
            gde3=GDE3Settings(population_size=20),
            max_generations=15,
            patience=3,
            protect=frozenset({"threads", "skeleton"}),
        )
        res = RSGDE3(problem, settings).run(seed=2)
        assert res.size >= 3
        chosen = {c.value("skeleton") for c in res.front}
        # the orders with the innermost i loop (column-walking C and A)
        # are several times slower and must not dominate the front
        bad = {
            idx
            for idx, order in enumerate(problem.orders)
            if order[-1] == "i"
        }
        front_bad = sum(1 for c in res.front if c.value("skeleton") in bad)
        assert front_bad <= len(res.front) // 3