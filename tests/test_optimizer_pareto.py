"""Tests for Pareto primitives and the hypervolume indicator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.optimizer.hypervolume import hypervolume, normalized_hypervolume
from repro.optimizer.pareto import (
    _non_dominated_mask_general,
    _non_dominated_mask_general_scalar,
    crowding_distance,
    dominates,
    non_dominated,
    non_dominated_mask,
    non_dominated_sort,
    pairwise_dominance,
)

obj_vectors = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=10.0),
        st.floats(min_value=0.0, max_value=10.0),
    ),
    min_size=1,
    max_size=40,
)


class TestDominates:
    def test_strict(self):
        assert dominates((1, 1), (2, 2))
        assert dominates((1, 2), (2, 2))
        assert not dominates((2, 2), (2, 2))
        assert not dominates((1, 3), (2, 2))

    def test_length_checked(self):
        with pytest.raises(ValueError):
            dominates((1,), (1, 2))

    @given(obj_vectors)
    def test_irreflexive(self, vecs):
        for v in vecs:
            assert not dominates(v, v)

    @given(obj_vectors)
    def test_antisymmetric(self, vecs):
        for a in vecs:
            for b in vecs:
                assert not (dominates(a, b) and dominates(b, a))


class TestNonDominatedMask:
    def test_simple_2d(self):
        objs = np.array([[1, 4], [2, 2], [4, 1], [3, 3], [5, 5]])
        mask = non_dominated_mask(objs)
        assert mask.tolist() == [True, True, True, False, False]

    def test_duplicates_all_kept(self):
        objs = np.array([[1.0, 2.0], [1.0, 2.0], [3.0, 3.0]])
        mask = non_dominated_mask(objs)
        assert mask.tolist() == [True, True, False]

    def test_tie_in_one_objective(self):
        # (1,5) dominates (1,7): equal first, better second
        objs = np.array([[1.0, 5.0], [1.0, 7.0]])
        assert non_dominated_mask(objs).tolist() == [True, False]

    def test_empty(self):
        assert non_dominated_mask(np.zeros((0, 2))).size == 0

    def test_three_objectives_fallback(self):
        objs = np.array([[1, 1, 1], [2, 2, 2], [1, 2, 0.5]])
        mask = non_dominated_mask(objs)
        assert mask.tolist() == [True, False, True]

    @given(obj_vectors)
    @settings(max_examples=60)
    def test_property_front_is_mutually_nondominated(self, vecs):
        objs = np.array(vecs)
        mask = non_dominated_mask(objs)
        front = objs[mask]
        for a in front:
            for b in front:
                assert not dominates(tuple(a), tuple(b))

    @given(obj_vectors)
    @settings(max_examples=60)
    def test_property_front_is_maximal(self, vecs):
        """Every excluded point is dominated by some front point."""
        objs = np.array(vecs)
        mask = non_dominated_mask(objs)
        front = objs[mask]
        for keep, row in zip(mask, objs):
            if keep:
                continue
            assert any(dominates(tuple(f), tuple(row)) for f in front)

    @given(obj_vectors)
    @settings(max_examples=40)
    def test_property_2d_fast_path_matches_general(self, vecs):
        objs = np.array(vecs)
        from repro.optimizer.pareto import _non_dominated_mask_2d

        fast = _non_dominated_mask_2d(objs)
        # general O(n^2) path via a 3-column embedding with a constant col
        slow = non_dominated_mask(np.column_stack([objs, np.zeros(len(objs))]))
        assert (fast == slow).all()


class TestNonDominatedSort:
    def test_fronts_partition(self):
        objs = np.array([[1, 1], [2, 2], [3, 3], [1, 3]])
        fronts = non_dominated_sort(objs)
        flat = sorted(int(i) for f in fronts for i in f)
        assert flat == [0, 1, 2, 3]
        assert set(fronts[0].tolist()) == {0}

    def test_layering(self):
        objs = np.array([[1, 4], [4, 1], [2, 5], [5, 2], [3, 6], [6, 3]])
        fronts = non_dominated_sort(objs)
        assert [len(f) for f in fronts] == [2, 2, 2]


class TestCrowdingDistance:
    def test_boundaries_infinite(self):
        objs = np.array([[1.0, 4.0], [2.0, 3.0], [3.0, 2.0], [4.0, 1.0]])
        d = crowding_distance(objs)
        assert np.isinf(d[0]) and np.isinf(d[3])
        assert np.isfinite(d[1]) and np.isfinite(d[2])

    def test_small_sets_infinite(self):
        assert np.isinf(crowding_distance(np.array([[1.0, 2.0]]))).all()

    def test_denser_point_smaller_distance(self):
        # point 1 sits between close neighbours (0 and 2); point 2 has the
        # big gap to point 3 on one side, so it is less crowded
        objs = np.array([[0.0, 4.0], [1.0, 3.0], [1.1, 2.9], [4.0, 0.0]])
        d = crowding_distance(objs)
        assert d[1] < d[2]


class TestNonDominatedHelper:
    def test_key_extraction(self):
        items = [("a", (1, 2)), ("b", (2, 1)), ("c", (3, 3))]
        front = non_dominated(items, key=lambda x: x[1])
        assert [i[0] for i in front] == ["a", "b"]

    def test_empty(self):
        assert non_dominated([]) == []


class TestHypervolume:
    def test_single_point(self):
        assert hypervolume(np.array([[0.5, 0.5]]), np.array([1, 1])) == pytest.approx(0.25)

    def test_staircase(self):
        # union of [x,1]x[y,1] quadrants = 1 - staircase complement = 0.375
        pts = np.array([[0.25, 0.75], [0.5, 0.5], [0.75, 0.25]])
        hv = hypervolume(pts, np.array([1, 1]))
        assert hv == pytest.approx(0.375)

    def test_beyond_reference_ignored(self):
        pts = np.array([[2.0, 2.0]])
        assert hypervolume(pts, np.array([1, 1])) == 0.0

    def test_point_beyond_ref_in_one_coordinate_is_clipped_not_dropped(self):
        # (0.25, 2.0) escapes ref in y only; clipped to (0.25, 1.0) it
        # contributes zero volume but must not be discarded outright — a
        # front made solely of such points still scores 0, and mixed fronts
        # keep the in-box contributions exact.
        escaped = np.array([[0.25, 2.0]])
        assert hypervolume(escaped, np.array([1, 1])) == 0.0
        mixed = np.array([[0.25, 2.0], [0.5, 0.5]])
        assert hypervolume(mixed, np.array([1, 1])) == pytest.approx(0.25)

    def test_clipping_equals_dropping(self):
        # clip-at-ref and drop-if-beyond are mathematically identical: the
        # dominated box of a clipped point has a zero-length side.
        rng = np.random.default_rng(7)
        ref = np.array([1.0, 1.0])
        for _ in range(20):
            pts = rng.uniform(0.0, 1.6, size=(6, 2))
            inside = pts[(pts < ref).all(axis=1)]
            assert hypervolume(pts, ref) == pytest.approx(
                hypervolume(inside, ref) if len(inside) else 0.0
            )

    def test_clipped_3d(self):
        pts = np.array([[0.5, 0.5, 2.0], [0.5, 0.5, 0.5]])
        assert hypervolume(pts, np.array([1, 1, 1])) == pytest.approx(0.125)

    def test_empty(self):
        assert hypervolume(np.zeros((0, 2)), np.array([1, 1])) == 0.0

    def test_dimension_checked(self):
        with pytest.raises(ValueError):
            hypervolume(np.array([[1.0, 2.0]]), np.array([1.0, 1.0, 1.0]))

    def test_3d_inclusion_exclusion_matches_manual(self):
        pts = np.array([[0.5, 0.5, 0.5]])
        assert hypervolume(pts, np.array([1, 1, 1])) == pytest.approx(0.125)

    def test_3d_union(self):
        pts = np.array([[0.5, 0.5, 0.5], [0.0, 0.9, 0.9]])
        hv = hypervolume(pts, np.array([1, 1, 1]))
        # 0.125 + 0.1*0.1*1 - overlap(0.5..1 in dims 2,3 -> 0.1*0.1*0.5)
        assert hv == pytest.approx(0.125 + 0.01 - 0.005)

    @given(obj_vectors)
    @settings(max_examples=40)
    def test_property_monotone_under_addition(self, vecs):
        """Adding a point never decreases hypervolume."""
        objs = np.array(vecs) / 10.0
        ref = np.array([1.1, 1.1])
        hv_all = hypervolume(objs, ref)
        hv_sub = hypervolume(objs[:-1], ref) if len(objs) > 1 else 0.0
        assert hv_all >= hv_sub - 1e-12

    @given(obj_vectors)
    @settings(max_examples=40)
    def test_property_bounded_by_box(self, vecs):
        objs = np.array(vecs) / 10.0
        ref = np.array([1.0, 1.0])
        assert 0.0 <= hypervolume(objs, ref) <= 1.0 + 1e-12


class TestNormalizedHypervolume:
    def test_range(self):
        pts = np.array([[1.0, 2.0], [2.0, 1.0]])
        v = normalized_hypervolume(pts, np.array([1.0, 1.0]), np.array([2.0, 2.0]))
        assert 0.0 <= v <= 1.0

    def test_ideal_front_near_one(self):
        pts = np.array([[0.0, 0.0]])
        v = normalized_hypervolume(pts, np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        assert v == pytest.approx(1.0, abs=1e-6)

    def test_nadir_point_near_zero(self):
        # the nadir point only claims the 10% margin box: 0.1^2 / 1.1^2
        pts = np.array([[1.0, 1.0]])
        v = normalized_hypervolume(pts, np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        assert v == pytest.approx(0.01 / 1.21, abs=1e-9)

    def test_degenerate_dimension(self):
        pts = np.array([[1.0, 5.0]])
        v = normalized_hypervolume(pts, np.array([1.0, 0.0]), np.array([1.0, 10.0]))
        assert 0.0 <= v <= 1.0


class TestPairwiseDominance:
    """The broadcasted row-aligned dominance must agree with the scalar
    dominates() in both directions on every row."""

    @given(obj_vectors)
    @settings(max_examples=100, deadline=None)
    def test_matches_scalar_both_directions(self, pts):
        rng = np.random.default_rng(len(pts))
        a = np.array(pts, dtype=float)
        b = rng.permutation(a)
        a_dom, b_dom = pairwise_dominance(a, b)
        for i in range(len(a)):
            assert bool(a_dom[i]) == dominates(a[i], b[i])
            assert bool(b_dom[i]) == dominates(b[i], a[i])

    def test_equal_rows_dominate_neither_way(self):
        a = np.array([[1.0, 2.0], [3.0, 3.0]])
        a_dom, b_dom = pairwise_dominance(a, a.copy())
        assert not a_dom.any() and not b_dom.any()

    def test_three_objectives(self):
        a = np.array([[1.0, 2.0, 3.0], [1.0, 1.0, 1.0], [2.0, 2.0, 2.0]])
        b = np.array([[1.0, 2.0, 4.0], [2.0, 2.0, 2.0], [1.0, 1.0, 1.0]])
        a_dom, b_dom = pairwise_dominance(a, b)
        assert a_dom.tolist() == [True, True, False]
        assert b_dom.tolist() == [False, False, True]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pairwise_dominance(np.zeros((2, 2)), np.zeros((3, 2)))


class TestVectorizedGeneralMask:
    """The blocked broadcasted general-m mask is output-identical to the
    retired per-row sweep it replaced."""

    @pytest.mark.parametrize("n", [1, 7, 255, 256, 257, 700])
    def test_matches_scalar_reference(self, n):
        rng = np.random.default_rng(n)
        objs = rng.uniform(0.0, 10.0, size=(n, 3))
        fast = _non_dominated_mask_general(objs)
        slow = _non_dominated_mask_general_scalar(objs)
        assert np.array_equal(fast, slow)

    def test_duplicates_all_retained(self):
        objs = np.array([[1.0, 2.0, 3.0]] * 4 + [[0.5, 2.5, 3.0]])
        mask = _non_dominated_mask_general(objs)
        assert mask.tolist() == [True] * 5

    def test_dominated_duplicates_all_dropped(self):
        objs = np.array([[2.0, 2.0, 2.0]] * 3 + [[1.0, 1.0, 1.0]])
        mask = _non_dominated_mask_general(objs)
        assert mask.tolist() == [False, False, False, True]

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=5.0),
                st.floats(min_value=0.0, max_value=5.0),
                st.floats(min_value=0.0, max_value=5.0),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_hypothesis_parity(self, pts):
        objs = np.array(pts, dtype=float)
        assert np.array_equal(
            _non_dominated_mask_general(objs),
            _non_dominated_mask_general_scalar(objs),
        )
