"""Tests for the search machinery: spaces, problems, GDE3, rough-set
reduction, RS-GDE3, and the baseline strategies."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import extract_regions
from repro.evaluation import RegionCostModel, SimulatedTarget
from repro.frontend import get_kernel
from repro.machine import BARCELONA, WESTMERE
from repro.optimizer import (
    Boundary,
    Configuration,
    GDE3,
    GDE3Settings,
    NSGA2,
    ParameterSpace,
    RSGDE3,
    TuningProblem,
    brute_force_search,
    compare_fronts,
    grid_candidates,
    random_search,
    rough_set_boundary,
)
from repro.optimizer.metrics import igd
from repro.optimizer.rsgde3 import RSGDE3Settings
from repro.transform import default_skeleton
from repro.transform.skeleton import Parameter
from repro.util.rng import derive_rng


def make_problem(seed=0, machine=WESTMERE, n=512, kernel="mm"):
    k = get_kernel(kernel)
    region = extract_regions(k.function)[0]
    sizes = {key: n for key in k.default_size if key in ("N", "n")}
    sizes.update({key: v for key, v in k.default_size.items() if key not in sizes})
    sk = default_skeleton(region, sizes, machine.total_cores)
    model = RegionCostModel(region, sizes, machine, flops_per_iteration=k.flops_per_point)
    return TuningProblem.from_skeleton(sk, SimulatedTarget(model, seed=seed))


class TestParameterSpace:
    def test_names_and_dim(self):
        p = make_problem()
        assert p.space.names == ("tile_i", "tile_j", "tile_k", "threads")
        assert p.space.dim == 4

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            ParameterSpace((Parameter("a", 1, 2), Parameter("a", 1, 2)))

    def test_sample_within_domain(self):
        p = make_problem()
        rng = derive_rng(0)
        samples = p.space.sample(rng, 50)
        for row in samples:
            for val, param in zip(row, p.space.parameters):
                lo, hi = param.span()
                assert lo <= val <= hi

    def test_cardinality(self):
        space = ParameterSpace((Parameter("a", 1, 10), Parameter("b", 1, 5, choices=(1, 3, 5))))
        assert space.cardinality() == 30

    def test_clamp_vector(self):
        p = make_problem()
        clamped = p.space.clamp_vector(np.array([1e9, -5, 3.6, 7.2]))
        assert clamped[0] == p.space.parameter("tile_i").hi
        assert clamped[1] == 1
        assert clamped[2] == 4


class TestBoundary:
    def test_get_closest_clips(self):
        p = make_problem()
        full = p.space.full_boundary()
        b = Boundary(space=p.space, lo=full.lo + 10, hi=full.hi - 10)
        snapped = b.get_closest_to(full.lo)
        assert (snapped >= b.lo).all()

    def test_invalid_rejected(self):
        p = make_problem()
        full = p.space.full_boundary()
        with pytest.raises(ValueError):
            Boundary(space=p.space, lo=full.hi, hi=full.lo)

    def test_volume_fraction(self):
        p = make_problem()
        full = p.space.full_boundary()
        assert full.volume_fraction() == pytest.approx(1.0)
        half = Boundary(space=p.space, lo=full.lo, hi=(full.lo + full.hi) / 2)
        assert half.volume_fraction() < 0.2

    def test_contains(self):
        p = make_problem()
        full = p.space.full_boundary()
        assert full.contains(full.lo)

    def test_categorical_snap(self):
        space = ParameterSpace((Parameter("t", 1, 40, choices=(1, 5, 10, 20, 40)),))
        full = space.full_boundary()
        assert full.get_closest_to(np.array([12.0]))[0] == 10
        narrow = Boundary(space=space, lo=np.array([18.0]), hi=np.array([25.0]))
        assert narrow.get_closest_to(np.array([40.0]))[0] == 20


class TestTuningProblem:
    def test_evaluate_counts(self):
        p = make_problem()
        c = p.evaluate({"tile_i": 8, "tile_j": 8, "tile_k": 8, "threads": 4})
        assert p.evaluations == 1
        assert c.time > 0 and c.resources == pytest.approx(4 * c.time)

    def test_split_values(self):
        p = make_problem()
        tiles, threads = p.split_values({"tile_i": 3, "tile_j": 4, "tile_k": 5, "threads": 7})
        assert tiles == {"i": 3, "j": 4, "k": 5} and threads == 7

    def test_batch_matches_single(self):
        pa, pb = make_problem(seed=4), make_problem(seed=4)
        values = {"tile_i": 16, "tile_j": 32, "tile_k": 8, "threads": 10}
        single = pa.evaluate(values)
        vec = np.array([[16, 32, 8, 10]], dtype=float)
        batch = pb.evaluate_batch(vec)[0]
        assert single.objectives == batch.objectives

    def test_configuration_accessors(self):
        c = Configuration.make({"threads": 3, "tile_i": 5}, (1.0, 3.0))
        assert c.value("threads") == 3
        assert c.as_dict()["tile_i"] == 5
        with pytest.raises(KeyError):
            c.value("zz")
        assert (c.vector(["tile_i", "threads"]) == [5.0, 3.0]).all()


class TestGDE3:
    def test_settings_validated(self):
        with pytest.raises(ValueError):
            GDE3Settings(population_size=3)
        with pytest.raises(ValueError):
            GDE3Settings(cr=1.5)
        with pytest.raises(ValueError):
            GDE3Settings(f=0.0)

    def test_population_size_maintained(self):
        p = make_problem()
        g = GDE3(p, GDE3Settings(population_size=12))
        rng = derive_rng(1)
        full = p.space.full_boundary()
        pop = g.initial_population(full, rng)
        assert len(pop) == 12
        for _ in range(3):
            pop = g.generation(pop, full, rng)
            assert len(pop) <= 12

    def test_generation_never_degrades_front(self):
        """Selection keeps dominating configurations: the front's
        hypervolume never decreases across generations."""
        from repro.optimizer.hypervolume import hypervolume

        p = make_problem(seed=7)
        g = GDE3(p, GDE3Settings(population_size=16))
        rng = derive_rng(2)
        full = p.space.full_boundary()
        pop = g.initial_population(full, rng)
        ref = np.array([c.objectives for c in pop]).max(axis=0) * 1.2
        prev = hypervolume(np.array([c.objectives for c in pop]), ref)
        for _ in range(5):
            pop = g.generation(pop, full, rng)
            cur = hypervolume(np.array([c.objectives for c in pop]), ref)
            assert cur >= prev - 1e-12
            prev = cur

    def test_trials_within_boundary(self):
        p = make_problem()
        g = GDE3(p, GDE3Settings(population_size=8))
        rng = derive_rng(3)
        full = p.space.full_boundary()
        lo = full.lo + (full.hi - full.lo) * 0.25
        hi = full.lo + (full.hi - full.lo) * 0.75
        box = Boundary(space=p.space, lo=lo, hi=hi)
        pop = g.initial_population(box, rng)
        pop = g.generation(pop, box, rng)
        names = p.space.names
        # all *new* configurations must lie in the box (original members may
        # remain); check via trial reconstruction: every member either came
        # from the initial box population or is inside the box
        for c in pop:
            assert box.contains(c.vector(names))


class TestRoughSet:
    def _configs(self, vecs, objs, space):
        names = space.names
        return [
            Configuration.make(dict(zip(names, v)), tuple(o))
            for v, o in zip(vecs, objs)
        ]

    def test_bounds_from_dominated_neighbours(self):
        space = ParameterSpace((Parameter("x", 0, 100), Parameter("y", 0, 100)))
        full = space.full_boundary()
        # non-dominated points at x=40..60; dominated at x=20 and x=90
        vecs = [(40, 50), (60, 50), (20, 50), (90, 50)]
        objs = [(1, 2), (2, 1), (5, 5), (6, 6)]
        box = rough_set_boundary(self._configs(vecs, objs, space), full, min_span_fraction=0.0)
        assert box.lo[0] == 20 and box.hi[0] == 90

    def test_encloses_all_nondominated(self):
        space = ParameterSpace((Parameter("x", 0, 100),))
        full = space.full_boundary()
        vecs = [(10,), (90,), (50,)]
        objs = [(1, 3), (3, 1), (5, 5)]
        box = rough_set_boundary(self._configs(vecs, objs, space), full)
        assert box.lo[0] <= 10 and box.hi[0] >= 90

    def test_all_nondominated_keeps_full(self):
        space = ParameterSpace((Parameter("x", 0, 100),))
        full = space.full_boundary()
        vecs = [(10,), (90,)]
        objs = [(1, 3), (3, 1)]
        box = rough_set_boundary(self._configs(vecs, objs, space), full)
        assert box.lo[0] == full.lo[0] and box.hi[0] == full.hi[0]

    def test_empty_population_keeps_full(self):
        space = ParameterSpace((Parameter("x", 0, 100),))
        full = space.full_boundary()
        assert rough_set_boundary([], full) is full

    def test_protected_dimension_untouched(self):
        space = ParameterSpace((Parameter("x", 0, 100), Parameter("threads", 1, 40)))
        full = space.full_boundary()
        vecs = [(40, 10), (60, 12), (20, 1), (90, 40)]
        objs = [(1, 2), (2, 1), (5, 5), (6, 6)]
        box = rough_set_boundary(
            self._configs(vecs, objs, space), full, protect={"threads"}
        )
        assert box.lo[1] == 1 and box.hi[1] == 40
        assert box.lo[0] > 0  # x still reduced

    def test_min_span_floor(self):
        space = ParameterSpace((Parameter("x", 0, 100),))
        full = space.full_boundary()
        vecs = [(50,), (49,), (51,)]
        objs = [(1, 1), (5, 5), (6, 6)]
        box = rough_set_boundary(
            self._configs(vecs, objs, space), full, min_span_fraction=0.2
        )
        assert box.hi[0] - box.lo[0] >= 0.2 * 100 - 1e-9

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_property_box_always_contains_front(self, data):
        space = ParameterSpace((Parameter("x", 0, 50), Parameter("y", 0, 50)))
        full = space.full_boundary()
        n = data.draw(st.integers(min_value=2, max_value=20))
        vecs = [
            (data.draw(st.integers(0, 50)), data.draw(st.integers(0, 50)))
            for _ in range(n)
        ]
        objs = [
            (data.draw(st.floats(0, 10)), data.draw(st.floats(0, 10)))
            for _ in range(n)
        ]
        configs = self._configs(vecs, objs, space)
        box = rough_set_boundary(configs, full)
        from repro.optimizer.pareto import non_dominated

        front = non_dominated(configs, key=lambda c: c.objectives)
        for c in front:
            assert box.contains(c.vector(space.names))


class TestRSGDE3:
    def test_runs_and_reports(self):
        p = make_problem(seed=11)
        res = RSGDE3(p).run(seed=1)
        assert res.size >= 1
        assert res.evaluations > 30  # more than the initial sample
        assert res.generations >= RSGDE3Settings().patience
        assert len(res.boundary_history) == res.generations + 1

    def test_front_mutually_nondominated(self):
        from repro.optimizer.pareto import dominates

        p = make_problem(seed=12)
        res = RSGDE3(p).run(seed=2)
        for a in res.front:
            for b in res.front:
                assert not dominates(a.objectives, b.objectives)

    def test_deterministic_given_seeds(self):
        r1 = RSGDE3(make_problem(seed=13)).run(seed=3)
        r2 = RSGDE3(make_problem(seed=13)).run(seed=3)
        assert [c.objectives for c in r1.front] == [c.objectives for c in r2.front]
        assert r1.evaluations == r2.evaluations

    def test_beats_random_on_average(self):
        """Paper Table VI: RS-GDE3 clearly outperforms random search at
        equal evaluation budgets."""
        rs_runs, rnd_runs = [], []
        for rep in range(3):
            r = RSGDE3(make_problem(seed=20 + rep)).run(seed=rep)
            rs_runs.append(r)
            rnd_runs.append(
                random_search(make_problem(seed=40 + rep), budget=r.evaluations, seed=rep)
            )
        metrics = {
            m.name: m for m in compare_fronts({"rsgde3": rs_runs, "random": rnd_runs})
        }
        assert metrics["rsgde3"].hypervolume > metrics["random"].hypervolume

    def test_evaluation_budget_reasonable(self):
        """90-99% fewer evaluations than a paper-scale brute force."""
        p = make_problem(seed=14)
        res = RSGDE3(p).run(seed=4)
        assert res.evaluations < 3000

    def test_front_hv_with_escaped_envelope(self):
        """Regression for the fixed-ref early-stopping interaction: the
        driver pins ``ref`` from the initial population, so later fronts can
        escape that envelope in one objective.  Such points must be clipped
        (contributing their in-box share: zero for the escaped coordinate),
        never make the hypervolume NaN/negative, and must not mask the gain
        of points that *did* improve inside the box."""
        ref = np.array([1.0, 1.0])

        def pop(objs):
            return [Configuration.make({"x": i}, o) for i, o in enumerate(objs)]

        hv0 = RSGDE3._front_hv(pop([(0.6, 0.6)]), ref)
        # next generation: one point escapes ref in objective 2 while a
        # second improves strictly inside the initial envelope
        hv1 = RSGDE3._front_hv(pop([(0.2, 1.8), (0.4, 0.4)]), ref)
        assert hv1 > hv0  # improvement registers; patience is not tripped
        # a fully escaped front degrades to zero, not to an error
        hv2 = RSGDE3._front_hv(pop([(0.2, 1.8), (1.5, 0.3)]), ref)
        assert hv2 == 0.0

    def test_escaped_envelope_run_converges(self):
        """End-to-end: a tiny-noise problem whose GDE3 offspring routinely
        leave the initial objective envelope still terminates by patience
        with a finite hv_history (no NaN from the fixed-ref normalization)."""
        p = make_problem(seed=21)
        res = RSGDE3(p, RSGDE3Settings(max_generations=30)).run(seed=5)
        hvs = [hv for _, hv in res.hv_history]
        assert all(np.isfinite(hv) and hv >= 0.0 for hv in hvs)
        assert res.size >= 1 and res.generations <= 30


class TestBaselines:
    def test_grid_candidates(self):
        g = grid_candidates(1, 700, 15)
        assert g[0] == 1 and g[-1] == 700 and len(g) == 15
        assert grid_candidates(1, 5, 10) == [1, 2, 3, 4, 5]
        with pytest.raises(ValueError):
            grid_candidates(5, 1, 3)

    def test_brute_force_counts_grid(self):
        p = make_problem(seed=15)
        grid = {v: [8, 64, 256] for v in "ijk"}
        res, data = brute_force_search(p, grid, [1, 10], keep_data=True)
        assert res.evaluations == 27 * 2
        assert len(data) == 54
        assert data.thread_counts() == [1, 10]

    def test_brute_force_best_lookup(self):
        p = make_problem(seed=16)
        grid = {v: [8, 64, 256] for v in "ijk"}
        _, data = brute_force_search(p, grid, [1, 10], keep_data=True)
        values, t = data.best_for_threads(10)
        assert t > 0 and values["threads"] == 10
        with pytest.raises(KeyError):
            data.best_for_threads(39)

    def test_brute_force_missing_axis_rejected(self):
        p = make_problem(seed=17)
        with pytest.raises(KeyError):
            brute_force_search(p, {"i": [8]}, [1])

    def test_random_search_budget(self):
        p = make_problem(seed=18)
        res = random_search(p, budget=100, seed=0)
        assert res.evaluations == 100
        assert res.size >= 1
        with pytest.raises(ValueError):
            random_search(p, budget=0)

    def test_nsga2_runs(self):
        p = make_problem(seed=19)
        res = NSGA2(p).run(seed=0)
        assert res.size >= 1 and res.evaluations > 0


class TestMetrics:
    def test_compare_fronts_shared_normalization(self):
        from repro.optimizer.rsgde3 import OptimizerResult

        # f1's points pointwise-dominate f2's single point
        f1 = OptimizerResult(
            front=(Configuration.make({"a": 1}, (1.0, 1.5)),
                   Configuration.make({"a": 2}, (1.5, 1.0))),
            evaluations=10,
            generations=1,
        )
        f2 = OptimizerResult(
            front=(Configuration.make({"a": 3}, (1.5, 1.5)),
                   Configuration.make({"a": 4}, (2.0, 1.0)),
                   Configuration.make({"a": 5}, (1.0, 2.0))),
            evaluations=20,
            generations=1,
        )
        ms = {m.name: m for m in compare_fronts({"x": [f1], "y": [f2]})}
        assert ms["x"].hypervolume > ms["y"].hypervolume
        assert ms["x"].evaluations == 10 and ms["y"].size == 3

    def test_compare_empty_raises(self):
        with pytest.raises(ValueError):
            compare_fronts({"x": []})

    def test_igd(self):
        ref = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert igd(ref, ref) == 0.0
        off = np.array([[0.5, 0.5]])
        assert igd(off, ref) == pytest.approx(np.sqrt(0.5))
        assert igd(np.zeros((0, 2)), ref) == float("inf")
