"""Soundness of the dependence analyzer, checked against brute force.

The analyzer may be conservative (report a dependence that does not exist)
but must never *miss* a real one — a missed dependence means an illegal
transformation.  These property tests generate random affine loop nests,
enumerate every pair of iterations on a small domain to establish ground
truth, and verify:

1. if any two distinct iterations touch the same element (with at least
   one write), the analyzer reports at least one dependence;
2. every loop the analyzer calls parallelizable really carries no
   cross-iteration conflict at its level;
3. direction vectors declared exact ('<'/'=' with distances) match the
   observed iteration-order relations.
"""

from __future__ import annotations

from itertools import product

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.dependence import analyze_dependences, parallel_loops
from repro.ir.builder import assign, loop, var
from repro.ir.nodes import For


def make_nest_1d_array(wa, wb, wc, ra, rb, rc, ni, nj):
    """for i in [0,ni): for j in [0,nj): A[wa*i+wb*j+wc] = A[ra*i+rb*j+rc]"""
    i, j = var("i"), var("j")
    write_idx = wa * i + wb * j + wc
    read_idx = ra * i + rb * j + rc
    body = assign(var("A")[write_idx], var("A")[read_idx] + 1.0)
    return loop("i", 0, ni, loop("j", 0, nj, body))


def ground_truth_dependence(wa, wb, wc, ra, rb, rc, ni, nj):
    """True iff two *distinct* iterations conflict on some element
    (write/write or write/read)."""
    writes = {}
    reads = {}
    for it in product(range(ni), range(nj)):
        i, j = it
        writes.setdefault(wa * i + wb * j + wc, []).append(it)
        reads.setdefault(ra * i + rb * j + rc, []).append(it)
    for addr, ws in writes.items():
        if len(ws) > 1:
            return True  # output dependence
        for rt in reads.get(addr, []):
            if rt != ws[0]:
                return True  # flow/anti dependence
    return False


coeff = st.integers(min_value=-2, max_value=2)
const = st.integers(min_value=-3, max_value=3)
trip = st.integers(min_value=2, max_value=6)


class TestSoundness:
    @given(wa=coeff, wb=coeff, wc=const, ra=coeff, rb=coeff, rc=const, ni=trip, nj=trip)
    @settings(max_examples=200, deadline=None)
    def test_never_misses_a_dependence(self, wa, wb, wc, ra, rb, rc, ni, nj):
        nest = make_nest_1d_array(wa, wb, wc, ra, rb, rc, ni, nj)
        deps = analyze_dependences(nest)
        if ground_truth_dependence(wa, wb, wc, ra, rb, rc, ni, nj):
            assert deps, (
                f"missed dependence: A[{wa}i+{wb}j+{wc}] = A[{ra}i+{rb}j+{rc}] "
                f"over {ni}x{nj}"
            )

    @given(wa=coeff, wb=coeff, wc=const, ra=coeff, rb=coeff, rc=const, ni=trip, nj=trip)
    @settings(max_examples=200, deadline=None)
    def test_parallel_verdicts_are_safe(self, wa, wb, wc, ra, rb, rc, ni, nj):
        """A loop declared parallelizable must have no conflict between
        iterations differing in that loop (holding outer loops equal for
        the inner loop; any difference for the outer)."""
        nest = make_nest_1d_array(wa, wb, wc, ra, rb, rc, ni, nj)
        par = set(parallel_loops(nest))

        def addr_w(i, j):
            return wa * i + wb * j + wc

        def addr_r(i, j):
            return ra * i + rb * j + rc

        if "i" in par:
            # iterations with different i must not conflict
            for i1, j1, i2, j2 in product(range(ni), range(nj), range(ni), range(nj)):
                if i1 == i2:
                    continue
                a, b = (i1, j1), (i2, j2)
                assert addr_w(*a) != addr_w(*b), ("i", (a, b))
                assert addr_w(*a) != addr_r(*b), ("i", (a, b))
                assert addr_r(*a) != addr_w(*b), ("i", (a, b))
        if "j" in par:
            # at equal i, iterations with different j must not conflict
            for i1, j1, j2 in product(range(ni), range(nj), range(nj)):
                if j1 == j2:
                    continue
                a, b = (i1, j1), (i1, j2)
                assert addr_w(*a) != addr_w(*b), ("j", (a, b))
                assert addr_w(*a) != addr_r(*b), ("j", (a, b))
                assert addr_r(*a) != addr_w(*b), ("j", (a, b))

    @given(off_i=st.integers(min_value=-2, max_value=2), off_j=st.integers(min_value=-2, max_value=2))
    @settings(max_examples=30, deadline=None)
    def test_uniform_shift_distances_exact(self, off_i, off_j):
        """For pure shifts A[i,j] = A[i+di, j+dj] the analyzer's distance
        vector must equal the (normalized) shift."""
        i, j = var("i"), var("j")
        body = assign(var("A")[i, j], var("A")[i + off_i, j + off_j] + 1.0)
        nest = loop("i", 2, 8, loop("j", 2, 8, body))
        deps = analyze_dependences(nest)
        if off_i == 0 and off_j == 0:
            # pure reduction-style self access
            assert all(d.is_reduction for d in deps)
            return
        assert len(deps) == 1
        dist = deps[0].distance
        assert dist is not None
        # normalization may flip the sign; accept either orientation
        assert tuple(dist) in {(-off_i, -off_j), (off_i, off_j)}
        # and the leading non-zero entry must be positive after normalization
        lead = next(x for x in dist if x != 0)
        assert lead > 0
