"""Tests for the parallel evaluation engine: dedup → dispatch → commit
correctness under concurrency, fault tolerance (retry / timeout / serial
degradation), ledger thread-safety, and the optimizer routing.

All seeds are fixed so the concurrency assertions are deterministic: the
simulated target derives measurement noise from (key, repetition) hashes,
so any evaluation order — and any worker count — must produce bit-identical
objectives and the exact same E.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.evaluation.parallel_eval import (
    BatchEvaluator,
    EngineStats,
    EvaluationEngine,
    EvaluationError,
    FlakyFaultPolicy,
    auto_workers,
)
from repro.evaluation.simulator import SimulatedTarget
from repro.experiments import make_setup
from repro.machine.model import WESTMERE
from repro.optimizer import RSGDE3
from repro.optimizer.rsgde3 import RSGDE3Settings
from repro.optimizer.gde3 import GDE3Settings


def fresh_target(mm_model, seed=0):
    return SimulatedTarget(mm_model, seed=seed)


def some_configs(n, duplicate_every=3):
    """n configs with deliberate duplicates sprinkled in."""
    configs = []
    for i in range(n):
        if duplicate_every and i % duplicate_every == 2:
            configs.append(configs[i - 1])
        else:
            configs.append(({"i": 8 + 8 * i, "j": 64, "k": 8}, 10))
    return configs


class TestDedupPipeline:
    def test_unique_configs_counted_once(self, mm_model):
        target = fresh_target(mm_model)
        engine = EvaluationEngine(target)
        configs = some_configs(9, duplicate_every=3)
        unique = len({target.config_key(t, thr) for t, thr in configs})
        res = engine.evaluate_batch(configs)
        assert len(res.objectives) == 9
        assert res.new_evaluations == unique
        assert target.evaluations == unique
        assert res.stats.deduped == 9 - unique
        assert res.stats.dispatched == unique

    def test_cache_hits_do_not_dispatch(self, mm_model):
        target = fresh_target(mm_model)
        engine = EvaluationEngine(target)
        configs = some_configs(6, duplicate_every=0)
        engine.evaluate_batch(configs)
        before = target.evaluations
        res = engine.evaluate_batch(configs)
        assert res.new_evaluations == 0
        assert res.stats.cache_hits == 6
        assert res.stats.dispatched == 0
        assert target.evaluations == before

    def test_duplicates_get_identical_objectives(self, mm_model):
        target = fresh_target(mm_model)
        engine = EvaluationEngine(target)
        res = engine.evaluate_batch([({"i": 32, "j": 64, "k": 8}, 10)] * 4)
        assert len({o.time for o in res.objectives}) == 1

    def test_stats_accounting_invariant(self, mm_model):
        target = fresh_target(mm_model)
        engine = EvaluationEngine(target, max_workers=4)
        for n in (5, 9, 17):
            engine.evaluate_batch(some_configs(n))
        s = engine.stats
        assert s.configs == s.dispatched + s.cache_hits + s.deduped
        assert s.new_evaluations == target.evaluations
        assert s.batches == 3
        assert s.wall_time_s > 0

    def test_order_preserved(self, mm_model):
        target = fresh_target(mm_model)
        engine = EvaluationEngine(target, max_workers=4)
        configs = [({"i": 32, "j": 64, "k": 8}, t) for t in (1, 10, 40, 10)]
        res = engine.evaluate_batch(configs)
        assert [o.threads for o in res.objectives] == [1, 10, 40, 10]


class TestConcurrencyStress:
    """16 workers, duplicate-laden batches: E exact, results bit-identical
    to the serial path."""

    WORKERS = 16

    def _batches(self):
        rng = np.random.default_rng(42)
        batches = []
        for _ in range(6):
            n = int(rng.integers(8, 40))
            tiles = rng.integers(1, 512, size=(n, 3))
            threads = rng.choice([1, 5, 10, 20, 40], size=n)
            configs = [
                ({"i": int(a), "j": int(b), "k": int(c)}, int(t))
                for (a, b, c), t in zip(tiles, threads)
            ]
            # deliberate duplicates, within and across batches
            configs += configs[: n // 2]
            batches.append(configs)
        return batches

    def test_parallel_bit_identical_to_serial(self, mm_model):
        serial_target = fresh_target(mm_model, seed=11)
        parallel_target = fresh_target(mm_model, seed=11)
        serial = EvaluationEngine(serial_target, max_workers=1)
        parallel = EvaluationEngine(parallel_target, max_workers=self.WORKERS)

        for configs in self._batches():
            rs = serial.evaluate_batch(configs)
            rp = parallel.evaluate_batch(configs)
            assert rs.new_evaluations == rp.new_evaluations
            for a, b in zip(rs.objectives, rp.objectives):
                assert a.time == b.time  # bit-identical, not approx
                assert a.threads == b.threads
        assert serial_target.evaluations == parallel_target.evaluations
        assert parallel.stats.failed == 0

    def test_exact_evaluation_count(self, mm_model):
        target = fresh_target(mm_model, seed=5)
        engine = EvaluationEngine(target, max_workers=self.WORKERS)
        seen = set()
        for configs in self._batches():
            engine.evaluate_batch(configs)
            seen.update(target.config_key(t, thr) for t, thr in configs)
        assert target.evaluations == len(seen)

    def test_target_ledger_thread_safe_for_external_callers(self, mm_model):
        """The satellite bug: concurrent target.evaluate used to lose
        ``evaluations += 1`` increments and double-count via the
        check-then-set cache."""
        target = fresh_target(mm_model, seed=3)
        configs = [({"i": 16 * (i % 8 + 1), "j": 64, "k": 8}, 10) for i in range(64)]
        unique = len({target.config_key(t, thr) for t, thr in configs})

        barrier = threading.Barrier(16)

        def worker(chunk):
            barrier.wait()
            for tiles, thr in chunk:
                target.evaluate(tiles, thr)

        threads = [
            threading.Thread(target=worker, args=(configs[i::16],))
            for i in range(16)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert target.evaluations == unique


class TestFaultTolerance:
    def test_transient_fault_is_retried(self, mm_model):
        target = fresh_target(mm_model)
        policy = FlakyFaultPolicy(fail_attempts=1)
        engine = EvaluationEngine(
            target, max_workers=4, retries=2, backoff_s=0.0, fault_policy=policy
        )
        res = engine.evaluate_batch(some_configs(6, duplicate_every=0))
        assert res.new_evaluations == 6
        assert engine.stats.retried >= 6
        assert engine.stats.failed == 0
        assert not engine.degraded

    def test_retried_results_bit_identical(self, mm_model):
        clean_target = fresh_target(mm_model, seed=2)
        flaky_target = fresh_target(mm_model, seed=2)
        clean = EvaluationEngine(clean_target)
        flaky = EvaluationEngine(
            flaky_target,
            max_workers=4,
            retries=3,
            backoff_s=0.0,
            fault_policy=FlakyFaultPolicy(fail_attempts=2),
        )
        configs = some_configs(8, duplicate_every=0)
        a = clean.evaluate_batch(configs)
        b = flaky.evaluate_batch(configs)
        assert [o.time for o in a.objectives] == [o.time for o in b.objectives]
        assert clean_target.evaluations == flaky_target.evaluations

    def test_timeout_triggers_retry(self, mm_model):
        target = fresh_target(mm_model)
        policy = FlakyFaultPolicy(slow_attempts=1, delay_s=0.5)
        engine = EvaluationEngine(
            target,
            max_workers=2,
            timeout_s=0.05,
            retries=2,
            backoff_s=0.0,
            fault_policy=policy,
        )
        res = engine.evaluate_batch(some_configs(2, duplicate_every=0))
        assert res.new_evaluations == 2
        assert engine.stats.timeouts >= 1

    def test_persistent_pool_failure_rescued_serially(self, mm_model):
        target = fresh_target(mm_model)
        policy = FlakyFaultPolicy(fail_attempts=99)  # pool always fails
        engine = EvaluationEngine(
            target,
            max_workers=4,
            retries=1,
            backoff_s=0.0,
            degrade_after=2,
            fault_policy=policy,
        )
        res = engine.evaluate_batch(some_configs(5, duplicate_every=0))
        assert res.new_evaluations == 5  # serial rescue computed them all
        assert engine.stats.failed == 5
        assert not engine.degraded  # one strike so far

    def test_degrades_to_serial_after_repeated_failure(self, mm_model):
        target = fresh_target(mm_model)
        policy = FlakyFaultPolicy(fail_attempts=99)
        engine = EvaluationEngine(
            target,
            max_workers=4,
            retries=1,
            backoff_s=0.0,
            degrade_after=2,
            fault_policy=policy,
        )
        engine.evaluate_batch(some_configs(4, duplicate_every=0))
        engine.evaluate_batch(some_configs(8, duplicate_every=0)[4:])
        assert engine.degraded
        # degraded batches run serially (fault policy spares serial mode)
        res = engine.evaluate_batch([({"i": 100, "j": 100, "k": 100}, 20)])
        assert res.stats.serial_fallbacks == 1
        assert res.new_evaluations == 1
        engine.reset_faults()
        assert not engine.degraded

    def test_terminal_failure_raises(self, mm_model):
        target = fresh_target(mm_model)
        policy = FlakyFaultPolicy(fail_attempts=99, fail_serial=True)
        engine = EvaluationEngine(
            target, max_workers=2, retries=1, backoff_s=0.0, fault_policy=policy
        )
        with pytest.raises(EvaluationError):
            engine.evaluate_batch(some_configs(3, duplicate_every=0))

    def test_serial_engine_with_fault_policy(self, mm_model):
        """workers=1 engines run the same retry machinery inline."""
        target = fresh_target(mm_model)
        policy = FlakyFaultPolicy(fail_attempts=99)  # serial attempts pass
        engine = EvaluationEngine(target, max_workers=1, fault_policy=policy)
        res = engine.evaluate_batch(some_configs(3, duplicate_every=0))
        assert res.new_evaluations == 3


class TestEngineConfig:
    def test_auto_workers(self, mm_model):
        assert auto_workers() >= 1
        engine = EvaluationEngine(fresh_target(mm_model), max_workers="auto")
        assert engine.max_workers == auto_workers()

    def test_invalid_workers_rejected(self, mm_model):
        with pytest.raises(ValueError):
            EvaluationEngine(fresh_target(mm_model), max_workers=0)

    def test_batch_evaluator_alias(self, mm_model):
        assert BatchEvaluator is EvaluationEngine

    def test_stats_merge(self):
        a = EngineStats(batches=1, configs=3, dispatched=2, cache_hits=1)
        b = EngineStats(batches=2, configs=4, deduped=1, wall_time_s=0.5)
        a.merge(b)
        assert (a.batches, a.configs, a.dispatched, a.deduped) == (3, 7, 2, 1)
        assert "configs=7" in a.summary()
        assert a.as_dict()["cache_hits"] == 1


class TestOptimizerRouting:
    """The optimizers all evaluate through the engine now."""

    def test_problem_builds_serial_engine_lazily(self):
        injected = make_setup("mm", WESTMERE).problem(seed=0)
        assert injected.evaluation_engine.target is injected.target
        bare = type(injected).from_skeleton(injected.skeleton, injected.target)
        assert bare.engine is None
        assert bare.evaluation_engine.max_workers == 1
        assert bare.engine is bare.evaluation_engine  # cached after first use

    def test_problem_rejects_foreign_engine(self, mm_model):
        setup = make_setup("mm", WESTMERE)
        problem = setup.problem(seed=0)
        other = EvaluationEngine(fresh_target(mm_model))
        with pytest.raises(ValueError):
            type(problem).from_skeleton(
                problem.skeleton, problem.target, engine=other
            )

    def test_evaluate_batch_records_stats(self):
        problem = make_setup("mm", WESTMERE).problem(seed=0, workers=4)
        rng = np.random.default_rng(0)
        vectors = problem.space.full_boundary().sample(rng, 12)
        configs = problem.evaluate_batch(vectors)
        assert len(configs) == 12
        assert problem.evaluation_engine.stats.configs == 12

    @pytest.mark.parametrize("kernel", ["mm", "dsyrk", "jacobi2d", "stencil3d", "nbody"])
    def test_rsgde3_parity_serial_vs_8_workers(self, kernel):
        """Acceptance: workers=8 must produce a bit-identical Pareto front
        and the exact same E as workers=1, on every kernel."""
        settings = RSGDE3Settings(
            gde3=GDE3Settings(population_size=12), max_generations=8
        )
        results = {}
        for workers in (1, 8):
            problem = make_setup(kernel, WESTMERE).problem(seed=17, workers=workers)
            results[workers] = (RSGDE3(problem, settings).run(seed=4), problem)
        r1, p1 = results[1]
        r8, p8 = results[8]
        assert r1.evaluations == r8.evaluations
        assert p1.target.evaluations == p8.target.evaluations
        assert [c.values for c in r1.front] == [c.values for c in r8.front]
        assert [c.objectives for c in r1.front] == [c.objectives for c in r8.front]
        assert r1.hv_history == r8.hv_history


class TestEngineStatsUnit:
    """Direct unit coverage for the accounting dataclass."""

    def test_merge_sums_every_field(self):
        from dataclasses import fields

        a = EngineStats(**{f.name: i + 1 for i, f in enumerate(fields(EngineStats))})
        b = EngineStats(**{f.name: 10 * (i + 1) for i, f in enumerate(fields(EngineStats))})
        a.merge(b)
        for i, f in enumerate(fields(EngineStats)):
            assert getattr(a, f.name) == 11 * (i + 1), f.name

    def test_merge_with_empty_is_identity(self):
        a = EngineStats(batches=2, configs=5, dispatched=4, wall_time_s=0.25)
        before = a.as_dict()
        a.merge(EngineStats())
        assert a.as_dict() == before

    def test_as_dict_lists_every_field(self):
        from dataclasses import fields

        d = EngineStats(batches=1, timeouts=2, serial_fallbacks=3).as_dict()
        assert set(d) == {f.name for f in fields(EngineStats)}
        assert (d["batches"], d["timeouts"], d["serial_fallbacks"]) == (1, 2, 3)

    def test_summary_renders_key_counters(self):
        s = EngineStats(
            batches=4, configs=40, dispatched=30, cache_hits=6,
            deduped=4, retried=2, failed=1, wall_time_s=0.5,
        ).summary()
        for part in (
            "batches=4", "configs=40", "dispatched=30", "cache_hits=6",
            "deduped=4", "retried=2", "failed=1", "wall=0.500s",
        ):
            assert part in s


class TestChunkedDispatch:
    """The tentpole: chunked vectorized dispatch must be bit-identical to
    the serial path for every (workers, chunk_size) combination, with and
    without fault injection."""

    def _reference(self, mm_model, configs):
        target = fresh_target(mm_model, seed=21)
        return EvaluationEngine(target).evaluate_batch(configs), target

    def _configs(self, n=48):
        rng = np.random.default_rng(7)
        tiles = rng.integers(1, 400, size=(n, 3))
        threads = rng.choice([1, 5, 10, 20, 40], size=n)
        configs = [
            ({"i": int(a), "j": int(b), "k": int(c)}, int(t))
            for (a, b, c), t in zip(tiles, threads)
        ]
        return configs + configs[: n // 4]  # duplicates too

    @pytest.mark.parametrize("workers", [1, 2, 8])
    @pytest.mark.parametrize("chunk_size", [None, 1, 3])
    def test_bit_identical_for_any_chunking(self, mm_model, workers, chunk_size):
        configs = self._configs()
        ref, ref_target = self._reference(mm_model, configs)
        target = fresh_target(mm_model, seed=21)
        engine = EvaluationEngine(
            target, max_workers=workers, chunk_size=chunk_size
        )
        res = engine.evaluate_batch(configs)
        assert res.objectives == ref.objectives  # bit-identical
        assert target.evaluations == ref_target.evaluations  # E exact
        s = engine.stats
        assert s.configs == s.dispatched + s.cache_hits + s.deduped + s.disk_hits

    @pytest.mark.parametrize("workers", [2, 8])
    @pytest.mark.parametrize("chunk_size", [None, 1, 3])
    def test_fault_parity_under_chunking(self, mm_model, workers, chunk_size):
        """A failed chunk retries whole, then rescues per key — the result
        must still match the clean serial run exactly."""
        configs = self._configs(24)
        ref, ref_target = self._reference(mm_model, configs)
        target = fresh_target(mm_model, seed=21)
        engine = EvaluationEngine(
            target,
            max_workers=workers,
            chunk_size=chunk_size,
            retries=2,
            backoff_s=0.0,
            fault_policy=FlakyFaultPolicy(fail_attempts=1),
        )
        res = engine.evaluate_batch(configs)
        assert res.objectives == ref.objectives
        assert target.evaluations == ref_target.evaluations
        assert engine.stats.retried > 0
        assert engine.stats.failed == 0

    def test_chunk_sizes_cover_batch_exactly(self, mm_model):
        engine = EvaluationEngine(fresh_target(mm_model), max_workers=4)
        keys = [(i,) for i in range(10)]
        chunks = engine._chunks(keys)
        assert [k for c in chunks for k in c] == keys
        assert len(chunks) <= 4
        assert max(len(c) for c in chunks) == 3  # ceil(10/4)
        engine.chunk_size = 4
        assert [len(c) for c in engine._chunks(keys)] == [4, 4, 2]

    def test_single_deadline_for_stragglers(self, mm_model):
        """n hung workers cost one timeout budget per attempt, not n
        sequential ones: 6 configs sleeping 2 s each must clear the batch
        (via timeout → retry → serial rescue) well before any sleep ends."""
        target = fresh_target(mm_model)
        engine = EvaluationEngine(
            target,
            max_workers=2,
            chunk_size=1,
            timeout_s=0.1,
            retries=1,
            backoff_s=0.0,
            fault_policy=FlakyFaultPolicy(slow_attempts=2, delay_s=2.0),
        )
        import time as _time

        t0 = _time.perf_counter()
        res = engine.evaluate_batch(some_configs(6, duplicate_every=0))
        elapsed = _time.perf_counter() - t0
        assert res.new_evaluations == 6
        assert elapsed < 2.0  # never waited out a sleeping worker
        assert engine.stats.timeouts >= 6

    def test_invalid_chunk_size_rejected(self, mm_model):
        with pytest.raises(ValueError):
            EvaluationEngine(fresh_target(mm_model), chunk_size=0)

    def test_invalid_backend_rejected(self, mm_model):
        with pytest.raises(ValueError):
            EvaluationEngine(fresh_target(mm_model), backend="gpu")

    def test_close_is_idempotent_for_thread_backend(self, mm_model):
        engine = EvaluationEngine(fresh_target(mm_model), max_workers=2)
        engine.evaluate_batch(some_configs(4, duplicate_every=0))
        engine.close()
        engine.close()


class TestProcessBackend:
    def test_bit_identical_to_serial(self, mm_model):
        configs = [
            ({"i": 16 * (i + 1), "j": 64, "k": 8}, 10) for i in range(24)
        ]
        ref_target = fresh_target(mm_model, seed=9)
        ref = EvaluationEngine(ref_target).evaluate_batch(configs)
        target = fresh_target(mm_model, seed=9)
        engine = EvaluationEngine(target, max_workers=4, backend="process")
        try:
            res = engine.evaluate_batch(configs)
            assert res.objectives == ref.objectives
            assert target.evaluations == ref_target.evaluations
            # the pool is cached across batches
            pool = engine._process_pool
            assert pool is not None
            engine.evaluate_batch(configs)  # all memo hits, pool untouched
            assert engine._process_pool is pool
        finally:
            engine.close()
        assert engine._process_pool is None

    def test_fault_policy_incompatible(self, mm_model):
        with pytest.raises(ValueError):
            EvaluationEngine(
                fresh_target(mm_model),
                backend="process",
                fault_policy=FlakyFaultPolicy(),
            )


class TestEngineObservability:
    """evaluate_batch reports into the injected Observability handle."""

    def test_batch_span_carries_accounting(self, mm_model):
        from repro.obs import FakeClock, Observability

        obs = Observability.tracing(clock=FakeClock(tick=1e-3))
        engine = EvaluationEngine(fresh_target(mm_model), obs=obs)
        res = engine.evaluate_batch(some_configs(9, duplicate_every=3))
        (span,) = [r for r in obs.tracer.records() if r["type"] == "span"]
        assert span["name"] == "engine.batch"
        assert span["attrs"]["configs"] == 9
        assert span["attrs"]["dispatched"] == res.stats.dispatched
        assert span["attrs"]["deduped"] == res.stats.deduped
        assert span["duration"] > 0

    def test_metrics_accumulate_across_batches(self, mm_model):
        from repro.obs import Observability

        obs = Observability.disabled()  # metrics still collected
        engine = EvaluationEngine(fresh_target(mm_model), obs=obs)
        engine.evaluate_batch(some_configs(6, duplicate_every=0))
        engine.evaluate_batch(some_configs(6, duplicate_every=0))  # all cached
        m = obs.metrics.as_dict()
        assert m["repro_engine_batches_total"] == 2
        assert m["repro_engine_configs_total"] == 12
        assert m["repro_engine_cache_hits_total"] == 6
        assert m["repro_engine_batch_seconds"]["count"] == 2
        assert obs.tracer.records() == []  # tracing stayed off


class TestFusedSession:
    """The multi-target fused session: several regions' batches share one
    pool, dedup by fingerprint, and commit deterministically."""

    def drain(self, engine):
        done = []
        while engine.fused_active:
            done.extend(engine.fused_wait())
        return done

    def test_single_batch_matches_evaluate_batch(self, mm_model):
        configs = some_configs(9, duplicate_every=3)
        ref_target = fresh_target(mm_model)
        ref = EvaluationEngine(ref_target).evaluate_batch(configs)

        target = fresh_target(mm_model)
        engine = EvaluationEngine(target, max_workers=4)
        batch = engine.fused_submit(target, configs, region="r0")
        self.drain(engine)
        engine.close()
        assert batch.done
        assert batch.objectives == ref.objectives
        assert target.evaluations == ref_target.evaluations
        assert batch.stats.deduped == ref.stats.deduped
        assert batch.stats.dispatched == ref.stats.dispatched

    @pytest.mark.parametrize("workers", [1, 4, 8])
    def test_two_targets_bit_identical(self, mm_model, workers):
        refs = []
        for seed in (0, 1):
            t = fresh_target(mm_model, seed=seed)
            refs.append(
                (t, EvaluationEngine(t).evaluate_batch(some_configs(12)))
            )

        targets = [fresh_target(mm_model, seed=s) for s in (0, 1)]
        engine = EvaluationEngine(targets[0], max_workers=workers)
        batches = [
            engine.fused_submit(t, some_configs(12), region=str(i))
            for i, t in enumerate(targets)
        ]
        self.drain(engine)
        engine.close()
        for batch, target, (ref_t, ref) in zip(batches, targets, refs):
            assert batch.objectives == ref.objectives
            assert target.evaluations == ref_t.evaluations

    def test_equal_fingerprints_share_one_dispatch(self, mm_model):
        a = fresh_target(mm_model)
        b = fresh_target(mm_model)
        assert a.fingerprint() == b.fingerprint()
        engine = EvaluationEngine(a, max_workers=4)
        ba = engine.fused_submit(a, some_configs(10, duplicate_every=0), region="a")
        bb = engine.fused_submit(b, some_configs(10, duplicate_every=0), region="b")
        self.drain(engine)
        engine.close()
        assert ba.objectives == bb.objectives
        assert ba.stats.dispatched == 10 and ba.stats.shared_hits == 0
        assert bb.stats.dispatched == 0 and bb.stats.shared_hits == 10
        # the shared computation still commits to b's own ledger
        assert b.evaluations == 10
        for stats in (ba.stats, bb.stats):
            assert stats.configs == (
                stats.dispatched
                + stats.cache_hits
                + stats.deduped
                + stats.disk_hits
                + stats.shared_hits
            )

    def test_session_results_persist_across_generations(self, mm_model):
        """A key computed generations ago is still served as shared_hits."""
        a = fresh_target(mm_model)
        b = fresh_target(mm_model)
        engine = EvaluationEngine(a, max_workers=2)
        engine.fused_submit(a, some_configs(6, duplicate_every=0), region="a")
        self.drain(engine)
        later = engine.fused_submit(b, some_configs(6, duplicate_every=0), region="b")
        self.drain(engine)
        engine.close()
        assert later.stats.shared_hits == 6
        assert later.stats.dispatched == 0

    def test_failed_chunk_rescued_serially(self, mm_model):
        target = fresh_target(mm_model)
        policy = FlakyFaultPolicy(fail_attempts=1)
        ref_target = fresh_target(mm_model)
        ref = EvaluationEngine(ref_target).evaluate_batch(some_configs(8))

        engine = EvaluationEngine(
            target, max_workers=4, fault_policy=policy, backoff_s=0.0
        )
        batch = engine.fused_submit(target, some_configs(8), region="r")
        self.drain(engine)
        engine.close()
        assert batch.objectives == ref.objectives
        assert batch.stats.failed > 0

    def test_process_backend(self, mm_model):
        targets = [fresh_target(mm_model, seed=s) for s in (0, 1)]
        refs = [
            EvaluationEngine(fresh_target(mm_model, seed=s)).evaluate_batch(
                some_configs(8)
            )
            for s in (0, 1)
        ]
        engine = EvaluationEngine(targets[0], max_workers=2, backend="process")
        batches = [
            engine.fused_submit(t, some_configs(8), region=str(i))
            for i, t in enumerate(targets)
        ]
        self.drain(engine)
        engine.close()
        for batch, ref in zip(batches, refs):
            assert batch.objectives == ref.objectives

    def test_fused_reset_clears_state(self, mm_model):
        target = fresh_target(mm_model)
        engine = EvaluationEngine(target, max_workers=2)
        engine.fused_submit(target, some_configs(5), region="r")
        self.drain(engine)
        assert engine._fused_results
        engine.fused_reset()
        assert not engine._fused_results and not engine.fused_active
        engine.close()

    def test_scheduler_batch_events_and_metrics(self, mm_model):
        from repro.obs import Observability

        obs = Observability.tracing()
        target = fresh_target(mm_model)
        engine = EvaluationEngine(target, max_workers=2, obs=obs)
        engine.fused_submit(target, some_configs(9, duplicate_every=3), region="r7")
        self.drain(engine)
        engine.close()
        events = [
            r
            for r in obs.tracer.records()
            if r["type"] == "event" and r["name"] == "scheduler.batch"
        ]
        assert len(events) == 1
        attrs = events[0]["attrs"]
        assert attrs["region"] == "r7"
        assert attrs["configs"] == 9
        m = obs.metrics.as_dict()
        assert m["repro_scheduler_drain_seconds"]["count"] >= 1
