"""Tests for informed population seeding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import extract_regions
from repro.evaluation import RegionCostModel
from repro.frontend import get_kernel
from repro.machine import BARCELONA, WESTMERE
from repro.optimizer import ParameterSpace, RSGDE3, TuningProblem
from repro.optimizer.rsgde3 import RSGDE3Settings
from repro.optimizer.gde3 import GDE3Settings
from repro.optimizer.seeding import informed_seeds, mixed_initial_vectors
from repro.transform import default_skeleton
from repro.util.rng import derive_rng


@pytest.fixture
def mm_space_model():
    k = get_kernel("mm")
    region = extract_regions(k.function)[0]
    sk = default_skeleton(region, {"N": 1400}, WESTMERE.total_cores)
    model = RegionCostModel(region, {"N": 1400}, WESTMERE,
                            parallel_spec=sk.parallel_spec())
    return ParameterSpace(sk.parameters), model


class TestInformedSeeds:
    def test_within_domain(self, mm_space_model):
        space, model = mm_space_model
        seeds = informed_seeds(space, model, 40)
        assert len(seeds) > 0
        for row in seeds:
            for val, p in zip(row, space.parameters):
                lo, hi = p.span()
                assert lo <= val <= hi

    def test_unique(self, mm_space_model):
        space, model = mm_space_model
        seeds = informed_seeds(space, model, 100)
        keys = {tuple(r.tolist()) for r in seeds}
        assert len(keys) == len(seeds)

    def test_count_respected(self, mm_space_model):
        space, model = mm_space_model
        assert len(informed_seeds(space, model, 5)) <= 5

    def test_spread_over_thread_counts(self, mm_space_model):
        space, model = mm_space_model
        seeds = informed_seeds(space, model, 60)
        thr_idx = space.names.index("threads")
        distinct = {int(r[thr_idx]) for r in seeds}
        assert len(distinct) >= 3

    def test_includes_untiled_anchor(self, mm_space_model):
        space, model = mm_space_model
        seeds = informed_seeds(space, model, 100)
        ti = space.names.index("tile_i")
        hi = space.parameter("tile_i").span()[1]
        assert any(r[ti] == hi for r in seeds)

    def test_no_tile_params_empty(self):
        from repro.transform.skeleton import Parameter

        space = ParameterSpace((Parameter("threads", 1, 8),))
        k = get_kernel("mm")
        region = extract_regions(k.function)[0]
        model = RegionCostModel(region, {"N": 100}, WESTMERE)
        assert informed_seeds(space, model, 10).shape == (0, 1)


class TestMixedInitialVectors:
    def test_population_size(self, mm_space_model):
        space, model = mm_space_model
        rng = derive_rng(0)
        vecs = mixed_initial_vectors(space, model, 30, rng, 0.5)
        assert len(vecs) == 30

    def test_zero_fraction_fully_random(self, mm_space_model):
        space, model = mm_space_model
        # fraction rounding keeps at least one seed; near-zero keeps 1
        vecs = mixed_initial_vectors(space, model, 20, derive_rng(1), 0.05)
        assert len(vecs) == 20

    def test_full_fraction_capped(self, mm_space_model):
        space, model = mm_space_model
        vecs = mixed_initial_vectors(space, model, 8, derive_rng(2), 1.0)
        assert len(vecs) <= 8


class TestSeededRSGDE3:
    def test_runs_and_improves_start(self):
        k = get_kernel("mm")
        region = extract_regions(k.function)[0]
        sk = default_skeleton(region, {"N": 700}, BARCELONA.total_cores)
        from repro.evaluation import SimulatedTarget

        model = RegionCostModel(region, {"N": 700}, BARCELONA,
                                parallel_spec=sk.parallel_spec())
        problem = TuningProblem.from_skeleton(sk, SimulatedTarget(model, seed=17))
        settings = RSGDE3Settings(
            gde3=GDE3Settings(population_size=16),
            max_generations=8,
            patience=2,
            informed_seed_fraction=0.5,
        )
        res = RSGDE3(problem, settings).run(seed=3)
        assert res.size >= 2
        assert len(res.hv_history) == res.generations + 1
        # evaluations recorded in the history are monotone
        evals = [e for e, _ in res.hv_history]
        assert evals == sorted(evals)
