"""Tests for the IR simplifier."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import extract_regions
from repro.frontend import get_kernel
from repro.ir.builder import assign, c, loop, var
from repro.ir.interp import eval_expr, run_function
from repro.ir.nodes import BinOp, FloatLit, IntLit, Max, Min
from repro.ir.printer import expr_to_source
from repro.ir.simplify import simplify, simplify_expr
from repro.transform import collapse, default_skeleton, tile


class TestRules:
    def test_constant_folding(self):
        assert simplify_expr(c(2) + c(3)) == IntLit(5)
        assert simplify_expr(c(2) * c(3)) == IntLit(6)
        assert simplify_expr(c(7) - c(3)) == IntLit(4)
        assert simplify_expr(c(7) // c(2)) == IntLit(3)
        assert simplify_expr(c(7) % c(2)) == IntLit(1)

    def test_negative_int_division_not_folded(self):
        # C and Python disagree on negative division; leave it alone
        e = BinOp("//", IntLit(-7), IntLit(2))
        assert simplify_expr(e) == e

    def test_identities(self):
        x = var("x")
        assert simplify_expr(x + 0) == x
        assert simplify_expr(0 + x) == x
        assert simplify_expr(x - 0) == x
        assert simplify_expr(x * 1) == x
        assert simplify_expr(1 * x) == x
        assert simplify_expr(x * 0) == IntLit(0)
        assert simplify_expr(x // 1) == x
        assert simplify_expr(x % 1) == IntLit(0)

    def test_min_max(self):
        x = var("x")
        assert simplify_expr(Min(x, x)) == x
        assert simplify_expr(Max(x, x)) == x
        assert simplify_expr(Min(c(3), c(5))) == IntLit(3)
        assert simplify_expr(Max(c(3), c(5))) == IntLit(5)

    def test_nested_cascades(self):
        e = (c(0) + (var("c") // c(1)) * c(1)) + c(0)
        assert expr_to_source(simplify_expr(e)) == "c"

    def test_float_folding(self):
        e = BinOp("*", FloatLit(2.0), FloatLit(0.25))
        assert simplify_expr(e) == FloatLit(0.5)

    def test_non_foldable_untouched(self):
        e = var("x") + var("y")
        assert simplify_expr(e) == e


class TestSemanticsPreserved:
    @given(
        a=st.integers(min_value=0, max_value=50),
        b=st.integers(min_value=0, max_value=50),
        xv=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=60)
    def test_property_value_preserved(self, a, b, xv):
        x = var("x")
        exprs = [
            (x + a) * b,
            (x * a + b) // max(1, b),
            Min(x + a, x * 2) + Max(c(a), c(b)),
            (x - 0) % max(1, a),
        ]
        env = {"x": xv}
        for e in exprs:
            assert eval_expr(simplify_expr(e), env, {}) == eval_expr(e, env, {})

    def test_simplified_tiled_collapsed_mm_executes_correctly(self, rng):
        k = get_kernel("mm")
        region = extract_regions(k.function)[0]
        nest = collapse(tile(region.nest, {"i": 4, "j": 5, "k": 3}), 2)
        from repro.transform import replace_at_path

        fn = replace_at_path(k.function, region.path, nest)
        simplified = simplify(fn)
        inputs = k.make_inputs({"N": 13}, rng)
        out = run_function(simplified, inputs, {"N": 13})  # type: ignore[arg-type]
        ref = k.reference(inputs, {"N": 13})
        assert np.allclose(out["C"], ref["C"])


class TestBackendIntegration:
    def test_generated_c_is_clean(self):
        from repro.backend import function_to_c

        k = get_kernel("mm")
        region = extract_regions(k.function)[0]
        sk = default_skeleton(region, {"N": 100}, 8)
        fn = sk.instantiate(
            {"tile_i": 10, "tile_j": 10, "tile_k": 10, "threads": 4}
        ).apply()
        import re

        src = function_to_c(fn)
        assert not re.search(r"\* 1\b", src)
        assert not re.search(r"\+ 0\b", src)
        assert not re.search(r"/ 1\b", src)

    def test_generated_python_is_clean(self):
        from repro.backend.pygen import function_to_python

        k = get_kernel("mm")
        region = extract_regions(k.function)[0]
        sk = default_skeleton(region, {"N": 100}, 8)
        fn = sk.instantiate(
            {"tile_i": 10, "tile_j": 10, "tile_k": 10, "threads": 4}
        ).apply()
        import re

        src = function_to_python(fn)
        assert not re.search(r"\* 1\b", src)
        assert not re.search(r"\+ 0\b", src)
