"""Tests for loop fusion and fission."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ir.builder import array, assign, block, func, loop, param, var
from repro.ir.interp import run_function
from repro.ir.nodes import Block, For
from repro.ir.types import I64
from repro.transform.fusion import can_fuse, fission, fuse


def two_loops(second_body_offset=0):
    """for i: B[i] = A[i]*2;  for i: C[i] = B[i+off] + 1"""
    i = var("i")
    first = loop("i", 0, "N", assign(var("B")[i], var("A")[i] * 2.0))
    second = loop(
        "i", 0, "N", assign(var("C")[i], var("B")[i + second_body_offset] + 1.0)
    )
    return first, second


def run_fn(stmts, n=10, arrays=("A", "B", "C")):
    fn = func("f", [param("N", I64)] + [array(a, "N") for a in arrays], *stmts)
    rng = np.random.default_rng(0)
    data = {a: rng.standard_normal(n) for a in arrays}
    return run_function(fn, data, {"N": n}), data


class TestCanFuse:
    def test_same_index_accesses_ok(self):
        first, second = two_loops(0)
        assert can_fuse(first, second)

    def test_forward_offset_rejected(self):
        # second loop reads B[i+1], produced by the first loop's future
        # iteration — fusing would read a stale value
        first, second = two_loops(+1)
        assert not can_fuse(first, second)

    def test_backward_offset_ok(self):
        first, second = two_loops(-1)
        assert can_fuse(first, second)

    def test_different_headers_rejected(self):
        i = var("i")
        a = loop("i", 0, "N", assign(var("B")[i], 1.0))
        b = loop("i", 1, "N", assign(var("C")[i], 1.0))
        assert not can_fuse(a, b)

    def test_independent_arrays_ok(self):
        i = var("i")
        a = loop("i", 0, "N", assign(var("B")[i], var("A")[i] + 1.0))
        b = loop("i", 0, "N", assign(var("C")[i], var("A")[i] * 2.0))
        assert can_fuse(a, b)


class TestFuse:
    def test_structure(self):
        first, second = two_loops(0)
        fused = fuse(first, second)
        assert isinstance(fused, For)
        assert len(fused.body.stmts) == 2
        assert fused.annotation("fused")

    def test_semantics_preserved(self):
        first, second = two_loops(0)
        out_sep, _ = run_fn([first, second])
        out_fused, _ = run_fn([fuse(first, second)])
        assert np.allclose(out_sep["C"], out_fused["C"])
        assert np.allclose(out_sep["B"], out_fused["B"])

    def test_backward_offset_semantics(self):
        out_sep, _ = run_fn(list(two_loops(-1)))
        out_fused, _ = run_fn([fuse(*two_loops(-1))])
        # B[i-1] at i=0 wraps to B[-1] in NumPy for both orders only if the
        # value is identical — in the separated order B[-1] is the *final*
        # B, in the fused order it is the original. Compare from index 1.
        assert np.allclose(out_sep["C"][1:], out_fused["C"][1:])

    def test_illegal_fusion_raises(self):
        first, second = two_loops(+1)
        with pytest.raises(ValueError):
            fuse(first, second)


class TestFission:
    def test_structure(self):
        i = var("i")
        body = block(
            assign(var("B")[i], var("A")[i] + 1.0),
            assign(var("C")[i], var("B")[i] * 2.0),
        )
        lp = loop("i", 0, "N", body)
        parts = fission(lp)
        assert len(parts) == 2
        assert all(isinstance(p, For) and len(p.body.stmts) == 1 for p in parts)

    def test_semantics_preserved(self):
        i = var("i")
        body = block(
            assign(var("B")[i], var("A")[i] + 1.0),
            assign(var("C")[i], var("B")[i] * 2.0),
        )
        lp = loop("i", 0, "N", body)
        out_orig, _ = run_fn([lp])
        out_fissioned, _ = run_fn(fission(lp))
        assert np.allclose(out_orig["C"], out_fissioned["C"])

    def test_backward_dependence_rejected(self):
        # first statement reads C which the second statement writes: after
        # fission the read loop would see only old values
        i = var("i")
        body = block(
            assign(var("B")[i], var("C")[i] + 1.0),
            assign(var("C")[i], var("A")[i] * 2.0),
        )
        lp = loop("i", 0, "N", body)
        with pytest.raises(ValueError):
            fission(lp)

    def test_single_statement_rejected(self):
        lp = loop("i", 0, "N", assign(var("B")[var("i")], 1.0))
        with pytest.raises(ValueError):
            fission(lp)

    def test_fission_then_fuse_roundtrip(self):
        i = var("i")
        body = block(
            assign(var("B")[i], var("A")[i] + 1.0),
            assign(var("C")[i], var("A")[i] * 2.0),
        )
        lp = loop("i", 0, "N", body)
        parts = fission(lp)
        refused = fuse(parts[0], parts[1])
        out_orig, _ = run_fn([lp])
        out_round, _ = run_fn([refused])
        assert np.allclose(out_orig["B"], out_round["B"])
        assert np.allclose(out_orig["C"], out_round["C"])
