"""Tests for the analysis package: polyhedral abstractions, dependences,
regions, features."""

from __future__ import annotations

import pytest

from repro.analysis import (
    AffineExpr,
    affine_of,
    access_functions,
    analyze_dependences,
    analyze_features,
    extract_regions,
    iteration_domain,
    parallel_loops,
    tilable_band,
)
from repro.analysis.dependence import DependenceKind
from repro.frontend import get_kernel, parse_function
from repro.ir.builder import assign, block, loop, var, func, array, param
from repro.ir.types import I64


class TestAffine:
    def test_var(self):
        a = affine_of(var("i"))
        assert a is not None and a.coeff("i") == 1

    def test_linear_combination(self):
        a = affine_of(var("i") * 2 + var("j") - 3)
        assert a.coeff("i") == 2 and a.coeff("j") == 1 and a.const == -3

    def test_const_times_var(self):
        a = affine_of(3 * var("k"))
        assert a.coeff("k") == 3

    def test_var_times_var_not_affine(self):
        assert affine_of(var("i") * var("j")) is None

    def test_division_not_affine(self):
        assert affine_of(var("i") / 2) is None

    def test_float_not_affine(self):
        from repro.ir.builder import f

        assert affine_of(f(1.5)) is None

    def test_arith(self):
        a = AffineExpr.make({"i": 1}, 2)
        b = AffineExpr.make({"i": -1, "j": 3}, 1)
        s = a + b
        assert s.coeff("i") == 0 and s.coeff("j") == 3 and s.const == 3
        assert (a - a).is_constant()

    def test_evaluate(self):
        a = AffineExpr.make({"i": 2}, 5)
        assert a.evaluate({"i": 10}) == 25

    def test_restrict(self):
        a = AffineExpr.make({"i": 1, "j": 2}, 7)
        r = a.restrict({"i"})
        assert r.coeff("j") == 0 and r.coeff("i") == 1 and r.const == 7


class TestDomains:
    def test_mm_domain(self, mm_region):
        dom = mm_region.domain
        assert dom.vars == ("i", "j", "k")
        assert dom.size({"N": 10}) == 1000
        assert dom.extent("i", {"N": 7}) == 7

    def test_shifted_bounds(self):
        k = get_kernel("jacobi2d")
        region = extract_regions(k.function)[0]
        assert region.domain.extent("i", {"N": 10}) == 8  # [1, N-1)

    def test_trip_count_empty(self):
        nest = loop("i", 5, 3, assign(var("A")[var("i")], 0.0))
        dom = iteration_domain(nest)
        assert dom.size({}) == 0


class TestAccessFunctions:
    def test_mm_accesses(self, mm_region):
        accs = access_functions(mm_region.nest)
        by_array = {}
        for a in accs:
            by_array.setdefault(a.array, []).append(a)
        assert set(by_array) == {"A", "B", "C"}
        writes = [a for a in accs if a.is_write]
        assert len(writes) == 1 and writes[0].array == "C"

    def test_affine_flags(self, mm_region):
        for a in access_functions(mm_region.nest):
            assert a.is_affine

    def test_nonaffine_subscript_detected(self):
        i = var("i")
        nest = loop("i", 0, "N", assign(var("A")[i * i], 0.0))
        accs = access_functions(nest)
        assert not accs[0].is_affine


class TestDependence:
    def test_mm_reduction_dependence(self, mm_region):
        deps = analyze_dependences(mm_region.nest)
        # the k-carried accumulation shows up twice: the flow dependence of
        # the read-modify-write and the output self-dependence of the write
        assert len(deps) == 2
        kinds = {d.kind for d in deps}
        assert kinds == {DependenceKind.FLOW, DependenceKind.OUTPUT}
        for dep in deps:
            assert dep.array == "C" and dep.is_reduction
            assert dep.directions[:2] == ("=", "=")

    def test_mm_band_and_parallel(self, mm_region):
        assert tilable_band(mm_region.nest) == ["i", "j", "k"]
        assert parallel_loops(mm_region.nest) == ["i", "j"]

    def test_stencil_no_deps(self):
        k = get_kernel("stencil3d")
        region = extract_regions(k.function)[0]
        assert analyze_dependences(region.nest) == []
        assert parallel_loops(region.nest) == ["i", "j", "k"]

    def test_nbody_reduction_over_j(self):
        k = get_kernel("nbody")
        region = extract_regions(k.function)[0]
        assert parallel_loops(region.nest) == ["i"]
        assert tilable_band(region.nest) == ["i", "j"]

    def test_true_recurrence_blocks_parallelism(self):
        # A[i] = A[i-1] + 1: carried flow dependence at i
        i = var("i")
        nest = loop("i", 1, "N", assign(var("A")[i], var("A")[i - 1] + 1.0))
        deps = analyze_dependences(nest)
        assert len(deps) >= 1
        assert parallel_loops(nest) == []
        # distance +1 is non-negative: still tilable (a legal band)
        assert tilable_band(nest) == ["i"]

    def test_negative_distance_normalized(self):
        # A[i] = A[i+1]: anti-dependence; direction must normalize to '<'
        i = var("i")
        nest = loop("i", 0, var("N") - 1, assign(var("A")[i], var("A")[i + 1] + 0.0))
        deps = analyze_dependences(nest)
        assert len(deps) == 1
        assert deps[0].directions == ("<",)

    def test_constant_offset_independence(self):
        # A[2i] = A[2i+1]: GCD test proves independence
        i = var("i")
        nest = loop("i", 0, "N", assign(var("A")[i * 2], var("A")[i * 2 + 1] + 0.0))
        assert analyze_dependences(nest) == []

    def test_wavefront_dependence_limits_band(self):
        # A[i][j] = A[i-1][j+1]: directions (<, >) — not fully permutable at j
        i, j = var("i"), var("j")
        body = assign(var("A")[i, j], var("A")[i - 1, j + 1] + 0.0)
        nest = loop("i", 1, "N", loop("j", 0, var("N") - 1, body))
        band = tilable_band(nest)
        assert band == ["i"]

    def test_different_arrays_no_dependence(self):
        i = var("i")
        nest = loop("i", 0, "N", assign(var("B")[i], var("A")[i] + 0.0))
        assert analyze_dependences(nest) == []


class TestRegions:
    def test_every_kernel_has_region(self, kernel):
        regions = extract_regions(kernel.function)
        assert regions, kernel.name
        region = regions[0]
        # the kernel's tuned loops are always inside the analyzed band
        # (n-body tiles only its reduction dimension j)
        assert set(kernel.tile_loops) <= set(region.tile_band)

    def test_jacobi_two_regions_with_sweep(self):
        k = get_kernel("jacobi2d")
        regions = extract_regions(k.function)
        assert len(regions) == 2
        assert all(r.sweep_loops == ("t",) for r in regions)

    def test_parallel_candidate(self, mm_region):
        assert mm_region.parallel_candidate() == "i"

    def test_region_path_splice_roundtrip(self, mm_region):
        from repro.transform import replace_at_path, stmt_at_path

        fn = mm_region.function
        nest = stmt_at_path(fn, mm_region.path)
        assert nest is mm_region.nest
        fn2 = replace_at_path(fn, mm_region.path, nest)
        assert fn2 == fn

    def test_region_names_unique(self):
        k = get_kernel("jacobi2d")
        names = [r.name for r in extract_regions(k.function)]
        assert len(set(names)) == len(names)


class TestFeatures:
    def test_mm_flops(self, mm_region):
        feats = analyze_features(mm_region, {"N": 10})
        assert feats.flops_per_iteration == 2
        assert feats.total_iterations == 1000
        assert feats.total_flops == 2000

    def test_jacobi_sweep_factor(self):
        k = get_kernel("jacobi2d")
        region = extract_regions(k.function)[0]
        feats = analyze_features(region, {"N": 10, "T": 7})
        assert feats.sweep_factor == 7

    def test_footprints(self, mm_region):
        feats = analyze_features(mm_region, {"N": 10})
        assert feats.footprint_bytes == {"A": 800, "B": 800, "C": 800}
        assert feats.total_footprint == 2400

    def test_nbody_flops_counts_cse_once(self):
        k = get_kernel("nbody")
        region = extract_regions(k.function)[0]
        feats = analyze_features(region, {"n": 8})
        # dx,dy,dz + squares + sums + rsqrt3 + 3 fused mul-add: ~23, far
        # below the naive double-counted walk (which would exceed 40)
        assert 15 <= feats.flops_per_iteration <= 30

    def test_table_iv_complexities(self):
        """The Table IV classes hold computationally: flops scale like the
        documented complexity when sizes double."""
        k = get_kernel("mm")
        region = extract_regions(k.function)[0]
        f1 = analyze_features(region, {"N": 8}).total_flops
        f2 = analyze_features(region, {"N": 16}).total_flops
        assert f2 / f1 == pytest.approx(8.0)  # O(N^3)
