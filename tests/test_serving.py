"""Tests for the serving loop: precompiled dispatch vs the scalar oracle,
workload determinism, sharded monitor ingestion, and observability."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend.meta import VersionMeta
from repro.runtime import (
    BanditSelector,
    DispatchEngine,
    DispatchRequest,
    RuntimeMonitor,
    Version,
    VersionTable,
    Workload,
    compile_policy,
    generate_workload,
    policy_by_name,
)

#: every selection-policy shape the registry can produce: the four plain
#: names plus each parameterized family, with and without the optional
#: argument where allowed.  The differential-oracle tests below run each of
#: them — a compiled policy that drifts from its scalar select() fails here.
REGISTRY_POLICIES = [
    "fastest",
    "efficient",
    "balanced",
    "greenest",
    "time_cap:0.1",
    "time_cap:10",
    "thread_cap",
    "thread_cap:2",
    "thread_cap:3",
    "efficiency_floor",
    "efficiency_floor:0.3",
    "energy_cap:1.5",
    "energy_cap:0.001",
]

CONTEXTS = [{}, {"available_cores": 1}, {"available_cores": 3},
            {"available_cores": 8}, {"available_cores": 64}]


def meta(i, time, threads, resources=None, energy=None):
    return VersionMeta(
        index=i,
        time=time,
        resources=resources if resources is not None else time * threads,
        threads=threads,
        tile_sizes=(("i", 8),),
        energy=energy,
    )


def make_table(region="mm"):
    """mm-like Pareto table with a sequential entry, duplicate thread
    counts, and partial energy metadata — every policy family has both a
    feasible and an infeasible regime on it."""
    metas = [
        meta(0, 0.05, 8, energy=2.0),
        meta(1, 0.08, 4, energy=1.0),
        meta(2, 0.09, 4),
        meta(3, 0.14, 2, energy=0.9),
        meta(4, 1.10, 1, energy=3.0),
    ]
    return VersionTable(
        region_name=region, versions=tuple(Version(meta=m) for m in metas)
    )


def degenerate_tables():
    """Edge-case tables the compiled path must agree on too."""
    single = VersionTable("single", (Version(meta=meta(0, 0.5, 2)),))
    equal = VersionTable(
        "equal",
        tuple(Version(meta=meta(i, 0.5, 2, resources=1.0)) for i in range(3)),
    )
    no_seq = VersionTable(
        "noseq", tuple(Version(meta=meta(i, 0.1 * (i + 1), 2)) for i in range(3))
    )
    return [single, equal, no_seq]


class TestCompiledOracle:
    @pytest.mark.parametrize("name", REGISTRY_POLICIES)
    def test_compiled_matches_scalar_for_registry_policy(self, name):
        """The differential oracle: for every registered policy shape, the
        compiled selection must equal the per-call select() on every table
        and context."""
        policy = policy_by_name(name)
        for table in [make_table()] + degenerate_tables():
            compiled = compile_policy(policy, table)
            assert compiled is not None, f"{name} must compile"
            for ctx in CONTEXTS:
                want = policy.select(table, ctx)
                got = compiled.select(ctx)
                assert got is want, (name, table.region_name, ctx)

    def test_bandit_does_not_compile(self):
        assert compile_policy(BanditSelector(), make_table()) is None

    def test_objects_without_compile_do_not_compile(self):
        class Legacy:
            pass

        assert compile_policy(Legacy(), make_table()) is None


class TestWorkload:
    def test_same_seed_same_stream(self):
        a = generate_workload(["mm", "st"], 500, seed=3, core_choices=[1, 4])
        b = generate_workload(["mm", "st"], 500, seed=3, core_choices=[1, 4])
        assert np.array_equal(a.region_ids, b.region_ids)
        assert np.array_equal(a.cores, b.cores)

    def test_different_seed_different_stream(self):
        a = generate_workload(["mm", "st"], 500, seed=3)
        b = generate_workload(["mm", "st"], 500, seed=4)
        assert not np.array_equal(a.region_ids, b.region_ids)

    def test_requests_and_slicing(self):
        wl = generate_workload(["mm", "st"], 10, seed=0, core_choices=[2])
        assert len(wl) == 10
        head = wl[:4]
        assert isinstance(head, Workload) and len(head) == 4
        req = wl[0]
        assert isinstance(req, DispatchRequest)
        assert req.region in ("mm", "st") and req.available_cores == 2
        assert req.context() == {"available_cores": 2}

    def test_of_roundtrips_request_list(self):
        wl = generate_workload(["mm", "st"], 50, seed=1, core_choices=[1, 8])
        again = Workload.of(list(wl))
        assert [again[i] for i in range(len(again))] == [wl[i] for i in range(len(wl))]
        assert Workload.of(wl) is wl

    def test_of_rejects_mixed_context(self):
        with pytest.raises(ValueError, match="mixed context"):
            Workload.of([DispatchRequest("mm", 4), DispatchRequest("mm")])

    def test_no_context_stream(self):
        wl = generate_workload(["mm"], 5, seed=0)
        assert wl.cores is None
        assert wl[0].context() == {}

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_workload([], 5)
        with pytest.raises(ValueError):
            generate_workload(["mm"], -1)


@pytest.fixture
def tables():
    return {"mm": make_table("mm"), "st": make_table("st")}


@pytest.fixture
def workload():
    return generate_workload(["mm", "st"], 3000, seed=9, core_choices=[1, 2, 4, 8])


class TestDispatchEngine:
    @pytest.mark.parametrize("name", REGISTRY_POLICIES)
    def test_compiled_replay_matches_percall_replay(self, name, tables, workload):
        fast = DispatchEngine(tables, policy_by_name(name), workers=2)
        slow = DispatchEngine(
            tables, policy_by_name(name), workers=1, compiled=False
        )
        a = fast.replay(workload)
        b = slow.replay(workload)
        assert np.array_equal(a.selections, b.selections)
        assert fast.monitor.version_counts() == slow.monitor.version_counts()
        assert fast.monitor.invocations == slow.monitor.invocations == len(workload)

    def test_worker_count_invariance(self, tables, workload):
        results = [
            DispatchEngine(
                tables, policy_by_name("thread_cap"), workers=w
            ).replay(workload)
            for w in (1, 3, 7)
        ]
        for other in results[1:]:
            assert np.array_equal(results[0].selections, other.selections)

    def test_result_accounting(self, tables, workload):
        res = DispatchEngine(tables, workers=2).replay(workload)
        assert res.requests == len(workload)
        assert res.workers == 2
        assert sum(res.version_counts.values()) == len(workload)
        assert res.throughput > 0

    def test_shard_path_records_full_history(self, tables, workload):
        """aggregate_ledger=False routes every observation through a
        MonitorShard into real ExecutionRecords; with one worker the
        history order is the request order."""
        engine = DispatchEngine(
            tables, workers=1, aggregate_ledger=False, shard_capacity=64
        )
        res = engine.replay(workload)
        assert engine.monitor.selections() == list(res.selections)
        assert len(engine.monitor.records()) == len(workload)
        assert engine.monitor.version_counts() == {
            k: v for k, v in res.version_counts.items()
        }

    def test_shard_and_aggregate_paths_agree(self, tables, workload):
        agg = DispatchEngine(tables, workers=2)
        shd = DispatchEngine(tables, workers=2, aggregate_ledger=False)
        a = agg.replay(workload)
        b = shd.replay(workload)
        assert np.array_equal(a.selections, b.selections)
        assert agg.monitor.version_counts() == shd.monitor.version_counts()

    def test_bandit_replay_deterministic_and_exact(self, tables, workload):
        runs = []
        for _ in range(2):
            bandit = BanditSelector(seed=5)
            engine = DispatchEngine(tables, bandit, workers=1)
            res = engine.replay(workload)
            runs.append((res.selections, bandit.statistics()))
        (sel_a, stats_a), (sel_b, stats_b) = runs
        assert np.array_equal(sel_a, sel_b)
        assert stats_a == stats_b
        assert sum(c for c, _, _ in stats_a.values()) == len(workload)

    def test_policy_swap_invalidates_compiled_cache(self, tables, workload):
        engine = DispatchEngine(tables, policy_by_name("fastest"))
        a = engine.replay(workload)
        engine.policy = policy_by_name("efficient")
        b = engine.replay(workload)
        oracle = DispatchEngine(
            tables, policy_by_name("efficient"), compiled=False
        ).replay(workload)
        assert not np.array_equal(a.selections, b.selections)
        assert np.array_equal(b.selections, oracle.selections)

    def test_validation(self, tables):
        with pytest.raises(ValueError):
            DispatchEngine({})
        with pytest.raises(ValueError):
            DispatchEngine(tables, workers=0)

    def test_empty_replay(self, tables):
        res = DispatchEngine(tables, workers=4).replay(
            generate_workload(["mm"], 0)
        )
        assert res.requests == 0
        assert len(res.selections) == 0


class TestServingObservability:
    def test_metrics_and_spans(self, tables, workload):
        from repro.obs import FakeClock, Observability

        obs = Observability.tracing(clock=FakeClock(tick=0.1))
        engine = DispatchEngine(tables, obs=obs, workers=2)
        engine.replay(workload)
        m = obs.metrics.as_dict()
        assert m["repro_dispatch_requests_total"] == len(workload)
        assert m["repro_dispatch_replays_total"] == 1
        assert m["repro_dispatch_workers"] == 2
        assert m["repro_dispatch_replay_seconds"]["count"] == 1
        names = [r["name"] for r in obs.tracer.records()]
        assert names.count("dispatch.batch") == 2
        assert "dispatch.replay" in names
        batch = next(
            r for r in obs.tracer.records() if r["name"] == "dispatch.batch"
        )
        assert batch["attrs"]["grouped"] is True
        assert batch["attrs"]["size"] > 0

    def test_percall_batches_marked_ungrouped(self, tables, workload):
        from repro.obs import Observability

        obs = Observability.tracing()
        DispatchEngine(
            tables, obs=obs, workers=1, compiled=False
        ).replay(workload[:32])
        batch = next(
            r for r in obs.tracer.records() if r["name"] == "dispatch.batch"
        )
        assert batch["attrs"]["grouped"] is False
