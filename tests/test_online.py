"""Tests for the online (bandit) version selector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend.meta import VersionMeta
from repro.runtime import Version, VersionTable
from repro.runtime.online import BanditSelector
from repro.util.rng import derive_rng


def table_with_times(predicted: list[float]) -> VersionTable:
    metas = [
        VersionMeta(index=i, time=t, resources=t, threads=1, tile_sizes=())
        for i, t in enumerate(predicted)
    ]
    return VersionTable("r", tuple(Version(meta=m) for m in metas))


def simulate(selector: BanditSelector, table: VersionTable, true_times: list[float], steps: int, rng):
    picks = []
    for _ in range(steps):
        v = selector.select(table)
        wall = true_times[v.meta.index] * float(np.exp(rng.normal(0, 0.05)))
        selector.observe(v.meta.index, wall)
        picks.append(v.meta.index)
    return picks


class TestBanditBasics:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            BanditSelector(strategy="thompson")

    def test_invalid_observation_rejected(self):
        sel = BanditSelector()
        with pytest.raises(ValueError):
            sel.observe(0, 0.0)

    def test_prior_mean_without_observations(self):
        table = table_with_times([0.5, 1.0])
        sel = BanditSelector()
        assert sel.mean_time(table[0]) == pytest.approx(0.5)

    def test_observations_shift_posterior(self):
        table = table_with_times([0.5, 1.0])
        sel = BanditSelector(prior_weight=1.0)
        for _ in range(9):
            sel.observe(0, 2.0)
        # posterior: (9*2.0 + 1*0.5) / 10 = 1.85
        assert sel.mean_time(table[0]) == pytest.approx(1.85)

    def test_describe(self):
        sel = BanditSelector()
        sel.observe(0, 1.0)
        assert "n=1" in sel.describe()


class TestConvergence:
    def test_ucb_converges_to_truly_fastest(self):
        """Metadata says v0 is fastest, production says v2: the bandit must
        shift its picks to v2."""
        table = table_with_times([0.10, 0.12, 0.14])
        true_times = [0.30, 0.28, 0.05]  # reality inverted
        sel = BanditSelector(strategy="ucb1", seed=1)
        rng = derive_rng(5)
        picks = simulate(sel, table, true_times, steps=200, rng=rng)
        late = picks[-50:]
        assert late.count(2) > 40, f"late picks: {late}"

    def test_epsilon_greedy_converges_too(self):
        table = table_with_times([0.10, 0.12, 0.14])
        true_times = [0.30, 0.28, 0.05]
        sel = BanditSelector(strategy="epsilon", epsilon=0.15, seed=2)
        rng = derive_rng(6)
        picks = simulate(sel, table, true_times, steps=300, rng=rng)
        late = picks[-60:]
        assert late.count(2) > len(late) * 0.6

    def test_explores_every_arm(self):
        table = table_with_times([0.10, 0.11, 0.12, 0.13])
        true_times = [0.10, 0.11, 0.12, 0.13]
        sel = BanditSelector(strategy="ucb1", seed=3, exploration=1.0)
        rng = derive_rng(7)
        simulate(sel, table, true_times, steps=100, rng=rng)
        assert all(sel.observations(i) > 0 for i in range(4))

    def test_correct_prior_keeps_fastest(self):
        """When the metadata is right, the bandit should not regress."""
        table = table_with_times([0.05, 0.10, 0.20])
        true_times = [0.05, 0.10, 0.20]
        sel = BanditSelector(strategy="ucb1", seed=4)
        rng = derive_rng(8)
        picks = simulate(sel, table, true_times, steps=150, rng=rng)
        assert picks[-30:].count(0) > 24


class TestExecutorIntegration:
    def test_bandit_as_policy_with_recorded_walls(self):
        """Plug the bandit into the executor loop: select -> (pretend) run
        -> observe, using metadata-only versions."""
        table = table_with_times([0.10, 0.12])
        true_times = [0.50, 0.05]
        sel = BanditSelector(strategy="ucb1", seed=9)
        rng = derive_rng(10)
        for _ in range(80):
            v = sel.select(table)
            wall = true_times[v.meta.index] * float(np.exp(rng.normal(0, 0.05)))
            sel.observe(v.meta.index, wall)
        assert sel.select(table).meta.index == 1
