"""Tests for the online (bandit) version selector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend.meta import VersionMeta
from repro.runtime import Version, VersionTable
from repro.runtime.online import BanditSelector
from repro.util.rng import derive_rng


def table_with_times(predicted: list[float]) -> VersionTable:
    metas = [
        VersionMeta(index=i, time=t, resources=t, threads=1, tile_sizes=())
        for i, t in enumerate(predicted)
    ]
    return VersionTable("r", tuple(Version(meta=m) for m in metas))


def simulate(selector: BanditSelector, table: VersionTable, true_times: list[float], steps: int, rng):
    picks = []
    for _ in range(steps):
        v = selector.select(table)
        wall = true_times[v.meta.index] * float(np.exp(rng.normal(0, 0.05)))
        selector.observe(v.meta.index, wall)
        picks.append(v.meta.index)
    return picks


class TestBanditBasics:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            BanditSelector(strategy="thompson")

    def test_invalid_observation_rejected(self):
        sel = BanditSelector()
        with pytest.raises(ValueError):
            sel.observe(0, 0.0)

    def test_prior_mean_without_observations(self):
        table = table_with_times([0.5, 1.0])
        sel = BanditSelector()
        assert sel.mean_time(table[0]) == pytest.approx(0.5)

    def test_observations_shift_posterior(self):
        table = table_with_times([0.5, 1.0])
        sel = BanditSelector(prior_weight=1.0)
        for _ in range(9):
            sel.observe(0, 2.0)
        # posterior: (9*2.0 + 1*0.5) / 10 = 1.85
        assert sel.mean_time(table[0]) == pytest.approx(1.85)

    def test_describe(self):
        sel = BanditSelector()
        sel.observe(0, 1.0)
        assert "n=1" in sel.describe()


class TestConvergence:
    def test_ucb_converges_to_truly_fastest(self):
        """Metadata says v0 is fastest, production says v2: the bandit must
        shift its picks to v2."""
        table = table_with_times([0.10, 0.12, 0.14])
        true_times = [0.30, 0.28, 0.05]  # reality inverted
        sel = BanditSelector(strategy="ucb1", seed=1)
        rng = derive_rng(5)
        picks = simulate(sel, table, true_times, steps=200, rng=rng)
        late = picks[-50:]
        assert late.count(2) > 40, f"late picks: {late}"

    def test_epsilon_greedy_converges_too(self):
        table = table_with_times([0.10, 0.12, 0.14])
        true_times = [0.30, 0.28, 0.05]
        sel = BanditSelector(strategy="epsilon", epsilon=0.15, seed=2)
        rng = derive_rng(6)
        picks = simulate(sel, table, true_times, steps=300, rng=rng)
        late = picks[-60:]
        assert late.count(2) > len(late) * 0.6

    def test_explores_every_arm(self):
        table = table_with_times([0.10, 0.11, 0.12, 0.13])
        true_times = [0.10, 0.11, 0.12, 0.13]
        sel = BanditSelector(strategy="ucb1", seed=3, exploration=1.0)
        rng = derive_rng(7)
        simulate(sel, table, true_times, steps=100, rng=rng)
        assert all(sel.observations(i) > 0 for i in range(4))

    def test_correct_prior_keeps_fastest(self):
        """When the metadata is right, the bandit should not regress."""
        table = table_with_times([0.05, 0.10, 0.20])
        true_times = [0.05, 0.10, 0.20]
        sel = BanditSelector(strategy="ucb1", seed=4)
        rng = derive_rng(8)
        picks = simulate(sel, table, true_times, steps=150, rng=rng)
        assert picks[-30:].count(0) > 24


class TestExecutorIntegration:
    def test_bandit_as_policy_with_recorded_walls(self):
        """Plug the bandit into the executor loop: select -> (pretend) run
        -> observe, using metadata-only versions."""
        table = table_with_times([0.10, 0.12])
        true_times = [0.50, 0.05]
        sel = BanditSelector(strategy="ucb1", seed=9)
        rng = derive_rng(10)
        for _ in range(80):
            v = sel.select(table)
            wall = true_times[v.meta.index] * float(np.exp(rng.normal(0, 0.05)))
            sel.observe(v.meta.index, wall)
        assert sel.select(table).meta.index == 1


class TestVectorizedParity:
    """select() computes every arm's UCB score in one vectorized
    expression; select_scalar() is the per-arm loop kept as the
    differential oracle.  The two must pick the same version at every step
    of any observation stream."""

    def test_select_matches_scalar_oracle_throughout(self):
        table = table_with_times([0.5, 0.3, 0.8, 0.4])
        b = BanditSelector(seed=11)
        rng = derive_rng(11, "parity")
        for step in range(300):
            assert b.select(table) is b.select_scalar(table), step
            arm = int(rng.integers(len(table)))
            b.observe(arm, 0.1 + float(rng.random()))

    def test_parity_with_unobserved_arms(self):
        table = table_with_times([0.5, 0.3, 0.8])
        b = BanditSelector(seed=1)
        # arm 1 never observed; arm 99 observed but absent from the table
        for _ in range(5):
            b.observe(0, 0.7)
            b.observe(2, 0.2)
            b.observe(99, 0.01)
        assert b.select(table) is b.select_scalar(table)

    def test_parity_before_any_observation(self):
        table = table_with_times([0.5, 0.3, 0.8])
        b = BanditSelector(seed=2)
        assert b.select(table) is b.select_scalar(table)

    def test_epsilon_strategy_delegates(self):
        table = table_with_times([0.5, 0.3])
        b = BanditSelector(strategy="epsilon", seed=3)
        for _ in range(20):
            assert b.select_scalar(table).meta.index in (0, 1)


class TestBatchedObservation:
    def test_observe_many_equals_sequential(self):
        a = BanditSelector(seed=0)
        b = BanditSelector(seed=0)
        arms = [0, 1, 0, 2, 1, 1, 0]
        walls = [0.5, 0.2, 0.6, 0.9, 0.3, 0.25, 0.55]
        for arm, wall in zip(arms, walls):
            a.observe(arm, wall)
        b.observe_many(arms, walls)
        assert a.statistics() == b.statistics()

    def test_observe_many_rejects_bad_walls_atomically(self):
        b = BanditSelector()
        with pytest.raises(ValueError):
            b.observe_many([0, 1], [0.5, -1.0])
        # nothing from the rejected batch may have landed
        assert b.statistics() == {}

    def test_statistics_welford(self):
        b = BanditSelector()
        for wall in (1.0, 2.0, 3.0):
            b.observe(0, wall)
        count, mean, m2 = b.statistics()[0]
        assert count == 3
        assert mean == pytest.approx(2.0)
        assert m2 == pytest.approx(2.0)  # sum of squared deviations


class TestBanditConcurrency:
    def test_concurrent_observe_and_select(self):
        """16 threads hammering observe/select concurrently: selection
        never raises and not a single observation is lost."""
        import threading

        table = table_with_times([0.5, 0.3, 0.8, 0.4])
        b = BanditSelector(seed=7)
        per_thread, n_threads = 300, 16
        errors = []

        def run(tid):
            rng = derive_rng(tid, "worker")
            try:
                for i in range(per_thread):
                    v = b.select(table)
                    assert v.meta.index in range(len(table))
                    b.observe(
                        int(rng.integers(len(table))), 0.1 + float(rng.random())
                    )
                    if i % 50 == 0:
                        b.select_scalar(table)
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        stats = b.statistics()
        assert sum(count for count, _, _ in stats.values()) == per_thread * n_threads

    def test_concurrent_observe_many_counts_exact(self):
        import threading

        b = BanditSelector()
        per_batch, batches, n_threads = 50, 10, 8

        def run(tid):
            rng = derive_rng(tid, "batch")
            for _ in range(batches):
                arms = [int(a) for a in rng.integers(4, size=per_batch)]
                walls = [0.1 + float(w) for w in rng.random(per_batch)]
                b.observe_many(arms, walls)

        threads = [
            threading.Thread(target=run, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = sum(c for c, _, _ in b.statistics().values())
        assert total == per_batch * batches * n_threads
