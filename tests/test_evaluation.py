"""Tests for the evaluation substrate: objectives, measurement protocol,
the analytical cost model (including cache-simulator cross-validation and
the paper's qualitative phenomena) and the simulated target."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import extract_regions
from repro.evaluation import (
    BatchEvaluator,
    MeasurementProtocol,
    Objectives,
    RegionCostModel,
    SimulatedTarget,
    efficiency,
    resource_usage,
    speedup,
)
from repro.frontend import get_kernel
from repro.ir.interp import run_function
from repro.machine import BARCELONA, WESTMERE, CacheHierarchy, CacheSim
from repro.machine.cache import AddressTraceRecorder
from repro.machine.model import CacheLevel, MachineModel
from repro.transform import replace_at_path, tile


class TestObjectives:
    def test_vector(self):
        o = Objectives(time=2.0, threads=4)
        assert o.vector() == (2.0, 8.0)
        assert o.resources == 8.0

    def test_speedup_efficiency(self):
        assert speedup(0.5, 2.0) == 4.0
        assert efficiency(0.5, 4, 2.0) == 1.0
        assert resource_usage(0.5, 4) == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)
        with pytest.raises(ValueError):
            efficiency(1.0, 0, 1.0)


class TestMeasurementProtocol:
    def test_median_of_k(self):
        samples = iter([3.0, 1.0, 2.0])
        p = MeasurementProtocol(repetitions=3)
        m = p.measure(lambda: next(samples))
        assert m.value == 2.0 and m.repetitions == 3

    def test_rejects_nonpositive_sample(self):
        p = MeasurementProtocol(repetitions=1)
        with pytest.raises(ValueError):
            p.measure(lambda: 0.0)

    def test_rejects_bad_repetitions(self):
        with pytest.raises(ValueError):
            MeasurementProtocol(repetitions=0)

    def test_spread(self):
        samples = iter([1.0, 2.0, 3.0])
        m = MeasurementProtocol(3).measure(lambda: next(samples))
        assert m.spread == pytest.approx(1.0)


class TestCostModelBasics:
    def test_time_positive(self, mm_model):
        assert mm_model.time({"i": 32, "j": 288, "k": 9}, 10) > 0

    def test_untiled_default(self, mm_model):
        assert mm_model.time({}, 1) == mm_model.baseline_time()

    def test_more_threads_faster_mm(self, mm_model):
        tiles = {"i": 64, "j": 128, "k": 16}
        t1 = mm_model.time(tiles, 1)
        t10 = mm_model.time(tiles, 10)
        assert t10 < t1 / 5  # decent scaling for cache-friendly tiles

    def test_sublinear_scaling(self, mm_model):
        """Efficiency decays with threads (paper Table III)."""
        tiles = {"i": 64, "j": 128, "k": 16}
        t1 = mm_model.time(tiles, 1)
        t40 = mm_model.time(tiles, 40)
        eff40 = (t1 / t40) / 40
        assert 0.4 < eff40 < 0.95

    def test_tiling_headroom_over_baseline(self, mm_model):
        """The paper's 'enormous potential of tiling': a good tiling beats
        the untiled baseline by a large factor."""
        good = mm_model.time({"i": 96, "j": 128, "k": 8}, 1)
        assert mm_model.baseline_time() / good > 5

    def test_tile_sizes_clipped_to_extent(self, mm_model):
        assert mm_model.time({"i": 10**9, "j": 10**9, "k": 10**9}, 1) == pytest.approx(
            mm_model.baseline_time()
        )

    def test_load_imbalance_penalty(self, mm_model):
        """Huge tiles leave too few parallel iterations for 40 threads."""
        few_iters = mm_model.time({"i": 700, "j": 700, "k": 16}, 40)  # P = 4
        many_iters = mm_model.time({"i": 64, "j": 128, "k": 16}, 40)
        assert few_iters > 2 * many_iters

    def test_sweep_factor_multiplies(self):
        k = get_kernel("jacobi2d")
        region = extract_regions(k.function)[0]
        m1 = RegionCostModel(region, {"N": 500, "T": 1}, WESTMERE)
        m10 = RegionCostModel(region, {"N": 500, "T": 10}, WESTMERE)
        tiles = {"i": 50, "j": 50}
        assert m10.time(tiles, 1) == pytest.approx(10 * m1.time(tiles, 1))

    def test_all_kernels_all_machines(self, kernel, machine):
        region = extract_regions(kernel.function)[0]
        m = RegionCostModel(
            region, kernel.default_size, machine,
            flops_per_iteration=kernel.flops_per_point,
        )
        tiles = {v: 16 for v in m.band}
        for thr in machine.default_thread_counts():
            assert m.time(tiles, thr) > 0


class TestPaperPhenomena:
    """The qualitative effects the paper's evaluation rests on."""

    def test_optimal_tiles_depend_on_thread_count_barcelona(self):
        """Fig 2 / Table II: per-thread-count optima differ, because the
        shared L3 capacity per thread shrinks (here: on Barcelona's small
        2 MB L3 the effect is strongest)."""
        k = get_kernel("mm")
        region = extract_regions(k.function)[0]
        m = RegionCostModel(region, {"N": 1400}, BARCELONA)
        cands = [8, 16, 32, 64, 128, 256, 350, 700]
        best = {}
        for thr in (1, 32):
            best[thr] = min(
                ((m.time({"i": ti, "j": tj, "k": tk}, thr), (ti, tj, tk))
                 for ti in cands for tj in cands for tk in cands)
            )[1]
        assert best[1] != best[32]

    def test_cross_thread_penalty(self):
        """Running tiles tuned for 1 thread with all cores loses performance
        (paper: 15-18% on mm, up to 4x on n-body)."""
        k = get_kernel("mm")
        region = extract_regions(k.function)[0]
        m = RegionCostModel(region, {"N": 1400}, BARCELONA)
        cands = [8, 16, 32, 64, 128, 256, 350, 700]
        def best(thr):
            return min(
                ((m.time({"i": ti, "j": tj, "k": tk}, thr), (ti, tj, tk))
                 for ti in cands for tj in cands for tk in cands)
            )
        t1, tiles1 = best(1)
        t32, _ = best(32)
        cross = m.time(dict(zip("ijk", tiles1)), 32)
        assert cross >= t32  # tuned wins
        assert cross / t32 > 1.02  # and the penalty is visible

    def test_nbody_cache_fit_asymmetry(self):
        """Table V: n-body's particle arrays fit each thread's share of
        Westmere's 30 MB L3 (j-blocking barely matters) but overflow the
        share of Barcelona's 2 MB L3 once a socket fills (huge penalty).
        Tested at one full socket per machine with identical parallel
        granularity (same i tile) so only the cache effect differs."""
        k = get_kernel("nbody")
        region = extract_regions(k.function)[0]
        sizes = k.default_size
        unblocked = {"i": 256, "j": sizes["n"]}
        blocked = {"i": 256, "j": 4096}
        for mach, threads, min_ratio, max_ratio in (
            (WESTMERE, 10, 0.0, 1.35),
            (BARCELONA, 4, 1.5, 1e9),
        ):
            m = RegionCostModel(region, sizes, mach, flops_per_iteration=k.flops_per_point)
            ratio = m.time(unblocked, threads) / m.time(blocked, threads)
            assert min_ratio <= ratio <= max_ratio, (mach.name, ratio)

    def test_efficiency_speedup_tradeoff_shape(self, mm_model):
        """Fig 1 / Table III: speedup grows, efficiency falls monotonically
        across the paper's thread counts."""
        tiles = {"i": 64, "j": 128, "k": 16}
        t = {thr: mm_model.time(tiles, thr) for thr in (1, 5, 10, 20, 40)}
        speedups = [t[1] / t[thr] for thr in (1, 5, 10, 20, 40)]
        effs = [s / thr for s, thr in zip(speedups, (1, 5, 10, 20, 40))]
        assert all(a < b for a, b in zip(speedups, speedups[1:]))
        assert all(a > b for a, b in zip(effs, effs[1:]))

    def test_jacobi_bandwidth_saturation(self):
        """A bandwidth-bound sweep stops scaling within a socket — the
        mechanism that drops high-thread configs off the Pareto front."""
        k = get_kernel("jacobi2d")
        region = extract_regions(k.function)[0]
        m = RegionCostModel(
            region, k.default_size, WESTMERE, flops_per_iteration=k.flops_per_point
        )
        tiles = {"i": 256, "j": 256}
        t5 = m.time(tiles, 5)
        t10 = m.time(tiles, 10)
        assert t10 > 0.7 * t5  # nowhere near 2x


class TestBatchEqualsScalar:
    @settings(max_examples=10, deadline=None)
    @given(
        data=st.data(),
    )
    def test_property_batch_matches_scalar(self, data):
        k = get_kernel("mm")
        region = extract_regions(k.function)[0]
        m = RegionCostModel(region, {"N": 256}, BARCELONA)
        n = data.draw(st.integers(min_value=1, max_value=8))
        tiles = np.array(
            [
                [data.draw(st.integers(min_value=1, max_value=300)) for _ in range(3)]
                for _ in range(n)
            ]
        )
        threads = np.array(
            [data.draw(st.sampled_from([1, 2, 4, 8, 16, 32])) for _ in range(n)]
        )
        batch = m.time_batch(tiles, threads)
        for b in range(n):
            scalar = m.time(
                {v: int(tiles[b, i]) for i, v in enumerate(m.band)}, int(threads[b])
            )
            assert batch[b] == pytest.approx(scalar, rel=1e-12)

    def test_batch_shape_validation(self, mm_model):
        with pytest.raises(ValueError):
            mm_model.time_batch(np.zeros((3, 2)), np.ones(3))
        with pytest.raises(ValueError):
            mm_model.time_batch(np.ones((3, 3)), np.ones(4))


class TestCacheSimValidation:
    """Cross-validation of the analytical traffic model against the
    trace-driven cache simulator on a miniature mm."""

    @staticmethod
    def _machine(l1=2 * 1024, l2=16 * 1024):
        return MachineModel(
            name="Tiny",
            sockets=1,
            cores_per_socket=1,
            freq_hz=1e9,
            flops_per_cycle=1.0,
            levels=(
                CacheLevel("L1", l1, 64, 2, shared=False, fetch_bw=1e9),
                CacheLevel("L2", l2, 64, 4, shared=True, fetch_bw=1e9),
            ),
            dram_bw_per_socket=1e9,
            dram_bw_per_core=1e9,
        )

    def _simulated_misses(self, nest_transform, n=24):
        k = get_kernel("mm")
        region = extract_regions(k.function)[0]
        fn = (
            replace_at_path(k.function, region.path, nest_transform(region.nest))
            if nest_transform
            else k.function
        )
        rec = AddressTraceRecorder()
        for name in ("A", "B", "C"):
            rec.register(name, (n, n))
        rng = np.random.default_rng(0)
        inputs = k.make_inputs({"N": n}, rng)
        run_function(fn, inputs, {"N": n}, trace_hook=rec.record)
        machine = self._machine()
        hier = CacheHierarchy.from_machine(machine)
        rec.replay(hier)
        return {lv.name: lv.miss_bytes for lv in hier.levels}

    def _analytic_traffic(self, tiles, n=24):
        k = get_kernel("mm")
        region = extract_regions(k.function)[0]
        m = RegionCostModel(region, {"N": n}, self._machine())
        # reproduce the per-level traffic computation via the batch path
        band = m.band
        arr = np.array([[tiles.get(v, n) for v in band]])
        # use internal scalar pieces: compare via time not exposed; instead
        # recompute traffic with the private helpers
        t = {v: min(max(1, tiles.get(v, n)), n) for v in band}
        trips = {v: math.ceil(n / t[v]) for v in band}
        spans_units = m._unit_spans(t)
        whole = {v: n for v in band}
        out = {}
        prev = math.inf
        for level in m.machine.levels:
            cap = level.size
            ws_whole = sum(s.footprint_bytes(whole, level.line_size) for s in m.streams)
            if ws_whole <= cap:
                traffic = m._compulsory_traffic(whole, level.line_size)
            else:
                s_idx = m._fitting_unit(spans_units, cap, level.line_size)
                traffic = max(
                    m._unit_traffic(spans_units[s_idx], s_idx, t, trips, level.line_size),
                    m._compulsory_traffic(whole, level.line_size),
                )
            traffic = min(traffic, prev)
            prev = traffic
            out[level.name] = traffic
        return out

    def test_untiled_l1_traffic_within_factor(self):
        sim = self._simulated_misses(None)
        ana = self._analytic_traffic({})
        assert ana["L1"] / sim["L1"] == pytest.approx(1.0, abs=0.8)

    def test_tiling_reduces_l1_misses_in_both(self):
        tiles = {"i": 8, "j": 8, "k": 8}
        sim_untiled = self._simulated_misses(None)
        sim_tiled = self._simulated_misses(lambda nest: tile(nest, tiles))
        ana_untiled = self._analytic_traffic({})
        ana_tiled = self._analytic_traffic(tiles)
        assert sim_tiled["L1"] < sim_untiled["L1"]
        assert ana_tiled["L1"] < ana_untiled["L1"]
        # improvement factors agree within ~3x
        sim_gain = sim_untiled["L1"] / sim_tiled["L1"]
        ana_gain = ana_untiled["L1"] / ana_tiled["L1"]
        assert ana_gain / sim_gain == pytest.approx(1.0, abs=0.7)


class TestSimulatedTarget:
    def test_deterministic(self, mm_model):
        t1 = SimulatedTarget(mm_model, seed=5).evaluate({"i": 32, "j": 64, "k": 8}, 10)
        t2 = SimulatedTarget(mm_model, seed=5).evaluate({"i": 32, "j": 64, "k": 8}, 10)
        assert t1 == t2

    def test_seed_changes_noise(self, mm_model):
        t1 = SimulatedTarget(mm_model, seed=1).evaluate({"i": 32, "j": 64, "k": 8}, 10)
        t2 = SimulatedTarget(mm_model, seed=2).evaluate({"i": 32, "j": 64, "k": 8}, 10)
        assert t1.time != t2.time

    def test_noise_magnitude(self, mm_model):
        tgt = SimulatedTarget(mm_model, seed=3, noise=0.02)
        obj = tgt.evaluate({"i": 32, "j": 64, "k": 8}, 10)
        truth = tgt.true_time({"i": 32, "j": 64, "k": 8}, 10)
        assert abs(obj.time - truth) / truth < 0.1

    def test_ledger_counts_unique_configs(self, mm_target):
        mm_target.evaluate({"i": 32, "j": 64, "k": 8}, 10)
        mm_target.evaluate({"i": 32, "j": 64, "k": 8}, 10)  # cache hit
        mm_target.evaluate({"i": 32, "j": 64, "k": 8}, 20)
        assert mm_target.evaluations == 2

    def test_reset_ledger(self, mm_target):
        mm_target.evaluate({"i": 32, "j": 64, "k": 8}, 10)
        mm_target.reset_ledger()
        assert mm_target.evaluations == 0

    def test_batch_matches_single(self, mm_model):
        tgt_a = SimulatedTarget(mm_model, seed=9)
        tgt_b = SimulatedTarget(mm_model, seed=9)
        tiles = np.array([[32, 64, 8], [16, 128, 4]])
        threads = np.array([10, 20])
        batch = tgt_a.evaluate_batch(tiles, threads)
        singles = [
            tgt_b.evaluate({"i": 32, "j": 64, "k": 8}, 10).time,
            tgt_b.evaluate({"i": 16, "j": 128, "k": 4}, 4 if False else 20).time,
        ]
        assert batch[0] == singles[0]
        assert batch[1] == singles[1]

    def test_measurement_protocol_used(self, mm_target):
        m = mm_target.measurement({"i": 32, "j": 64, "k": 8}, 10)
        assert m.repetitions == mm_target.protocol.repetitions
        assert min(m.samples) <= m.value <= max(m.samples)


class TestBatchEvaluator:
    def test_preserves_order(self, mm_target):
        be = BatchEvaluator(mm_target)
        configs = [({"i": 32, "j": 64, "k": 8}, t) for t in (1, 10, 40)]
        res = be.evaluate_batch(configs)
        assert [o.threads for o in res.objectives] == [1, 10, 40]
        assert res.new_evaluations == 3

    def test_thread_pool_path(self, mm_target):
        be = BatchEvaluator(mm_target, max_workers=4)
        configs = [({"i": 16 * t, "j": 64, "k": 8}, 10) for t in range(1, 9)]
        res = be.evaluate_batch(configs)
        assert len(res.objectives) == 8


class TestVectorizedNoise:
    """compute_keys derives its noise matrix in one batch; the rows must be
    bit-identical to the scalar per-key path (the evaluate() oracle)."""

    def test_noise_matrix_matches_scalar_rows(self, mm_target):
        keys = [(32, 64, 8, 10), (16, 128, 4, 20), (8, 8, 8, 1), (32, 64, 8, 20)]
        reps = mm_target.protocol.repetitions
        matrix = mm_target._noise_factor_matrix(keys, reps)
        assert matrix.shape == (len(keys), reps)
        for row, key in zip(matrix, keys):
            assert np.array_equal(row, mm_target._noise_factors(key, reps))

    def test_compute_keys_matches_evaluate(self, mm_model):
        tgt_a = SimulatedTarget(mm_model, seed=13)
        tgt_b = SimulatedTarget(mm_model, seed=13)
        keys = [(32, 64, 8, 10), (16, 128, 4, 20), (64, 8, 16, 40)]
        batch = tgt_a.compute_keys(keys)
        for key, (obj, meas) in zip(keys, batch):
            tiles = dict(zip(("i", "j", "k"), key[:-1]))
            single = tgt_b.evaluate(tiles, key[-1])
            assert obj.time == single.time
            assert obj.resources == single.resources
            assert meas.value == obj.time

    def test_compute_keys_empty(self, mm_target):
        assert mm_target.compute_keys([]) == []
