"""Tests for the work-stealing task pool and the dynamic native schedule."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.runtime.tasks import Task, WorkStealingPool


class TestWorkStealingPool:
    def test_results_in_order(self):
        pool = WorkStealingPool(workers=3)
        tasks = [Task(fn=lambda i=i: i * i) for i in range(20)]
        results = pool.run(tasks)
        assert results == [i * i for i in range(20)]

    def test_all_tasks_done(self):
        pool = WorkStealingPool(workers=4)
        tasks = [Task(fn=lambda: 1) for _ in range(37)]
        pool.run(tasks)
        assert all(t.done for t in tasks)
        assert sum(pool.executed_by) == 37

    def test_empty_batch(self):
        assert WorkStealingPool(workers=2).run([]) == []

    def test_single_worker(self):
        pool = WorkStealingPool(workers=1)
        assert pool.run([Task(fn=lambda: "x")]) == ["x"]
        assert pool.steals == 0

    def test_error_propagates(self):
        pool = WorkStealingPool(workers=2)

        def boom():
            raise RuntimeError("task failed")

        tasks = [Task(fn=lambda: 1), Task(fn=boom), Task(fn=lambda: 2)]
        with pytest.raises(RuntimeError, match="task failed"):
            pool.run(tasks)

    def test_stealing_occurs_under_imbalance(self):
        """One long-running task on worker 0's deque forces the others'
        work... actually: pile slow tasks onto one deque (round-robin means
        we use worker count 2 and make even-indexed tasks slow) and check
        that steals happen."""
        pool = WorkStealingPool(workers=2, seed=1)
        barrier = threading.Event()

        def slow():
            time.sleep(0.02)
            return "slow"

        def fast():
            return "fast"

        # round-robin: worker 0 gets indices 0,2,4..., worker 1 gets 1,3,...
        tasks = [Task(fn=slow if i % 2 == 0 else fast) for i in range(16)]
        pool.run(tasks)
        assert pool.steals > 0
        assert all(t.done for t in tasks)

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            WorkStealingPool(workers=0)

    def test_shared_state_updates_are_complete(self):
        """Tasks mutating shared numpy state must all land exactly once."""
        acc = np.zeros(64)

        def bump(i):
            acc[i] += 1.0

        pool = WorkStealingPool(workers=4)
        pool.run([Task(fn=lambda i=i: bump(i)) for i in range(64)])
        assert (acc == 1.0).all()


class TestWorkStealingNativeSchedule:
    def test_mm_correct_under_workstealing(self, rng):
        from repro.analysis import extract_regions
        from repro.evaluation.native import NativeExecutor
        from repro.frontend import get_kernel
        from repro.transform import default_skeleton

        k = get_kernel("mm")
        region = extract_regions(k.function)[0]
        sk = default_skeleton(region, k.test_size, max_threads=4)
        values = {p.name: max(p.lo, min(p.hi, 4)) for p in sk.parameters}
        values["threads"] = 3
        fn = sk.instantiate(values).apply()
        ex = NativeExecutor(fn, threads=3, schedule="workstealing")
        inputs = k.make_inputs(k.test_size, rng)
        arrs = {n: v.copy() for n, v in inputs.items()}
        ex.run(arrs, k.test_size)
        ref = k.reference(inputs, k.test_size)
        assert np.allclose(arrs["C"], ref["C"])

    def test_unknown_schedule_rejected(self):
        from repro.evaluation.native import NativeExecutor
        from repro.frontend import get_kernel

        with pytest.raises(ValueError):
            NativeExecutor(get_kernel("mm").function, threads=1, schedule="guided")
