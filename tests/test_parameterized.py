"""Tests for the parameterized-tiling backend (the paper's §IV alternative)."""

from __future__ import annotations

import shutil
import subprocess
import tempfile
from pathlib import Path

import pytest

from repro.analysis import extract_regions
from repro.backend.meta import VersionMeta
from repro.backend.parameterized import build_parameterized_c
from repro.frontend import get_kernel
from repro.transform import default_skeleton

HAVE_GCC = shutil.which("gcc") is not None


def make_inputs(kernel_name="mm", with_unroll=False):
    k = get_kernel(kernel_name)
    region = extract_regions(k.function)[0]
    sk = default_skeleton(
        region, k.default_size, max_threads=8,
        band=k.tile_loops, with_unroll=with_unroll,
    )
    metas = [
        VersionMeta(
            index=i,
            time=0.1 * (i + 1),
            resources=0.2 * (i + 1),
            threads=2 ** i,
            tile_sizes=tuple((v, 8 * (i + 1)) for v in k.tile_loops),
        )
        for i in range(3)
    ]
    return sk, metas


class TestParameterizedBackend:
    def test_contains_runtime_parameters(self):
        sk, metas = make_inputs()
        unit = build_parameterized_c(sk, metas)
        assert "void mm_parameterized(" in unit.source
        for p in ("t_i", "t_j", "t_k", "nthreads"):
            assert p in unit.source
        assert unit.parameters == ("t_i", "t_j", "t_k", "nthreads")

    def test_pragma_uses_runtime_thread_count(self):
        sk, metas = make_inputs()
        unit = build_parameterized_c(sk, metas)
        assert "num_threads(nthreads)" in unit.source

    def test_paramset_table(self):
        sk, metas = make_inputs()
        unit = build_parameterized_c(sk, metas)
        assert "mm_paramsets[]" in unit.source
        assert len(unit.table) == 3

    def test_rejects_unrollable_skeleton(self):
        sk, metas = make_inputs(with_unroll=True)
        with pytest.raises(ValueError, match="unroll"):
            build_parameterized_c(sk, metas)

    def test_single_function_smaller_than_multiversion(self):
        """The code-size trade-off the paper weighs: one parameterized body
        vs one body per Pareto point."""
        from repro.backend.multiversion import build_multiversion_c

        sk, metas = make_inputs()
        unit = build_parameterized_c(sk, metas)
        variants = [
            (sk.instantiate(
                {**{f"tile_{v}": s for v, s in m.tile_sizes}, "threads": m.threads}
             ).apply(), m)
            for m in metas
        ]
        mv = build_multiversion_c("mm", variants)
        assert len(unit.source) < len(mv.source)

    @pytest.mark.skipif(not HAVE_GCC, reason="gcc unavailable")
    @pytest.mark.parametrize("kernel_name", ["mm", "jacobi2d", "nbody"])
    def test_compiles(self, kernel_name):
        sk, metas = make_inputs(kernel_name)
        unit = build_parameterized_c(sk, metas)
        with tempfile.NamedTemporaryFile(suffix=".c", mode="w", delete=False) as f:
            f.write(unit.source)
            path = f.name
        try:
            result = subprocess.run(
                ["gcc", "-std=c99", "-fsyntax-only", "-fopenmp", "-Wall", "-Werror", path],
                capture_output=True,
                text=True,
            )
            assert result.returncode == 0, result.stderr
        finally:
            Path(path).unlink()