"""Tests for the code-generation backends: C emitter, multi-versioning,
Python compilation."""

from __future__ import annotations

import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import extract_regions
from repro.backend import (
    VersionMeta,
    build_multiversion_c,
    compile_function,
    function_to_c,
)
from repro.backend.cgen import expr_to_c
from repro.backend.pygen import function_to_python
from repro.frontend import get_kernel
from repro.ir.builder import assign, c as ic, loop, var
from repro.ir.interp import run_function
from repro.ir.nodes import Call, Min
from repro.transform import default_skeleton

HAVE_GCC = shutil.which("gcc") is not None


def gcc_check(source: str) -> None:
    with tempfile.NamedTemporaryFile(suffix=".c", mode="w", delete=False) as f:
        f.write(source)
        path = f.name
    try:
        result = subprocess.run(
            ["gcc", "-std=c99", "-fsyntax-only", "-fopenmp", "-Wall", "-Werror", path],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr
    finally:
        Path(path).unlink()


def make_variants(kernel_name="mm", n_versions=3):
    k = get_kernel(kernel_name)
    region = extract_regions(k.function)[0]
    sk = default_skeleton(region, k.test_size, max_threads=8)
    variants = []
    for i in range(n_versions):
        values = {p.name: max(p.lo, min(p.hi, 2 + 2 * i)) for p in sk.parameters}
        tr = sk.instantiate(values)
        meta = VersionMeta(
            index=i,
            time=0.5 / (i + 1),
            resources=0.5 * (i + 1),
            threads=values["threads"],
            tile_sizes=tr.tile_sizes,
            values=tuple(sorted(values.items())),
        )
        variants.append((tr.apply(), meta))
    return k, variants


class TestExprToC:
    def test_floor_div_maps_to_int_div(self):
        assert expr_to_c(var("a") // var("b")) == "a / b"

    def test_min_macro(self):
        assert expr_to_c(Min(ic(1), ic(2))) == "REPRO_MIN(1, 2)"

    def test_intrinsic_mapping(self):
        assert expr_to_c(Call("rsqrt3", (var("x"),))) == "repro_rsqrt3(x)"

    def test_unknown_intrinsic_raises(self):
        with pytest.raises(ValueError):
            expr_to_c(Call("fancy", ()))

    def test_float_literal_keeps_point(self):
        from repro.ir.builder import f

        assert expr_to_c(f(1.0)) == "1.0"

    def test_precedence(self):
        e = (var("a") + var("b")) * ic(2)
        assert expr_to_c(e) == "(a + b) * 2"


class TestFunctionToC:
    def test_every_kernel_emits(self, kernel):
        src = function_to_c(kernel.function)
        assert f"void {kernel.name}(" in src

    @pytest.mark.skipif(not HAVE_GCC, reason="gcc unavailable")
    def test_plain_kernels_compile(self, kernel):
        gcc_check(function_to_c(kernel.function))

    @pytest.mark.skipif(not HAVE_GCC, reason="gcc unavailable")
    def test_tiled_collapsed_parallel_compiles(self):
        _, variants = make_variants()
        for fn, meta in variants:
            gcc_check(function_to_c(fn, name=f"mm_v{meta.index}"))

    def test_parallel_loop_gets_pragma(self):
        _, variants = make_variants()
        src = function_to_c(variants[0][0])
        assert "#pragma omp parallel for" in src
        assert "num_threads(" in src


class TestMultiVersion:
    def test_unit_contents(self):
        _, variants = make_variants(n_versions=3)
        unit = build_multiversion_c("mm", variants)
        assert unit.kernel == "mm"
        assert len(unit.versions) == 3
        for i in range(3):
            assert f"mm_v{i}" in unit.source
        assert "mm_versions[]" in unit.source
        assert "mm_select_version" in unit.source
        assert "mm_dispatch" in unit.source

    @pytest.mark.skipif(not HAVE_GCC, reason="gcc unavailable")
    def test_unit_compiles(self):
        _, variants = make_variants(n_versions=3)
        gcc_check(build_multiversion_c("mm", variants).source)

    @pytest.mark.skipif(not HAVE_GCC, reason="gcc unavailable")
    def test_unit_compiles_all_kernels(self, kernel):
        _, variants = make_variants(kernel.name, n_versions=2)
        gcc_check(build_multiversion_c(kernel.name, variants).source)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build_multiversion_c("mm", [])

    @pytest.mark.skipif(not HAVE_GCC, reason="gcc unavailable")
    def test_c_selection_logic_executes(self):
        """Compile and *run* the generated selection helper: the weighted
        sum must pick the fast version for w=(1,0) and the cheap one for
        w=(0,1)."""
        _, variants = make_variants(n_versions=3)
        unit = build_multiversion_c("mm", variants)
        driver = (
            unit.source
            + """
#include <stdio.h>
int main(void) {
    printf("%d %d\\n", mm_select_version(1.0, 0.0), mm_select_version(0.0, 1.0));
    return 0;
}
"""
        )
        with tempfile.TemporaryDirectory() as tmp:
            src = Path(tmp) / "mv.c"
            exe = Path(tmp) / "mv"
            src.write_text(driver)
            build = subprocess.run(
                ["gcc", "-std=c99", "-O1", str(src), "-o", str(exe), "-lm"],
                capture_output=True,
                text=True,
            )
            assert build.returncode == 0, build.stderr
            out = subprocess.run([str(exe)], capture_output=True, text=True)
            fast, cheap = map(int, out.stdout.split())
        # metas: time 0.5/(i+1) decreasing, resources 0.5*(i+1) increasing
        assert fast == 2 and cheap == 0


class TestPygen:
    def test_matches_interpreter(self, kernel, rng):
        """Compiled Python agrees with the interpreter on the transformed
        kernel for all five kernels."""
        region = extract_regions(kernel.function)[0]
        sk = default_skeleton(region, kernel.test_size, max_threads=4)
        values = {p.name: max(p.lo, min(p.hi, 3)) for p in sk.parameters}
        fn = sk.instantiate(values).apply()
        callable_ = compile_function(fn)
        inputs = kernel.make_inputs(kernel.test_size, rng)
        arrs = {k_: v.copy() for k_, v in inputs.items()}
        callable_(arrs, kernel.test_size)
        expected = run_function(fn, inputs, kernel.test_size)
        for name in kernel.output_arrays:
            assert np.allclose(arrs[name], expected[name]), kernel.name

    def test_source_attached(self):
        k = get_kernel("mm")
        fn = compile_function(k.function)
        assert "def mm(" in fn.__source__

    def test_custom_name(self):
        k = get_kernel("mm")
        fn = compile_function(k.function, name="mm_v7")
        assert fn.__name__ == "mm_v7"

    def test_collapsed_index_recovery_in_python(self, rng):
        """Collapse introduces // and %; the Python lowering must keep
        exact integer semantics."""
        from repro.transform import collapse, tile

        k = get_kernel("mm")
        region = extract_regions(k.function)[0]
        nest = collapse(tile(region.nest, {"i": 4, "j": 5, "k": 3}), 2)
        from repro.transform import replace_at_path

        fn = replace_at_path(k.function, region.path, nest)
        callable_ = compile_function(fn)
        inputs = k.make_inputs({"N": 13}, rng)
        arrs = {k_: v.copy() for k_, v in inputs.items()}
        callable_(arrs, {"N": 13})
        ref = k.reference(inputs, {"N": 13})
        assert np.allclose(arrs["C"], ref["C"])

    def test_python_source_readable(self):
        k = get_kernel("mm")
        text = function_to_python(k.function)
        assert "for i in range(0, N, 1):" in text
