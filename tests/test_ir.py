"""Tests for the IR: nodes, builder sugar, visitors, printer, interpreter."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ir import (
    ArrayRef,
    Assign,
    BinOp,
    Block,
    F64,
    For,
    Function,
    I64,
    IntLit,
    Min,
    Var,
    to_source,
)
from repro.ir.builder import array, assign, block, c, func, loop, param, var
from repro.ir.nodes import FloatLit, as_expr
from repro.ir.types import ArrayType
from repro.ir.interp import eval_expr, run_function
from repro.ir.visitors import (
    collect,
    free_vars,
    loop_nest,
    loop_vars,
    perfect_nest,
    substitute,
    transform,
    walk,
)


def make_simple_nest():
    i, j = var("i"), var("j")
    body = assign(var("A")[i, j], var("A")[i, j] + 1.0)
    return loop("i", 0, "N", loop("j", 0, "N", body))


class TestNodes:
    def test_operator_sugar_builds_binop(self):
        e = var("x") + 1
        assert isinstance(e, BinOp) and e.op == "+"

    def test_getitem_builds_arrayref(self):
        r = var("A")[var("i"), 2]
        assert isinstance(r, ArrayRef)
        assert r.indices[1] == IntLit(2)

    def test_as_expr_rejects_bool(self):
        with pytest.raises(TypeError):
            as_expr(True)

    def test_as_expr_floats(self):
        assert isinstance(as_expr(1.5), FloatLit)

    def test_assign_target_checked(self):
        with pytest.raises(TypeError):
            Assign(IntLit(1), IntLit(2))

    def test_binop_validates_operator(self):
        with pytest.raises(ValueError):
            BinOp("**", IntLit(1), IntLit(2))

    def test_nodes_hashable(self):
        assert hash(make_simple_nest()) == hash(make_simple_nest())

    def test_with_children_roundtrip(self):
        nest = make_simple_nest()
        rebuilt = nest.with_children(list(nest.children()))
        assert rebuilt == nest

    def test_annotations(self):
        lp = make_simple_nest().with_annotation("k", 7)
        assert lp.annotation("k") == 7
        assert lp.annotation("missing", "d") == "d"
        # overwriting replaces
        assert lp.with_annotation("k", 9).annotation("k") == 9

    def test_function_param_lookup(self):
        fn = func("f", [param("N", I64), array("A", "N")], make_simple_nest())
        assert fn.param("N").type is I64
        with pytest.raises(KeyError):
            fn.param("zzz")
        assert "A" in fn.arrays and "N" in fn.scalars


class TestTypes:
    def test_elem_count_symbolic(self):
        at = ArrayType(F64, ("N", "N"))
        assert at.elem_count({"N": 10}) == 100

    def test_elem_count_unbound_raises(self):
        with pytest.raises(KeyError):
            ArrayType(F64, ("N",)).elem_count()

    def test_byte_size(self):
        assert ArrayType(F64, (4, 4)).byte_size() == 128


class TestVisitors:
    def test_walk_visits_all_loops(self):
        nest = make_simple_nest()
        assert len([n for n in walk(nest) if isinstance(n, For)]) == 2

    def test_collect_refs(self):
        refs = collect(make_simple_nest(), ArrayRef)
        assert len(refs) == 2

    def test_loop_nest_order(self):
        assert loop_vars(make_simple_nest()) == ["i", "j"]

    def test_perfect_nest_returns_body(self):
        loops, body = perfect_nest(make_simple_nest())
        assert len(loops) == 2 and isinstance(body, Assign)

    def test_substitute_replaces_free(self):
        e = var("i") + var("j")
        out = substitute(e, {"i": c(5)})
        assert collect(out, Var) == [Var("j")]

    def test_substitute_respects_shadowing(self):
        nest = make_simple_nest()
        out = substitute(nest, {"i": c(0)})
        # the loop rebinds i, so body occurrences must NOT be replaced
        assert out == nest

    def test_substitute_applies_to_bounds(self):
        nest = make_simple_nest()
        out = substitute(nest, {"N": c(8)})
        assert out.upper == IntLit(8)  # type: ignore[union-attr]

    def test_free_vars(self):
        fv = free_vars(make_simple_nest())
        assert fv == {"N"}

    def test_transform_bottom_up(self):
        nest = make_simple_nest()

        def rename(n):
            if isinstance(n, Var) and n.name == "N":
                return Var("M")
            return None

        out = transform(nest, rename)
        assert "M" in free_vars(out) and "N" not in free_vars(out)


class TestPrinter:
    def test_function_prints(self):
        fn = func("f", [param("N", I64), array("A", "N", "N")], make_simple_nest())
        text = to_source(fn)
        assert "void f(" in text
        assert "for (i = 0; i < N; i += 1)" in text

    def test_min_printed(self):
        assert "min(" in to_source(Min(c(1), c(2)))

    def test_precedence_parens(self):
        e = (var("a") + var("b")) * var("c")
        from repro.ir.printer import expr_to_source

        assert expr_to_source(e) == "(a + b) * c"


class TestInterp:
    def test_runs_mm_against_numpy(self, rng):
        from repro.frontend import get_kernel

        k = get_kernel("mm")
        inputs = k.make_inputs(k.test_size, rng)
        out = run_function(k.function, inputs, k.test_size)
        ref = k.reference(inputs, k.test_size)
        assert np.allclose(out["C"], ref["C"])

    def test_copy_semantics(self, rng):
        from repro.frontend import get_kernel

        k = get_kernel("mm")
        inputs = k.make_inputs(k.test_size, rng)
        before = inputs["C"].copy()
        run_function(k.function, inputs, k.test_size, copy=True)
        assert np.array_equal(inputs["C"], before)

    def test_missing_array_raises(self):
        from repro.frontend import get_kernel

        k = get_kernel("mm")
        with pytest.raises(KeyError):
            run_function(k.function, {}, k.test_size)

    def test_missing_scalar_raises(self, rng):
        from repro.frontend import get_kernel

        k = get_kernel("mm")
        inputs = k.make_inputs(k.test_size, rng)
        with pytest.raises(KeyError):
            run_function(k.function, inputs, {})

    def test_eval_floor_div_and_mod(self):
        env = {"x": 17}
        assert eval_expr(var("x") // 5, env, {}) == 3
        assert eval_expr(var("x") % 5, env, {}) == 2

    def test_eval_min_max(self):
        from repro.ir.nodes import Max

        assert eval_expr(Min(c(3), c(5)), {}, {}) == 3
        assert eval_expr(Max(c(3), c(5)), {}, {}) == 5

    def test_unknown_intrinsic_raises(self):
        from repro.ir.nodes import Call

        with pytest.raises(NameError):
            eval_expr(Call("bogus", (c(1),)), {}, {})

    def test_loop_variable_scoping_restored(self):
        # after a loop executes, the loop var must not leak
        i = var("i")
        nest = loop("i", 0, 3, assign(var("A")[i], i * 1.0))
        fn = func("f", [array("A", 3)], nest)
        out = run_function(fn, {"A": np.zeros(3)})
        assert np.allclose(out["A"], [0, 1, 2])

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=8))
    def test_nested_loop_trip_counts(self, n, m):
        i, j = var("i"), var("j")
        body = assign(var("A")[0], var("A")[0] + 1.0)
        nest = loop("i", 0, n, loop("j", 0, m, body))
        fn = func("f", [array("A", 1)], nest)
        out = run_function(fn, {"A": np.zeros(1)})
        assert out["A"][0] == n * m
