"""Integration tests: the end-to-end compiler driver and tuning sessions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.driver import TunedKernel, TuningDriver, TuningSession
from repro.frontend import get_kernel
from repro.machine import BARCELONA, WESTMERE
from repro.optimizer.rsgde3 import RSGDE3Settings
from repro.optimizer.gde3 import GDE3Settings


FAST_SETTINGS = RSGDE3Settings(
    gde3=GDE3Settings(population_size=16), max_generations=12, patience=2
)


@pytest.fixture(scope="module")
def tuned_mm():
    driver = TuningDriver(machine=WESTMERE, seed=42, settings=FAST_SETTINGS)
    return driver.tune_kernel("mm", sizes={"N": 700})


class TestTuneKernel:
    def test_produces_front(self, tuned_mm):
        assert tuned_mm.result.size >= 2
        assert tuned_mm.result.evaluations > 16

    def test_baseline_slower_than_tuned(self, tuned_mm):
        fastest = min(m.time for m in tuned_mm.version_metas())
        assert tuned_mm.baseline_time > fastest

    def test_sequential_reference_sane(self, tuned_mm):
        assert 0 < tuned_mm.sequential_time <= tuned_mm.baseline_time * 1.5

    def test_metas_sorted_by_time(self, tuned_mm):
        times = [m.time for m in tuned_mm.version_metas()]
        assert times == sorted(times)

    def test_summary_renders(self, tuned_mm):
        text = tuned_mm.summary()
        assert "mm on Westmere" in text and "efficiency" in text

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError):
            TuningDriver().tune_kernel("fft")

    def test_unknown_optimizer_raises(self):
        with pytest.raises(KeyError):
            TuningDriver(settings=FAST_SETTINGS).tune_kernel(
                "mm", sizes={"N": 200}, optimizer="sa"
            )


class TestVersionTableIntegration:
    def test_executable_versions_run_correctly(self, tuned_mm, rng):
        table = tuned_mm.build_version_table()
        assert len(table) == tuned_mm.result.size
        k = get_kernel("mm")
        inputs = k.make_inputs(k.test_size, rng)
        ref = k.reference(inputs, k.test_size)
        # execute the fastest and the most efficient version
        for version in (table.fastest(), table.most_efficient()):
            arrs = {n: v.copy() for n, v in inputs.items()}
            version(arrs, k.test_size)
            assert np.allclose(arrs["C"], ref["C"])

    def test_metadata_only_table(self, tuned_mm):
        table = tuned_mm.build_version_table(executable=False)
        with pytest.raises(RuntimeError):
            table.fastest()({}, {})

    def test_emit_c_unit(self, tuned_mm):
        unit = tuned_mm.emit_c()
        assert unit.kernel == "mm"
        assert len(unit.versions) == tuned_mm.result.size
        assert "mm_dispatch" in unit.source


class TestTuneSource:
    def test_c_source_roundtrip(self):
        src = """
        void gemm(int N, double A[N][N], double B[N][N], double C[N][N]) {
            for (int i = 0; i < N; i++)
                for (int j = 0; j < N; j++)
                    for (int k = 0; k < N; k++)
                        C[i][j] += A[i][k] * B[k][j];
        }
        """
        driver = TuningDriver(machine=BARCELONA, seed=1, settings=FAST_SETTINGS)
        tuned = driver.tune_source(src, sizes={"N": 300})
        assert tuned.name == "gemm"
        assert tuned.result.size >= 1

    def test_function_entry(self):
        k = get_kernel("dsyrk")
        driver = TuningDriver(machine=WESTMERE, seed=2, settings=FAST_SETTINGS)
        tuned = driver.tune_function(k.function, sizes={"N": 300})
        assert tuned.name == "dsyrk"


class TestOptimizerSwitches:
    @pytest.mark.parametrize("opt", ["rsgde3", "nsga2", "random"])
    def test_all_optimizers_run(self, opt):
        driver = TuningDriver(machine=WESTMERE, seed=3, settings=FAST_SETTINGS)
        tuned = driver.tune_kernel("mm", sizes={"N": 200}, optimizer=opt)
        assert tuned.result.size >= 1


class TestSession:
    def test_memoizes_runs(self):
        session = TuningSession()
        r1 = session.tune("mm", WESTMERE, seed=0)
        evals_first = r1.evaluations
        r2 = session.tune("mm", WESTMERE, seed=0)  # cached
        assert r2.evaluations == evals_first
        assert len(session.runs) == 1

    def test_save_load_roundtrip(self, tmp_path):
        session = TuningSession()
        session.tune("mm", WESTMERE, seed=0)
        path = session.save(tmp_path / "s.json")
        loaded = TuningSession.load(path)
        results = loaded.results_for("mm", "Westmere", "rsgde3")
        assert len(results) == 1
        assert results[0].size >= 1

    def test_results_filtering(self):
        session = TuningSession()
        session.tune("mm", WESTMERE, seed=0)
        assert session.results_for("mm", "Barcelona", "rsgde3") == []
