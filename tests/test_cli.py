"""Tests for the command-line interface."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestInfoCommands:
    def test_kernels(self):
        code, text = run_cli("kernels")
        assert code == 0
        for name in ("mm", "dsyrk", "jacobi2d", "stencil3d", "nbody"):
            assert name in text

    def test_machines(self):
        code, text = run_cli("machines")
        assert code == 0
        assert "Westmere" in text and "Barcelona" in text
        assert "30M" in text and "2M" in text


class TestTune:
    def test_tune_kernel(self, tmp_path):
        json_path = tmp_path / "out.json"
        c_path = tmp_path / "out.c"
        code, text = run_cli(
            "tune", "mm",
            "--size", "N=300",
            "--machine", "barcelona",
            "--seed", "1",
            "--json", str(json_path),
            "--emit-c", str(c_path),
        )
        assert code == 0
        assert "mm on Barcelona" in text
        payload = json.loads(json_path.read_text())
        assert payload["kernel"] == "mm"
        assert payload["evaluations"] > 0
        assert len(payload["front"]) >= 1
        assert "mm_dispatch" in c_path.read_text()

    def test_tune_with_energy(self):
        code, text = run_cli("tune", "mm", "--size", "N=200", "--energy")
        assert code == 0

    def test_tune_random_optimizer(self):
        code, text = run_cli("tune", "mm", "--size", "N=200", "--optimizer", "random")
        assert code == 0

    def test_tune_file(self, tmp_path):
        src = tmp_path / "k.c"
        src.write_text(
            """
            void axpyish(int N, double A[N][N], double B[N][N]) {
                for (int i = 0; i < N; i++)
                    for (int j = 0; j < N; j++)
                        B[i][j] += 2.0 * A[i][j];
            }
            """
        )
        code, text = run_cli("tune-file", str(src), "--size", "N=2000")
        assert code == 0
        assert "axpyish" in text

    def test_tune_file_requires_sizes(self, tmp_path):
        src = tmp_path / "k.c"
        src.write_text("void f(int N, double A[N]) { A[0] = 1.0; }")
        with pytest.raises(SystemExit):
            run_cli("tune-file", str(src))

    def test_bad_size_format(self):
        with pytest.raises(SystemExit):
            run_cli("tune", "mm", "--size", "N:300")

    def test_bad_size_value(self):
        with pytest.raises(SystemExit):
            run_cli("tune", "mm", "--size", "N=abc")

    def test_unknown_kernel_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            run_cli("tune", "nonexistent")

    def test_workers_and_engine_stats(self, tmp_path):
        json_path = tmp_path / "out.json"
        code, text = run_cli(
            "tune", "mm",
            "--size", "N=200",
            "--workers", "2",
            "--engine-stats",
            "--json", str(json_path),
        )
        assert code == 0
        assert "engine: workers=2" in text
        engine = json.loads(json_path.read_text())["engine"]
        assert engine["workers"] == 2
        assert engine["configs"] == engine["dispatched"] + engine["cache_hits"] + engine["deduped"]

    def test_workers_parallel_matches_serial(self, tmp_path):
        fronts = {}
        for workers in ("1", "4"):
            json_path = tmp_path / f"w{workers}.json"
            code, _ = run_cli(
                "tune", "mm", "--size", "N=200", "--seed", "3",
                "--workers", workers, "--json", str(json_path),
            )
            assert code == 0
            fronts[workers] = json.loads(json_path.read_text())
        assert fronts["1"]["front"] == fronts["4"]["front"]
        assert fronts["1"]["evaluations"] == fronts["4"]["evaluations"]

    def test_workers_auto_accepted(self):
        code, _ = run_cli("tune", "mm", "--size", "N=200", "--workers", "auto")
        assert code == 0

    def test_bad_workers_value(self):
        with pytest.raises(SystemExit):
            run_cli("tune", "mm", "--workers", "some")
        with pytest.raises(SystemExit):
            run_cli("tune", "mm", "--workers", "0")


class TestReport:
    def test_report_to_file(self, tmp_path, monkeypatch):
        # shrink the report's problem size for test speed by reusing the
        # full pipeline (the report runs paper-scale mm; it is fast because
        # evaluation is the vectorized cost model)
        out_file = tmp_path / "report.md"
        code, text = run_cli("report", "--out", str(out_file), "--repetitions", "1")
        assert code == 0
        content = out_file.read_text()
        assert "Reproduction report" in content
        assert "mm on Westmere" in content and "mm on Barcelona" in content
        assert "RS-GDE3" in content
        assert "paper RS-GDE3" in content

    def test_report_to_stdout(self):
        code, text = run_cli("report", "--repetitions", "1")
        assert code == 0
        assert "Table VI" in text


class TestObservabilityCLI:
    def test_tune_trace_produces_end_to_end_jsonl(self, tmp_path):
        trace_path = tmp_path / "run.jsonl"
        code, text = run_cli(
            "tune", "mm", "--size", "N=200", "--trace", str(trace_path)
        )
        assert code == 0
        assert f"wrote {trace_path}" in text

        records = [
            json.loads(line) for line in trace_path.read_text().splitlines()
        ]
        meta = records[0]
        assert meta["type"] == "meta"
        assert (meta["kernel"], meta["command"]) == ("mm", "tune")
        span_names = {r["name"] for r in records if r["type"] == "span"}
        event_names = {r["name"] for r in records if r["type"] == "event"}
        # the three acceptance event/span families, all in one trace
        assert "optimizer.run" in span_names
        assert "engine.batch" in span_names
        assert "optimizer.generation" in event_names
        assert "runtime.selection" in event_names
        assert {"driver.analyze", "driver.optimize", "driver.finalize"} <= span_names

    def test_trace_subcommand_summarizes(self, tmp_path):
        trace_path = tmp_path / "run.jsonl"
        run_cli("tune", "mm", "--size", "N=200", "--trace", str(trace_path))
        code, text = run_cli("trace", str(trace_path))
        assert code == 0
        assert "kernel=mm" in text
        assert "Phase breakdown" in text
        assert "Convergence trajectory" in text
        assert "Evaluation-engine accounting" in text
        assert "Runtime selection decisions" in text

    def test_tune_metrics_prints_exposition(self):
        code, text = run_cli("tune", "mm", "--size", "N=200", "--metrics")
        assert code == 0
        assert "# TYPE repro_engine_batches_total counter" in text
        assert "repro_optimizer_generations_total" in text
        assert "repro_runtime_selections_total" not in text  # no tracing, no preview

    def test_trace_missing_file_clean_error(self, tmp_path):
        with pytest.raises(SystemExit) as exc_info:
            run_cli("trace", str(tmp_path / "absent.jsonl"))
        message = str(exc_info.value)
        assert "cannot read trace file" in message
        assert "Traceback" not in message

    def test_trace_corrupt_file_clean_error(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "meta", "format": 1}\n{oops\n')
        with pytest.raises(SystemExit) as exc_info:
            run_cli("trace", str(bad))
        assert "line 2" in str(exc_info.value)

    def test_trace_flag_unwritable_path_fails_before_run(self, tmp_path):
        with pytest.raises(SystemExit) as exc_info:
            run_cli(
                "tune", "mm", "--size", "N=200",
                "--trace", str(tmp_path / "no" / "dir" / "t.jsonl"),
            )
        assert "cannot write trace file" in str(exc_info.value)


class TestReportTelemetry:
    def test_report_includes_engine_and_convergence(self, tmp_path):
        out_file = tmp_path / "report.md"
        code, _ = run_cli("report", "--out", str(out_file), "--repetitions", "1")
        assert code == 0
        content = out_file.read_text()
        assert "Evaluation engine (workers=1):" in content
        assert "batches=" in content and "cache_hits=" in content
        assert "Convergence trajectory (RS-GDE3, repetition 0)" in content
        # the trajectory table has a generation-0 row and at least one more
        section = content.split("Convergence trajectory", 1)[1]
        rows = [
            line for line in section.splitlines()
            if line.startswith("| ") and not line.startswith("| generation")
        ]
        assert len(rows) >= 2
        first = rows[0].split("|")
        assert first[1].strip() == "0"  # generation 0 kept by the subsample


class TestMultiRegionCLI:
    TWIN = """
    void twins(int N, double A[N][N], double B[N][N]) {
        for (int i = 0; i < N; i++)
            for (int j = 0; j < N; j++)
                B[i][j] += 2.0 * A[i][j];
        for (int i = 0; i < N; i++)
            for (int j = 0; j < N; j++)
                B[i][j] += 2.0 * A[i][j];
    }
    """

    def test_tune_multiregion_kernel(self, tmp_path):
        json_path = tmp_path / "mr.json"
        code, text = run_cli(
            "tune", "jacobi2d",
            "--multiregion",
            "--size", "N=500", "--size", "T=5",
            "--workers", "4",
            "--engine-stats",
            "--json", str(json_path),
        )
        assert code == 0
        assert "2 regions" in text
        assert "program runs" in text
        assert "shared_hits" in text
        payload = json.loads(json_path.read_text())
        assert payload["multiregion"] is True
        assert payload["program_runs"] > 0
        assert len(payload["regions"]) == 2
        assert all(r["evaluations"] > 0 for r in payload["regions"])
        eng = payload["engine"]
        assert eng["configs"] == (
            eng["dispatched"] + eng["cache_hits"] + eng["deduped"]
            + eng["disk_hits"] + eng["shared_hits"]
        )

    def test_tune_file_multiregion_shares_across_twins(self, tmp_path):
        src = tmp_path / "twins.c"
        src.write_text(self.TWIN)
        json_path = tmp_path / "mr.json"
        code, text = run_cli(
            "tune-file", str(src),
            "--multiregion", "--pipeline",
            "--size", "N=500",
            "--workers", "4",
            "--json", str(json_path),
        )
        assert code == 0
        payload = json.loads(json_path.read_text())
        assert payload["pipeline"] is True
        assert payload["engine"]["shared_hits"] > 0

    def test_multiregion_trace(self, tmp_path):
        trace = tmp_path / "mr.jsonl"
        code, _ = run_cli(
            "tune", "jacobi2d",
            "--multiregion",
            "--size", "N=500", "--size", "T=5",
            "--trace", str(trace),
        )
        assert code == 0
        code, text = run_cli("trace", str(trace))
        assert code == 0
        assert "Cross-region scheduler" in text
        assert "shared_hits" in text

    def test_pipeline_requires_multiregion(self):
        with pytest.raises(SystemExit):
            run_cli("tune", "jacobi2d", "--pipeline")

    def test_multiregion_rejects_energy(self):
        with pytest.raises(SystemExit):
            run_cli("tune", "jacobi2d", "--multiregion", "--energy")

    def test_multiregion_rejects_emit_c(self, tmp_path):
        with pytest.raises(SystemExit):
            run_cli(
                "tune", "jacobi2d", "--multiregion",
                "--emit-c", str(tmp_path / "x.c"),
            )

    def test_multiregion_rejects_other_optimizers(self):
        with pytest.raises(SystemExit):
            run_cli("tune", "jacobi2d", "--multiregion", "--optimizer", "nsga2")

    def test_tune_file_multiregion_requires_sizes(self, tmp_path):
        src = tmp_path / "twins.c"
        src.write_text(self.TWIN)
        with pytest.raises(SystemExit):
            run_cli("tune-file", str(src), "--multiregion")
