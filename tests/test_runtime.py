"""Tests for the runtime system: version tables, selection policies,
executor and monitor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend.meta import VersionMeta
from repro.runtime import (
    EfficiencyFloorPolicy,
    ExecutionRecord,
    FastestPolicy,
    MostEfficientPolicy,
    RegionExecutor,
    RuntimeMonitor,
    ThreadCapPolicy,
    TimeCapPolicy,
    Version,
    VersionTable,
    WeightedSumPolicy,
    policy_by_name,
)


def meta(i, time, threads, resources=None):
    return VersionMeta(
        index=i,
        time=time,
        resources=resources if resources is not None else time * threads,
        threads=threads,
        tile_sizes=(("i", 8),),
    )


@pytest.fixture
def table():
    """A plausible mm-like Pareto table: faster versions use more threads
    and cost more cpu-seconds."""
    metas = [
        meta(0, 0.05, 40),   # 2.0 cpu-s
        meta(1, 0.08, 20),   # 1.6
        meta(2, 0.14, 10),   # 1.4
        meta(3, 0.60, 2),    # 1.2
        meta(4, 1.10, 1),    # 1.1
    ]
    return VersionTable(
        region_name="mm",
        versions=tuple(Version(meta=m) for m in metas),
    )


class TestVersionTable:
    def test_len_iter_getitem(self, table):
        assert len(table) == 5
        assert [v.meta.index for v in table] == [0, 1, 2, 3, 4]
        assert table[3].meta.threads == 2
        with pytest.raises(IndexError):
            table[99]

    def test_fastest_most_efficient(self, table):
        assert table.fastest().meta.index == 0
        assert table.most_efficient().meta.index == 4

    def test_requires_versions(self):
        with pytest.raises(ValueError):
            VersionTable(region_name="x", versions=())

    def test_duplicate_indices_rejected(self):
        vs = (Version(meta=meta(0, 1.0, 1)), Version(meta=meta(0, 2.0, 2)))
        with pytest.raises(ValueError):
            VersionTable(region_name="x", versions=vs)

    def test_summary_mentions_all(self, table):
        text = table.pareto_summary()
        for i in range(5):
            assert f"v{i}:" in text

    def test_metadata_only_version_raises_on_call(self, table):
        with pytest.raises(RuntimeError):
            table[0]({}, {})


class TestPolicies:
    def test_fastest(self, table):
        assert FastestPolicy().select(table).meta.index == 0

    def test_most_efficient(self, table):
        assert MostEfficientPolicy().select(table).meta.index == 4

    def test_weighted_extremes_match_pure_policies(self, table):
        assert WeightedSumPolicy(1.0, 0.0).select(table).meta.index == 0
        assert WeightedSumPolicy(0.0, 1.0).select(table).meta.index == 4

    def test_weighted_balanced_interior(self, table):
        idx = WeightedSumPolicy(0.5, 0.5).select(table).meta.index
        assert idx not in (0,)  # not the extreme time point

    def test_time_cap(self, table):
        # cheapest version meeting a 0.2 s deadline is v2 (10 threads)
        assert TimeCapPolicy(cap=0.2).select(table).meta.index == 2

    def test_time_cap_infeasible_falls_back_to_fastest(self, table):
        assert TimeCapPolicy(cap=0.001).select(table).meta.index == 0

    def test_thread_cap_explicit(self, table):
        assert ThreadCapPolicy(cap=10).select(table).meta.index == 2

    def test_thread_cap_from_context(self, table):
        v = ThreadCapPolicy().select(table, {"available_cores": 2})
        assert v.meta.index == 3

    def test_thread_cap_no_fit_takes_smallest(self, table):
        metas = [meta(0, 0.1, 8), meta(1, 0.2, 4)]
        t = VersionTable("x", tuple(Version(meta=m) for m in metas))
        assert ThreadCapPolicy(cap=1).select(t).meta.index == 1

    def test_efficiency_floor(self, table):
        # efficiencies vs t_seq=1.1: v0 .55, v1 .6875, v2 .7857, v3 .9167, v4 1
        assert EfficiencyFloorPolicy(floor=0.9).select(table).meta.index == 3
        assert EfficiencyFloorPolicy(floor=0.75).select(table).meta.index == 2

    def test_efficiency_floor_without_sequential(self):
        # no 1-thread entry: falls back to fewest cpu-seconds (v1: 0.6 < 0.8)
        metas = [meta(0, 0.1, 8), meta(1, 0.15, 4)]
        t = VersionTable("x", tuple(Version(meta=m) for m in metas))
        assert EfficiencyFloorPolicy().select(t).meta.index == 1

    def test_policy_by_name(self):
        assert isinstance(policy_by_name("fastest"), FastestPolicy)
        assert isinstance(policy_by_name("efficient"), MostEfficientPolicy)
        assert isinstance(policy_by_name("balanced"), WeightedSumPolicy)
        with pytest.raises(KeyError):
            policy_by_name("nope")

    def test_policy_by_name_parameterized(self, table):
        p = policy_by_name("time_cap:0.2")
        assert isinstance(p, TimeCapPolicy) and p.cap == 0.2
        assert p.select(table).meta.index == 2

        p = policy_by_name("thread_cap:8")
        assert isinstance(p, ThreadCapPolicy) and p.cap == 8

        p = policy_by_name("efficiency_floor:0.7")
        assert isinstance(p, EfficiencyFloorPolicy) and p.floor == 0.7

        from repro.runtime import EnergyCapPolicy

        p = policy_by_name("energy_cap:100")
        assert isinstance(p, EnergyCapPolicy) and p.cap == 100.0

    def test_policy_by_name_optional_parameters(self):
        # thread_cap / efficiency_floor have context/default fallbacks
        assert policy_by_name("thread_cap").cap is None
        assert policy_by_name("efficiency_floor").floor == 0.8

    def test_policy_by_name_errors(self):
        with pytest.raises(KeyError, match="needs a parameter"):
            policy_by_name("time_cap")
        with pytest.raises(KeyError, match="needs a parameter"):
            policy_by_name("energy_cap")
        with pytest.raises(KeyError, match="invalid parameter"):
            policy_by_name("thread_cap:many")
        with pytest.raises(KeyError, match="takes no parameter"):
            policy_by_name("fastest:3")
        with pytest.raises(KeyError, match="available"):
            policy_by_name("deadline:1.0")

    def test_weighted_sum_empty_table_clear_error(self):
        with pytest.raises(ValueError, match="empty version table"):
            WeightedSumPolicy().select([])

    def test_describe(self, table):
        assert "0.5" in WeightedSumPolicy().describe()
        assert "time_cap" in TimeCapPolicy(0.1).describe()


class TestMonitor:
    def test_context_empty_by_default(self):
        assert RuntimeMonitor().context() == {}

    def test_set_available_cores(self):
        m = RuntimeMonitor()
        m.set_available_cores(8)
        assert m.context() == {"available_cores": 8}
        with pytest.raises(ValueError):
            m.set_available_cores(0)

    def test_record_and_aggregate(self):
        m = RuntimeMonitor()
        m.record("mm", 0, 4, 0.1, 0.12)
        m.record("mm", 1, 2, 0.2, 0.25)
        assert m.selections() == [0, 1]
        assert m.total_cpu_seconds() == pytest.approx(0.12 * 4 + 0.25 * 2)


class TestRegionExecutor:
    def _executable_table(self):
        from repro.analysis import extract_regions
        from repro.backend import compile_function
        from repro.frontend import get_kernel
        from repro.transform import default_skeleton

        k = get_kernel("mm")
        region = extract_regions(k.function)[0]
        sk = default_skeleton(region, k.test_size, max_threads=4)
        versions = []
        for i, thr in enumerate((4, 1)):
            values = {"tile_i": 4, "tile_j": 4, "tile_k": 4, "threads": thr}
            fn = sk.instantiate(values).apply()
            versions.append(
                Version(
                    meta=meta(i, 0.1 * (i + 1), thr),
                    fn=compile_function(fn, name=f"mm_v{i}"),
                )
            )
        return k, VersionTable("mm", tuple(versions))

    def test_execute_records_history(self, rng):
        k, table = self._executable_table()
        ex = RegionExecutor(table)
        inputs = k.make_inputs(k.test_size, rng)
        arrs = {n: v.copy() for n, v in inputs.items()}
        v = ex.execute(arrs, k.test_size)
        assert ex.monitor.history[-1].version_index == v.meta.index
        ref = k.reference(inputs, k.test_size)
        assert np.allclose(arrs["C"], ref["C"])

    def test_dynamic_reselection_on_core_change(self):
        """The abstract's scenario: circumstances change, the runtime picks
        a different version."""
        _, table = self._executable_table()
        ex = RegionExecutor(table, policy=ThreadCapPolicy())
        ex.monitor.set_available_cores(4)
        first = ex.select().meta.index
        ex.monitor.set_available_cores(1)
        second = ex.select().meta.index
        assert first != second

    def test_policy_swap(self, table):
        ex = RegionExecutor(table)
        ex.set_policy(FastestPolicy())
        assert ex.select().meta.index == 0
        ex.set_policy(MostEfficientPolicy())
        assert ex.select().meta.index == 4


class TestRecalibration:
    def _table(self):
        metas = [meta(0, 0.05, 4), meta(1, 0.2, 1)]
        return VersionTable("mm", tuple(Version(meta=m) for m in metas))

    def test_updates_after_enough_samples(self):
        ex = RegionExecutor(self._table())
        for wall in (0.10, 0.11, 0.12):
            ex.monitor.record("mm", 0, 4, 0.05, wall)
        updated = ex.recalibrate(min_samples=3)
        assert updated == 1
        v0 = ex.table[0].meta
        assert v0.time == pytest.approx(0.11)
        assert v0.resources == pytest.approx(0.44)
        # v1 untouched (no samples)
        assert ex.table[1].meta.time == 0.2

    def test_too_few_samples_no_update(self):
        ex = RegionExecutor(self._table())
        ex.monitor.record("mm", 0, 4, 0.05, 0.5)
        assert ex.recalibrate(min_samples=3) == 0
        assert ex.table[0].meta.time == 0.05

    def test_other_regions_ignored(self):
        ex = RegionExecutor(self._table())
        for _ in range(5):
            ex.monitor.record("other", 0, 4, 0.05, 9.9)
        assert ex.recalibrate(min_samples=3) == 0

    def test_selection_changes_after_recalibration(self):
        """Observed reality flips the fastest version."""
        ex = RegionExecutor(self._table(), policy=FastestPolicy())
        assert ex.select().meta.index == 0
        for wall in (0.9, 1.0, 1.1):  # v0 is actually slow in production
            ex.monitor.record("mm", 0, 4, 0.05, wall)
        ex.recalibrate(min_samples=3)
        assert ex.select().meta.index == 1

    def test_energy_scaled_proportionally(self):
        m = VersionMeta(index=0, time=0.1, resources=0.4, threads=4,
                        tile_sizes=(), energy=10.0)
        table = VersionTable("mm", (Version(meta=m),))
        ex = RegionExecutor(table)
        for wall in (0.2, 0.2, 0.2):
            ex.monitor.record("mm", 0, 4, 0.1, wall)
        ex.recalibrate()
        assert ex.table[0].meta.energy == pytest.approx(20.0)


class TestMonitorClock:
    """The monitor's time source is injectable (same Clock protocol as the
    tracer), so execution-record timestamps can be pinned in tests."""

    def test_default_is_system_clock(self):
        from repro.obs import SystemClock

        assert isinstance(RuntimeMonitor().clock, SystemClock)

    def test_fake_clock_pins_timestamps(self):
        from repro.obs import FakeClock

        m = RuntimeMonitor(clock=FakeClock(t=100.0, tick=1.0))
        m.record("mm", 0, 4, 0.1, 0.12)
        m.record("mm", 1, 2, 0.2, 0.25)
        assert [r.timestamp for r in m.history] == [100.0, 101.0]

    def test_executor_times_with_monitor_clock(self, rng):
        """execute() walls are measured on the monitor's clock — with a
        ticking FakeClock every invocation takes exactly one tick."""
        from repro.obs import FakeClock

        helper = TestRegionExecutor()
        k, table = helper._executable_table()
        monitor = RuntimeMonitor(clock=FakeClock(tick=0.5))
        ex = RegionExecutor(table, monitor=monitor)
        arrs = {n: v.copy() for n, v in k.make_inputs(k.test_size, rng).items()}
        ex.execute(arrs, k.test_size)
        rec = monitor.history[-1]
        assert rec.wall_time == 0.5  # perf() ticked once during the run
        assert rec.timestamp == 1.0  # third read of the same counter


class TestSelectionEvents:
    def test_select_emits_decision_event(self, table):
        from repro.obs import FakeClock, Observability

        obs = Observability.tracing(clock=FakeClock(tick=0.1))
        ex = RegionExecutor(table, policy=FastestPolicy(), obs=obs)
        ex.monitor.set_available_cores(16)
        v = ex.select()
        (event,) = obs.tracer.records()
        assert event["name"] == "runtime.selection"
        attrs = event["attrs"]
        assert attrs["region"] == "mm"
        assert attrs["policy"] == FastestPolicy().describe()
        assert attrs["context"] == {"available_cores": 16}
        assert attrs["version"] == v.meta.index
        assert attrs["predicted_time"] == v.meta.time
        assert attrs["actual_time"] is None
        assert obs.metrics.as_dict()["repro_runtime_selections_total"] == 1

    def test_execute_emits_actual_time(self, rng):
        from repro.obs import FakeClock, Observability

        helper = TestRegionExecutor()
        k, table = helper._executable_table()
        obs = Observability.tracing(clock=FakeClock(tick=0.1))
        monitor = RuntimeMonitor(clock=FakeClock(tick=0.5))
        ex = RegionExecutor(table, monitor=monitor, obs=obs)
        arrs = {n: v.copy() for n, v in k.make_inputs(k.test_size, rng).items()}
        ex.execute(arrs, k.test_size)
        (event,) = obs.tracer.records()
        assert event["attrs"]["actual_time"] == 0.5
        m = obs.metrics.as_dict()
        assert m["repro_runtime_executions_total"] == 1
        assert m["repro_runtime_wall_seconds"]["count"] == 1


class TestWeightedSumDegenerate:
    """Zero-span normalization: tables where an objective carries no signal
    must select cleanly (no division by zero, no NaN scores)."""

    def test_single_version_table(self):
        t = VersionTable("x", (Version(meta=meta(0, 0.5, 2)),))
        assert WeightedSumPolicy().select(t).meta.index == 0
        assert WeightedSumPolicy(1.0, 0.0).select(t).meta.index == 0

    def test_all_equal_table(self):
        metas = [meta(i, 0.5, 2, resources=1.0) for i in range(4)]
        t = VersionTable("x", tuple(Version(meta=m) for m in metas))
        # every score is exactly 0.0 — the first version wins the tie
        assert WeightedSumPolicy().select(t).meta.index == 0

    def test_one_degenerate_objective(self):
        # equal times, distinct resources: only the resource term decides
        metas = [meta(0, 0.5, 4), meta(1, 0.5, 2), meta(2, 0.5, 1)]
        t = VersionTable("x", tuple(Version(meta=m) for m in metas))
        assert WeightedSumPolicy(0.9, 0.1).select(t).meta.index == 2

    def test_compiled_agrees_on_degenerate_tables(self):
        from repro.runtime import compile_policy

        for metas in (
            [meta(0, 0.5, 2)],
            [meta(i, 0.5, 2, resources=1.0) for i in range(4)],
            [meta(0, 0.5, 4), meta(1, 0.5, 2), meta(2, 0.5, 1)],
        ):
            t = VersionTable("x", tuple(Version(meta=m) for m in metas))
            for policy in (WeightedSumPolicy(), WeightedSumPolicy(0.9, 0.1)):
                assert compile_policy(policy, t).select({}) is policy.select(t)


class TestVersionTableCaches:
    def test_columns_cached_and_read_only(self, table):
        cols = table.columns()
        assert table.columns() is cols
        assert not cols.times.flags.writeable
        with pytest.raises(ValueError):
            cols.times[0] = 9.9
        assert list(cols.indices) == [0, 1, 2, 3, 4]

    def test_objective_points_cached_and_read_only(self, table):
        pts = table.objective_points()
        assert table.objective_points() is pts
        assert not pts.flags.writeable

    def test_archive_cached_per_reference(self, table):
        a = table.archive()
        assert table.archive() is a
        ref = np.array([10.0, 10.0])
        b = table.archive(ref)
        assert b is not a
        assert table.archive(ref) is b

    def test_replacing_versions_invalidates_caches(self, table):
        cols, pts, arch = table.columns(), table.objective_points(), table.archive()
        table.versions = table.versions[:3]
        assert table.columns() is not cols
        assert len(table.columns().times) == 3
        assert table.objective_points() is not pts
        assert table.archive() is not arch

    def test_hypervolume_uses_cached_archive(self, table):
        hv = table.hypervolume()
        assert hv > 0
        assert table.hypervolume() == hv


class TestCompiledExecutor:
    def test_compiled_selection_cached_by_identity(self, table):
        ex = RegionExecutor(table, policy=FastestPolicy())
        c = ex.compiled_selection()
        assert c is not None
        assert ex.compiled_selection() is c

    def test_set_policy_invalidates(self, table):
        ex = RegionExecutor(table, policy=FastestPolicy())
        assert ex.select().meta.index == 0
        ex.set_policy(MostEfficientPolicy())
        assert ex.select().meta.index == 4

    def test_disabled_compilation_forces_oracle(self, table):
        ex = RegionExecutor(table, policy=FastestPolicy(), compiled=False)
        assert ex.compiled_selection() is None
        assert ex.select().meta.index == 0

    def test_compiled_and_oracle_selections_agree(self, table):
        for policy in (
            FastestPolicy(),
            MostEfficientPolicy(),
            WeightedSumPolicy(),
            TimeCapPolicy(0.2),
            ThreadCapPolicy(),
            EfficiencyFloorPolicy(),
        ):
            fast = RegionExecutor(table, policy=policy)
            slow = RegionExecutor(table, policy=policy, compiled=False)
            for cores in (None, 2, 10, 40):
                if cores is not None:
                    fast.monitor.set_available_cores(cores)
                    slow.monitor.set_available_cores(cores)
                assert fast.select() is slow.select(), (policy, cores)

    def test_recalibrate_invalidates_compiled_cache(self, table):
        """After recalibrate() builds a new table, the stale compiled
        decision must not survive: observed times flip the fastest
        version."""
        ex = RegionExecutor(table, policy=FastestPolicy())
        assert ex.select().meta.index == 0
        before = ex.compiled_selection()
        # production says v0 is actually slow and v2 is very fast
        for _ in range(3):
            ex.monitor.record("mm", 0, 40, 0.05, 0.9)
            ex.monitor.record("mm", 2, 10, 0.14, 0.01)
        assert ex.recalibrate() == 2
        assert ex.compiled_selection() is not before
        assert ex.select().meta.index == 2


class TestMonitorBatching:
    def test_observe_many_matches_sequential_records(self):
        from repro.obs import FakeClock

        a = RuntimeMonitor(clock=FakeClock(t=5.0))
        b = RuntimeMonitor(clock=FakeClock(t=5.0))
        obs = [("mm", i % 3, 2, 0.1, 0.1 * (i + 1)) for i in range(10)]
        for o in obs:
            a.record(*o)
        assert b.observe_many(obs) == 10
        assert a.selections() == b.selections()
        assert a.version_counts() == b.version_counts()
        assert a.total_cpu_seconds() == pytest.approx(b.total_cpu_seconds())
        # the batch shares one timestamp
        assert len({r.timestamp for r in b.records()}) == 1

    def test_observe_many_empty(self):
        assert RuntimeMonitor().observe_many([]) == 0

    def test_shard_buffers_and_flushes(self):
        m = RuntimeMonitor()
        shard = m.shard(capacity=4)
        for i in range(10):
            shard.observe("mm", 0, 2, 0.1, 0.1)
        # two automatic flushes at capacity, 2 left buffered
        assert shard.flushes == 2
        assert m.invocations == 8
        assert len(shard) == 2
        assert shard.flush() == 2
        assert m.invocations == 10
        assert shard.flush() == 0

    def test_shard_capacity_validation(self):
        with pytest.raises(ValueError):
            RuntimeMonitor().shard(capacity=0)

    def test_absorb_keeps_totals_exact_without_history(self):
        m = RuntimeMonitor()
        m.absorb("mm", 1, 4, count=1000, cpu_seconds=40.0)
        m.absorb("mm", 2, 2, count=500, cpu_seconds=10.0)
        assert m.invocations == 1500
        assert m.total_cpu_seconds() == pytest.approx(50.0)
        assert m.version_counts() == {("mm", 1): 1000, ("mm", 2): 500}
        assert m.records() == []

    def test_history_limit_preserves_aggregates(self):
        m = RuntimeMonitor(history_limit=5)
        for i in range(20):
            m.record("mm", i % 2, 2, 0.1, 0.1)
        assert len(m.records()) == 5
        assert m.invocations == 20
        assert m.version_counts() == {("mm", 0): 10, ("mm", 1): 10}
        assert m.total_cpu_seconds() == pytest.approx(20 * 0.1 * 2)

    def test_preseeded_history_counts_in_aggregates(self):
        seed = [
            ExecutionRecord("mm", 0, 2, 0.1, 0.2, 0.0),
            ExecutionRecord("mm", 1, 4, 0.1, 0.3, 1.0),
        ]
        m = RuntimeMonitor(history=list(seed))
        assert m.invocations == 2
        assert m.total_cpu_seconds() == pytest.approx(0.2 * 2 + 0.3 * 4)

    def test_concurrent_ingestion_loses_nothing(self):
        import threading

        m = RuntimeMonitor()
        per_thread, n_threads = 500, 8

        def run(tid):
            shard = m.shard(capacity=37)
            for i in range(per_thread):
                shard.observe("mm", tid % 3, 2, 0.1, 0.1)
            shard.flush()

        threads = [
            threading.Thread(target=run, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert m.invocations == per_thread * n_threads
        assert sum(m.version_counts().values()) == per_thread * n_threads


class TestRecalibrateConcurrent:
    def test_recalibrate_under_concurrent_recording(self, table):
        """recalibrate() snapshots the history while other threads keep
        recording: it must never raise and every record must survive."""
        import threading

        ex = RegionExecutor(table, policy=FastestPolicy())
        stop = threading.Event()
        errors = []

        def writer(tid):
            i = 0
            while not stop.is_set():
                ex.monitor.record("mm", tid % 5, 2, 0.1, 0.1 + 0.01 * tid)
                i += 1
            return i

        def recalibrator():
            try:
                for _ in range(20):
                    ex.recalibrate(min_samples=3)
                    ex.select()
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)
            finally:
                stop.set()

        writers = [threading.Thread(target=writer, args=(t,)) for t in range(4)]
        rec = threading.Thread(target=recalibrator)
        for t in writers:
            t.start()
        rec.start()
        rec.join()
        for t in writers:
            t.join()
        assert errors == []
        assert ex.monitor.invocations == len(ex.monitor.records())
