"""Tests for the incremental Pareto archive.

The contract under test is *exact equality*: the archive's hypervolume
must be bit-identical to :func:`repro.optimizer.hypervolume.hypervolume`
over the archived points at every prefix, and its front must match
:func:`repro.optimizer.pareto.non_dominated_mask` — duplicates retained,
beyond-reference points kept in the front but clipped for the volume.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.machine.model import WESTMERE
from repro.optimizer import ParetoArchive, hypervolume, non_dominated
from repro.optimizer.pareto import non_dominated_mask

REF2 = np.array([1.5, 1.5])


def _check_prefixes(pts: np.ndarray, ref: np.ndarray) -> None:
    """Insert points one at a time; every prefix must match the full
    recomputation exactly (==, not approx)."""
    archive = ParetoArchive(ref)
    for i, p in enumerate(pts):
        archive.add(p, payload=i)
        prefix = pts[: i + 1]
        assert archive.hypervolume == hypervolume(prefix, ref)
        assert archive.front_size == int(non_dominated_mask(prefix).sum())


class TestExactEquality:
    def test_randomized_fronts(self):
        rng = np.random.default_rng(0)
        for _ in range(100):
            n = int(rng.integers(1, 50))
            _check_prefixes(rng.uniform(0.0, 2.0, size=(n, 2)), REF2)

    def test_duplicate_points_and_duplicate_x(self):
        rng = np.random.default_rng(1)
        for _ in range(50):
            n = int(rng.integers(6, 40))
            pts = rng.uniform(0.0, 2.0, size=(n, 2))
            pts[rng.integers(0, n)] = pts[rng.integers(0, n)]  # exact dup
            i, j = rng.integers(0, n, size=2)
            pts[i, 0] = pts[j, 0]  # duplicate x, different y
            _check_prefixes(pts, REF2)

    def test_beyond_reference_points(self):
        # points outside the reference box stay on the front (original
        # coordinates) but contribute only their clipped area
        pts = np.array(
            [
                [0.5, 3.0],  # y beyond ref
                [3.0, 0.5],  # x beyond ref
                [2.0, 2.0],  # fully beyond
                [0.4, 0.4],
                [0.2, 5.0],
            ]
        )
        _check_prefixes(pts, REF2)

    def test_collinear_staircase(self):
        pts = np.array(
            [[0.1, 1.0], [0.2, 1.0], [0.1, 0.9], [0.3, 0.9], [0.1, 1.0]]
        )
        _check_prefixes(pts, REF2)

    def test_all_dominated_by_first(self):
        pts = np.array([[0.1, 0.1], [0.5, 0.5], [0.9, 0.2], [0.2, 0.9]])
        archive = ParetoArchive(REF2)
        assert archive.add(pts[0]) is True
        for p in pts[1:]:
            assert archive.add(p) is False
        assert archive.front_size == 1
        assert archive.hypervolume == hypervolume(pts, REF2)

    @settings(max_examples=200, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(0, 4, allow_nan=False, width=32),
                st.floats(0, 4, allow_nan=False, width=32),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_property_matches_recompute(self, rows):
        pts = np.array(rows, dtype=float)
        _check_prefixes(pts, np.array([2.0, 2.0]))


class TestFrontSemantics:
    def test_front_points_sorted_and_duplicated(self):
        archive = ParetoArchive(REF2)
        archive.add([0.3, 0.5], payload="a")
        archive.add([0.1, 0.9], payload="b")
        archive.add([0.3, 0.5], payload="c")  # exact duplicate retained
        pts = archive.front_points()
        assert pts.tolist() == [[0.1, 0.9], [0.3, 0.5], [0.3, 0.5]]
        assert archive.front() == ["b", "a", "c"]
        assert archive.size == 3

    def test_dominated_payloads_dropped(self):
        archive = ParetoArchive(REF2)
        archive.add([0.5, 0.5], payload="old")
        archive.add([0.4, 0.4], payload="new")
        assert archive.front() == ["new"]

    def test_stats_of_matches_non_dominated_count(self):
        rng = np.random.default_rng(2)
        pts = rng.uniform(0.0, 2.0, size=(200, 2))
        ref = pts.max(axis=0) * 1.1
        front_size, hv = ParetoArchive.stats_of(pts, ref)
        assert hv == hypervolume(pts, ref)
        assert front_size == len(non_dominated(list(pts), key=tuple))

    def test_empty_archive(self):
        archive = ParetoArchive(REF2)
        assert archive.front_size == 0
        assert archive.hypervolume == 0.0
        assert archive.front_points().shape == (0, 2)
        assert archive.front() == []

    def test_dimension_mismatch_rejected(self):
        archive = ParetoArchive(REF2)
        with pytest.raises(ValueError):
            archive.add([0.1, 0.2, 0.3])

    def test_bad_reference_rejected(self):
        with pytest.raises(ValueError):
            ParetoArchive([1.0])


class TestTriObjectiveFallback:
    def test_m3_matches_recompute(self):
        rng = np.random.default_rng(3)
        ref = np.array([1.5, 1.5, 1.5])
        for _ in range(20):
            n = int(rng.integers(1, 25))
            pts = rng.uniform(0.0, 2.0, size=(n, 3))
            archive = ParetoArchive(ref)
            for i, p in enumerate(pts):
                archive.add(p, payload=i)
                prefix = pts[: i + 1]
                assert archive.hypervolume == hypervolume(prefix, ref)
                assert archive.front_size == int(non_dominated_mask(prefix).sum())

    def test_m3_front_payloads(self):
        ref = np.array([2.0, 2.0, 2.0])
        archive = ParetoArchive(ref)
        archive.add([1.0, 1.0, 1.0], payload="mid")
        archive.add([0.5, 0.5, 0.5], payload="best")
        archive.add([1.5, 0.2, 1.8], payload="edge")
        assert set(archive.front()) == {"best", "edge"}


class TestFiveKernelExactness:
    """Acceptance criterion: per-generation telemetry via ParetoArchive
    matches full recomputation exactly on all five kernels."""

    @pytest.mark.parametrize(
        "kernel", ["mm", "dsyrk", "jacobi2d", "stencil3d", "nbody"]
    )
    def test_kernel_front_trajectory(self, kernel):
        from repro.experiments.setups import make_setup

        setup = make_setup(kernel, WESTMERE)
        problem = setup.problem(seed=11)
        rng = np.random.default_rng(5)
        vectors = problem.space.full_boundary().sample(rng, 120)
        configs = problem.evaluate_batch(vectors)
        objs = np.array([c.objectives for c in configs])
        ref = objs.max(axis=0) * 1.1

        archive = ParetoArchive(ref)
        for i, c in enumerate(configs):
            archive.add(c.objectives, payload=c)
            prefix = objs[: i + 1]
            assert archive.hypervolume == hypervolume(prefix, ref)
            assert archive.front_size == int(non_dominated_mask(prefix).sum())
        # one-shot stats agree with the incremental ones
        assert ParetoArchive.stats_of(objs, ref) == (
            archive.front_size,
            archive.hypervolume,
        )
