"""Tests for the transformations: tiling, collapsing, interchange, unroll,
parallelize, skeletons.  Semantic preservation is checked by executing the
transformed IR against the kernel references."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import extract_regions
from repro.frontend import get_kernel
from repro.ir import Block, For, Min, to_source
from repro.ir.builder import assign, loop, var, func, array, param
from repro.ir.interp import run_function
from repro.ir.types import I64
from repro.ir.visitors import collect, loop_nest, loop_vars
from repro.transform import (
    can_interchange,
    collapse,
    default_skeleton,
    interchange,
    parallelize,
    tile,
    unroll,
)
from repro.transform.skeleton import Parameter
from repro.transform.tiling import tile_var


def run_on_mm(nest_transform, rng, n=17):
    """Apply a nest transformation to mm and execute both versions."""
    k = get_kernel("mm")
    region = extract_regions(k.function)[0]
    new_nest = nest_transform(region.nest)
    from repro.transform import replace_at_path

    fn2 = replace_at_path(k.function, region.path, new_nest)
    sizes = {"N": n}
    inputs = k.make_inputs(sizes, rng)
    ref = k.reference(inputs, sizes)
    out = run_function(fn2, inputs, sizes)
    return out, ref


class TestTiling:
    def test_structure(self, mm_region):
        tiled = tile(mm_region.nest, {"i": 4, "j": 5, "k": 6})
        nest = loop_nest(tiled)
        assert [lp.var for lp in nest] == ["i_t", "j_t", "k_t", "i", "j", "k"]
        assert nest[0].annotation("tile_loop") == "i"
        assert nest[3].annotation("point_loop") == "i"
        # point loops bounded by min()
        assert isinstance(nest[3].upper, Min)

    def test_semantics_preserved(self, rng):
        out, ref = run_on_mm(lambda nest: tile(nest, {"i": 4, "j": 7, "k": 3}), rng)
        assert np.allclose(out["C"], ref["C"])

    def test_non_dividing_tile_sizes(self, rng):
        # 17 is prime: every tile size produces ragged edge tiles
        out, ref = run_on_mm(lambda nest: tile(nest, {"i": 5, "j": 11, "k": 13}), rng)
        assert np.allclose(out["C"], ref["C"])

    def test_tile_size_one(self, rng):
        out, ref = run_on_mm(lambda nest: tile(nest, {"i": 1, "j": 1, "k": 1}), rng, n=6)
        assert np.allclose(out["C"], ref["C"])

    def test_partial_band(self, rng):
        out, ref = run_on_mm(lambda nest: tile(nest, {"i": 4, "j": 4}), rng)
        assert np.allclose(out["C"], ref["C"])

    def test_symbolic_tile_size(self, mm_region):
        tiled = tile(mm_region.nest, {"i": "TI", "j": 8, "k": 8})
        assert "TI" in to_source(tiled)

    def test_non_prefix_subset_semantics(self, rng):
        """Tiling a non-prefix subset hoists those tile loops above the
        untiled ones (legal here: mm's band is fully permutable) and must
        preserve semantics."""
        out, ref = run_on_mm(lambda nest: tile(nest, {"j": 4, "k": 4}), rng)
        assert np.allclose(out["C"], ref["C"])

    def test_reduction_only_tiling_structure(self):
        """n-body style: tiling only j of an (i, j) nest produces
        j_t { i { j } } — the tile loop hoisted, original order inside."""
        k = get_kernel("nbody")
        from repro.analysis import extract_regions

        region = extract_regions(k.function)[0]
        tiled = tile(region.nest, {"j": 64})
        assert loop_vars(tiled) == ["j_t", "i", "j"]

    def test_reduction_only_tiling_semantics(self, rng):
        k = get_kernel("nbody")
        from repro.analysis import extract_regions
        from repro.transform import replace_at_path

        region = extract_regions(k.function)[0]
        fn2 = replace_at_path(k.function, region.path, tile(region.nest, {"j": 5}))
        inputs = k.make_inputs(k.test_size, rng)
        out = run_function(fn2, inputs, k.test_size)
        ref = k.reference(inputs, k.test_size)
        for name in k.output_arrays:
            assert np.allclose(out[name], ref[name])

    def test_rejects_unknown_loop(self, mm_region):
        with pytest.raises(ValueError):
            tile(mm_region.nest, {"z": 4})

    def test_rejects_nonpositive(self, mm_region):
        with pytest.raises(ValueError):
            tile(mm_region.nest, {"i": 0})

    def test_rejects_empty(self, mm_region):
        with pytest.raises(ValueError):
            tile(mm_region.nest, {})

    @settings(max_examples=20, deadline=None)
    @given(
        ti=st.integers(min_value=1, max_value=20),
        tj=st.integers(min_value=1, max_value=20),
        tk=st.integers(min_value=1, max_value=20),
    )
    def test_property_tiling_preserves_mm(self, ti, tj, tk):
        rng = np.random.default_rng(99)
        out, ref = run_on_mm(lambda nest: tile(nest, {"i": ti, "j": tj, "k": tk}), rng, n=9)
        assert np.allclose(out["C"], ref["C"])


class TestCollapse:
    def test_structure(self, mm_region):
        tiled = tile(mm_region.nest, {"i": 4, "j": 5, "k": 6})
        coll = collapse(tiled, 2)
        assert coll.annotation("collapsed") == ("i_t", "j_t")
        # remaining nest: cidx, k_t, i, j, k
        assert loop_vars(coll)[0] == "cidx"

    def test_semantics_preserved(self, rng):
        out, ref = run_on_mm(
            lambda nest: collapse(tile(nest, {"i": 4, "j": 7, "k": 3}), 2), rng
        )
        assert np.allclose(out["C"], ref["C"])

    def test_collapse_three(self, rng):
        out, ref = run_on_mm(
            lambda nest: collapse(tile(nest, {"i": 4, "j": 7, "k": 3}), 3), rng
        )
        assert np.allclose(out["C"], ref["C"])

    def test_trip_count_product(self):
        # collapse of plain rectangular loops: trip count must multiply
        i, j = var("i"), var("j")
        body = assign(var("A")[0], var("A")[0] + 1.0)
        nest = loop("i", 0, 6, loop("j", 0, 4, body))
        coll = collapse(nest, 2)
        fn = func("f", [array("A", 1)], coll)
        out = run_function(fn, {"A": np.zeros(1)})
        assert out["A"][0] == 24

    def test_shifted_lower_bounds(self):
        i, j = var("i"), var("j")
        body = assign(var("A")[i, j], 1.0)
        nest = loop("i", 2, 5, loop("j", 1, 4, body))
        coll = collapse(nest, 2)
        fn = func("f", [array("A", 5, 4)], coll)
        out = run_function(fn, {"A": np.zeros((5, 4))})
        assert out["A"][2:5, 1:4].sum() == 9
        assert out["A"].sum() == 9

    def test_rejects_count_one(self, mm_region):
        with pytest.raises(ValueError):
            collapse(mm_region.nest, 1)

    def test_rejects_too_deep(self):
        nest = loop("i", 0, 4, assign(var("A")[var("i")], 0.0))
        with pytest.raises(ValueError):
            collapse(nest, 2)

    def test_rejects_non_rectangular(self):
        i, j = var("i"), var("j")
        body = assign(var("A")[i, j], 1.0)
        nest = loop("i", 0, 4, loop("j", 0, i + 1, body))  # triangular
        with pytest.raises(ValueError):
            collapse(nest, 2)


class TestInterchange:
    def test_swap_structure(self, mm_region):
        out = interchange(mm_region.nest, "i", "k")
        assert loop_vars(out) == ["k", "j", "i"]

    def test_semantics_preserved(self, rng):
        out, ref = run_on_mm(lambda nest: interchange(nest, "j", "k"), rng)
        assert np.allclose(out["C"], ref["C"])

    def test_legality_mm(self, mm_region):
        from repro.analysis import analyze_dependences

        deps = analyze_dependences(mm_region.nest)
        assert can_interchange(deps, ["i", "j", "k"], "i", "j")
        assert can_interchange(deps, ["i", "j", "k"], "j", "k")

    def test_legality_blocked_by_wavefront(self):
        from repro.analysis import analyze_dependences

        i, j = var("i"), var("j")
        body = assign(var("A")[i, j], var("A")[i - 1, j + 1] + 0.0)
        nest = loop("i", 1, "N", loop("j", 0, var("N") - 1, body))
        deps = analyze_dependences(nest)
        assert not can_interchange(deps, ["i", "j"], "i", "j")

    def test_rejects_unknown_var(self, mm_region):
        with pytest.raises(ValueError):
            interchange(mm_region.nest, "i", "zz")


class TestUnroll:
    def test_factor_one_identity(self, mm_region):
        inner = loop_nest(mm_region.nest)[-1]
        assert unroll(inner, 1) is inner

    def test_structure(self):
        nest = loop("i", 0, 10, assign(var("A")[var("i")], 1.0))
        out = unroll(nest, 4)
        assert isinstance(out, Block)
        main, rem = out.stmts
        assert isinstance(main, For) and main.annotation("unrolled") == 4
        assert isinstance(rem, For) and rem.annotation("unroll_remainder") == 4

    def test_semantics_with_remainder(self):
        nest = loop("i", 0, 10, assign(var("A")[var("i")], var("A")[var("i")] + 1.0))
        fn_plain = func("f", [array("A", 10)], nest)
        fn_unrolled = func("f", [array("A", 10)], unroll(nest, 3))
        a0 = run_function(fn_plain, {"A": np.zeros(10)})["A"]
        a1 = run_function(fn_unrolled, {"A": np.zeros(10)})["A"]
        assert np.array_equal(a0, a1)

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=20))
    @settings(max_examples=25, deadline=None)
    def test_property_unroll_any_factor_trip(self, factor, trip):
        nest = loop("i", 0, trip, assign(var("A")[0], var("A")[0] + 1.0))
        fn = func("f", [array("A", 1)], unroll(nest, factor))
        out = run_function(fn, {"A": np.zeros(1)})
        assert out["A"][0] == trip

    def test_rejects_bad_factor(self):
        nest = loop("i", 0, 10, assign(var("A")[var("i")], 1.0))
        with pytest.raises(ValueError):
            unroll(nest, 0)


class TestParallelize:
    def test_marks_parallel(self, mm_region):
        out = parallelize(mm_region.nest, 8)
        assert out.parallel and out.annotation("num_threads") == 8

    def test_rejects_bad_threads(self, mm_region):
        with pytest.raises(ValueError):
            parallelize(mm_region.nest, 0)


class TestParameter:
    def test_clamp_int(self):
        p = Parameter("t", 1, 10)
        assert p.clamp(-5) == 1 and p.clamp(99) == 10 and p.clamp(5.4) == 5

    def test_clamp_choice(self):
        p = Parameter("threads", 1, 40, choices=(1, 5, 10, 20, 40))
        assert p.clamp(7) == 5
        assert p.clamp(8) == 10
        assert p.clamp(100) == 40

    def test_validates_bounds(self):
        with pytest.raises(ValueError):
            Parameter("x", 5, 2)

    def test_validates_choices_sorted(self):
        with pytest.raises(ValueError):
            Parameter("x", 1, 10, choices=(3, 1))


class TestSkeleton:
    def test_default_mm(self, mm_region):
        sk = default_skeleton(mm_region, {"N": 1400}, 40)
        names = sk.parameter_names
        assert names == ("tile_i", "tile_j", "tile_k", "threads")
        assert sk.parameter("tile_i").hi == 700  # N/2 per the paper
        assert sk.parameter("threads").hi == 40
        assert sk.collapse_outer == 2

    def test_instantiate_metadata(self, mm_region):
        sk = default_skeleton(mm_region, {"N": 100}, 8)
        tr = sk.instantiate({"tile_i": 10, "tile_j": 20, "tile_k": 5, "threads": 4})
        assert tr.num_threads == 4
        assert dict(tr.tile_sizes) == {"i": 10, "j": 20, "k": 5}
        assert tr.collapsed == 2
        assert tr.nest.parallel

    def test_instantiate_executes_correctly(self, kernel, rng):
        """Full skeleton instantiation preserves semantics for all kernels."""
        region = extract_regions(kernel.function)[0]
        sk = default_skeleton(region, kernel.test_size, 4)
        values = {p.name: max(p.lo, min(p.hi, 3)) for p in sk.parameters}
        fn2 = sk.instantiate(values).apply()
        inputs = kernel.make_inputs(kernel.test_size, rng)
        out = run_function(fn2, inputs, kernel.test_size)
        ref = kernel.reference(inputs, kernel.test_size)
        for name in kernel.output_arrays:
            assert np.allclose(out[name], ref[name]), kernel.name

    def test_validate_rejects_missing(self, mm_region):
        sk = default_skeleton(mm_region, {"N": 100}, 8)
        with pytest.raises(KeyError):
            sk.instantiate({"tile_i": 10})

    def test_validate_rejects_out_of_range(self, mm_region):
        sk = default_skeleton(mm_region, {"N": 100}, 8)
        with pytest.raises(ValueError):
            sk.instantiate({"tile_i": 999, "tile_j": 1, "tile_k": 1, "threads": 1})

    def test_unroll_skeleton(self, mm_region, rng):
        sk = default_skeleton(mm_region, {"N": 20}, 4, with_unroll=True)
        tr = sk.instantiate(
            {"tile_i": 4, "tile_j": 4, "tile_k": 4, "threads": 2, "unroll": 4}
        )
        assert tr.unroll_factor == 4
        k = get_kernel("mm")
        sizes = {"N": 20}
        inputs = k.make_inputs(sizes, rng)
        out = run_function(tr.apply(), inputs, sizes)
        ref = k.reference(inputs, sizes)
        assert np.allclose(out["C"], ref["C"])

    def test_thread_choices(self, mm_region):
        sk = default_skeleton(mm_region, {"N": 100}, 40, thread_choices=(1, 5, 10))
        assert sk.parameter("threads").choices == (1, 5, 10)
