"""Tests for native (really-executed) versions with worksharing threads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import extract_regions
from repro.backend.pygen import compile_worksharing
from repro.evaluation.native import NativeExecutor
from repro.frontend import get_kernel
from repro.transform import default_skeleton


def build_version(kernel_name: str, threads: int, band=None):
    k = get_kernel(kernel_name)
    region = extract_regions(k.function)[0]
    sk = default_skeleton(region, k.test_size, max_threads=8, band=band)
    values = {p.name: max(p.lo, min(p.hi, 4)) for p in sk.parameters}
    values["threads"] = threads
    return k, sk.instantiate(values).apply()


class TestCompileWorksharing:
    def test_bounds_and_chunk(self):
        k, fn = build_version("mm", 4)
        bounds, chunk = compile_worksharing(fn)
        rng = np.random.default_rng(0)
        inputs = k.make_inputs(k.test_size, rng)
        lo, hi, step = bounds(inputs, k.test_size)
        assert lo == 0 and hi > 0 and step == 1

    def test_rejects_sequential_function(self):
        k = get_kernel("mm")
        with pytest.raises(ValueError):
            compile_worksharing(k.function)

    def test_rejects_nested_parallel_loop(self):
        # n-body's parallel i sits under the hoisted j tile loop
        k, fn = build_version("nbody", 4, band=("j",))
        with pytest.raises(ValueError):
            compile_worksharing(fn)

    def test_rejects_parallel_loop_under_sweep(self):
        # jacobi-2d's parallel spatial loop sits inside the sequential time
        # loop: chunking it without per-step barriers would race on the
        # halo, so the executor refuses
        k, fn = build_version("jacobi2d", 4)
        with pytest.raises(ValueError):
            compile_worksharing(fn)


class TestNativeExecutor:
    @pytest.mark.parametrize("threads", [1, 2, 4, 7])
    def test_mm_chunked_execution_correct(self, threads, rng):
        k, fn = build_version("mm", threads)
        ex = NativeExecutor(fn, threads=threads)
        inputs = k.make_inputs(k.test_size, rng)
        arrs = {n: v.copy() for n, v in inputs.items()}
        wall = ex.run(arrs, k.test_size)
        assert wall > 0
        ref = k.reference(inputs, k.test_size)
        assert np.allclose(arrs["C"], ref["C"])

    @pytest.mark.parametrize("kernel_name", ["stencil3d", "dsyrk"])
    def test_other_kernels_chunked(self, kernel_name, rng):
        k, fn = build_version(kernel_name, 3)
        ex = NativeExecutor(fn, threads=3)
        inputs = k.make_inputs(k.test_size, rng)
        arrs = {n: v.copy() for n, v in inputs.items()}
        ex.run(arrs, k.test_size)
        ref = k.reference(inputs, k.test_size)
        for name in k.output_arrays:
            assert np.allclose(arrs[name], ref[name]), kernel_name

    def test_sequential_path(self, rng):
        k, fn = build_version("mm", 1)
        ex = NativeExecutor(fn, threads=1)
        inputs = k.make_inputs(k.test_size, rng)
        arrs = {n: v.copy() for n, v in inputs.items()}
        ex.run(arrs, k.test_size)
        ref = k.reference(inputs, k.test_size)
        assert np.allclose(arrs["C"], ref["C"])

    def test_measure_median_of_k(self, rng):
        from repro.evaluation.measurements import MeasurementProtocol

        k, fn = build_version("mm", 2)
        ex = NativeExecutor(fn, threads=2)
        inputs = k.make_inputs(k.test_size, rng)
        m = ex.measure(inputs, k.test_size, MeasurementProtocol(repetitions=3))
        assert m.repetitions == 3 and m.value > 0

    def test_measure_does_not_mutate_inputs(self, rng):
        k, fn = build_version("mm", 2)
        ex = NativeExecutor(fn, threads=2)
        inputs = k.make_inputs(k.test_size, rng)
        before = inputs["C"].copy()
        ex.measure(inputs, k.test_size)
        assert np.array_equal(inputs["C"], before)

    def test_more_threads_than_chunks(self, rng):
        """Thread count beyond the worksharing iterations must not break."""
        k, fn = build_version("mm", 7)
        ex = NativeExecutor(fn, threads=7)
        sizes = {"N": 6}
        inputs = k.make_inputs(sizes, rng)
        arrs = {n: v.copy() for n, v in inputs.items()}
        ex.run(arrs, sizes)
        ref = k.reference(inputs, sizes)
        assert np.allclose(arrs["C"], ref["C"])

    def test_rejects_bad_threads(self):
        _, fn = build_version("mm", 2)
        with pytest.raises(ValueError):
            NativeExecutor(fn, threads=0)
