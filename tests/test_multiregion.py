"""Tests for simultaneous multi-region tuning (paper §III-A: one program
execution measures all tuned regions at once)."""

from __future__ import annotations

import pytest

from repro.driver.multiregion import MultiRegionResult, MultiRegionTuner
from repro.frontend import get_kernel
from repro.frontend.parser import parse_function
from repro.machine import WESTMERE
from repro.optimizer.gde3 import GDE3Settings
from repro.optimizer.rsgde3 import RSGDE3Settings

FAST = RSGDE3Settings(
    gde3=GDE3Settings(population_size=12), max_generations=10, patience=2
)

#: two textually identical nests over the same arrays — the regions' cost
#: models share one fingerprint, so the scheduler's cross-region dedup
#: serves one region's trials from the other's computations
TWIN_NESTS = """
void twins(int N, double A[N][N], double B[N][N]) {
    for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++)
            B[i][j] += 2.0 * A[i][j];
    for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++)
            B[i][j] += 2.0 * A[i][j];
}
"""


def jacobi_tuner(**kw):
    k = get_kernel("jacobi2d")
    kw.setdefault("sizes", {"N": 500, "T": 5})
    return MultiRegionTuner(
        function=k.function, machine=WESTMERE, settings=FAST, seed=7, **kw
    )


def fronts(res: MultiRegionResult):
    return [tuple(c.objectives for c in r.front) for r in res.results]


@pytest.fixture(scope="module")
def jacobi_result():
    k = get_kernel("jacobi2d")
    tuner = MultiRegionTuner(
        function=k.function,
        sizes={"N": 1000, "T": 10},
        machine=WESTMERE,
        settings=FAST,
        seed=3,
    )
    return tuner.run(seed=1)


class TestMultiRegionTuner:
    def test_one_result_per_region(self, jacobi_result):
        assert len(jacobi_result.results) == 2

    def test_each_region_has_front(self, jacobi_result):
        for r in jacobi_result.results:
            assert r.size >= 1
            assert r.evaluations > 0

    def test_program_runs_amortized(self, jacobi_result):
        """The whole point: program runs << sum of region evaluations."""
        total = jacobi_result.total_region_evaluations
        assert jacobi_result.program_runs < total
        assert jacobi_result.sharing_factor > 1.2

    def test_program_runs_lower_bound(self, jacobi_result):
        """Every region evaluation needed *some* program run: the busiest
        region's evaluation count bounds the runs from below."""
        busiest = max(r.evaluations for r in jacobi_result.results)
        assert jacobi_result.program_runs >= busiest * 0.9

    def test_deterministic(self):
        k = get_kernel("jacobi2d")

        def run():
            tuner = MultiRegionTuner(
                function=k.function,
                sizes={"N": 500, "T": 5},
                machine=WESTMERE,
                settings=FAST,
                seed=7,
            )
            return tuner.run(seed=2)

        r1, r2 = run(), run()
        assert r1.program_runs == r2.program_runs
        for a, b in zip(r1.results, r2.results):
            assert [c.objectives for c in a.front] == [c.objectives for c in b.front]

    def test_rejects_function_without_regions(self):
        from repro.ir.builder import array, assign, func, var

        fn = func("flat", [array("A", 4)], assign(var("A")[0], 1.0))
        tuner = MultiRegionTuner(function=fn, sizes={}, machine=WESTMERE, settings=FAST)
        with pytest.raises(ValueError):
            tuner.run()

    def test_single_region_program_matches_plain_shape(self):
        """A single-region program degenerates to ordinary tuning: the
        program-run count tracks that region's evaluations."""
        k = get_kernel("mm")
        tuner = MultiRegionTuner(
            function=k.function,
            sizes={"N": 400},
            machine=WESTMERE,
            settings=FAST,
            seed=5,
        )
        res = tuner.run(seed=3)
        assert len(res.results) == 1
        assert res.program_runs >= res.results[0].evaluations


class TestCrossRegionScheduler:
    """The fused scheduler must be bit-identical to the serial lock-step
    reference for any worker count, chunk size and lag setting."""

    @pytest.fixture(scope="class")
    def lockstep(self):
        return jacobi_tuner().run_lockstep(seed=2)

    @pytest.mark.parametrize("workers", [1, 4, 8])
    @pytest.mark.parametrize("chunk_size", [1, None])
    def test_bit_identity_across_workers_and_chunks(
        self, lockstep, workers, chunk_size
    ):
        got = jacobi_tuner(workers=workers, chunk_size=chunk_size).run(seed=2)
        assert fronts(got) == fronts(lockstep)
        assert [r.evaluations for r in got.results] == [
            r.evaluations for r in lockstep.results
        ]
        assert got.program_runs == lockstep.program_runs
        assert got.generations == lockstep.generations

    @pytest.mark.parametrize("workers", [1, 8])
    def test_pipelined_equals_lockstep(self, lockstep, workers):
        """Bounded-lag pipelining (lag ≤ 1 generation) changes only the
        schedule, never the results: regions are data-independent and
        measurement noise is hash-derived per key."""
        got = jacobi_tuner(workers=workers, pipeline=True).run(seed=2)
        assert fronts(got) == fronts(lockstep)
        assert [r.evaluations for r in got.results] == [
            r.evaluations for r in lockstep.results
        ]
        assert got.program_runs == lockstep.program_runs

    def test_convergence_records_match_lockstep(self, lockstep):
        got = jacobi_tuner(workers=8, pipeline=True).run(seed=2)
        for a, b in zip(got.results, lockstep.results):
            assert a.convergence == b.convergence
            assert a.hv_history == b.hv_history

    def test_engine_stats_aggregated(self):
        res = jacobi_tuner(workers=4).run(seed=2)
        s = res.engine_stats
        assert s is not None
        assert s.configs == (
            s.dispatched + s.cache_hits + s.deduped + s.disk_hits + s.shared_hits
        )
        # every region's every generation went through the shared session
        assert s.batches == sum(len(r.convergence) for r in res.results)

    def test_summary_renders(self):
        res = jacobi_tuner(workers=2).run(seed=2)
        text = res.summary()
        assert "program runs" in text
        assert "sharing" in text

    def test_process_backend_parity(self, lockstep):
        got = jacobi_tuner(workers=2, backend="process").run(seed=2)
        assert fronts(got) == fronts(lockstep)
        assert got.program_runs == lockstep.program_runs


class TestCrossRegionDedup:
    """Two identical nests ⇒ identical cost-model fingerprints ⇒ one
    dispatch serves both regions (each still pays its own ledger E)."""

    @pytest.fixture(scope="class")
    def twin_fn(self):
        return parse_function(TWIN_NESTS)

    def make(self, twin_fn, **kw):
        return MultiRegionTuner(
            function=twin_fn,
            sizes={"N": 600},
            machine=WESTMERE,
            settings=FAST,
            seed=5,
            **kw,
        )

    def test_fingerprints_equal(self, twin_fn):
        tuner = self.make(twin_fn)
        problems = tuner._build_problems()
        assert len(problems) == 2
        assert problems[0].target.fingerprint() == problems[1].target.fingerprint()

    def test_shared_hits_and_exact_ledger(self, twin_fn):
        ref = self.make(twin_fn).run_lockstep(seed=4)
        got = self.make(twin_fn, workers=4).run(seed=4)
        # sharing never distorts the ledger: per-region E, program_runs
        # and fronts are exactly the lock-step values
        assert fronts(got) == fronts(ref)
        assert [r.evaluations for r in got.results] == [
            r.evaluations for r in ref.results
        ]
        assert got.program_runs == ref.program_runs
        stats = got.engine_stats
        assert stats.shared_hits > 0
        assert stats.configs == (
            stats.dispatched
            + stats.cache_hits
            + stats.deduped
            + stats.disk_hits
            + stats.shared_hits
        )
        # what one region shared, the other did not dispatch
        assert stats.dispatched < ref.engine_stats.dispatched

    def test_program_runs_formula(self, twin_fn):
        """program_runs = NP × (1 + generations): the paper's amortized
        cost — one program execution per zipped trial row."""
        got = self.make(twin_fn, workers=4).run(seed=4)
        np_size = FAST.gde3.population_size
        assert got.program_runs == np_size * (1 + got.generations)
