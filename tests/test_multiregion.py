"""Tests for simultaneous multi-region tuning (paper §III-A: one program
execution measures all tuned regions at once)."""

from __future__ import annotations

import pytest

from repro.driver.multiregion import MultiRegionResult, MultiRegionTuner
from repro.frontend import get_kernel
from repro.machine import WESTMERE
from repro.optimizer.gde3 import GDE3Settings
from repro.optimizer.rsgde3 import RSGDE3Settings

FAST = RSGDE3Settings(
    gde3=GDE3Settings(population_size=12), max_generations=10, patience=2
)


@pytest.fixture(scope="module")
def jacobi_result():
    k = get_kernel("jacobi2d")
    tuner = MultiRegionTuner(
        function=k.function,
        sizes={"N": 1000, "T": 10},
        machine=WESTMERE,
        settings=FAST,
        seed=3,
    )
    return tuner.run(seed=1)


class TestMultiRegionTuner:
    def test_one_result_per_region(self, jacobi_result):
        assert len(jacobi_result.results) == 2

    def test_each_region_has_front(self, jacobi_result):
        for r in jacobi_result.results:
            assert r.size >= 1
            assert r.evaluations > 0

    def test_program_runs_amortized(self, jacobi_result):
        """The whole point: program runs << sum of region evaluations."""
        total = jacobi_result.total_region_evaluations
        assert jacobi_result.program_runs < total
        assert jacobi_result.sharing_factor > 1.2

    def test_program_runs_lower_bound(self, jacobi_result):
        """Every region evaluation needed *some* program run: the busiest
        region's evaluation count bounds the runs from below."""
        busiest = max(r.evaluations for r in jacobi_result.results)
        assert jacobi_result.program_runs >= busiest * 0.9

    def test_deterministic(self):
        k = get_kernel("jacobi2d")

        def run():
            tuner = MultiRegionTuner(
                function=k.function,
                sizes={"N": 500, "T": 5},
                machine=WESTMERE,
                settings=FAST,
                seed=7,
            )
            return tuner.run(seed=2)

        r1, r2 = run(), run()
        assert r1.program_runs == r2.program_runs
        for a, b in zip(r1.results, r2.results):
            assert [c.objectives for c in a.front] == [c.objectives for c in b.front]

    def test_rejects_function_without_regions(self):
        from repro.ir.builder import array, assign, func, var

        fn = func("flat", [array("A", 4)], assign(var("A")[0], 1.0))
        tuner = MultiRegionTuner(function=fn, sizes={}, machine=WESTMERE, settings=FAST)
        with pytest.raises(ValueError):
            tuner.run()

    def test_single_region_program_matches_plain_shape(self):
        """A single-region program degenerates to ordinary tuning: the
        program-run count tracks that region's evaluations."""
        k = get_kernel("mm")
        tuner = MultiRegionTuner(
            function=k.function,
            sizes={"N": 400},
            machine=WESTMERE,
            settings=FAST,
            seed=5,
        )
        res = tuner.run(seed=3)
        assert len(res.results) == 1
        assert res.program_runs >= res.results[0].evaluations
