"""Tests for the persistent cross-run measurement cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation import (
    EvaluationEngine,
    MeasurementDiskCache,
    SimulatedTarget,
)
from repro.experiments.setups import make_setup
from repro.machine.model import BARCELONA, WESTMERE


@pytest.fixture(scope="module")
def mm_model():
    return make_setup("mm", WESTMERE).model


def _target(model, tmp_root=None, seed=7, schema=None, **kw):
    cache = None
    if tmp_root is not None:
        cache = (
            MeasurementDiskCache(tmp_root)
            if schema is None
            else MeasurementDiskCache(tmp_root, schema_version=schema)
        )
    return SimulatedTarget(model, seed=seed, disk_cache=cache, **kw)


def _configs(target, n=60, seed=1):
    rng = np.random.default_rng(seed)
    return [
        (
            {v: int(rng.integers(1, 300)) for v in target.band},
            int(rng.choice([1, 2, 4, 8])),
        )
        for _ in range(n)
    ]


class TestRoundTrip:
    def test_two_fresh_targets_share_measurements(self, mm_model, tmp_path):
        """The acceptance scenario: a second fresh target (a new 'process
        run') serves every configuration from disk, bit-identically, with
        zero model evaluations dispatched and E unchanged."""
        configs = _configs(_target(mm_model))

        cold = _target(mm_model, tmp_path)
        e_cold = EvaluationEngine(cold, max_workers=4)
        r_cold = e_cold.evaluate_batch(configs)
        assert e_cold.stats.disk_hits == 0
        assert e_cold.stats.dispatched > 0

        warm = _target(mm_model, tmp_path)
        e_warm = EvaluationEngine(warm, max_workers=4)
        r_warm = e_warm.evaluate_batch(configs)
        assert r_warm.objectives == r_cold.objectives
        assert e_warm.stats.dispatched == 0
        assert e_warm.stats.disk_hits == e_cold.stats.dispatched
        # E is identical cold vs warm — disk hits still count as
        # evaluations the optimizer asked for
        assert warm.evaluations == cold.evaluations
        s = e_warm.stats
        assert s.configs == s.dispatched + s.cache_hits + s.deduped + s.disk_hits

    def test_matches_uncached_target_exactly(self, mm_model, tmp_path):
        configs = _configs(_target(mm_model))
        plain = _target(mm_model)
        ref = EvaluationEngine(plain).evaluate_batch(configs)

        _target(mm_model, tmp_path).evaluate_batch(
            np.array(
                [[t[v] for v in plain.band] for t, _ in configs], dtype=np.int64
            ),
            np.array([thr for _, thr in configs], dtype=np.int64),
        )
        warm = _target(mm_model, tmp_path)
        got = EvaluationEngine(warm, max_workers=2).evaluate_batch(configs)
        assert got.objectives == ref.objectives

    def test_scalar_evaluate_uses_disk(self, mm_model, tmp_path):
        t1 = _target(mm_model, tmp_path)
        obj1 = t1.evaluate({"i": 64, "j": 64, "k": 8}, 4)
        t2 = _target(mm_model, tmp_path)
        obj2 = t2.evaluate({"i": 64, "j": 64, "k": 8}, 4)
        assert obj1 == obj2
        assert t2.disk_cache.hits == 1
        assert t2.evaluations == 1

    def test_samples_round_trip_exactly(self, mm_model, tmp_path):
        t1 = _target(mm_model, tmp_path)
        m1 = t1.measurement({"i": 50, "j": 50, "k": 50}, 8)
        t2 = _target(mm_model, tmp_path)
        m2 = t2.measurement({"i": 50, "j": 50, "k": 50}, 8)
        assert m1 == m2  # value and every sample, bit-identical


class TestKeying:
    def test_schema_version_invalidates(self, mm_model, tmp_path):
        configs = _configs(_target(mm_model), n=20)
        EvaluationEngine(_target(mm_model, tmp_path)).evaluate_batch(configs)
        bumped = _target(mm_model, tmp_path, schema=2)
        e = EvaluationEngine(bumped)
        e.evaluate_batch(configs)
        assert e.stats.disk_hits == 0
        assert e.stats.dispatched == len(
            {bumped.config_key(t, thr) for t, thr in configs}
        )

    def test_seed_separates_shards(self, mm_model, tmp_path):
        t1 = _target(mm_model, tmp_path, seed=7)
        t1.evaluate({"i": 32, "j": 32, "k": 32}, 4)
        t2 = _target(mm_model, tmp_path, seed=8)
        t2.evaluate({"i": 32, "j": 32, "k": 32}, 4)
        assert t2.disk_cache.hits == 0  # different noise seed, new shard

    def test_noise_and_energy_separate_shards(self, mm_model, tmp_path):
        base = _target(mm_model, tmp_path)
        base.evaluate({"i": 32, "j": 32, "k": 32}, 4)
        for kw in ({"noise": 0.05}, {"measure_energy": True}):
            other = _target(mm_model, tmp_path, **kw)
            other.evaluate({"i": 32, "j": 32, "k": 32}, 4)
            assert other.disk_cache.hits == 0, kw

    def test_machine_separates_fingerprints(self, mm_model):
        other = make_setup("mm", BARCELONA).model
        assert mm_model.fingerprint() != other.fingerprint()

    def test_model_fingerprint_is_stable(self, mm_model):
        # rebuilt model of the same setup → same fingerprint (this is what
        # lets a second process find the first one's shard)
        rebuilt = make_setup("mm", WESTMERE).model
        assert mm_model.fingerprint() == rebuilt.fingerprint()

    def test_target_fingerprint_depends_on_inputs(self, mm_model):
        base = SimulatedTarget(mm_model, seed=7)
        assert base.fingerprint() == SimulatedTarget(mm_model, seed=7).fingerprint()
        assert base.fingerprint() != SimulatedTarget(mm_model, seed=8).fingerprint()
        assert (
            base.fingerprint()
            != SimulatedTarget(mm_model, seed=7, noise=0.1).fingerprint()
        )


class TestRobustness:
    def test_corrupt_lines_are_skipped(self, mm_model, tmp_path):
        t1 = _target(mm_model, tmp_path)
        t1.evaluate({"i": 32, "j": 32, "k": 32}, 4)
        t1.evaluate({"i": 64, "j": 64, "k": 64}, 8)
        (shard_path,) = list(tmp_path.glob("*.jsonl"))
        with open(shard_path, "a", encoding="utf-8") as fh:
            fh.write("{truncated\n")
            fh.write('{"k": "not-a-list", "v": 1.0, "s": []}\n')
        t2 = _target(mm_model, tmp_path)
        assert t2.evaluate({"i": 32, "j": 32, "k": 32}, 4) == t1.lookup(
            t1.config_key({"i": 32, "j": 32, "k": 32}, 4)
        )
        assert t2.disk_cache.hits == 1

    def test_missing_directory_is_fine(self, mm_model, tmp_path):
        t = _target(mm_model, tmp_path / "does" / "not" / "exist" / "yet")
        t.evaluate({"i": 32, "j": 32, "k": 32}, 4)
        assert t.disk_cache.stores == 1

    def test_store_is_idempotent(self, mm_model, tmp_path):
        cache = MeasurementDiskCache(tmp_path)
        t = SimulatedTarget(mm_model, seed=7, disk_cache=cache)
        t.evaluate({"i": 32, "j": 32, "k": 32}, 4)
        key = t.config_key({"i": 32, "j": 32, "k": 32}, 4)
        item = (key, t.lookup(key), t.measurement({"i": 32, "j": 32, "k": 32}, 4))
        assert t.disk_store_many([item]) == 0  # already present

    def test_energy_round_trips(self, mm_model, tmp_path):
        t1 = _target(mm_model, tmp_path, measure_energy=True)
        obj1 = t1.evaluate({"i": 48, "j": 48, "k": 48}, 8)
        assert obj1.energy is not None
        t2 = _target(mm_model, tmp_path, measure_energy=True)
        obj2 = t2.evaluate({"i": 48, "j": 48, "k": 48}, 8)
        assert obj2 == obj1 and obj2.energy == obj1.energy


class TestPickling:
    def test_target_pickles_without_ledger(self, mm_model, tmp_path):
        import pickle

        t = _target(mm_model, tmp_path)
        t.evaluate({"i": 32, "j": 32, "k": 32}, 4)
        clone = pickle.loads(pickle.dumps(t))
        assert clone.evaluations == 0
        assert clone.disk_cache is None
        assert clone.lookup(t.config_key({"i": 32, "j": 32, "k": 32}, 4)) is None
        # the pure measurement function survives intact
        key = t.config_key({"i": 32, "j": 32, "k": 32}, 4)
        assert clone.compute_keys([key]) == t.compute_keys([key])
