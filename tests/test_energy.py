"""Tests for the energy objective: the cost-model energy term, tri-objective
tuning, 3-D hypervolume and the energy-aware runtime policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import extract_regions
from repro.backend.meta import VersionMeta
from repro.evaluation import RegionCostModel, SimulatedTarget
from repro.frontend import get_kernel
from repro.machine import WESTMERE
from repro.optimizer import RSGDE3, TuningProblem, hypervolume
from repro.optimizer.gde3 import GDE3Settings
from repro.optimizer.rsgde3 import RSGDE3Settings
from repro.runtime import (
    EnergyCapPolicy,
    GreenestPolicy,
    Version,
    VersionTable,
    policy_by_name,
)
from repro.transform import default_skeleton


@pytest.fixture(scope="module")
def mm_energy_model():
    k = get_kernel("mm")
    region = extract_regions(k.function)[0]
    return RegionCostModel(region, {"N": 1400}, WESTMERE)


class TestEnergyModel:
    def test_positive(self, mm_energy_model):
        assert mm_energy_model.energy({"i": 64, "j": 128, "k": 16}, 10) > 0

    def test_energy_time_power_consistency(self, mm_energy_model):
        """Energy ≈ time × power for compute-dominated configs (DRAM term
        is small for cache-friendly tiles)."""
        tiles = {"i": 64, "j": 128, "k": 16}
        t = mm_energy_model.time(tiles, 10)
        e = mm_energy_model.energy(tiles, 10)
        power = e / t
        # one socket active + 10 cores: 40 + 120 W plus a little DRAM
        assert 150 < power < 220

    def test_energy_minimum_interior(self, mm_energy_model):
        """Energy has an interior optimum in the thread count: idle power
        punishes slow single-thread runs, core power punishes inefficient
        full-machine runs."""
        tiles = {"i": 64, "j": 128, "k": 16}
        energies = {thr: mm_energy_model.energy(tiles, thr) for thr in (1, 5, 10, 20, 40)}
        best = min(energies, key=energies.get)
        assert 1 < best < 40, energies

    def test_more_sockets_cost_idle_power(self, mm_energy_model):
        """At equal thread count, spilling onto more sockets (modeled via
        placement) draws more idle power; here we check the monotone rise
        from 10 (1 socket) to 40 (4 sockets) outweighs the speedup at some
        point."""
        tiles = {"i": 64, "j": 128, "k": 16}
        e10 = mm_energy_model.energy(tiles, 10)
        e40 = mm_energy_model.energy(tiles, 40)
        assert e40 > e10  # the efficiency decay makes 40 threads costlier


class TestTriObjectiveTuning:
    @pytest.fixture(scope="class")
    def tri_problem(self):
        k = get_kernel("mm")
        region = extract_regions(k.function)[0]
        sk = default_skeleton(region, {"N": 700}, WESTMERE.total_cores)
        model = RegionCostModel(region, {"N": 700}, WESTMERE,
                                parallel_spec=sk.parallel_spec())
        target = SimulatedTarget(model, seed=21, measure_energy=True)
        return TuningProblem.from_skeleton(sk, target, tri_objective=True)

    def test_requires_energy_target(self):
        k = get_kernel("mm")
        region = extract_regions(k.function)[0]
        sk = default_skeleton(region, {"N": 100}, 8)
        model = RegionCostModel(region, {"N": 100}, WESTMERE)
        target = SimulatedTarget(model, seed=0)  # no energy
        with pytest.raises(ValueError):
            TuningProblem.from_skeleton(sk, target, tri_objective=True)

    def test_objective_vectors_have_three_components(self, tri_problem):
        c = tri_problem.evaluate({"tile_i": 32, "tile_j": 64, "tile_k": 8, "threads": 10})
        assert len(c.objectives) == 3
        assert c.objectives[2] > 0
        assert tri_problem.num_objectives == 3

    def test_batch_matches_single(self, tri_problem):
        vec = np.array([[16, 32, 8, 5]], dtype=float)
        batch = tri_problem.evaluate_batch(vec)[0]
        single = tri_problem.evaluate({"tile_i": 16, "tile_j": 32, "tile_k": 8, "threads": 5})
        assert batch.objectives == single.objectives

    def test_rsgde3_runs_tri_objective(self, tri_problem):
        settings = RSGDE3Settings(
            gde3=GDE3Settings(population_size=16), max_generations=10, patience=2
        )
        res = RSGDE3(tri_problem, settings).run(seed=4)
        assert res.size >= 3
        # the front must contain points that differ in their energy ordering
        # vs their time ordering (otherwise energy added nothing)
        by_time = sorted(res.front, key=lambda c: c.objectives[0])
        by_energy = sorted(res.front, key=lambda c: c.objectives[2])
        assert by_time != by_energy


class TestHypervolume3D:
    def test_matches_inclusion_exclusion(self):
        rng = np.random.default_rng(5)
        pts = rng.uniform(0.1, 0.9, size=(8, 3))
        ref = np.array([1.0, 1.0, 1.0])
        from repro.optimizer.hypervolume import _hv_inclusion_exclusion
        from repro.optimizer.pareto import non_dominated_mask

        nd = pts[non_dominated_mask(pts)]
        assert hypervolume(pts, ref) == pytest.approx(
            _hv_inclusion_exclusion(nd, ref), rel=1e-9
        )

    def test_large_front_supported(self):
        """> 20 points would overflow inclusion-exclusion; the sweep works."""
        rng = np.random.default_rng(6)
        pts = rng.uniform(0.0, 1.0, size=(200, 3))
        v = hypervolume(pts, np.array([1.0, 1.0, 1.0]))
        assert 0.0 < v <= 1.0

    def test_single_point(self):
        v = hypervolume(np.array([[0.5, 0.5, 0.5]]), np.array([1, 1, 1]))
        assert v == pytest.approx(0.125)

    def test_monotone_under_addition(self):
        pts = np.array([[0.5, 0.5, 0.5]])
        more = np.vstack([pts, [[0.2, 0.8, 0.8]]])
        ref = np.array([1.0, 1.0, 1.0])
        assert hypervolume(more, ref) >= hypervolume(pts, ref)


def _meta(i, time, threads, energy):
    return VersionMeta(
        index=i, time=time, resources=time * threads, threads=threads,
        tile_sizes=(), energy=energy,
    )


class TestEnergyPolicies:
    @pytest.fixture
    def table(self):
        metas = [
            _meta(0, 0.05, 40, 30.0),
            _meta(1, 0.14, 10, 22.0),
            _meta(2, 1.10, 1, 60.0),
        ]
        return VersionTable("mm", tuple(Version(meta=m) for m in metas))

    def test_greenest(self, table):
        assert GreenestPolicy().select(table).meta.index == 1

    def test_greenest_without_energy_falls_back(self):
        metas = [
            VersionMeta(index=0, time=0.1, resources=0.4, threads=4, tile_sizes=()),
            VersionMeta(index=1, time=0.3, resources=0.3, threads=1, tile_sizes=()),
        ]
        t = VersionTable("x", tuple(Version(meta=m) for m in metas))
        assert GreenestPolicy().select(t).meta.index == 1

    def test_energy_cap(self, table):
        assert EnergyCapPolicy(cap=25.0).select(table).meta.index == 1
        assert EnergyCapPolicy(cap=100.0).select(table).meta.index == 0

    def test_energy_cap_infeasible(self, table):
        assert EnergyCapPolicy(cap=1.0).select(table).meta.index == 1

    def test_policy_by_name(self):
        assert isinstance(policy_by_name("greenest"), GreenestPolicy)


class TestDriverEnergyIntegration:
    def test_tuned_metas_carry_energy(self):
        from repro.driver import TuningDriver
        from repro.optimizer.rsgde3 import RSGDE3Settings
        from repro.optimizer.gde3 import GDE3Settings

        driver = TuningDriver(
            machine=WESTMERE,
            seed=31,
            settings=RSGDE3Settings(
                gde3=GDE3Settings(population_size=12), max_generations=8, patience=2
            ),
        )
        tuned = driver.tune_kernel("mm", sizes={"N": 400}, with_energy=True)
        metas = tuned.version_metas()
        assert all(m.energy is not None and m.energy > 0 for m in metas)
