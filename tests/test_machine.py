"""Tests for the machine package: models, topology, cache simulator."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.machine import (
    BARCELONA,
    WESTMERE,
    CacheHierarchy,
    CacheSim,
    machine_by_name,
    place_threads,
)
from repro.machine.cache import AddressTraceRecorder


class TestMachineModels:
    def test_table_i_westmere(self):
        m = WESTMERE
        assert m.sockets == 4 and m.cores_per_socket == 10
        assert m.level("L1").size == 32 * 1024
        assert m.level("L2").size == 256 * 1024
        assert m.level("L3").size == 30 * 1024 * 1024
        assert m.level("L3").shared and not m.level("L1").shared

    def test_table_i_barcelona(self):
        m = BARCELONA
        assert m.sockets == 8 and m.cores_per_socket == 4
        assert m.level("L1").size == 64 * 1024
        assert m.level("L2").size == 512 * 1024
        assert m.level("L3").size == 2 * 1024 * 1024

    def test_total_cores(self):
        assert WESTMERE.total_cores == 40
        assert BARCELONA.total_cores == 32

    def test_default_thread_counts_match_paper(self):
        assert WESTMERE.default_thread_counts() == (1, 5, 10, 20, 40)
        assert BARCELONA.default_thread_counts() == (1, 2, 4, 8, 16, 32)

    def test_lookup_by_name(self):
        assert machine_by_name("westmere") is WESTMERE
        assert machine_by_name("Barcelona") is BARCELONA
        with pytest.raises(KeyError):
            machine_by_name("skylake")

    def test_unknown_level_raises(self):
        with pytest.raises(KeyError):
            WESTMERE.level("L4")

    def test_tlb_reach(self):
        assert WESTMERE.tlb_reach == WESTMERE.tlb_entries * WESTMERE.page_size


class TestPlacement:
    def test_fill_one_socket_first(self):
        p = place_threads(WESTMERE, 10)
        assert p.per_socket == (10, 0, 0, 0)
        assert p.active_sockets == 1
        assert p.max_threads_per_socket == 10

    def test_spill_to_next_socket(self):
        p = place_threads(WESTMERE, 14)
        assert p.per_socket == (10, 4, 0, 0)
        assert p.active_sockets == 2

    def test_full_machine(self):
        p = place_threads(BARCELONA, 32)
        assert p.per_socket == (4,) * 8

    def test_shared_capacity_division(self):
        p = place_threads(WESTMERE, 10)
        l3 = WESTMERE.level("L3").size
        assert p.shared_capacity_per_thread(l3) == l3 / 10

    def test_aggregate_bw_scales_with_sockets(self):
        p1 = place_threads(WESTMERE, 10)
        p2 = place_threads(WESTMERE, 20)
        assert p2.aggregate_dram_bw() == 2 * p1.aggregate_dram_bw()

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            place_threads(WESTMERE, 41)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            place_threads(WESTMERE, 0)

    @given(st.integers(min_value=1, max_value=40))
    def test_placement_conserves_threads(self, t):
        p = place_threads(WESTMERE, t)
        assert sum(p.per_socket) == t
        assert max(p.per_socket) <= WESTMERE.cores_per_socket


class TestCacheSim:
    def test_cold_miss_then_hit(self):
        c = CacheSim(size=1024, line_size=64, assoc=2)
        assert not c.access(0)
        assert c.access(0)
        assert c.access(63)  # same line
        assert not c.access(64)  # next line

    def test_capacity_eviction_lru(self):
        # direct-mapped-ish: 2 sets, assoc 2 -> 4 lines total
        c = CacheSim(size=256, line_size=64, assoc=2)
        for addr in (0, 256, 512):  # all map to set 0, assoc 2 overflows
            c.access(addr)
        assert not c.access(0)  # evicted (LRU)

    def test_lru_order(self):
        c = CacheSim(size=256, line_size=64, assoc=2)
        c.access(0)
        c.access(256)
        c.access(0)  # refresh 0
        c.access(512)  # evicts 256, not 0
        assert c.access(0)
        assert not c.access(256)

    def test_stats(self):
        c = CacheSim(size=1024, line_size=64, assoc=2)
        c.access(0)
        c.access(0)
        assert c.hits == 1 and c.misses == 1 and c.miss_ratio == 0.5
        assert c.miss_bytes == 64
        c.reset_stats()
        assert c.accesses == 0

    def test_geometry_validated(self):
        with pytest.raises(ValueError):
            CacheSim(size=1000, line_size=64, assoc=3)

    def test_streaming_miss_rate_is_line_rate(self):
        c = CacheSim(size=32 * 1024, line_size=64, assoc=8)
        for i in range(64 * 1024):  # sequential byte sweep over 4 MB >> cache
            c.access(i * 8)
        # one miss per 8 accesses (64B line / 8B elements)
        assert c.miss_ratio == pytest.approx(0.125, rel=0.01)


class TestAccessMany:
    """The batched trace path must agree exactly with per-address access,
    and the OrderedDict LRU must behave like the reference recency list."""

    def _trace(self, seed, n=4000, span=16 * 1024):
        import numpy as np

        rng = np.random.default_rng(seed)
        # mix of streaming and reuse so hits and evictions both happen
        hot = rng.integers(0, 2048, size=n // 2)
        cold = rng.integers(0, span, size=n - n // 2)
        trace = np.concatenate([hot, cold])
        rng.shuffle(trace)
        return [int(a) * 8 for a in trace]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_cachesim_access_many_matches_access(self, seed):
        trace = self._trace(seed)
        a = CacheSim(size=4096, line_size=64, assoc=4)
        b = CacheSim(size=4096, line_size=64, assoc=4)
        hits = b.access_many(trace)
        for addr in trace:
            a.access(addr)
        assert (b.hits, b.misses) == (a.hits, a.misses)
        assert hits == a.hits
        assert b.miss_bytes == a.miss_bytes

    @pytest.mark.parametrize("seed", [3, 4])
    def test_hierarchy_access_many_matches_access(self, seed):
        trace = self._trace(seed)

        def fresh():
            return CacheHierarchy([
                CacheSim(1024, 64, 2, name="L1"),
                CacheSim(8192, 64, 4, name="L2"),
            ])

        a, b = fresh(), fresh()
        for addr in trace:
            a.access(addr)
        b.access_many(trace)
        for la, lb in zip(a.levels, b.levels):
            assert (lb.hits, lb.misses) == (la.hits, la.misses), la.name

    def test_single_level_hierarchy_access_many(self):
        trace = self._trace(5)
        a = CacheHierarchy([CacheSim(2048, 64, 2, name="L1")])
        b = CacheHierarchy([CacheSim(2048, 64, 2, name="L1")])
        for addr in trace:
            a.access(addr)
        b.access_many(trace)
        assert b.levels[0].hits == a.levels[0].hits

    def test_lru_matches_reference_model(self):
        """Property check of the OrderedDict recency bookkeeping against a
        brute-force list-based LRU over adversarial same-set traffic."""
        import numpy as np

        sim = CacheSim(size=512, line_size=64, assoc=4)  # 2 sets, 4 ways
        sets = {0: [], 1: []}  # reference: most recent last
        rng = np.random.default_rng(9)
        for tag in rng.integers(0, 12, size=2000):
            addr = int(tag) * 64
            line = addr // 64
            ref = sets[line % 2]
            expected_hit = line in ref
            if expected_hit:
                ref.remove(line)
            elif len(ref) == 4:
                ref.pop(0)
            ref.append(line)
            assert sim.access(addr) == expected_hit, addr

    def test_access_many_empty(self):
        c = CacheSim(size=1024, line_size=64, assoc=2)
        assert c.access_many([]) == 0
        assert c.accesses == 0


class TestHierarchy:
    def test_miss_propagation(self):
        h = CacheHierarchy([
            CacheSim(1024, 64, 2, name="L1"),
            CacheSim(4096, 64, 4, name="L2"),
        ])
        assert h.access(0) == 2  # missed both
        assert h.access(0) == 0  # L1 hit

    def test_from_machine_scaling(self):
        h = CacheHierarchy.from_machine(WESTMERE, capacity_scale=0.1)
        l3 = [lv for lv in h.levels if lv.name == "L3"][0]
        assert l3.size <= WESTMERE.level("L3").size * 0.1 + l3.line_size * l3.assoc

    def test_miss_bytes_lookup(self):
        h = CacheHierarchy.from_machine(WESTMERE)
        h.access(0)
        assert h.miss_bytes("L1") == 64
        with pytest.raises(KeyError):
            h.miss_bytes("L9")


class TestTraceRecorder:
    def test_layout_separates_arrays(self):
        r = AddressTraceRecorder()
        r.register("A", (8, 8))
        r.register("B", (8, 8))
        assert r.address_of("B", (0, 0)) >= r.address_of("A", (7, 7)) + 8

    def test_row_major(self):
        r = AddressTraceRecorder()
        r.register("A", (4, 4))
        assert r.address_of("A", (1, 0)) - r.address_of("A", (0, 0)) == 32

    def test_replay(self):
        r = AddressTraceRecorder()
        r.register("A", (16,))
        for i in range(16):
            r.record("A", (i,))
        h = CacheHierarchy([CacheSim(1024, 64, 2, name="L1")])
        r.replay(h)
        assert h.levels[0].misses == 2  # 16*8B = 2 lines


class TestMachineZoo:
    """The additional machine definitions (templates for user targets)."""

    def test_lookup(self):
        from repro.machine import LAPTOP, SERVER2S

        assert machine_by_name("laptop") is LAPTOP
        assert machine_by_name("server2s") is SERVER2S

    def test_laptop_single_socket(self):
        from repro.machine import LAPTOP

        assert LAPTOP.sockets == 1
        assert LAPTOP.numa_tax == 0.0
        p = place_threads(LAPTOP, 8)
        assert p.active_sockets == 1

    def test_tuning_shapes_hold_on_new_machines(self):
        """The paper's core phenomena are not Westmere/Barcelona-specific:
        speedup rises and efficiency falls on the zoo machines too."""
        from repro.analysis import extract_regions
        from repro.evaluation import RegionCostModel
        from repro.frontend import get_kernel
        from repro.machine import LAPTOP, SERVER2S

        k = get_kernel("mm")
        region = extract_regions(k.function)[0]
        for m in (LAPTOP, SERVER2S):
            model = RegionCostModel(region, {"N": 1400}, m)
            tiles = {"i": 64, "j": 128, "k": 16}
            counts = m.default_thread_counts()
            times = [model.time(tiles, t) for t in counts]
            speedups = [times[0] / t for t in times]
            effs = [s / c for s, c in zip(speedups, counts)]
            assert speedups == sorted(speedups), m.name
            assert effs == sorted(effs, reverse=True), m.name
