"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.regions import extract_regions
from repro.evaluation.cost import RegionCostModel
from repro.evaluation.simulator import SimulatedTarget
from repro.frontend.kernels import ALL_KERNELS, get_kernel
from repro.machine.model import BARCELONA, WESTMERE


@pytest.fixture(params=sorted(ALL_KERNELS))
def kernel(request):
    """Parametrized over all five benchmark kernels."""
    return get_kernel(request.param)


@pytest.fixture(params=[WESTMERE, BARCELONA], ids=lambda m: m.name)
def machine(request):
    return request.param


@pytest.fixture
def mm_region():
    return extract_regions(get_kernel("mm").function)[0]


@pytest.fixture
def mm_model(mm_region):
    return RegionCostModel(mm_region, {"N": 1400}, WESTMERE)


@pytest.fixture
def mm_target(mm_model):
    return SimulatedTarget(mm_model, seed=0)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
