"""Tests for the frontend: kernel registry and the mini-C parser."""

from __future__ import annotations

import numpy as np
import pytest

from repro.frontend import ALL_KERNELS, get_kernel, kernel_names, parse_function
from repro.frontend.parser import ParseError
from repro.ir import ArrayRef, Assign, BinOp, For, Var, to_source
from repro.ir.interp import run_function
from repro.ir.types import ArrayType, F64, I32
from repro.ir.visitors import collect, loop_vars


class TestKernelRegistry:
    def test_five_kernels(self):
        assert sorted(kernel_names()) == ["dsyrk", "jacobi2d", "mm", "nbody", "stencil3d"]

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError):
            get_kernel("fft")

    def test_kernel_reference_consistency(self, kernel, rng):
        """make_inputs/reference/IR agree for every kernel (test sizes)."""
        inputs = kernel.make_inputs(kernel.test_size, rng)
        out = run_function(kernel.function, inputs, kernel.test_size)
        ref = kernel.reference(inputs, kernel.test_size)
        for name in kernel.output_arrays:
            assert np.allclose(out[name], ref[name]), f"{kernel.name}/{name}"

    def test_tile_loops_exist_in_nest(self, kernel):
        from repro.analysis import extract_regions

        region = extract_regions(kernel.function)[0]
        for v in kernel.tile_loops:
            assert v in region.domain.vars

    def test_complexity_strings(self, kernel):
        comp, mem = kernel.complexity
        assert comp.startswith("O(") and mem.startswith("O(")

    def test_sizes_merge(self):
        k = get_kernel("mm")
        assert k.sizes({"N": 100}) == {"N": 100}
        assert k.sizes()["N"] == 1400


MM_SOURCE = """
void mm(int N, double A[N][N], double B[N][N], double C[N][N]) {
    for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++)
            for (int k = 0; k < N; k++)
                C[i][j] += A[i][k] * B[k][j];
}
"""


class TestParser:
    def test_parses_mm(self):
        fn = parse_function(MM_SOURCE)
        assert fn.name == "mm"
        assert loop_vars(fn.body.stmts[0]) == ["i", "j", "k"]

    def test_parsed_mm_matches_registry_semantics(self, rng):
        fn = parse_function(MM_SOURCE)
        k = get_kernel("mm")
        inputs = k.make_inputs(k.test_size, rng)
        out = run_function(fn, inputs, k.test_size)
        ref = k.reference(inputs, k.test_size)
        assert np.allclose(out["C"], ref["C"])

    def test_array_param_types(self):
        fn = parse_function(MM_SOURCE)
        at = fn.param("A").type
        assert isinstance(at, ArrayType) and at.shape == ("N", "N")
        assert fn.param("N").type is I32

    def test_compound_assignment_desugars(self):
        fn = parse_function(MM_SOURCE)
        assigns = collect(fn.body, Assign)
        assert len(assigns) == 1
        assert isinstance(assigns[0].value, BinOp)

    def test_le_condition(self):
        fn = parse_function(
            "void f(int N, double A[N]) { for (int i = 0; i <= N; i++) A[i] = 0.0; }"
        )
        lp = fn.body.stmts[0]
        assert isinstance(lp, For)
        assert "N + 1" in to_source(lp.upper)

    def test_step_increment(self):
        fn = parse_function(
            "void f(int N, double A[N]) { for (int i = 0; i < N; i += 4) A[i] = 0.0; }"
        )
        lp = fn.body.stmts[0]
        assert isinstance(lp, For)
        assert to_source(lp.step) == "4"

    def test_comments_ignored(self):
        fn = parse_function(
            """
            void f(int N, double A[N]) {
                // single line
                /* block
                   comment */
                for (int i = 0; i < N; i++) A[i] = 1.0;
            }
            """
        )
        assert fn.name == "f"

    def test_unary_minus(self):
        fn = parse_function(
            "void f(int N, double A[N]) { for (int i = 0; i < N; i++) A[i] = -1.0; }"
        )
        assert fn is not None

    def test_calls_parse(self):
        fn = parse_function(
            "void f(int N, double A[N]) { for (int i = 0; i < N; i++) A[i] = sqrt(A[i]); }"
        )
        from repro.ir.nodes import Call

        assert collect(fn.body, Call)

    def test_long_long(self):
        fn = parse_function("void f(long long N, double A[N]) { A[0] = 1.0; }")
        assert fn.param("N").type.name == "i64"

    def test_rejects_nonvoid(self):
        with pytest.raises(ParseError):
            parse_function("int f(int N) { }")

    def test_rejects_unknown_type(self):
        with pytest.raises(ParseError):
            parse_function("void f(quux N) { }")

    def test_rejects_mismatched_loop_condition(self):
        with pytest.raises(ParseError):
            parse_function(
                "void f(int N, double A[N]) { for (int i = 0; j < N; i++) A[i] = 0.0; }"
            )

    def test_rejects_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_function(MM_SOURCE + "garbage")

    def test_rejects_bad_character(self):
        with pytest.raises(ParseError):
            parse_function("void f(int N) { § }")

    def test_precedence(self):
        fn = parse_function(
            "void f(int N, double A[N]) { for (int i = 0; i < N; i++) A[i] = 1.0 + 2.0 * 3.0; }"
        )
        assign = collect(fn.body, Assign)[0]
        assert isinstance(assign.value, BinOp) and assign.value.op == "+"

    def test_parenthesised_expression(self):
        fn = parse_function(
            "void f(int N, double A[N]) { for (int i = 0; i < N; i++) A[i] = (1.0 + 2.0) * 3.0; }"
        )
        assign = collect(fn.body, Assign)[0]
        assert isinstance(assign.value, BinOp) and assign.value.op == "*"
