"""Edge cases and failure injection across the pipeline: degenerate problem
sizes, extreme noise, single-point spaces, minimal tables."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import extract_regions
from repro.backend.meta import VersionMeta
from repro.driver import TuningDriver
from repro.evaluation import RegionCostModel, SimulatedTarget
from repro.frontend import get_kernel
from repro.machine import BARCELONA, WESTMERE
from repro.optimizer import (
    GDE3Settings,
    RSGDE3,
    TuningProblem,
    brute_force_search,
    random_search,
)
from repro.optimizer.pareto import dominates
from repro.optimizer.rsgde3 import RSGDE3Settings
from repro.runtime import (
    FastestPolicy,
    MostEfficientPolicy,
    RegionExecutor,
    Version,
    VersionTable,
    WeightedSumPolicy,
)
from repro.transform import default_skeleton

FAST = RSGDE3Settings(
    gde3=GDE3Settings(population_size=8), max_generations=6, patience=2
)


class TestTinyProblems:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_driver_handles_tiny_sizes(self, n):
        driver = TuningDriver(machine=WESTMERE, seed=1, settings=FAST)
        tuned = driver.tune_kernel("mm", sizes={"N": n})
        assert tuned.result.size >= 1
        table = tuned.build_version_table()
        k = get_kernel("mm")
        rng = np.random.default_rng(0)
        inputs = k.make_inputs({"N": n}, rng)
        arrs = {name: a.copy() for name, a in inputs.items()}
        table.fastest()(arrs, {"N": n})
        ref = k.reference(inputs, {"N": n})
        assert np.allclose(arrs["C"], ref["C"])

    def test_degenerate_tile_space(self):
        """N=2 makes every tile bound collapse to [1,1]."""
        k = get_kernel("mm")
        region = extract_regions(k.function)[0]
        sk = default_skeleton(region, {"N": 2}, 4)
        for p in sk.parameters:
            if p.name.startswith("tile_"):
                assert p.lo == p.hi == 1

    def test_cost_model_single_iteration_domain(self):
        k = get_kernel("mm")
        region = extract_regions(k.function)[0]
        m = RegionCostModel(region, {"N": 1}, WESTMERE)
        assert m.time({"i": 1, "j": 1, "k": 1}, 1) > 0


class TestExtremeNoise:
    def test_front_still_mutually_nondominated(self):
        k = get_kernel("mm")
        region = extract_regions(k.function)[0]
        sk = default_skeleton(region, {"N": 300}, BARCELONA.total_cores)
        model = RegionCostModel(region, {"N": 300}, BARCELONA,
                                parallel_spec=sk.parallel_spec())
        target = SimulatedTarget(model, seed=3, noise=0.3)  # 30% jitter
        problem = TuningProblem.from_skeleton(sk, target)
        res = RSGDE3(problem, FAST).run(seed=1)
        assert res.size >= 1
        for a in res.front:
            for b in res.front:
                assert not dominates(a.objectives, b.objectives)

    def test_zero_noise_exact_model_times(self):
        k = get_kernel("mm")
        region = extract_regions(k.function)[0]
        model = RegionCostModel(region, {"N": 300}, WESTMERE)
        target = SimulatedTarget(model, seed=0, noise=0.0)
        obj = target.evaluate({"i": 16, "j": 16, "k": 16}, 4)
        assert obj.time == pytest.approx(model.time({"i": 16, "j": 16, "k": 16}, 4))


class TestDegenerateSearches:
    def test_brute_force_grid_larger_than_extent(self):
        k = get_kernel("mm")
        region = extract_regions(k.function)[0]
        sk = default_skeleton(region, {"N": 8}, 4)
        model = RegionCostModel(region, {"N": 8}, WESTMERE,
                                parallel_spec=sk.parallel_spec())
        problem = TuningProblem.from_skeleton(sk, SimulatedTarget(model, seed=0))
        grid = {v: [1, 2, 4] for v in "ijk"}
        res, _ = brute_force_search(problem, grid, [1, 4])
        assert res.size >= 1

    def test_random_search_tiny_budget(self):
        k = get_kernel("mm")
        region = extract_regions(k.function)[0]
        sk = default_skeleton(region, {"N": 100}, 4)
        model = RegionCostModel(region, {"N": 100}, WESTMERE,
                                parallel_spec=sk.parallel_spec())
        problem = TuningProblem.from_skeleton(sk, SimulatedTarget(model, seed=0))
        res = random_search(problem, budget=1, seed=0)
        assert res.evaluations == 1 and res.size == 1

    def test_population_larger_than_space(self):
        """NP=8 in a space with ~4 distinct configurations: the ledger
        deduplicates but the search must still terminate."""
        k = get_kernel("mm")
        region = extract_regions(k.function)[0]
        sk = default_skeleton(region, {"N": 3}, 2)
        model = RegionCostModel(region, {"N": 3}, WESTMERE,
                                parallel_spec=sk.parallel_spec())
        problem = TuningProblem.from_skeleton(sk, SimulatedTarget(model, seed=0))
        res = RSGDE3(problem, FAST).run(seed=0)
        assert res.size >= 1
        assert res.evaluations <= problem.space.cardinality()


class TestMinimalTables:
    def test_single_version_table(self):
        meta = VersionMeta(index=0, time=1.0, resources=1.0, threads=1, tile_sizes=())
        table = VersionTable("r", (Version(meta=meta),))
        for policy in (FastestPolicy(), MostEfficientPolicy(), WeightedSumPolicy()):
            assert policy.select(table).meta.index == 0

    def test_identical_versions_weighted_sum_stable(self):
        metas = [
            VersionMeta(index=i, time=1.0, resources=1.0, threads=1, tile_sizes=())
            for i in range(3)
        ]
        table = VersionTable("r", tuple(Version(meta=m) for m in metas))
        # degenerate normalization (all equal) must not divide by zero
        assert WeightedSumPolicy().select(table).meta.index == 0


class TestLedgerConsistency:
    def test_batch_then_single_consistent(self):
        """A config first measured in a batch returns the identical value
        when re-queried through the scalar path."""
        k = get_kernel("mm")
        region = extract_regions(k.function)[0]
        model = RegionCostModel(region, {"N": 200}, WESTMERE)
        target = SimulatedTarget(model, seed=12)
        tiles = np.array([[16, 32, 8]])
        batch_time = target.evaluate_batch(tiles, np.array([4]))[0]
        single = target.evaluate({"i": 16, "j": 32, "k": 8}, 4)
        assert single.time == batch_time
        assert target.evaluations == 1
