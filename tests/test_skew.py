"""Tests for loop skewing (the wavefront-enabling transformation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.dependence import analyze_dependences
from repro.ir.builder import array, assign, func, loop, param, var
from repro.ir.interp import run_function
from repro.ir.types import I64
from repro.ir.visitors import loop_nest
from repro.transform.skew import skew, skew_factor_for_band, skewed_directions


def wavefront_nest():
    """A[i][j] = A[i-1][j+1] + A[i-1][j]: distances (1,-1) and (1,0)."""
    i, j = var("i"), var("j")
    body = assign(
        var("A")[i, j], var("A")[i - 1, j + 1] + var("A")[i - 1, j] + 1.0
    )
    return loop("i", 1, var("N") - 1, loop("j", 0, var("N") - 1, body))


def run_wavefront(nest, n=10):
    fn = func("f", [param("N", I64), array("A", "N", "N")], nest)
    rng = np.random.default_rng(0)
    data = {"A": rng.standard_normal((n, n))}
    return run_function(fn, data, {"N": n})["A"]


class TestSkew:
    def test_zero_factor_identity(self):
        nest = wavefront_nest()
        assert skew(nest, "i", "j", 0) is nest

    def test_structure(self):
        nest = skew(wavefront_nest(), "i", "j", 1)
        loops = loop_nest(nest)
        assert loops[1].annotation("skewed_by") == ("i", 1)

    @pytest.mark.parametrize("factor", [1, 2, 3])
    def test_execution_order_unchanged(self, factor):
        """Skewing alone must not change results (it only reindexes)."""
        plain = run_wavefront(wavefront_nest())
        skewed = run_wavefront(skew(wavefront_nest(), "i", "j", factor))
        assert np.allclose(plain, skewed)

    def test_validates_loop_names(self):
        with pytest.raises(ValueError):
            skew(wavefront_nest(), "z", "j", 1)
        with pytest.raises(ValueError):
            skew(wavefront_nest(), "j", "i", 1)  # inner does not enclose outer


class TestSkewedDirections:
    def test_wavefront_becomes_nonnegative(self):
        nest = wavefront_nest()
        deps = analyze_dependences(nest)
        lvars = ["i", "j"]
        # before skewing some dependence has a '>' inner direction
        assert any(d.directions[1] == ">" for d in deps if d.distance)
        for dep in deps:
            if dep.distance is None:
                continue
            dirs = skewed_directions(dep, lvars, "i", "j", 1)
            assert dirs[1] in ("=", "<"), (dep, dirs)

    def test_factor_search(self):
        nest = wavefront_nest()
        deps = analyze_dependences(nest)
        f = skew_factor_for_band(deps, ["i", "j"], "i", "j")
        assert f == 1

    def test_factor_search_zero_when_already_legal(self):
        k_nest = loop(
            "i", 1, "N",
            loop("j", 0, "N", assign(var("A")[var("i"), var("j")],
                                     var("A")[var("i") - 1, var("j")] + 1.0)),
        )
        deps = analyze_dependences(k_nest)
        assert skew_factor_for_band(deps, ["i", "j"], "i", "j") == 0

    def test_factor_search_gives_up_gracefully(self):
        from repro.analysis.dependence import Dependence, DependenceKind

        # an unknown-distance '*' dependence can never be fixed by skewing
        dep = Dependence("A", DependenceKind.FLOW, ("*", "*"), None)
        assert skew_factor_for_band([dep], ["i", "j"], "i", "j") is None


class TestSkewEnablesTiling:
    def test_skewed_wavefront_is_tilable_by_execution(self):
        """After skewing with factor 1, tiling the (i, j') band preserves
        the wavefront's semantics — the end-to-end point of skewing."""
        from repro.transform import tile

        plain = run_wavefront(wavefront_nest(), n=12)
        skewed = skew(wavefront_nest(), "i", "j", 1)
        tiled = tile(skewed, {"i": 3, "j": 4})
        result = run_wavefront(tiled, n=12)
        assert np.allclose(plain, result)

    def test_untiled_skew_then_tile_various_sizes(self):
        from repro.transform import tile

        plain = run_wavefront(wavefront_nest(), n=9)
        for ti, tj in ((2, 2), (4, 5), (1, 7)):
            tiled = tile(skew(wavefront_nest(), "i", "j", 1), {"i": ti, "j": tj})
            assert np.allclose(plain, run_wavefront(tiled, n=9)), (ti, tj)
