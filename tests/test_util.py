"""Tests for repro.util (rng, stats, tables)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.rng import derive_rng, spawn_seed
from repro.util.stats import geomean, mean, median, relative_loss, summarize
from repro.util.tables import Table


class TestSpawnSeed:
    def test_deterministic(self):
        assert spawn_seed(42, "a", 1) == spawn_seed(42, "a", 1)

    def test_distinct_keys_distinct_seeds(self):
        seeds = {spawn_seed(42, "k", i) for i in range(100)}
        assert len(seeds) == 100

    def test_distinct_parents_distinct_seeds(self):
        assert spawn_seed(1, "x") != spawn_seed(2, "x")

    def test_64_bit_range(self):
        s = spawn_seed(7, "anything", (1, 2))
        assert 0 <= s < 2**64

    @given(st.integers(min_value=0, max_value=2**64 - 1), st.text(max_size=20))
    def test_always_in_range(self, parent, key):
        assert 0 <= spawn_seed(parent, key) < 2**64


class TestDeriveRng:
    def test_same_seed_same_stream(self):
        a = derive_rng(5, "x").integers(0, 1000, 10)
        b = derive_rng(5, "x").integers(0, 1000, 10)
        assert (a == b).all()

    def test_different_keys_different_streams(self):
        a = derive_rng(5, "x").integers(0, 1 << 62, 10)
        b = derive_rng(5, "y").integers(0, 1 << 62, 10)
        assert (a != b).any()

    def test_generator_parent(self):
        parent = np.random.default_rng(0)
        child = derive_rng(parent)
        assert isinstance(child, np.random.Generator)

    def test_none_parent_gives_entropy(self):
        assert isinstance(derive_rng(None), np.random.Generator)


class TestStats:
    def test_median_odd(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_median_even_averages(self):
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_median_empty_raises(self):
        with pytest.raises(ValueError):
            median([])

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_relative_loss_basic(self):
        assert relative_loss(1.1, 1.0) == pytest.approx(10.0)

    def test_relative_loss_zero_at_best(self):
        assert relative_loss(2.0, 2.0) == 0.0

    def test_relative_loss_rejects_bad_best(self):
        with pytest.raises(ValueError):
            relative_loss(1.0, 0.0)

    def test_summarize_fields(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s["min"] == 1.0 and s["max"] == 3.0 and s["n"] == 3.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_median_between_min_max(self, xs):
        m = median(xs)
        assert min(xs) <= m <= max(xs)


class TestTable:
    def test_render_contains_cells(self):
        t = Table(["a", "b"], title="T")
        t.add_row(["x", 1])
        text = t.render()
        assert "T" in text and "x" in text and "1" in text

    def test_row_length_checked(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_float_formatting(self):
        t = Table(["v"])
        t.add_row([0.12345])
        assert "0.1234" in t.render() or "0.1235" in t.render()

    def test_alignment_consistent(self):
        t = Table(["col"])
        t.add_row(["looooooooong"])
        lines = t.render().splitlines()
        assert len(lines[0]) == len(lines[2])


class TestSeedHasherPrefix:
    """spawn_seed_from(seed_hasher(parent, a), b) must be bit-identical to
    spawn_seed(parent, a, b): the prefix copy feeds blake2b the exact same
    byte stream, so batched derivation can skip rehashing the prefix."""

    def test_prefix_equals_full_spawn(self):
        from repro.util.rng import seed_hasher, spawn_seed_from

        for parent in (0, 1, 42, 2**63):
            prefix = seed_hasher(parent, "key")
            for rep in range(20):
                assert spawn_seed_from(prefix, rep) == spawn_seed(
                    parent, "key", rep
                )

    def test_multi_key_prefix(self):
        from repro.util.rng import seed_hasher, spawn_seed_from

        prefix = seed_hasher(7, (1, 2, 3), "x")
        assert spawn_seed_from(prefix, 9, "tail") == spawn_seed(
            7, (1, 2, 3), "x", 9, "tail"
        )

    def test_prefix_is_reusable(self):
        from repro.util.rng import seed_hasher, spawn_seed_from

        prefix = seed_hasher(3, "a")
        first = spawn_seed_from(prefix, 0)
        second = spawn_seed_from(prefix, 1)
        assert first == spawn_seed(3, "a", 0)
        assert second == spawn_seed(3, "a", 1)
